//! # ldp-bench
//!
//! Shared fixtures for the Criterion micro-benchmarks. The benchmarks cover:
//!
//! * `protocols` — client randomization + server aggregation throughput for
//!   all five frequency oracles;
//! * `solutions` — full-tuple sanitization and estimation for SMP, SPL,
//!   RS+FD and RS+RFD;
//! * `attacks` — the plausible-deniability predictor, profile matching and
//!   the tie-aware top-k decision;
//! * `gbdt` — classifier training/prediction on attack-shaped feature
//!   matrices;
//! * `figures` — one scaled-down kernel per paper figure (the inner loop of
//!   each experiment binary).

use ldp_datasets::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small deterministic Adult-like population for benchmark inputs.
pub fn bench_adult(n: usize) -> Dataset {
    ldp_datasets::corpora::adult_like(n, 0xBEAC)
}

/// A small deterministic ACS-like population for benchmark inputs.
pub fn bench_acs(n: usize) -> Dataset {
    ldp_datasets::corpora::acs_employment_like(n, 0xBEAC)
}

/// Deterministic RNG for benchmark bodies.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0x000B_EACC)
}
