//! Criterion benchmarks: frequency-oracle client randomization and server
//! aggregation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_bench::bench_rng;
use ldp_protocols::{Aggregator, FrequencyOracle, ProtocolKind};
use std::hint::black_box;

fn bench_randomize(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomize");
    for kind in ProtocolKind::ALL {
        for k in [16usize, 74] {
            let oracle = kind.build(k, 2.0).unwrap();
            let mut rng = bench_rng();
            group.bench_with_input(BenchmarkId::new(kind.name(), k), &oracle, |b, oracle| {
                b.iter(|| black_box(oracle.randomize(black_box(3), &mut rng)));
            });
        }
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_1k_reports");
    for kind in ProtocolKind::ALL {
        let k = 32usize;
        let oracle = kind.build(k, 2.0).unwrap();
        let mut rng = bench_rng();
        let reports: Vec<_> = (0..1000u32)
            .map(|i| oracle.randomize(i % k as u32, &mut rng))
            .collect();
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut agg = Aggregator::new(&oracle);
                for r in &reports {
                    agg.absorb(r);
                }
                black_box(agg.estimate())
            });
        });
    }
    group.finish();
}

fn bench_estimator_math(c: &mut Criterion) {
    c.bench_function("variance_closed_forms", |b| {
        let oracle = ProtocolKind::Oue.build(74, 2.0).unwrap();
        b.iter(|| {
            let mut acc = 0.0;
            for v in 0..74 {
                acc += oracle.variance(black_box(v as f64 / 74.0), 10_000);
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_randomize,
    bench_aggregate,
    bench_estimator_math
);
criterion_main!(benches);
