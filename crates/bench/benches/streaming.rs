//! Batch vs streaming multidimensional aggregation.
//!
//! Documents the tentpole win of the streaming collection API: the batch
//! path buffers every sanitized report (`Vec<MultidimReport>`, O(n·d)
//! memory) before scanning it, while the streaming pipeline absorbs each
//! report into `O(threads · Σ_j k_j)` support counts as it is produced and
//! merges the shards — so memory is flat in n and the pass parallelizes.
//!
//! Sizes are n ∈ {10k, 100k, 1M}; under `--test` (what `cargo test` passes
//! to `harness = false` targets) only the 10k size runs, as a smoke test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_bench::bench_adult;
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol, SolutionKind};
use ldp_sim::CollectionPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sizes() -> &'static [usize] {
    if std::env::args().any(|a| a == "--test") {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    }
}

/// Batch: sanitize into a full report buffer, then estimate (the legacy
/// collect-then-estimate shape).
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_collect_then_estimate");
    group.sample_size(10);
    for &n in sizes() {
        let ds = bench_adult(n);
        let ks = ds.schema().cardinalities();
        let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, 1.0).unwrap();
        group.bench_with_input(BenchmarkId::new("RS+FD[GRR]", n), &ds, |b, ds| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0xBA7C4);
                let reports: Vec<_> = ds.rows().map(|t| rsfd.report(t, &mut rng)).collect();
                black_box(rsfd.estimate(&reports))
            })
        });
    }
    group.finish();
}

/// Streaming: the sharded pipeline — no report buffer, merged exactly.
fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_pipeline");
    group.sample_size(10);
    for &n in sizes() {
        let ds = bench_adult(n);
        let ks = ds.schema().cardinalities();
        for threads in [1usize, 4] {
            let pipeline =
                CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &ks, 1.0)
                    .unwrap()
                    .seed(0xBA7C4)
                    .threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("RS+FD[GRR]/t{threads}"), n),
                &ds,
                |b, ds| b.iter(|| black_box(pipeline.run(ds).estimates)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch, bench_streaming);
criterion_main!(benches);
