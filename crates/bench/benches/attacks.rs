//! Criterion benchmarks: the attack kernels — deniability prediction,
//! inverted-index matching, the tie-aware top-k decision, and the serial vs
//! sharded ASR evaluation of the attack pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_adult, bench_rng};
use ldp_core::attacks::{evaluate_serial, AttackKind, ReidentConfig, ReidentEval};
use ldp_core::profiling::Profile;
use ldp_core::reident::{MatchScratch, ReidentAttack};
use ldp_protocols::{deniability, FrequencyOracle, ProtocolKind};
use ldp_sim::par::default_threads;
use ldp_sim::AttackPipeline;
use std::hint::black_box;

fn bench_deniability(c: &mut Criterion) {
    let mut group = c.benchmark_group("deniability_best_guess");
    for kind in ProtocolKind::ALL {
        let oracle = kind.build(74, 2.0).unwrap();
        let mut rng = bench_rng();
        let report = oracle.randomize(12, &mut rng);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                black_box(deniability::best_guess(
                    &oracle,
                    black_box(&report),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let ds = bench_adult(10_000);
    let all: Vec<usize> = (0..ds.d()).collect();
    let attack = ReidentAttack::build(&ds, &all);
    let mut rng = bench_rng();
    let mut scratch = MatchScratch::default();

    // A realistic five-attribute profile of user 123.
    let mut profile = Profile::new();
    for j in 0..5 {
        profile.observe(j, ds.value(123, j));
    }

    c.bench_function("reident_top10_match_10k_records", |b| {
        b.iter(|| {
            black_box(attack.hits_in_top_ks(
                black_box(&profile),
                123,
                &[1, 10],
                &mut scratch,
                &mut rng,
            ))
        })
    });

    c.bench_function("reident_index_build_10k_records", |b| {
        b.iter(|| black_box(ReidentAttack::build(black_box(&ds), &all)))
    });
}

/// The headline pipeline claim: sharded, per-target-seeded ASR evaluation
/// beats the serial reference wall-clock at n = 100k targets, while staying
/// bit-identical to it.
fn bench_asr_serial_vs_sharded(c: &mut Criterion) {
    let n = 100_000;
    let ds = bench_adult(n);
    let all: Vec<usize> = (0..ds.d()).collect();
    let index = ReidentAttack::build(&ds, &all);
    // Two-attribute adversary profiles over the largest-domain attributes
    // (age / hours-like), as a partial-knowledge profiling round.
    let profiles: Vec<Profile> = (0..n)
        .map(|i| {
            let mut p = Profile::new();
            for &j in &[0usize, 8] {
                p.observe(j, ds.value(i, j));
            }
            p
        })
        .collect();
    let eval = ReidentEval {
        index: &index,
        profiles: &profiles,
        top_ks: &[1, 10],
    };
    // At least two workers so the sharded path is exercised even on
    // single-core runners; on real hardware this is all cores.
    let threads = default_threads().max(2);
    let pipeline = AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig::default()))
        .unwrap()
        .seed(7)
        .threads(threads);

    let mut group = c.benchmark_group("asr_eval_100k_targets");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(evaluate_serial(&eval, 7)))
    });
    group.bench_function(format!("sharded_{threads}_threads"), |b| {
        b.iter(|| black_box(pipeline.evaluate(&eval)))
    });
    group.finish();
}

fn bench_expected_acc(c: &mut Criterion) {
    c.bench_function("expected_acc_all_protocols_k74", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for kind in ProtocolKind::ALL {
                let oracle = kind.build(74, black_box(5.0)).unwrap();
                acc += deniability::expected_acc(&oracle);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_deniability,
    bench_matching,
    bench_asr_serial_vs_sharded,
    bench_expected_acc
);
criterion_main!(benches);
