//! Criterion benchmarks: the attack kernels — deniability prediction,
//! inverted-index matching and the tie-aware top-k decision.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_adult, bench_rng};
use ldp_core::profiling::Profile;
use ldp_core::reident::{MatchScratch, ReidentAttack};
use ldp_protocols::{deniability, FrequencyOracle, ProtocolKind};
use std::hint::black_box;

fn bench_deniability(c: &mut Criterion) {
    let mut group = c.benchmark_group("deniability_best_guess");
    for kind in ProtocolKind::ALL {
        let oracle = kind.build(74, 2.0).unwrap();
        let mut rng = bench_rng();
        let report = oracle.randomize(12, &mut rng);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                black_box(deniability::best_guess(
                    &oracle,
                    black_box(&report),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let ds = bench_adult(10_000);
    let all: Vec<usize> = (0..ds.d()).collect();
    let attack = ReidentAttack::build(&ds, &all);
    let mut rng = bench_rng();
    let mut scratch = MatchScratch::default();

    // A realistic five-attribute profile of user 123.
    let mut profile = Profile::new();
    for j in 0..5 {
        profile.observe(j, ds.value(123, j));
    }

    c.bench_function("reident_top10_match_10k_records", |b| {
        b.iter(|| {
            black_box(attack.hits_in_top_ks(
                black_box(&profile),
                123,
                &[1, 10],
                &mut scratch,
                &mut rng,
            ))
        })
    });

    c.bench_function("reident_index_build_10k_records", |b| {
        b.iter(|| black_box(ReidentAttack::build(black_box(&ds), &all)))
    });
}

fn bench_expected_acc(c: &mut Criterion) {
    c.bench_function("expected_acc_all_protocols_k74", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for kind in ProtocolKind::ALL {
                let oracle = kind.build(74, black_box(5.0)).unwrap();
                acc += deniability::expected_acc(&oracle);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_deniability,
    bench_matching,
    bench_expected_acc
);
criterion_main!(benches);
