//! Criterion benchmarks: one scaled-down kernel per paper figure — the inner
//! loop each experiment binary sweeps. Sizes are tiny so `cargo bench`
//! finishes quickly; the experiment binaries are the full regenerators.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_acs, bench_adult, bench_rng};
use ldp_core::inference::{AttackClassifier, AttackModel, SampledAttributeAttack};
use ldp_core::metrics::mse_avg;
use ldp_core::profiling::{expected_acc_nonuniform, expected_acc_uniform};
use ldp_core::reident::ReidentAttack;
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol, RsRfd, RsRfdProtocol};
use ldp_datasets::priors::correct_priors;
use ldp_gbdt::GbdtParams;
use ldp_protocols::{deniability, ProtocolKind, UeMode};
use ldp_sim::{
    rid_acc_multi, run_rsfd_campaign, PrivacyModel, RsFdCampaignConfig, SamplingSetting,
    SmpCampaign, SurveyPlan,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn classifier() -> AttackClassifier {
    AttackClassifier::Gbdt(GbdtParams {
        rounds: 6,
        max_depth: 3,
        min_child_weight: 0.05,
        ..GbdtParams::default()
    })
}

/// Fig. 1 kernel: the analytic ACC products over the ε grid.
fn fig01_kernel(c: &mut Criterion) {
    c.bench_function("fig01_analytic_grid", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for kind in ProtocolKind::ALL {
                for eps in 1..=10 {
                    let accs: Vec<f64> = [74usize, 7, 16]
                        .iter()
                        .map(|&k| {
                            deniability::expected_acc(&kind.build(k, f64::from(eps)).unwrap())
                        })
                        .collect();
                    total += expected_acc_uniform(&accs) + expected_acc_nonuniform(&accs);
                }
            }
            black_box(total)
        })
    });
}

/// Figs. 2/9/10/11 kernel: one SMP campaign + top-k matching (ε-LDP).
fn fig02_kernel(c: &mut Criterion) {
    let ds = bench_adult(500);
    let ks = ds.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(1);
    let plan = SurveyPlan::generate(ds.d(), 3, &mut rng);
    let all: Vec<usize> = (0..ds.d()).collect();
    let attack = ReidentAttack::build(&ds, &all);
    let mut group = c.benchmark_group("fig02_smp_campaign_500_users");
    group.sample_size(10);
    group.bench_function("grr_eps4_3surveys_top1_10", |b| {
        b.iter(|| {
            let campaign = SmpCampaign::new(
                ProtocolKind::Grr,
                &ks,
                &PrivacyModel::Ldp { epsilon: 4.0 },
                ds.n(),
                SamplingSetting::Uniform,
            )
            .unwrap();
            let snaps = campaign.run(&ds, &plan, 3, 1);
            black_box(rid_acc_multi(&attack, &snaps[2], &[1, 10], 5, 1))
        })
    });
    group.finish();
}

/// Figs. 12/13 kernel: the α-PIE variant of the campaign.
fn fig12_kernel(c: &mut Criterion) {
    let ds = bench_adult(500);
    let ks = ds.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(2);
    let plan = SurveyPlan::generate(ds.d(), 3, &mut rng);
    let all: Vec<usize> = (0..ds.d()).collect();
    let attack = ReidentAttack::build(&ds, &all);
    let mut group = c.benchmark_group("fig12_pie_campaign_500_users");
    group.sample_size(10);
    group.bench_function("oue_beta0.7", |b| {
        b.iter(|| {
            let campaign = SmpCampaign::new(
                ProtocolKind::Oue,
                &ks,
                &PrivacyModel::Pie { beta: 0.7 },
                ds.n(),
                SamplingSetting::Uniform,
            )
            .unwrap();
            let snaps = campaign.run(&ds, &plan, 4, 1);
            black_box(rid_acc_multi(&attack, &snaps[2], &[1, 10], 6, 1))
        })
    });
    group.finish();
}

/// Figs. 3/14/15 kernel: one NK inference attack evaluation.
fn fig03_kernel(c: &mut Criterion) {
    let ds = bench_acs(300);
    let ks = ds.schema().cardinalities();
    let mut group = c.benchmark_group("fig03_nk_attack_300_users");
    group.sample_size(10);
    for (label, protocol) in [
        ("grr", RsFdProtocol::Grr),
        ("sue_z", RsFdProtocol::UeZ(UeMode::Symmetric)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rng = bench_rng();
                let solution = RsFd::new(protocol, &ks, 6.0).unwrap();
                let observed: Vec<_> = ds.rows().map(|t| solution.report(t, &mut rng)).collect();
                black_box(SampledAttributeAttack::evaluate(
                    &solution,
                    &observed,
                    &AttackModel::NoKnowledge { synth_factor: 1.0 },
                    &classifier(),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

/// Fig. 4 kernel: one RS+FD survey round with the chained classifier attack.
fn fig04_kernel(c: &mut Criterion) {
    let ds = bench_adult(300);
    let mut rng = StdRng::seed_from_u64(3);
    let plan = SurveyPlan::generate(ds.d(), 2, &mut rng);
    let all: Vec<usize> = (0..ds.d()).collect();
    let attack = ReidentAttack::build(&ds, &all);
    let config = RsFdCampaignConfig {
        protocol: RsFdProtocol::Grr,
        epsilon: 6.0,
        synth_factor: 1.0,
        classifier: classifier(),
    };
    let mut group = c.benchmark_group("fig04_rsfd_campaign_300_users");
    group.sample_size(10);
    group.bench_function("grr_eps6_2surveys", |b| {
        b.iter(|| {
            let snaps = run_rsfd_campaign(&ds, &plan, &config, 7, 1).unwrap();
            black_box(rid_acc_multi(&attack, &snaps[1], &[1, 10], 8, 1))
        })
    });
    group.finish();
}

/// Figs. 5/16 kernel: one estimation round for RS+FD vs RS+RFD.
fn fig05_kernel(c: &mut Criterion) {
    let ds = bench_acs(500);
    let ks = ds.schema().cardinalities();
    let truth = ds.marginals();
    let mut group = c.benchmark_group("fig05_mse_500_users");
    group.sample_size(10);
    group.bench_function("rsfd_grr", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            let solution = RsFd::new(RsFdProtocol::Grr, &ks, 1.0).unwrap();
            let reports: Vec<_> = ds.rows().map(|t| solution.report(t, &mut rng)).collect();
            black_box(mse_avg(&truth, &solution.estimate(&reports)))
        })
    });
    group.bench_function("rsrfd_grr_correct_prior", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            let priors = correct_priors(&ds, 0.1, &mut rng);
            let solution = RsRfd::new(RsRfdProtocol::Grr, &ks, 1.0, priors).unwrap();
            let reports: Vec<_> = ds.rows().map(|t| solution.report(t, &mut rng)).collect();
            black_box(mse_avg(&truth, &solution.estimate(&reports)))
        })
    });
    group.finish();
}

/// Figs. 6/17 kernel: the inference attack against the countermeasure.
fn fig06_kernel(c: &mut Criterion) {
    let ds = bench_acs(300);
    let ks = ds.schema().cardinalities();
    let mut group = c.benchmark_group("fig06_rsrfd_attack_300_users");
    group.sample_size(10);
    group.bench_function("grr_correct_prior", |b| {
        b.iter(|| {
            let mut rng = bench_rng();
            let priors = correct_priors(&ds, 0.1, &mut rng);
            let solution = RsRfd::new(RsRfdProtocol::Grr, &ks, 6.0, priors).unwrap();
            let observed: Vec<_> = ds.rows().map(|t| solution.report(t, &mut rng)).collect();
            black_box(SampledAttributeAttack::evaluate(
                &solution,
                &observed,
                &AttackModel::NoKnowledge { synth_factor: 1.0 },
                &classifier(),
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    fig01_kernel,
    fig02_kernel,
    fig03_kernel,
    fig04_kernel,
    fig05_kernel,
    fig06_kernel,
    fig12_kernel
);
criterion_main!(benches);
