//! Criterion benchmarks: multidimensional solution client/server throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_adult, bench_rng};
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol, RsRfd, RsRfdProtocol, Smp, Spl};
use ldp_protocols::{ProtocolKind, UeMode};
use std::hint::black_box;

fn bench_clients(c: &mut Criterion) {
    let ds = bench_adult(64);
    let ks = ds.schema().cardinalities();
    let tuple: Vec<u32> = ds.row(0).to_vec();
    let mut group = c.benchmark_group("client_tuple_report");

    let smp = Smp::new(ProtocolKind::Grr, &ks, 1.0).unwrap();
    let mut rng = bench_rng();
    group.bench_function("SMP[GRR]", |b| {
        b.iter(|| black_box(smp.report(black_box(&tuple), &mut rng)))
    });

    let spl = Spl::new(ProtocolKind::Grr, &ks, 1.0).unwrap();
    group.bench_function("SPL[GRR]", |b| {
        b.iter(|| black_box(spl.report(black_box(&tuple), &mut rng)))
    });

    let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, 1.0).unwrap();
    group.bench_function("RS+FD[GRR]", |b| {
        b.iter(|| black_box(rsfd.report(black_box(&tuple), &mut rng)))
    });

    let rsfd_ue = RsFd::new(RsFdProtocol::UeZ(UeMode::Optimized), &ks, 1.0).unwrap();
    group.bench_function("RS+FD[OUE-z]", |b| {
        b.iter(|| black_box(rsfd_ue.report(black_box(&tuple), &mut rng)))
    });

    let priors: Vec<Vec<f64>> = ks.iter().map(|&k| vec![1.0 / k as f64; k]).collect();
    let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, 1.0, priors).unwrap();
    group.bench_function("RS+RFD[GRR]", |b| {
        b.iter(|| black_box(rsrfd.report(black_box(&tuple), &mut rng)))
    });
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let ds = bench_adult(2000);
    let ks = ds.schema().cardinalities();
    let mut rng = bench_rng();
    let mut group = c.benchmark_group("server_estimate_2k_users");
    group.sample_size(20);

    let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, 1.0).unwrap();
    let reports: Vec<_> = ds.rows().map(|t| rsfd.report(t, &mut rng)).collect();
    group.bench_function("RS+FD[GRR]", |b| {
        b.iter(|| black_box(rsfd.estimate(black_box(&reports))))
    });

    let rsfd_ue = RsFd::new(RsFdProtocol::UeR(UeMode::Optimized), &ks, 1.0).unwrap();
    let ue_reports: Vec<_> = ds.rows().map(|t| rsfd_ue.report(t, &mut rng)).collect();
    group.bench_function("RS+FD[OUE-r]", |b| {
        b.iter(|| black_box(rsfd_ue.estimate(black_box(&ue_reports))))
    });
    group.finish();
}

criterion_group!(benches, bench_clients, bench_estimation);
criterion_main!(benches);
