//! Server-side counting in isolation: per-protocol `count_support`
//! throughput at k ∈ {32, 256, 1024}, decoupled from channels, rng seeding
//! and client sanitization — so the OLH domain-sweep win (the monomorphized
//! `count_hashed` tight loop) is measured on its own.
//!
//! Each benchmark absorbs a pre-generated batch of 512 reports into a raw
//! count table; the reported time is per batch. `count_support_batch` ids
//! cover the batch entry point the ingestion service amortizes dispatch
//! through; the `olh_nonpow2_g` case pins the generic-modulo loop flavor
//! (ε = 1.5 → g = 5) next to the power-of-two mask flavor (ε = 2 → g = 8).
//!
//! The `sanitize` group is the client-side twin: UE `perturb_bits`
//! throughput for SUE/OUE at the same k grid, per-bit reference vs the
//! word-parallel path, so the speedup that closes the SPL[OUE] ingest gap
//! is pinned in isolation. ε = 1.0 lands OUE in the dense (batched-mask)
//! regime; the extra `OUE-sparse` id at ε = 4 prices the geometric
//! skip-sampling regime on the other side of the `q = 2⁻⁵` crossover.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_protocols::oracle::{count_support, count_support_batch};
use ldp_protocols::{BitVec, FrequencyOracle, ProtocolKind, Report, UeMode, UnaryEncoding};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 512;

fn reports(
    kind: ProtocolKind,
    k: usize,
    eps: f64,
    seed: u64,
) -> (ldp_protocols::Oracle, Vec<Report>) {
    let oracle = kind.build(k, eps).expect("bench oracle builds");
    let mut rng = StdRng::seed_from_u64(seed);
    let reports = (0..BATCH as u32)
        .map(|i| oracle.randomize(i % k as u32, &mut rng))
        .collect();
    (oracle, reports)
}

fn bench_count_support(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_support");
    for kind in ProtocolKind::ALL {
        for k in [32usize, 256, 1024] {
            let (oracle, batch) = reports(kind, k, 2.0, 0xAB50);
            let mut counts = vec![0u64; k];
            group.bench_with_input(BenchmarkId::new(kind.name(), k), &batch, |b, batch| {
                b.iter(|| {
                    for report in batch {
                        count_support(&oracle, &mut counts, report);
                    }
                    black_box(&counts);
                })
            });
        }
    }
    group.finish();
}

fn bench_count_support_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_support_batch");
    for kind in ProtocolKind::ALL {
        for k in [32usize, 256, 1024] {
            let (oracle, batch) = reports(kind, k, 2.0, 0xAB51);
            let mut counts = vec![0u64; k];
            group.bench_with_input(BenchmarkId::new(kind.name(), k), &batch, |b, batch| {
                b.iter(|| {
                    count_support_batch(&oracle, &mut counts, batch);
                    black_box(&counts);
                })
            });
        }
    }
    group.finish();
}

/// ε = 1.5 gives g = round(e^1.5) + 1 = 5: exercises the generic-modulo
/// flavor of the OLH sweep (ε = 2 above lands on the power-of-two mask).
fn bench_olh_nonpow2(c: &mut Criterion) {
    let mut group = c.benchmark_group("olh_nonpow2_g");
    for k in [32usize, 256, 1024] {
        let (oracle, batch) = reports(ProtocolKind::Olh, k, 1.5, 0xAB52);
        assert!(!matches!(&oracle, ldp_protocols::Oracle::Olh(o) if o.g().is_power_of_two()));
        let mut counts = vec![0u64; k];
        group.bench_with_input(BenchmarkId::new("OLH", k), &batch, |b, batch| {
            b.iter(|| {
                count_support_batch(&oracle, &mut counts, batch);
                black_box(&counts);
            })
        });
    }
    group.finish();
}

/// Client-side UE sanitize: one one-hot input (the `randomize` shape)
/// perturbed `BATCH` times into a pooled output vector; reported time is
/// per batch, so reports/s = BATCH / time.
fn bench_sanitize(c: &mut Criterion) {
    let mut group = c.benchmark_group("sanitize");
    let configs = [
        ("SUE", UeMode::Symmetric, 1.0),
        ("OUE", UeMode::Optimized, 1.0),
        ("OUE-sparse", UeMode::Optimized, 4.0),
    ];
    for (label, mode, eps) in configs {
        for k in [32usize, 256, 1024] {
            let ue = UnaryEncoding::new(k, eps, mode).expect("bench UE builds");
            if label == "OUE-sparse" {
                assert!(ue.sparse_path(), "ε = 4 OUE must route sparse");
            }
            let input = BitVec::one_hot(k, k / 2);
            group.bench_with_input(
                BenchmarkId::new(format!("{label}-word-parallel"), k),
                &input,
                |b, input| {
                    let mut rng = StdRng::seed_from_u64(0xAB53);
                    let mut out = BitVec::zeros(k);
                    b.iter(|| {
                        for _ in 0..BATCH {
                            ue.perturb_bits_into(input, &mut out, &mut rng);
                            black_box(&out);
                        }
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{label}-per-bit"), k),
                &input,
                |b, input| {
                    let mut rng = StdRng::seed_from_u64(0xAB54);
                    b.iter(|| {
                        for _ in 0..BATCH {
                            black_box(ue.perturb_bits_reference(input, &mut rng));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_count_support,
    bench_count_support_batch,
    bench_olh_nonpow2,
    bench_sanitize
);
criterion_main!(benches);
