//! Ingestion throughput of the `ldp_server` streaming service — the
//! machine-readable perf trajectory of the serving layer.
//!
//! Unlike the Criterion micro-benchmarks, this is a custom harness: it
//! measures end-to-end reports/sec (client sanitization → bounded-channel
//! routing → sharded absorb → graceful drain) for n ∈ {1M, 10M} synthetic
//! users at 1/2/8 worker threads, and **emits `BENCH_ingest.json`** at the
//! workspace root (override with the `BENCH_OUT` env var) so CI can archive
//! the numbers run over run.
//!
//! Under `--test` / `--smoke` (what `cargo test` and the CI smoke job pass)
//! only a small population runs, and the JSON is tagged `"smoke": true`.
//!
//! Tuples are synthesized on the fly from the uid — no dataset is
//! materialized — so the bench exercises exactly the serving path and its
//! memory stays flat in n, mirroring the server's `O(Σ_j k_j)` contract.

use std::fmt::Write as _;
use std::time::Instant;

use ldp_core::solutions::{RsFdProtocol, SolutionKind};
use ldp_protocols::hash::mix3;
use ldp_server::{Envelope, LdpServer, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Salt separating the bench's per-user rng streams from everything else.
const BENCH_SALT: u64 = 0x0146_3E57;

/// Producer-side chunk size (envelopes per `ingest_batch` call).
const CHUNK: usize = 1024;

/// One measured configuration.
struct Measurement {
    n: usize,
    threads: usize,
    wall_secs: f64,
    reports_per_sec: f64,
}

/// Deterministic synthetic tuple for `uid` over the bench domain `ks`.
fn tuple_of(uid: u64, ks: &[usize]) -> Vec<u32> {
    ks.iter()
        .enumerate()
        .map(|(j, &k)| (mix3(uid, j as u64, 0xD07) % k as u64) as u32)
        .collect()
}

/// Streams `n` users through a `threads`-sharded server with `threads`
/// producer threads and returns the measured throughput.
fn run_once(solution_kind: SolutionKind, ks: &[usize], n: usize, threads: usize) -> Measurement {
    let solution = solution_kind.build(ks, 1.0).expect("bench solution builds");
    let server = LdpServer::spawn(solution.clone(), ServerConfig::default().shards(threads));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..threads {
            let server = &server;
            let solution = &solution;
            scope.spawn(move || {
                let lo = p * n / threads;
                let hi = (p + 1) * n / threads;
                let mut chunk = Vec::with_capacity(CHUNK);
                for uid in lo as u64..hi as u64 {
                    let mut rng = StdRng::seed_from_u64(mix3(0xBEAC, uid, BENCH_SALT));
                    chunk.push(Envelope {
                        uid,
                        report: solution.report(&tuple_of(uid, ks), &mut rng),
                    });
                    if chunk.len() == CHUNK {
                        server.ingest_batch(chunk.drain(..));
                    }
                }
                server.ingest_batch(chunk);
            });
        }
    });
    let snapshot = server.drain();
    let wall_secs = started.elapsed().as_secs_f64();
    assert_eq!(snapshot.n, n as u64, "every report must be absorbed");
    assert!(
        snapshot.estimates.iter().flatten().all(|f| f.is_finite()),
        "drained estimates must be finite"
    );
    Measurement {
        n,
        threads,
        wall_secs,
        reports_per_sec: n as f64 / wall_secs.max(1e-9),
    }
}

/// Hand-rolled JSON (the workspace carries no JSON crate).
fn to_json(solution: &str, smoke: bool, results: &[Measurement]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"ingest\",");
    let _ = writeln!(out, "  \"solution\": \"{solution}\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"threads\": {}, \"wall_secs\": {:.4}, \"reports_per_sec\": {:.0}}}{comma}",
            m.n, m.threads, m.wall_secs, m.reports_per_sec
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// `BENCH_OUT` env override, else `<workspace root>/BENCH_ingest.json`.
fn output_path() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("BENCH_OUT") {
        return std::path::PathBuf::from(path);
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ingest.json")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[20_000]
    } else {
        &[1_000_000, 10_000_000]
    };
    let threads = [1usize, 2, 8];
    // A compact domain keeps the bench measuring channels + absorb, not
    // cache misses over a huge count table.
    let ks = [16usize, 8, 5, 4];
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);

    let mut results = Vec::new();
    for &n in sizes {
        for &t in &threads {
            let m = run_once(kind, &ks, n, t);
            println!(
                "ingest {} n={} threads={}: {:.3}s, {:.0} reports/sec",
                kind.name(),
                m.n,
                m.threads,
                m.wall_secs,
                m.reports_per_sec
            );
            results.push(m);
        }
    }

    let path = output_path();
    std::fs::write(&path, to_json(&kind.name(), smoke, &results))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}
