//! Ingestion throughput of the `ldp_server` streaming service — the
//! machine-readable perf trajectory of the serving layer.
//!
//! Unlike the Criterion micro-benchmarks, this is a custom harness: it
//! measures end-to-end reports/sec (client sanitization → bounded-channel
//! routing → sharded absorb → graceful drain) over a **solution-kind ×
//! thread matrix** — RS+FD[GRR] (value tuples), SMP[OLH] (hashed reports,
//! the O(k)-per-report counting path), SPL[OUE] (bit-vector tuples) and
//! MIXED[GRR+PM] (heterogeneous categorical + numeric fixed-point entries)
//! at n ∈ {1M, 10M} × threads {1, 2, 4, 8} — and **emits `BENCH_ingest.json`**
//! at the workspace root (override with the `BENCH_OUT` env var) so CI can
//! archive the numbers run over run. `"RS+FD[GRR]/tcp"` rows re-measure the
//! tuple kind with the reports crossing a real loopback socket through the
//! `ldp_server::wire` codec, pricing the networked tier against the
//! in-process channels. `"SPL[OUE]/r4"` rows stream the same population for
//! four ε-splitting rounds with an epoch-ring rotation between rounds,
//! pricing the longitudinal serving path (per-round rebuild at ε/R plus the
//! shard-swap barrier) against single-round ingestion.
//!
//! Under `--test` / `--smoke` (what `cargo test` and the CI smoke job pass)
//! only a small population at threads {1, 2} runs, and the JSON is tagged
//! `"smoke": true`.
//!
//! Tuples are synthesized on the fly from the uid and envelopes are handed
//! to `ingest_batch` as a lazy iterator — no dataset and no producer-side
//! report buffer is ever materialized — so the bench exercises exactly the
//! serving path and its memory stays flat in n, mirroring the server's
//! `O(Σ_j k_j)` contract.
//!
//! The `threads` column drives the server topology (worker/shard count);
//! producers are capped at the machine's parallelism, and the emitted JSON
//! records `"cores"` — on a single-core box the matrix demonstrates the
//! *absence of contention collapse* (rows flat within noise), while real
//! monotone speedups need `cores > 1`.

use std::fmt::Write as _;
use std::time::Instant;

use ldp_core::solutions::{MixedKind, RsFdProtocol, SolutionKind, SolutionReport};
use ldp_core::{DynSolution, NumericKind};
use ldp_protocols::hash::mix3;
use ldp_protocols::ProtocolKind;
use ldp_server::{Envelope, LdpServer, ServerConfig, WireServer};
use ldp_sim::{BudgetPolicy, NetClient};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Salt separating the bench's per-user rng streams from everything else.
const BENCH_SALT: u64 = 0x0146_3E57;

/// Widest domain tuple the bench synthesizes (stack-allocated per user).
const MAX_D: usize = 8;

/// Rounds in the longitudinal (`/r4`) rows — matches the midpoint of the
/// `longitudinal_risk` experiment grid.
const ROUNDS: usize = 4;

/// One measured configuration.
struct Measurement {
    solution: String,
    n: usize,
    threads: usize,
    wall_secs: f64,
    reports_per_sec: f64,
}

/// Deterministic synthetic tuple for `uid` over the bench domain `ks`,
/// written into a caller-provided stack buffer (the producer loop must not
/// allocate per user).
fn tuple_of<'a>(uid: u64, ks: &[usize], buf: &'a mut [u32; MAX_D]) -> &'a [u32] {
    for (j, &k) in ks.iter().enumerate() {
        buf[j] = (mix3(uid, j as u64, 0xD07) % k as u64) as u32;
    }
    &buf[..ks.len()]
}

/// Deterministic synthetic normalized record (`[-1, 1]`) for `uid` over
/// `d_num` continuous attributes, stack-buffered like [`tuple_of`].
fn numeric_of(uid: u64, d_num: usize, buf: &mut [f64; MAX_D]) -> &[f64] {
    for (j, slot) in buf.iter_mut().take(d_num).enumerate() {
        *slot = (mix3(uid, j as u64, 0x117) % 2001) as f64 / 1000.0 - 1.0;
    }
    &buf[..d_num]
}

/// Synthesizes `uid`'s sanitized report for any solution family over `ks`
/// (zero-cardinality entries are numeric dimensions, which come last in the
/// bench schemas as in `MixedDataset`).
fn synth_report(
    solution: &DynSolution,
    ks: &[usize],
    uid: u64,
    rng: &mut SmallRng,
) -> SolutionReport {
    let d_cat = ks.iter().filter(|&&k| k != 0).count();
    let mut cbuf = [0u32; MAX_D];
    if d_cat == ks.len() {
        return solution.report(tuple_of(uid, ks, &mut cbuf), rng);
    }
    let mut nbuf = [0.0f64; MAX_D];
    let cat = tuple_of(uid, &ks[..d_cat], &mut cbuf);
    let num = numeric_of(uid, ks.len() - d_cat, &mut nbuf);
    solution
        .report_mixed(cat, num, rng)
        .expect("bench numeric values are in range")
}

/// Streams `n` users through a `threads`-sharded server, fed by
/// `min(threads, cores)` producer threads, and returns the measured
/// throughput.
fn run_once(solution_kind: SolutionKind, ks: &[usize], n: usize, threads: usize) -> Measurement {
    let solution = solution_kind.build(ks, 1.0).expect("bench solution builds");
    // Short queues keep the in-flight batch memory cache-resident without
    // throttling anything (the absorb side keeps up with the producers).
    // The batch grows with the worker count so each worker wake amortizes
    // enough absorb work to cover its scheduling + cache-rewarm cost — that
    // cost scales with the number of distinct worker contexts sharing the
    // machine's cores, the message volume does not need to.
    let server = LdpServer::spawn(
        solution.clone(),
        ServerConfig::default()
            .shards(threads)
            .queue_depth(8)
            .batch(512 * threads),
    );
    // `threads` drives the server topology under test (worker/shard count);
    // the producer fan-out is additionally capped at the machine's actual
    // parallelism — oversubscribing sanitization threads beyond physical
    // cores only adds scheduler churn, which no deployment would do, and
    // would otherwise bury the server-side scaling signal on small boxes.
    let producers = threads
        .min(std::thread::available_parallelism().map_or(threads, std::num::NonZeroUsize::get));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let server = &server;
            let solution = &solution;
            scope.spawn(move || {
                let lo = p * n / producers;
                let hi = (p + 1) * n / producers;
                server.ingest_batch((lo as u64..hi as u64).map(move |uid| {
                    let mut rng = SmallRng::seed_from_u64(mix3(0xBEAC, uid, BENCH_SALT));
                    Envelope {
                        uid,
                        report: synth_report(solution, ks, uid, &mut rng),
                    }
                }));
            });
        }
    });
    let snapshot = server.drain();
    let wall_secs = started.elapsed().as_secs_f64();
    assert_eq!(snapshot.n, n as u64, "every report must be absorbed");
    assert!(
        snapshot.estimates.iter().flatten().all(|f| f.is_finite()),
        "drained estimates must be finite"
    );
    Measurement {
        solution: solution_kind.name(),
        n,
        threads,
        wall_secs,
        reports_per_sec: n as f64 / wall_secs.max(1e-9),
    }
}

/// The loopback-socket twin of [`run_once`]: the same synthesized reports
/// travel as checksummed `CompactBatch` frames through `NetClient` →
/// 127.0.0.1 TCP → `WireServer` → shard channels, so the row's delta
/// against the in-process row is exactly the cost of the wire tier
/// (encode + CRC + syscalls + decode + validate). Reported under
/// `"<solution>/tcp"` so the in-process scaling tripwires never key on it.
fn run_once_tcp(
    solution_kind: SolutionKind,
    ks: &[usize],
    n: usize,
    threads: usize,
) -> Measurement {
    let solution = solution_kind.build(ks, 1.0).expect("bench solution builds");
    let server = WireServer::bind(
        "127.0.0.1:0",
        solution.clone(),
        ServerConfig::default()
            .shards(threads)
            .queue_depth(8)
            .batch(512 * threads),
    )
    .expect("loopback listener binds");
    let addr = server.local_addr();
    let producers = threads
        .min(std::thread::available_parallelism().map_or(threads, std::num::NonZeroUsize::get));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let solution = &solution;
            scope.spawn(move || {
                let mut client = NetClient::connect(addr, solution).expect("producer connects");
                let lo = p * n / producers;
                let hi = (p + 1) * n / producers;
                for uid in lo as u64..hi as u64 {
                    let mut rng = SmallRng::seed_from_u64(mix3(0xBEAC, uid, BENCH_SALT));
                    client
                        .push(uid, &synth_report(solution, ks, uid, &mut rng))
                        .expect("push over loopback");
                }
                client.finish().expect("drain handshake");
            });
        }
    });
    server.wait_for_producers(producers);
    let snapshot = server.finish();
    let wall_secs = started.elapsed().as_secs_f64();
    assert_eq!(snapshot.n, n as u64, "every report must cross the wire");
    assert!(
        snapshot.estimates.iter().flatten().all(|f| f.is_finite()),
        "drained estimates must be finite"
    );
    Measurement {
        solution: format!("{}/tcp", solution_kind.name()),
        n,
        threads,
        wall_secs,
        reports_per_sec: n as f64 / wall_secs.max(1e-9),
    }
}

/// The longitudinal twin of [`run_once`]: the same population reports for
/// [`ROUNDS`] consecutive rounds under the ε-splitting budget policy (the
/// solution is rebuilt at ε/R exactly as `risks serve --rounds` does), with
/// [`LdpServer::advance_epoch`] closing a windowed snapshot between rounds.
/// The row's delta against the single-round row is the cost of the epoch
/// machinery: the per-worker shard swap barrier, the retention-ring push
/// and the cumulative fold. Reported under `"<solution>/r4"` and measured
/// in reports/sec over all `n × ROUNDS` absorbed reports.
fn run_once_rounds(
    solution_kind: SolutionKind,
    ks: &[usize],
    n: usize,
    threads: usize,
) -> Measurement {
    let base = solution_kind.build(ks, 1.0).expect("bench solution builds");
    let solution = BudgetPolicy::SplitEps
        .round_solution(&base, ROUNDS)
        .expect("split-budget solution builds");
    let server = LdpServer::spawn(
        solution.clone(),
        ServerConfig::default()
            .shards(threads)
            .queue_depth(8)
            .batch(512 * threads)
            .retain(ROUNDS),
    );
    let producers = threads
        .min(std::thread::available_parallelism().map_or(threads, std::num::NonZeroUsize::get));
    let started = Instant::now();
    for round in 0..ROUNDS as u64 {
        std::thread::scope(|scope| {
            for p in 0..producers {
                let server = &server;
                let solution = &solution;
                scope.spawn(move || {
                    let lo = p * n / producers;
                    let hi = (p + 1) * n / producers;
                    server.ingest_batch((lo as u64..hi as u64).map(move |uid| {
                        let mut rng =
                            SmallRng::seed_from_u64(mix3(0xBEAC ^ round, uid, BENCH_SALT));
                        Envelope {
                            uid,
                            report: synth_report(solution, ks, uid, &mut rng),
                        }
                    }));
                });
            }
        });
        server.advance_epoch();
    }
    assert_eq!(
        server.epochs().len(),
        ROUNDS,
        "every round must close a retained epoch"
    );
    let snapshot = server.drain();
    let wall_secs = started.elapsed().as_secs_f64();
    let total = n * ROUNDS;
    assert_eq!(
        snapshot.n, total as u64,
        "every round's reports must be absorbed"
    );
    assert!(
        snapshot.estimates.iter().flatten().all(|f| f.is_finite()),
        "drained estimates must be finite"
    );
    Measurement {
        solution: format!("{}/r{ROUNDS}", solution_kind.name()),
        n,
        threads,
        wall_secs,
        reports_per_sec: total as f64 / wall_secs.max(1e-9),
    }
}

/// Hand-rolled JSON (the workspace carries no JSON crate).
fn to_json(smoke: bool, results: &[Measurement]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"ingest\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    // Interpret the thread columns against this: on a single-core box the
    // matrix can only demonstrate absence of contention collapse (rows stay
    // flat within noise); real scaling needs cores > 1.
    let _ = writeln!(out, "  \"cores\": {cores},");
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"solution\": \"{}\", \"n\": {}, \"threads\": {}, \"wall_secs\": {:.4}, \"reports_per_sec\": {:.0}}}{comma}",
            m.solution, m.n, m.threads, m.wall_secs, m.reports_per_sec
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// `BENCH_OUT` env override, else `<workspace root>/BENCH_ingest.json`.
fn output_path() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("BENCH_OUT") {
        return std::path::PathBuf::from(path);
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ingest.json")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[20_000]
    } else {
        &[1_000_000, 10_000_000]
    };
    let threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    // A compact domain keeps the bench measuring channels + absorb, not
    // cache misses over a huge count table. The mixed kind appends two
    // numeric dimensions (zero-cardinality entries) to the categorical part.
    const CAT_KS: [usize; 4] = [16, 8, 5, 4];
    const MIXED_KS: [usize; 6] = [16, 8, 5, 4, 0, 0];
    // One kind per hot report shape: value tuples, hashed reports (the
    // domain-sweep counting path), unary bit vectors, and heterogeneous
    // categorical + numeric fixed-point entries.
    let kinds: [(SolutionKind, &[usize]); 4] = [
        (SolutionKind::RsFd(RsFdProtocol::Grr), &CAT_KS),
        (SolutionKind::Smp(ProtocolKind::Olh), &CAT_KS),
        (SolutionKind::Spl(ProtocolKind::Oue), &CAT_KS),
        (
            SolutionKind::Mixed(MixedKind {
                protocol: ProtocolKind::Grr,
                numeric: NumericKind::Piecewise,
                sample_k: 2,
            }),
            &MIXED_KS,
        ),
    ];

    // Best of nine repetitions per cell (one in smoke mode), with the reps
    // *interleaved* across the whole matrix rather than run back to back:
    // shared one-core boxes show double-digit noise that arrives in bursts,
    // so consecutive reps would let one noisy minute poison a single cell's
    // every repetition. Round-robin passes spread the bursts across cells,
    // and the per-cell minimum wall time is the measurement least polluted
    // by scheduler interference.
    let reps = if smoke { 1 } else { 9 };
    // (kind, ks, n, threads, mode): the in-process matrix, plus
    // loopback-TCP rows for the tuple and mixed kinds and longitudinal
    // (R=4 epochs) rows for the bit-vector kind, all at the smaller
    // population — enough to track the wire tier's and epoch machinery's
    // throughput tax run over run without doubling the bench's wall time.
    #[derive(Clone, Copy)]
    enum Mode {
        InProc,
        Tcp,
        Rounds,
    }
    let mut cells: Vec<(SolutionKind, &[usize], usize, usize, Mode)> = kinds
        .iter()
        .flat_map(|&(kind, ks)| {
            sizes
                .iter()
                .flat_map(move |&n| threads.iter().map(move |&t| (kind, ks, n, t, Mode::InProc)))
        })
        .collect();
    cells.extend(
        threads
            .iter()
            .map(|&t| (kinds[0].0, kinds[0].1, sizes[0], t, Mode::Tcp)),
    );
    cells.extend(
        threads
            .iter()
            .map(|&t| (kinds[3].0, kinds[3].1, sizes[0], t, Mode::Tcp)),
    );
    cells.extend(
        threads
            .iter()
            .map(|&t| (kinds[2].0, kinds[2].1, sizes[0], t, Mode::Rounds)),
    );
    let mut best: Vec<Option<Measurement>> = (0..cells.len()).map(|_| None).collect();
    for _ in 0..reps {
        for (slot, &(kind, ks, n, t, mode)) in cells.iter().enumerate() {
            let m = match mode {
                Mode::InProc => run_once(kind, ks, n, t),
                Mode::Tcp => run_once_tcp(kind, ks, n, t),
                Mode::Rounds => run_once_rounds(kind, ks, n, t),
            };
            if best[slot]
                .as_ref()
                .is_none_or(|b| m.wall_secs < b.wall_secs)
            {
                best[slot] = Some(m);
            }
        }
    }
    let results: Vec<Measurement> = best.into_iter().map(|m| m.expect("reps >= 1")).collect();
    for m in &results {
        println!(
            "ingest {} n={} threads={}: {:.3}s, {:.0} reports/sec",
            m.solution, m.n, m.threads, m.wall_secs, m.reports_per_sec
        );
    }

    let path = output_path();
    std::fs::write(&path, to_json(smoke, &results))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}
