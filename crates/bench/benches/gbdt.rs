//! Criterion benchmarks: the GBDT / logistic-regression classifier substrate
//! on attack-shaped workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_bench::bench_rng;
use ldp_gbdt::{DenseMatrix, GbdtClassifier, GbdtParams, LogisticParams, LogisticRegression};
use rand::Rng;
use std::hint::black_box;

/// Attack-shaped data: 198 binary features (the ACS unary width), 18 classes.
fn attack_dataset(n: usize) -> (DenseMatrix, Vec<u32>) {
    let mut rng = bench_rng();
    let f = 198usize;
    let classes = 18u32;
    let mut flat = Vec::with_capacity(n * f);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.random_range(0..classes);
        for j in 0..f {
            // Class-dependent sparse bits plus noise.
            let p = if j as u32 % classes == c { 0.4 } else { 0.02 };
            flat.push(f32::from(u8::from(rng.random::<f64>() < p)));
        }
        y.push(c);
    }
    (DenseMatrix::from_flat(flat, n, f), y)
}

fn bench_gbdt_train(c: &mut Criterion) {
    let (x, y) = attack_dataset(1000);
    let params = GbdtParams {
        rounds: 10,
        max_depth: 4,
        min_child_weight: 0.05,
        ..GbdtParams::default()
    };
    let mut group = c.benchmark_group("classifier_train_1k_rows");
    group.sample_size(10);
    group.bench_function("gbdt_10x4_18class", |b| {
        b.iter(|| black_box(GbdtClassifier::fit(&x, &y, 18, &params, 7)))
    });
    group.bench_function("logistic_25ep_18class", |b| {
        b.iter(|| {
            black_box(LogisticRegression::fit(
                &x,
                &y,
                18,
                &LogisticParams::default(),
                7,
            ))
        })
    });
    group.finish();
}

fn bench_gbdt_predict(c: &mut Criterion) {
    let (x, y) = attack_dataset(1000);
    let params = GbdtParams {
        rounds: 10,
        max_depth: 4,
        min_child_weight: 0.05,
        ..GbdtParams::default()
    };
    let model = GbdtClassifier::fit(&x, &y, 18, &params, 7);
    c.bench_function("gbdt_predict_1k_rows", |b| {
        b.iter(|| black_box(model.predict(black_box(&x))))
    });
}

criterion_group!(benches, bench_gbdt_train, bench_gbdt_predict);
criterion_main!(benches);
