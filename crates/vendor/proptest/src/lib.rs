//! Offline, API-compatible subset of `proptest` (the build environment has no
//! crates.io access; see `crates/vendor/README.md`).
//!
//! Supports the surface this workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(..)]` line, range and `any`
//! strategies, `Just`, tuples, `prop_oneof!`, `prop::collection::vec`, and
//! the `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Unlike real proptest there is **no shrinking**: cases are sampled from a
//! deterministic per-test RNG (derived from the test's name) and a failing
//! case panics immediately; reproduce it by re-running the same test binary.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Type-erases the strategy (for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Marker strategy for `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Samples any value of `T` from its full natural range.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random()
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Derives the deterministic base RNG for a named property test.
pub fn test_rng(test_name: &str) -> StdRng {
    let seed = test_name.bytes().fold(0x9E37_79B9_7F4A_7C15u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
    });
    StdRng::seed_from_u64(seed)
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Any, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Boolean property assertion (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality property assertion (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality property assertion (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::test_rng(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}
