//! Collection strategies.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy generating `Vec`s of a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.start < self.size.end {
            rng.random_range(self.size.clone())
        } else {
            self.size.start
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
