//! Offline, API-compatible subset of `criterion` (the build environment has
//! no crates.io access; see `crates/vendor/README.md`).
//!
//! Implements a plain wall-clock micro-benchmark harness behind the familiar
//! `criterion_group!` / `criterion_main!` / `benchmark_group` /
//! [`Bencher::iter`] surface. Each benchmark is warmed up, then timed in
//! geometrically growing batches until a ~200 ms budget is spent, and the
//! mean per-iteration time is printed.
//!
//! When the binary receives a `--test` argument — which is what `cargo test`
//! passes to `harness = false` bench targets — every benchmark body runs
//! exactly once as a smoke test and nothing is timed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    last_ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `f`, or runs it once in `--test` mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            std::hint::black_box(f());
            return;
        }
        // Warm-up.
        std::hint::black_box(f());
        let budget = Duration::from_millis(200);
        let mut iters: u64 = 1;
        let mut total = Duration::ZERO;
        let mut done: u64 = 0;
        while total < budget && done < 10_000_000 {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            done += iters;
            iters = iters.saturating_mul(2);
        }
        self.last_ns_per_iter = Some(total.as_nanos() as f64 / done as f64);
    }
}

/// Identifies one parameterized benchmark, rendered as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver. Construct via [`Criterion::default`] (normally done
/// by `criterion_group!`).
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.quick, None, id.into_id(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes its own sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.criterion.quick, Some(&self.name), id.into_id(), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.criterion.quick, Some(&self.name), id.into_id(), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(quick: bool, group: Option<&str>, id: String, mut f: F) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id,
    };
    let mut bencher = Bencher {
        quick,
        last_ns_per_iter: None,
    };
    f(&mut bencher);
    match bencher.last_ns_per_iter {
        Some(ns) if ns >= 1_000_000.0 => println!("{full:<60} {:>12.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1_000.0 => println!("{full:<60} {:>12.3} µs/iter", ns / 1e3),
        Some(ns) => println!("{full:<60} {ns:>12.1} ns/iter"),
        None => println!("{full:<60} ok (test mode)"),
    }
}

/// Re-export matching criterion's convenience path.
pub mod black_box_mod {}

/// Identity function preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
