//! Sequence-related helpers: in-place shuffling and index sampling without
//! replacement.

use crate::Rng;

/// Extension trait adding random operations to slices.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Index sampling without replacement.
pub mod index {
    use crate::Rng;

    /// A set of distinct indices in `0..length`, in sampled order.
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no index was sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Consumes into the underlying vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> std::slice::Iter<'_, usize> {
            self.0.iter()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length` via a partial
    /// Fisher–Yates pass. Panics if `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from 0..{length}"
        );
        let mut idx: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.random_range(i..length);
            idx.swap(i, j);
        }
        idx.truncate(amount);
        IndexVec(idx)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn sample_yields_distinct_in_range_indices() {
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..100 {
                let v = sample(&mut rng, 20, 7).into_vec();
                assert_eq!(v.len(), 7);
                let mut sorted = v.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 7, "duplicates in {v:?}");
                assert!(v.iter().all(|&i| i < 20));
            }
        }

        #[test]
        fn sample_full_length_is_a_permutation() {
            let mut rng = StdRng::seed_from_u64(6);
            let mut v = sample(&mut rng, 10, 10).into_vec();
            v.sort_unstable();
            assert_eq!(v, (0..10).collect::<Vec<_>>());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        shuffleable(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    fn shuffleable<R: Rng + ?Sized>(v: &mut [u32], rng: &mut R) {
        v.shuffle(rng);
    }
}
