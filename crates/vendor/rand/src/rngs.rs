//! Deterministic pseudo-random generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// A small, very fast deterministic RNG: a SplitMix64 counter stream.
///
/// Seeding is a single store (`seed_from_u64` is O(1), unlike [`StdRng`]'s
/// four-round seed expansion), which matters for workloads that derive one
/// generator per work item — e.g. the collection pipeline's per-user report
/// sampling. SplitMix64 is equidistributed over its full 2^64 period and
/// passes BigCrush; more than adequate as an opaque simulation entropy
/// source.
///
/// Note: upstream `rand`'s `SmallRng` is xoshiro-based; the two produce
/// different streams for the same seed. Nothing in this workspace depends on
/// the concrete stream, only on determinism (same vendor contract as
/// [`StdRng`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SmallRng {
            state: u64::from_le_bytes(seed),
        }
    }

    /// O(1) override of the default seed expansion: the `u64` seed *is* the
    /// stream position (SplitMix64 mixes every output, so nearby seeds still
    /// yield unrelated streams).
    fn seed_from_u64(state: u64) -> Self {
        SmallRng { state }
    }
}

/// The workspace's standard deterministic RNG: xoshiro256++ (Blackman &
/// Vigna), seeded through SplitMix64. Fast, full 2^256−1 period, and passes
/// BigCrush — more than adequate for Monte-Carlo simulation.
///
/// Note: upstream `rand`'s `StdRng` is ChaCha12; the two produce different
/// streams for the same seed. Nothing in this workspace depends on the
/// concrete stream, only on determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; remix it away.
        if s == [0; 4] {
            let mut state = 0x005E_ED0F_5EED_0F5E_u64;
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
        }
        StdRng { s }
    }
}
