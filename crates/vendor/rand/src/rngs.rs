//! Deterministic pseudo-random generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard deterministic RNG: xoshiro256++ (Blackman &
/// Vigna), seeded through SplitMix64. Fast, full 2^256−1 period, and passes
/// BigCrush — more than adequate for Monte-Carlo simulation.
///
/// Note: upstream `rand`'s `StdRng` is ChaCha12; the two produce different
/// streams for the same seed. Nothing in this workspace depends on the
/// concrete stream, only on determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; remix it away.
        if s == [0; 4] {
            let mut state = 0x005E_ED0F_5EED_0F5E_u64;
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
        }
        StdRng { s }
    }
}
