//! Offline, API-compatible subset of `rand` 0.9 (the build environment has no
//! crates.io access; see `crates/vendor/README.md`).
//!
//! Provides exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `random`, `random_range`, `random_bool`;
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`;
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64, deterministic
//!   for a fixed seed;
//! * [`rngs::SmallRng`] — a SplitMix64 counter stream with O(1) seeding, for
//!   one-generator-per-work-item workloads;
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! The generated stream differs from upstream `rand`'s ChaCha-based `StdRng`,
//! which is irrelevant for correctness: every consumer in this workspace
//! treats the RNG as an opaque deterministic entropy source.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// The raw generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full natural range
/// (`[0, 1)` for floats), mirroring rand's `StandardUniform` distribution.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Draws a uniform value in `[0, span)` without modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection sampling on the largest multiple of `span` that fits in u64.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's natural range.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`; panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (matching rand's
    /// documented approach) and builds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: a full-period mixer used for seed expansion.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn small_rng_is_deterministic_and_roughly_uniform() {
        use rngs::SmallRng;
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
        // Nearby seeds must still give unrelated streams (SplitMix64 mixes
        // every output) and uniform unit-interval floats.
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn random_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn random_range_covers_domain_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for c in counts {
            assert!((c as f64 / 50_000.0 - 0.2).abs() < 0.02, "{counts:?}");
        }
        // Inclusive ranges hit both endpoints.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            match rng.random_range(3..=4usize) {
                3 => lo = true,
                4 => hi = true,
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v: u64 = dynrng.random();
        let w = dynrng.random_range(0..10u32);
        assert!(w < 10);
        let _ = v;
    }
}
