//! Dense feature matrices and the uniform-width binning used by the
//! histogram-based tree learner.

/// Row-major dense `f32` feature matrix.
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    data: Vec<f32>,
    n_rows: usize,
    n_cols: usize,
}

impl DenseMatrix {
    /// Builds a matrix from equal-length rows.
    ///
    /// # Panics
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged feature rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != n_rows * n_cols`.
    pub fn from_flat(data: Vec<f32>, n_rows: usize, n_cols: usize) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "flat buffer size mismatch");
        DenseMatrix {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Number of rows (samples).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (features).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Single cell.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n_cols + j]
    }
}

/// Per-feature uniform binning spec: `bin = clamp(round((x − lo) / width))`.
#[derive(Debug, Clone)]
pub struct BinningSpec {
    los: Vec<f32>,
    widths: Vec<f32>,
    /// Number of bins per feature.
    pub n_bins: Vec<u16>,
}

impl BinningSpec {
    /// Derives a spec from training data with at most `max_bins` bins per
    /// feature. Integer-coded features with a small range get exact
    /// value-per-bin binning.
    pub fn fit(x: &DenseMatrix, max_bins: u16) -> Self {
        assert!(max_bins >= 2, "need at least two bins");
        let f = x.n_cols();
        let mut los = vec![f32::INFINITY; f];
        let mut his = vec![f32::NEG_INFINITY; f];
        for i in 0..x.n_rows() {
            let row = x.row(i);
            for j in 0..f {
                los[j] = los[j].min(row[j]);
                his[j] = his[j].max(row[j]);
            }
        }
        let mut widths = Vec::with_capacity(f);
        let mut n_bins = Vec::with_capacity(f);
        for j in 0..f {
            if !los[j].is_finite() {
                // Empty matrix: degenerate single-bin features.
                los[j] = 0.0;
                his[j] = 0.0;
            }
            let range = (his[j] - los[j]).max(0.0);
            // Integer-range features bin exactly; wide/continuous features
            // get max_bins uniform bins.
            let bins = if range <= f32::from(max_bins - 1) && range.fract() == 0.0 {
                range as u16 + 1
            } else {
                max_bins
            };
            n_bins.push(bins.max(1));
            widths.push(if bins > 1 {
                range / f32::from(bins - 1)
            } else {
                1.0
            });
        }
        BinningSpec {
            los,
            widths,
            n_bins,
        }
    }

    /// Bin index of value `x` for feature `j`.
    #[inline]
    pub fn bin(&self, j: usize, x: f32) -> u16 {
        let w = self.widths[j];
        if w <= 0.0 {
            return 0;
        }
        let b = ((x - self.los[j]) / w).round();
        let max = f32::from(self.n_bins[j] - 1);
        b.clamp(0.0, max) as u16
    }
}

/// A pre-binned matrix (u16 bin codes) plus its [`BinningSpec`].
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    bins: Vec<u16>,
    n_rows: usize,
    n_cols: usize,
    /// The binning spec used (needed to bin prediction-time inputs).
    pub spec: BinningSpec,
}

impl BinnedMatrix {
    /// Bins `x` under `spec`.
    pub fn from_matrix(x: &DenseMatrix, spec: BinningSpec) -> Self {
        let (n_rows, n_cols) = (x.n_rows(), x.n_cols());
        let mut bins = Vec::with_capacity(n_rows * n_cols);
        for i in 0..n_rows {
            let row = x.row(i);
            for (j, &v) in row.iter().enumerate() {
                bins.push(spec.bin(j, v));
            }
        }
        BinnedMatrix {
            bins,
            n_rows,
            n_cols,
            spec,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Bin code of cell (i, j).
    #[inline]
    pub fn bin(&self, i: usize, j: usize) -> u16 {
        self.bins[i * self.n_cols + j]
    }

    /// Row of bin codes.
    #[inline]
    pub fn row(&self, i: usize) -> &[u16] {
        &self.bins[i * self.n_cols..(i + 1) * self.n_cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_accessors() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn integer_features_bin_exactly() {
        let m = DenseMatrix::from_rows(&[vec![0.0], vec![3.0], vec![7.0]]);
        let spec = BinningSpec::fit(&m, 256);
        assert_eq!(spec.n_bins[0], 8);
        assert_eq!(spec.bin(0, 0.0), 0);
        assert_eq!(spec.bin(0, 3.0), 3);
        assert_eq!(spec.bin(0, 7.0), 7);
        // Out-of-range values clamp.
        assert_eq!(spec.bin(0, 99.0), 7);
        assert_eq!(spec.bin(0, -5.0), 0);
    }

    #[test]
    fn continuous_features_use_max_bins() {
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 * 0.37]).collect();
        let m = DenseMatrix::from_rows(&rows);
        let spec = BinningSpec::fit(&m, 16);
        assert_eq!(spec.n_bins[0], 16);
        let b_lo = spec.bin(0, 0.0);
        let b_hi = spec.bin(0, 99.0 * 0.37);
        assert_eq!(b_lo, 0);
        assert_eq!(b_hi, 15);
    }

    #[test]
    fn binned_matrix_roundtrips_bins() {
        let m = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]);
        let spec = BinningSpec::fit(&m, 256);
        let bm = BinnedMatrix::from_matrix(&m, spec);
        assert_eq!(bm.bin(0, 1), 1);
        assert_eq!(bm.bin(1, 0), 2);
        assert_eq!(bm.row(1), &[2, 0]);
    }

    #[test]
    fn constant_feature_gets_single_bin() {
        let m = DenseMatrix::from_rows(&[vec![5.0], vec![5.0]]);
        let spec = BinningSpec::fit(&m, 256);
        assert_eq!(spec.n_bins[0], 1);
        assert_eq!(spec.bin(0, 5.0), 0);
    }
}
