//! Multiclass softmax gradient boosting over histogram regression trees.
//!
//! Each round fits one tree per class on the softmax gradients
//! `g_i = p_i − 1{y_i = c}` and hessians `h_i = p_i (1 − p_i)`, applying
//! shrinkage, row subsampling and per-tree column subsampling. Defaults are
//! scaled-down XGBoost-style parameters suitable for the attack workloads of
//! the paper (tens of thousands of rows, a few hundred binary/categorical
//! features).

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::data::{BinnedMatrix, BinningSpec, DenseMatrix};
use crate::tree::{RegressionTree, TreeParams};

/// Booster hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtParams {
    /// Boosting rounds (trees per class).
    pub rounds: usize,
    /// Shrinkage applied to every leaf.
    pub learning_rate: f64,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// L2 leaf regularization λ.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Row subsampling fraction per tree in `(0, 1]`.
    pub subsample: f64,
    /// Column subsampling fraction per tree in `(0, 1]`.
    pub colsample: f64,
    /// Maximum histogram bins per feature.
    pub max_bins: u16,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            rounds: 30,
            learning_rate: 0.3,
            max_depth: 5,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 0.8,
            colsample: 0.8,
            max_bins: 128,
        }
    }
}

/// A fitted multiclass GBDT model.
#[derive(Debug, Clone)]
pub struct GbdtClassifier {
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    spec: BinningSpec,
    n_classes: usize,
    learning_rate: f64,
    /// Log-prior initialization per class.
    base_scores: Vec<f64>,
}

/// Numerically stable softmax in place.
fn softmax(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        total += *s;
    }
    for s in scores.iter_mut() {
        *s /= total;
    }
}

impl GbdtClassifier {
    /// Fits a model on `x` with labels `y` in `0..n_classes`.
    ///
    /// # Panics
    /// Panics when `x`/`y` lengths disagree, `n_classes == 0`, a label is out
    /// of range, or a sampling fraction is outside `(0, 1]`.
    pub fn fit(
        x: &DenseMatrix,
        y: &[u32],
        n_classes: usize,
        params: &GbdtParams,
        seed: u64,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "labels must match rows");
        assert!(n_classes >= 1, "need at least one class");
        assert!(
            y.iter().all(|&c| (c as usize) < n_classes),
            "label out of range"
        );
        assert!(params.subsample > 0.0 && params.subsample <= 1.0);
        assert!(params.colsample > 0.0 && params.colsample <= 1.0);

        let n = x.n_rows();
        let f = x.n_cols();
        let spec = BinningSpec::fit(x, params.max_bins);
        let binned = BinnedMatrix::from_matrix(x, spec.clone());
        let mut rng = StdRng::seed_from_u64(seed);

        // Class log-prior initialization stabilizes unbalanced problems.
        let mut class_counts = vec![1.0f64; n_classes]; // +1 smoothing
        for &c in y {
            class_counts[c as usize] += 1.0;
        }
        let total: f64 = class_counts.iter().sum();
        let base_scores: Vec<f64> = class_counts.iter().map(|c| (c / total).ln()).collect();

        let mut scores = vec![0.0f64; n * n_classes];
        for row in scores.chunks_exact_mut(n_classes) {
            row.copy_from_slice(&base_scores);
        }

        let tree_params = TreeParams {
            max_depth: params.max_depth,
            lambda: params.lambda,
            gamma: params.gamma,
            min_child_weight: params.min_child_weight,
        };

        let mut trees: Vec<Vec<RegressionTree>> = Vec::with_capacity(params.rounds);
        let mut probs = vec![0.0f64; n * n_classes];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];

        for _round in 0..params.rounds {
            // Current probabilities.
            probs.copy_from_slice(&scores);
            for row in probs.chunks_exact_mut(n_classes) {
                softmax(row);
            }

            let mut round_trees = Vec::with_capacity(n_classes);
            for c in 0..n_classes {
                for i in 0..n {
                    let p = probs[i * n_classes + c];
                    let target = if y[i] as usize == c { 1.0 } else { 0.0 };
                    grad[i] = p - target;
                    hess[i] = (p * (1.0 - p)).max(1e-9);
                }

                let mut rows: Vec<u32> = if params.subsample < 1.0 {
                    let m = ((n as f64 * params.subsample) as usize).max(1);
                    sample(&mut rng, n, m)
                        .into_iter()
                        .map(|i| i as u32)
                        .collect()
                } else {
                    (0..n as u32).collect()
                };
                let features: Vec<u32> = if params.colsample < 1.0 && f > 1 {
                    let m = ((f as f64 * params.colsample) as usize).clamp(1, f);
                    sample(&mut rng, f, m)
                        .into_iter()
                        .map(|i| i as u32)
                        .collect()
                } else {
                    (0..f as u32).collect()
                };

                let tree =
                    RegressionTree::fit(&binned, &grad, &hess, &mut rows, &features, &tree_params);
                for i in 0..n {
                    scores[i * n_classes + c] +=
                        params.learning_rate * f64::from(tree.predict_binned(binned.row(i)));
                }
                round_trees.push(tree);
            }
            trees.push(round_trees);
        }

        GbdtClassifier {
            trees,
            spec,
            n_classes,
            learning_rate: params.learning_rate,
            base_scores,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.iter().map(Vec::len).sum()
    }

    /// Gain-weighted feature importance over `n_features` features,
    /// normalized to sum to 1 (all-zeros when no split was ever made).
    ///
    /// For the inference attack this reveals *which* report positions leak
    /// the sampled attribute (e.g. the per-attribute bit blocks under UE-z).
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut imp = vec![0.0; n_features];
        for round in &self.trees {
            for tree in round {
                tree.accumulate_importance(&mut imp);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for x in &mut imp {
                *x /= total;
            }
        }
        imp
    }

    /// Raw (pre-softmax) scores for one feature row.
    fn raw_scores(&self, row: &[f32]) -> Vec<f64> {
        let bins: Vec<u16> = row
            .iter()
            .enumerate()
            .map(|(j, &v)| self.spec.bin(j, v))
            .collect();
        let mut scores = self.base_scores.clone();
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                scores[c] += self.learning_rate * f64::from(tree.predict_binned(&bins));
            }
        }
        scores
    }

    /// Class-probability predictions for every row of `x`.
    pub fn predict_proba(&self, x: &DenseMatrix) -> Vec<Vec<f64>> {
        (0..x.n_rows())
            .map(|i| {
                let mut s = self.raw_scores(x.row(i));
                softmax(&mut s);
                s
            })
            .collect()
    }

    /// Hard class predictions for every row of `x`.
    pub fn predict(&self, x: &DenseMatrix) -> Vec<u32> {
        (0..x.n_rows())
            .map(|i| {
                let s = self.raw_scores(x.row(i));
                argmax(&s) as u32
            })
            .collect()
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn gaussian_blobs(n_per: usize, seed: u64) -> (DenseMatrix, Vec<u32>) {
        // Three integer-grid blobs in 2D, trivially separable.
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0f32, 0.0f32), (6.0, 0.0), (0.0, 6.0)];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                let dx: f32 = rng.random_range(-1.0..1.0);
                let dy: f32 = rng.random_range(-1.0..1.0);
                rows.push(vec![cx + dx, cy + dy]);
                y.push(c as u32);
            }
        }
        (DenseMatrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = gaussian_blobs(60, 3);
        let params = GbdtParams {
            rounds: 15,
            ..GbdtParams::default()
        };
        let model = GbdtClassifier::fit(&x, &y, 3, &params, 7);
        let acc = crate::metrics::accuracy(&y, &model.predict(&x));
        assert!(acc > 0.98, "train accuracy {acc}");
    }

    #[test]
    fn probabilities_are_valid() {
        let (x, y) = gaussian_blobs(30, 5);
        let model = GbdtClassifier::fit(&x, &y, 3, &GbdtParams::default(), 1);
        for p in model.predict_proba(&x) {
            assert_eq!(p.len(), 3);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = gaussian_blobs(40, 9);
        let a = GbdtClassifier::fit(&x, &y, 3, &GbdtParams::default(), 11).predict(&x);
        let b = GbdtClassifier::fit(&x, &y, 3, &GbdtParams::default(), 11).predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn single_class_predicts_that_class() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]);
        let y = vec![0u32, 0];
        let model = GbdtClassifier::fit(&x, &y, 1, &GbdtParams::default(), 0);
        assert_eq!(model.predict(&x), vec![0, 0]);
    }

    #[test]
    fn base_score_beats_uniform_on_unbalanced_labels() {
        // With no usable features, predictions should follow the label prior.
        let x = DenseMatrix::from_rows(&(0..100).map(|_| vec![1.0f32]).collect::<Vec<_>>());
        let y: Vec<u32> = (0..100).map(|i| u32::from(i >= 90)).collect();
        let model = GbdtClassifier::fit(&x, &y, 2, &GbdtParams::default(), 3);
        let pred = model.predict(&x);
        assert!(
            pred.iter().all(|&c| c == 0),
            "should predict majority class"
        );
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let x = DenseMatrix::from_rows(&[vec![1.0]]);
        GbdtClassifier::fit(&x, &[5], 2, &GbdtParams::default(), 0);
    }

    #[test]
    fn n_trees_matches_rounds_times_classes() {
        let (x, y) = gaussian_blobs(10, 1);
        let params = GbdtParams {
            rounds: 4,
            ..GbdtParams::default()
        };
        let model = GbdtClassifier::fit(&x, &y, 3, &params, 0);
        assert_eq!(model.n_trees(), 12);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }

    #[test]
    fn feature_importance_identifies_the_informative_feature() {
        // Feature 0 decides the class, feature 1 is pure noise.
        let mut rng = StdRng::seed_from_u64(12);
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![f32::from(u8::from(i % 2 == 0)), rng.random_range(0.0..4.0)])
            .collect();
        let y: Vec<u32> = rows.iter().map(|r| r[0] as u32).collect();
        let x = DenseMatrix::from_rows(&rows);
        let params = GbdtParams {
            rounds: 10,
            min_child_weight: 0.1,
            ..GbdtParams::default()
        };
        let model = GbdtClassifier::fit(&x, &y, 2, &params, 5);
        let imp = model.feature_importance(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.7, "informative feature should dominate: {imp:?}");
    }
}
