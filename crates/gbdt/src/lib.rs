//! # ldp-gbdt
//!
//! A from-scratch, dependency-free multiclass classifier stack standing in
//! for XGBoost in the paper's §4.3 sampled-attribute inference attack:
//!
//! * [`GbdtClassifier`] — histogram-based gradient-boosted decision trees
//!   with softmax multiclass boosting (one regression tree per class per
//!   round), shrinkage, L2 leaf regularization, and row/column subsampling.
//! * [`LogisticRegression`] — a multinomial logistic-regression baseline used
//!   as an ablation of the classifier choice.
//!
//! Both consume a [`DenseMatrix`] of `f32` features (for the attack these are
//! categorical codes or unary-encoded bits) and integer class labels.
//!
//! ## Example
//!
//! ```
//! use ldp_gbdt::{DenseMatrix, GbdtClassifier, GbdtParams};
//!
//! // y = 1 iff x0 > 0.5 (a single decision stump suffices).
//! let rows: Vec<Vec<f32>> = (0..80).map(|i| vec![f32::from(i % 2 == 0), (i % 3) as f32]).collect();
//! let y: Vec<u32> = rows.iter().map(|r| r[0] as u32).collect();
//! let x = DenseMatrix::from_rows(&rows);
//! let params = GbdtParams { rounds: 10, ..GbdtParams::default() };
//! let model = GbdtClassifier::fit(&x, &y, 2, &params, 42);
//! assert_eq!(model.predict(&x), y);
//! ```

pub mod boosting;
pub mod data;
pub mod logistic;
pub mod metrics;
pub mod tree;

pub use boosting::{GbdtClassifier, GbdtParams};
pub use data::{BinnedMatrix, BinningSpec, DenseMatrix};
pub use logistic::{LogisticParams, LogisticRegression};
pub use metrics::{accuracy, confusion_matrix, log_loss};
