//! Multinomial logistic regression, the linear ablation baseline for the
//! sampled-attribute inference attack classifier.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::boosting::argmax;
use crate::data::DenseMatrix;

/// Training hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone)]
pub struct LogisticParams {
    /// Passes over the training data.
    pub epochs: usize,
    /// Initial SGD step size (decayed as `lr / (1 + epoch)`).
    pub learning_rate: f64,
    /// L2 weight penalty.
    pub l2: f64,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            epochs: 25,
            learning_rate: 0.5,
            l2: 1e-4,
            batch: 64,
        }
    }
}

/// A fitted multinomial (softmax) logistic-regression model with bias terms.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// `weights[c]` has length `n_features + 1` (bias last).
    weights: Vec<Vec<f64>>,
    n_classes: usize,
    n_features: usize,
}

fn softmax_inplace(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        total += *s;
    }
    for s in scores.iter_mut() {
        *s /= total;
    }
}

impl LogisticRegression {
    /// Fits via mini-batch SGD on the softmax cross-entropy.
    ///
    /// # Panics
    /// Panics on shape mismatches or out-of-range labels.
    pub fn fit(
        x: &DenseMatrix,
        y: &[u32],
        n_classes: usize,
        params: &LogisticParams,
        seed: u64,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "labels must match rows");
        assert!(n_classes >= 1);
        assert!(
            y.iter().all(|&c| (c as usize) < n_classes),
            "label out of range"
        );
        let n = x.n_rows();
        let f = x.n_cols();
        let mut weights = vec![vec![0.0f64; f + 1]; n_classes];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut scores = vec![0.0f64; n_classes];

        for epoch in 0..params.epochs {
            order.shuffle(&mut rng);
            let lr = params.learning_rate / (1.0 + epoch as f64);
            for chunk in order.chunks(params.batch.max(1)) {
                // Accumulate the batch gradient.
                let mut grad = vec![vec![0.0f64; f + 1]; n_classes];
                for &i in chunk {
                    let row = x.row(i);
                    for (c, w) in weights.iter().enumerate() {
                        let mut s = w[f]; // bias
                        for (j, &v) in row.iter().enumerate() {
                            s += w[j] * f64::from(v);
                        }
                        scores[c] = s;
                    }
                    softmax_inplace(&mut scores);
                    for c in 0..n_classes {
                        let err = scores[c] - f64::from(u8::from(y[i] as usize == c));
                        let g = &mut grad[c];
                        for (j, &v) in row.iter().enumerate() {
                            g[j] += err * f64::from(v);
                        }
                        g[f] += err;
                    }
                }
                let scale = lr / chunk.len() as f64;
                for c in 0..n_classes {
                    for j in 0..=f {
                        weights[c][j] -= scale * (grad[c][j] + params.l2 * weights[c][j]);
                    }
                }
            }
        }
        LogisticRegression {
            weights,
            n_classes,
            n_features: f,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn raw_scores(&self, row: &[f32]) -> Vec<f64> {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        self.weights
            .iter()
            .map(|w| {
                let mut s = w[self.n_features];
                for (j, &v) in row.iter().enumerate() {
                    s += w[j] * f64::from(v);
                }
                s
            })
            .collect()
    }

    /// Class-probability predictions.
    pub fn predict_proba(&self, x: &DenseMatrix) -> Vec<Vec<f64>> {
        (0..x.n_rows())
            .map(|i| {
                let mut s = self.raw_scores(x.row(i));
                softmax_inplace(&mut s);
                s
            })
            .collect()
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &DenseMatrix) -> Vec<u32> {
        (0..x.n_rows())
            .map(|i| argmax(&self.raw_scores(x.row(i))) as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::Rng;

    #[test]
    fn learns_linearly_separable_classes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..200 {
            let a: f32 = rng.random_range(-1.0..1.0);
            let b: f32 = rng.random_range(-1.0..1.0);
            rows.push(vec![a, b]);
            y.push(u32::from(a + b > 0.0));
        }
        let x = DenseMatrix::from_rows(&rows);
        let model = LogisticRegression::fit(&x, &y, 2, &LogisticParams::default(), 9);
        let acc = accuracy(&y, &model.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let x = DenseMatrix::from_rows(&[vec![0.3, -0.7], vec![1.5, 0.2]]);
        let model = LogisticRegression::fit(&x, &[0, 1], 2, &LogisticParams::default(), 1);
        for p in model.predict_proba(&x) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![-1.0], vec![0.5]]);
        let y = vec![1, 0, 1];
        let a = LogisticRegression::fit(&x, &y, 2, &LogisticParams::default(), 3);
        let b = LogisticRegression::fit(&x, &y, 2, &LogisticParams::default(), 3);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn three_class_problem() {
        // One-hot features identify the class exactly.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for c in 0..3u32 {
            for _ in 0..30 {
                let mut r = vec![0.0f32; 3];
                r[c as usize] = 1.0;
                rows.push(r);
                y.push(c);
            }
        }
        let x = DenseMatrix::from_rows(&rows);
        let model = LogisticRegression::fit(&x, &y, 3, &LogisticParams::default(), 5);
        assert!(accuracy(&y, &model.predict(&x)) > 0.99);
    }
}
