//! Classification metrics used to score the inference attack.

/// Fraction of positions where `y_true[i] == y_pred[i]`.
///
/// # Panics
/// Panics when the slices have different lengths or are empty.
pub fn accuracy(y_true: &[u32], y_pred: &[u32]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    assert!(!y_true.is_empty(), "empty label vectors");
    let hits = y_true.iter().zip(y_pred).filter(|(a, b)| a == b).count();
    hits as f64 / y_true.len() as f64
}

/// `n_classes × n_classes` confusion matrix; `m[t][p]` counts samples with
/// true class `t` predicted as `p`.
pub fn confusion_matrix(n_classes: usize, y_true: &[u32], y_pred: &[u32]) -> Vec<Vec<u64>> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut m = vec![vec![0u64; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        m[t as usize][p as usize] += 1;
    }
    m
}

/// Mean negative log-likelihood of the true classes under `probs`.
pub fn log_loss(y_true: &[u32], probs: &[Vec<f64>]) -> f64 {
    assert_eq!(y_true.len(), probs.len(), "length mismatch");
    assert!(!y_true.is_empty(), "empty label vectors");
    let total: f64 = y_true
        .iter()
        .zip(probs)
        .map(|(&t, p)| -(p[t as usize].max(1e-15)).ln())
        .sum();
    total / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert_eq!(accuracy(&[1], &[0]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts_cells() {
        let m = confusion_matrix(3, &[0, 1, 2, 1], &[0, 2, 2, 1]);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][2], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    fn log_loss_is_zero_for_perfect_probs() {
        let loss = log_loss(&[0, 1], &[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(loss < 1e-9);
    }

    #[test]
    fn log_loss_penalizes_confident_mistakes() {
        let good = log_loss(&[0], &[vec![0.9, 0.1]]);
        let bad = log_loss(&[0], &[vec![0.1, 0.9]]);
        assert!(bad > good);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatched_lengths() {
        accuracy(&[0, 1], &[0]);
    }
}
