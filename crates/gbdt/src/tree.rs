//! Histogram-based regression tree for gradient boosting.
//!
//! Trees are grown depth-first on pre-binned features: each node accumulates
//! per-bin (gradient, hessian) histograms in one pass over its rows, then
//! picks the split maximizing the standard second-order gain
//! `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)` subject to a minimum child
//! hessian weight and a `γ` complexity penalty.

use crate::data::BinnedMatrix;

/// Hyper-parameters of a single tree (shared with the booster).
#[derive(Debug, Clone)]
pub struct TreeParams {
    /// Maximum tree depth (`0` ⇒ a single leaf).
    pub max_depth: usize,
    /// L2 regularization `λ` on leaf values.
    pub lambda: f64,
    /// Minimum split gain `γ`.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 5,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: u32,
        /// Rows with `bin <= threshold_bin` go left.
        threshold_bin: u16,
        /// Split gain (for gain-weighted feature importance).
        gain: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        value: f32,
    },
}

/// A fitted regression tree over binned features.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

struct Builder<'a> {
    x: &'a BinnedMatrix,
    grad: &'a [f64],
    hess: &'a [f64],
    features: &'a [u32],
    params: &'a TreeParams,
    nodes: Vec<Node>,
}

struct BestSplit {
    feature: u32,
    threshold_bin: u16,
    gain: f64,
}

impl<'a> Builder<'a> {
    fn leaf_value(&self, g: f64, h: f64) -> f32 {
        (-g / (h + self.params.lambda)) as f32
    }

    /// Builds the subtree over `rows` (mutated in place by partitioning) and
    /// returns its node index.
    fn build(&mut self, rows: &mut [u32], depth: usize) -> u32 {
        let (g_total, h_total) = rows.iter().fold((0.0, 0.0), |(g, h), &i| {
            (g + self.grad[i as usize], h + self.hess[i as usize])
        });

        let make_leaf = |b: &mut Self| {
            b.nodes.push(Node::Leaf {
                value: b.leaf_value(g_total, h_total),
            });
            (b.nodes.len() - 1) as u32
        };

        if depth >= self.params.max_depth
            || rows.len() < 2
            || h_total < 2.0 * self.params.min_child_weight
        {
            return make_leaf(self);
        }

        let best = match self.find_best_split(rows, g_total, h_total) {
            Some(b) => b,
            None => return make_leaf(self),
        };

        // Stable in-place partition: left rows first.
        let mid = partition(rows, |&i| {
            self.x.bin(i as usize, best.feature as usize) <= best.threshold_bin
        });
        if mid == 0 || mid == rows.len() {
            return make_leaf(self);
        }

        let node_idx = self.nodes.len() as u32;
        // Placeholder, patched after children are built.
        self.nodes.push(Node::Leaf { value: 0.0 });
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.build(left_rows, depth + 1);
        let right = self.build(right_rows, depth + 1);
        self.nodes[node_idx as usize] = Node::Split {
            feature: best.feature,
            threshold_bin: best.threshold_bin,
            gain: best.gain as f32,
            left,
            right,
        };
        node_idx
    }

    fn find_best_split(&self, rows: &[u32], g_total: f64, h_total: f64) -> Option<BestSplit> {
        let lambda = self.params.lambda;
        let parent_score = g_total * g_total / (h_total + lambda);
        let mut best: Option<BestSplit> = None;

        // One histogram per candidate feature, filled in a single row pass.
        let mut hists: Vec<Vec<(f64, f64)>> = self
            .features
            .iter()
            .map(|&f| vec![(0.0, 0.0); self.x.spec.n_bins[f as usize] as usize])
            .collect();
        for &i in rows {
            let i = i as usize;
            let (g, h) = (self.grad[i], self.hess[i]);
            let row = self.x.row(i);
            for (slot, &f) in self.features.iter().enumerate() {
                let b = row[f as usize] as usize;
                let cell = &mut hists[slot][b];
                cell.0 += g;
                cell.1 += h;
            }
        }

        for (slot, &f) in self.features.iter().enumerate() {
            let hist = &hists[slot];
            if hist.len() < 2 {
                continue;
            }
            let (mut gl, mut hl) = (0.0, 0.0);
            // Threshold after each bin except the last.
            for (b, &(g, h)) in hist.iter().enumerate().take(hist.len() - 1) {
                gl += g;
                hl += h;
                let (gr, hr) = (g_total - gl, h_total - hl);
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score;
                if gain > self.params.gamma && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestSplit {
                        feature: f,
                        threshold_bin: b as u16,
                        gain,
                    });
                }
            }
        }
        best
    }
}

/// Stable partition of `rows`: predicate-true rows first; returns the split
/// point.
fn partition<F: Fn(&u32) -> bool>(rows: &mut [u32], pred: F) -> usize {
    let mut buf: Vec<u32> = Vec::with_capacity(rows.len());
    let mut mid = 0;
    for &r in rows.iter() {
        if pred(&r) {
            buf.push(r);
            mid += 1;
        }
    }
    for &r in rows.iter() {
        if !pred(&r) {
            buf.push(r);
        }
    }
    rows.copy_from_slice(&buf);
    mid
}

impl RegressionTree {
    /// Fits a tree to (grad, hess) targets over the rows in `rows` using the
    /// candidate `features`.
    pub fn fit(
        x: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &mut [u32],
        features: &[u32],
        params: &TreeParams,
    ) -> Self {
        assert_eq!(grad.len(), x.n_rows(), "grad length mismatch");
        assert_eq!(hess.len(), x.n_rows(), "hess length mismatch");
        let mut builder = Builder {
            x,
            grad,
            hess,
            features,
            params,
            nodes: Vec::new(),
        };
        if rows.is_empty() {
            builder.nodes.push(Node::Leaf { value: 0.0 });
        } else {
            builder.build(rows, 0);
        }
        RegressionTree {
            nodes: builder.nodes,
        }
    }

    /// Predicts the raw leaf value for one binned feature row.
    pub fn predict_binned(&self, bins: &[u16]) -> f32 {
        // Root is node 0 when built from non-empty rows (build pushes in
        // pre-order starting at the root).
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold_bin,
                    left,
                    right,
                    ..
                } => {
                    idx = if bins[*feature as usize] <= *threshold_bin {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adds this tree's split gains per feature into `importance`
    /// (gain-weighted feature importance — robust against late rounds
    /// chasing noise with many near-zero-gain splits).
    pub fn accumulate_importance(&self, importance: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                if let Some(slot) = importance.get_mut(*feature as usize) {
                    *slot += f64::from(*gain);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{BinnedMatrix, BinningSpec, DenseMatrix};

    fn binned(rows: &[Vec<f32>]) -> BinnedMatrix {
        let m = DenseMatrix::from_rows(rows);
        let spec = BinningSpec::fit(&m, 64);
        BinnedMatrix::from_matrix(&m, spec)
    }

    #[test]
    fn fits_a_stump_on_separable_target() {
        // Target: -1 for x < 2, +1 for x >= 2 (as negative gradients).
        let x = binned(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let grad = vec![1.0, 1.0, -1.0, -1.0]; // leaf value = -G/(H+λ)
        let hess = vec![1.0; 4];
        let mut rows: Vec<u32> = (0..4).collect();
        let params = TreeParams {
            max_depth: 1,
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&x, &grad, &hess, &mut rows, &[0], &params);
        assert!(tree.predict_binned(x.row(0)) < 0.0);
        assert!(tree.predict_binned(x.row(3)) > 0.0);
        // Perfect split recovers the per-side means (±1 with λ=0).
        assert!((tree.predict_binned(x.row(0)) + 1.0).abs() < 1e-6);
        assert!((tree.predict_binned(x.row(3)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn depth_zero_returns_single_leaf_with_global_value() {
        let x = binned(&[vec![0.0], vec![1.0]]);
        let grad = vec![2.0, 4.0];
        let hess = vec![1.0, 1.0];
        let mut rows: Vec<u32> = vec![0, 1];
        let params = TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&x, &grad, &hess, &mut rows, &[0], &params);
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict_binned(x.row(0)) + 3.0).abs() < 1e-6); // -(2+4)/2
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x = binned(&[vec![0.0], vec![1.0]]);
        let grad = vec![1.0, -1.0];
        let hess = vec![0.1, 0.1];
        let mut rows: Vec<u32> = vec![0, 1];
        let params = TreeParams {
            max_depth: 3,
            min_child_weight: 1.0,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&x, &grad, &hess, &mut rows, &[0], &params);
        assert_eq!(tree.node_count(), 1, "split should be blocked");
    }

    #[test]
    fn xor_requires_depth_two() {
        // XOR of two binary features: depth-1 cannot separate, depth-2 can.
        // The gradients are slightly unbalanced because a *perfectly*
        // symmetric XOR has zero marginal gain at the root, defeating any
        // greedy learner (XGBoost included).
        let rows_f: Vec<Vec<f32>> = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let x = binned(&rows_f);
        // negative gradient = target: XOR → +1 for (0,1),(1,0); −1 otherwise.
        let grad = vec![1.2, -1.0, -1.0, 1.0];
        let hess = vec![1.0; 4];
        let params = TreeParams {
            max_depth: 2,
            lambda: 0.0,
            min_child_weight: 0.1,
            ..TreeParams::default()
        };
        let mut rows: Vec<u32> = (0..4).collect();
        let tree = RegressionTree::fit(&x, &grad, &hess, &mut rows, &[0, 1], &params);
        assert!(tree.predict_binned(x.row(0)) < 0.0);
        assert!(tree.predict_binned(x.row(1)) > 0.0);
        assert!(tree.predict_binned(x.row(2)) > 0.0);
        assert!(tree.predict_binned(x.row(3)) < 0.0);
    }

    #[test]
    fn partition_is_stable() {
        let mut rows = vec![5u32, 2, 7, 1, 4];
        let mid = partition(&mut rows, |&r| r % 2 == 0);
        assert_eq!(mid, 2);
        assert_eq!(rows, vec![2, 4, 5, 7, 1]);
    }

    #[test]
    fn empty_rows_yield_zero_leaf() {
        let x = binned(&[vec![0.0]]);
        let grad = vec![0.0];
        let hess = vec![0.0];
        let mut rows: Vec<u32> = vec![];
        let tree = RegressionTree::fit(&x, &grad, &hess, &mut rows, &[0], &TreeParams::default());
        assert_eq!(tree.predict_binned(&[0]), 0.0);
    }
}
