//! Property-based tests over the frequency-oracle protocols.

use ldp_protocols::{deniability, Aggregator, BitVec, FrequencyOracle, ProtocolKind, Report};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_kind() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Grr),
        Just(ProtocolKind::Olh),
        Just(ProtocolKind::Ss),
        Just(ProtocolKind::Sue),
        Just(ProtocolKind::Oue),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Estimator probabilities are valid and ordered for all protocols.
    #[test]
    fn est_params_are_probabilities(
        kind in arb_kind(),
        k in 2usize..120,
        eps in 0.05f64..10.0,
    ) {
        let oracle = kind.build(k, eps).unwrap();
        let (p, q) = (oracle.est_p(), oracle.est_q());
        prop_assert!(p > 0.0 && p <= 1.0);
        prop_assert!((0.0..1.0).contains(&q));
        prop_assert!(p > q);
    }

    /// Every report of every protocol supports the shape invariants.
    #[test]
    fn reports_are_well_formed(
        kind in arb_kind(),
        k in 2usize..64,
        eps in 0.1f64..8.0,
        seed in any::<u64>(),
    ) {
        let oracle = kind.build(k, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let value = (seed % k as u64) as u32;
        let report = oracle.randomize(value, &mut rng);
        match &report {
            Report::Value(v) => prop_assert!((*v as usize) < k),
            Report::Hashed { g, value, .. } => prop_assert!(value < g),
            Report::Subset(s) => {
                prop_assert!(!s.is_empty());
                prop_assert!(s.iter().all(|&v| (v as usize) < k));
                prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            }
            Report::Bits(b) => prop_assert_eq!(b.len(), k),
        }
    }

    /// The best-guess attack always outputs a value inside the domain.
    #[test]
    fn best_guess_stays_in_domain(
        kind in arb_kind(),
        k in 2usize..64,
        eps in 0.1f64..8.0,
        seed in any::<u64>(),
    ) {
        let oracle = kind.build(k, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let value = (seed % k as u64) as u32;
        let report = oracle.randomize(value, &mut rng);
        let guess = deniability::best_guess(&oracle, &report, &mut rng);
        prop_assert!((guess as usize) < k);
    }

    /// Expected deniability accuracy is a probability, at least the random
    /// guess 1/k and at most the theoretical p of the protocol family.
    #[test]
    fn expected_acc_is_bounded(
        kind in arb_kind(),
        k in 2usize..100,
        eps in 0.1f64..9.0,
    ) {
        let oracle = kind.build(k, eps).unwrap();
        let acc = deniability::expected_acc(&oracle);
        prop_assert!(acc > 0.0 && acc <= 1.0);
        // Never worse than guessing uniformly (minus slack for tiny cases).
        prop_assert!(acc >= 1.0 / k as f64 - 1e-9, "acc {} < 1/k", acc);
    }

    /// Normalized estimates form a probability distribution.
    #[test]
    fn normalized_estimates_form_simplex(
        kind in arb_kind(),
        k in 2usize..16,
        eps in 0.2f64..6.0,
        seed in any::<u64>(),
    ) {
        let oracle = kind.build(k, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = Aggregator::new(&oracle);
        for i in 0..300u32 {
            agg.absorb(&oracle.randomize(i % k as u32, &mut rng));
        }
        let est = agg.estimate_normalized();
        prop_assert!(est.iter().all(|&f| (0.0..=1.0).contains(&f)));
        let total: f64 = est.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// BitVec one-hot/roundtrip invariants under arbitrary set/clear patterns.
    #[test]
    fn bitvec_roundtrips(len in 1usize..200, ops in prop::collection::vec((0usize..200, any::<bool>()), 0..50)) {
        let mut bv = BitVec::zeros(len);
        let mut model = vec![false; len];
        for (idx, val) in ops {
            let idx = idx % len;
            bv.set(idx, val);
            model[idx] = val;
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(bv.get(i), m);
        }
        prop_assert_eq!(bv.count_ones(), model.iter().filter(|&&b| b).count());
    }
}
