//! Statistical validation of every frequency oracle: unbiasedness on skewed
//! inputs, variance closed forms vs Monte-Carlo, and deniability accuracy at
//! budget extremes.

use ldp_protocols::{deniability, Aggregator, FrequencyOracle, ProtocolKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws n values from a fixed skewed distribution over 0..k.
fn skewed_population(n: usize, k: usize, seed: u64) -> (Vec<u32>, Vec<f64>) {
    let mut pmf: Vec<f64> = (0..k).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = pmf.iter().sum();
    for p in &mut pmf {
        *p /= total;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let values = (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            let mut acc = 0.0;
            for (v, &p) in pmf.iter().enumerate() {
                acc += p;
                if u < acc {
                    return v as u32;
                }
            }
            (k - 1) as u32
        })
        .collect();
    (values, pmf)
}

#[test]
fn every_protocol_is_unbiased_on_skewed_input() {
    let (values, pmf) = skewed_population(60_000, 12, 3);
    let mut rng = StdRng::seed_from_u64(4);
    for kind in ProtocolKind::ALL {
        for eps in [0.5, 2.0] {
            let oracle = kind.build(12, eps).unwrap();
            let mut agg = Aggregator::new(&oracle);
            for &v in &values {
                agg.absorb(&oracle.randomize(v, &mut rng));
            }
            let est = agg.estimate();
            // Empirical marginal of the drawn sample (not the pmf itself) is
            // the estimator's actual target.
            let mut emp = [0.0; 12];
            for &v in &values {
                emp[v as usize] += 1.0 / values.len() as f64;
            }
            for v in 0..12 {
                let tol = 5.0 * oracle.variance(pmf[v], values.len()).sqrt() + 0.01;
                assert!(
                    (est[v] - emp[v]).abs() < tol,
                    "{kind} eps={eps} v={v}: est {} vs emp {} (tol {tol})",
                    est[v],
                    emp[v]
                );
            }
        }
    }
}

#[test]
fn variance_closed_form_matches_monte_carlo_for_every_protocol() {
    let k = 8;
    let n = 500;
    let reps = 300;
    let (values, pmf) = skewed_population(n, k, 5);
    for kind in ProtocolKind::ALL {
        let oracle = kind.build(k, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let target = 1usize;
        let mut estimates = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut agg = Aggregator::new(&oracle);
            for &v in &values {
                agg.absorb(&oracle.randomize(v, &mut rng));
            }
            estimates.push(agg.estimate()[target]);
        }
        let mean = estimates.iter().sum::<f64>() / reps as f64;
        let var = estimates
            .iter()
            .map(|e| (e - mean) * (e - mean))
            .sum::<f64>()
            / reps as f64;
        let predicted = oracle.variance(pmf[target], n);
        let rel = (var - predicted).abs() / predicted;
        assert!(
            rel < 0.4,
            "{kind}: Monte-Carlo var {var:.6} vs closed form {predicted:.6} (rel {rel:.2})"
        );
    }
}

#[test]
fn deniability_accuracy_approaches_one_at_extreme_budget() {
    // At ε = 20 every protocol's report pins the true value (GRR/SS/UE) or
    // its hash bucket; all accuracies must be far above 1/k, and the
    // non-hashed protocols near 1.
    for kind in ProtocolKind::ALL {
        let oracle = kind.build(10, 20.0).unwrap();
        let acc = deniability::expected_acc(&oracle);
        assert!(acc > 0.45, "{kind}: acc {acc} at eps=20");
        if matches!(kind, ProtocolKind::Grr | ProtocolKind::Ss) {
            assert!(acc > 0.95, "{kind}: acc {acc} should pin the value");
        }
    }
}

#[test]
fn deniability_accuracy_degrades_to_chance_at_tiny_budget() {
    for kind in ProtocolKind::ALL {
        let oracle = kind.build(10, 0.01).unwrap();
        let acc = deniability::expected_acc(&oracle);
        assert!(
            acc < 0.3,
            "{kind}: acc {acc} at eps=0.01 should be near chance"
        );
        assert!(acc >= 0.1 - 1e-9, "{kind}: never below the 1/k floor");
    }
}

#[test]
fn aggregated_counts_match_support_semantics() {
    // C(v) must equal the number of reports supporting v, for every shape.
    let mut rng = StdRng::seed_from_u64(7);
    for kind in ProtocolKind::ALL {
        let oracle = kind.build(6, 1.0).unwrap();
        let reports: Vec<_> = (0..200u32)
            .map(|i| oracle.randomize(i % 6, &mut rng))
            .collect();
        let mut agg = Aggregator::new(&oracle);
        for r in &reports {
            agg.absorb(r);
        }
        for v in 0..6u32 {
            let manual = reports.iter().filter(|r| oracle.supports(r, v)).count() as u64;
            assert_eq!(
                agg.counts()[v as usize],
                manual,
                "{kind}: count mismatch for value {v}"
            );
        }
    }
}
