//! Error type shared by the protocol constructors and aggregation paths.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running an LDP protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The privacy budget must be finite and strictly positive.
    InvalidEpsilon(f64),
    /// Frequency oracles need at least two values in the domain.
    DomainTooSmall(usize),
    /// A value outside `0..k` was passed to a randomizer or estimator.
    ValueOutOfRange {
        /// Offending value.
        value: u32,
        /// Domain size of the attribute.
        domain: usize,
    },
    /// A report of the wrong shape was handed to an aggregator
    /// (e.g. a unary-encoded report given to a GRR aggregator).
    ReportMismatch {
        /// Protocol that received the report.
        expected: &'static str,
    },
    /// A prior distribution has the wrong length or does not sum to ~1.
    InvalidPrior {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A parameter that must lie in `(0, 1)` (e.g. a probability) was not.
    InvalidProbability(f64),
    /// A numeric input to a `[-1, 1]` mechanism was NaN, infinite or outside
    /// the normalized range.
    InvalidNumericInput(f64),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidEpsilon(eps) => {
                write!(f, "privacy budget must be finite and > 0, got {eps}")
            }
            ProtocolError::DomainTooSmall(k) => {
                write!(f, "domain size must be >= 2, got {k}")
            }
            ProtocolError::ValueOutOfRange { value, domain } => {
                write!(f, "value {value} outside domain of size {domain}")
            }
            ProtocolError::ReportMismatch { expected } => {
                write!(f, "report shape does not match protocol {expected}")
            }
            ProtocolError::InvalidPrior { reason } => {
                write!(f, "invalid prior distribution: {reason}")
            }
            ProtocolError::InvalidProbability(p) => {
                write!(f, "probability must lie in (0, 1), got {p}")
            }
            ProtocolError::InvalidNumericInput(t) => {
                write!(f, "numeric input must be finite and in [-1, 1], got {t}")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::InvalidEpsilon(-1.0);
        assert!(e.to_string().contains("-1"));
        let e = ProtocolError::DomainTooSmall(1);
        assert!(e.to_string().contains('1'));
        let e = ProtocolError::ValueOutOfRange {
            value: 9,
            domain: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: Error>(_: &E) {}
        assert_err(&ProtocolError::InvalidEpsilon(0.0));
    }
}
