//! Optimal Local Hashing (OLH), §2.2.2 of the paper (Wang et al., 2017).
//!
//! OLH copes with large domains by hashing the input into a small range
//! `[g]` with a per-user random hash function and then running GRR on the
//! hashed value. The variance-optimal range is `g = e^ε + 1`; as `g` must be
//! an integer we use the standard concretization `g = max(2, round(e^ε) + 1)`.
//!
//! Server side, a report ⟨H, y⟩ supports every domain value hashing to `y`,
//! giving effective estimator parameters `p* = e^ε / (e^ε + g − 1)` and
//! `q* = 1/g`.

use rand::Rng;

use crate::error::ProtocolError;
use crate::hash::{olh_hash, splitmix64, OLH_KEY_STRIDE};
use crate::oracle::{FrequencyOracle, Report};
use crate::{validate_domain, validate_epsilon};

/// Optimal Local Hashing protocol for one categorical attribute.
#[derive(Debug, Clone)]
pub struct Olh {
    k: usize,
    epsilon: f64,
    g: u32,
    /// GRR keep-probability on the hashed domain.
    p_hash: f64,
}

impl Olh {
    /// Creates an OLH instance for domain size `k` and privacy budget `epsilon`.
    pub fn new(k: usize, epsilon: f64) -> Result<Self, ProtocolError> {
        let k = validate_domain(k)?;
        let epsilon = validate_epsilon(epsilon)?;
        let e = epsilon.exp();
        let g = (e.round() as u32).saturating_add(1).max(2);
        let p_hash = e / (e + f64::from(g) - 1.0);
        Ok(Olh {
            k,
            epsilon,
            g,
            p_hash,
        })
    }

    /// The hash range size `g`.
    pub fn g(&self) -> u32 {
        self.g
    }

    /// GRR keep-probability `p'` on the hashed domain.
    pub fn p_hash(&self) -> f64 {
        self.p_hash
    }

    /// Evaluates the user's hash function (identified by `seed`) on `value`.
    pub fn hash(&self, seed: u64, value: u32) -> u32 {
        olh_hash(seed, value, self.g)
    }

    /// All domain values hashing to `hashed` under the hash function `seed`,
    /// i.e. the attacker-visible candidate set `A_jH` of §3.2.1.
    pub fn preimage(&self, seed: u64, hashed: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.preimage_into(seed, hashed, &mut out);
        out
    }

    /// [`Olh::preimage`] into a caller-provided buffer (cleared first), so
    /// per-report attack loops can reuse one allocation across candidates.
    pub fn preimage_into(&self, seed: u64, hashed: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend((0..self.k as u32).filter(|&v| self.hash(seed, v) == hashed));
    }
}

impl FrequencyOracle for Olh {
    fn domain_size(&self) -> usize {
        self.k
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn randomize<R: Rng + ?Sized>(&self, value: u32, rng: &mut R) -> Report {
        debug_assert!((value as usize) < self.k, "value out of domain");
        let seed: u64 = rng.random();
        let h = self.hash(seed, value);
        let reported = if rng.random::<f64>() < self.p_hash {
            h
        } else {
            let r = rng.random_range(0..self.g - 1);
            if r >= h {
                r + 1
            } else {
                r
            }
        };
        Report::Hashed {
            seed,
            g: self.g,
            value: reported,
        }
    }

    fn supports(&self, report: &Report, value: u32) -> bool {
        match report {
            Report::Hashed { seed, g, value: y } => {
                debug_assert_eq!(*g, self.g, "report from a different OLH config");
                olh_hash(*seed, value, *g) == *y
            }
            _ => false,
        }
    }

    // The server-side hot loop: one whole-domain support sweep per report.
    // Monomorphized and branch-light — the hash key advances by one wrapping
    // add per value (see `OLH_KEY_STRIDE`), the increment is a branchless
    // comparison, and power-of-two hash ranges (`g = round(e^ε) + 1` lands on
    // one for common budgets, e.g. ε ∈ {1, 2}) replace the modulo with a
    // mask. Bit-identical to the default per-value `supports` sweep.
    fn count_hashed(&self, counts: &mut [u64], report: &Report) {
        let Report::Hashed { seed, g, value } = report else {
            return; // a mismatched shape supports nothing, as in `supports`
        };
        debug_assert_eq!(*g, self.g, "report from a different OLH config");
        let (seed, g, y) = (*seed, u64::from(*g), u64::from(*value));
        let mut key = 0u64;
        if g.is_power_of_two() {
            let mask = g - 1;
            for c in counts.iter_mut() {
                *c += u64::from(splitmix64(seed ^ key) & mask == y);
                key = key.wrapping_add(OLH_KEY_STRIDE);
            }
        } else {
            for c in counts.iter_mut() {
                *c += u64::from(splitmix64(seed ^ key) % g == y);
                key = key.wrapping_add(OLH_KEY_STRIDE);
            }
        }
    }

    fn est_p(&self) -> f64 {
        self.p_hash
    }

    fn est_q(&self) -> f64 {
        1.0 / f64::from(self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Aggregator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn g_follows_rounded_exponential() {
        assert_eq!(Olh::new(10, 1.0).unwrap().g(), 4); // round(e) + 1 = 4
        assert_eq!(Olh::new(10, 2.0).unwrap().g(), 8); // round(7.39) + 1 = 8
        assert_eq!(Olh::new(10, 0.1).unwrap().g(), 2); // floor at 2
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Olh::new(0, 1.0).is_err());
        assert!(Olh::new(8, f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn hashed_grr_satisfies_ldp_on_hash_domain() {
        let o = Olh::new(50, 1.0).unwrap();
        let g = f64::from(o.g());
        let q_hash = (1.0 - o.p_hash()) / (g - 1.0);
        // p'/q' ≤ e^ε with integer g (strictly < when rounding enlarges g).
        assert!(o.p_hash() / q_hash <= 1.0f64.exp() + 1e-9);
    }

    #[test]
    fn preimage_contains_exactly_matching_values() {
        let o = Olh::new(40, 2.0).unwrap();
        let seed = 1234u64;
        for h in 0..o.g() {
            for &v in &o.preimage(seed, h) {
                assert_eq!(o.hash(seed, v), h);
            }
        }
        let total: usize = (0..o.g()).map(|h| o.preimage(seed, h).len()).sum();
        assert_eq!(total, 40, "preimages partition the domain");
    }

    #[test]
    fn supports_is_consistent_with_hash() {
        let o = Olh::new(16, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let report = o.randomize(3, &mut rng);
        if let Report::Hashed { seed, value, .. } = report {
            for v in 0..16u32 {
                assert_eq!(
                    o.supports(
                        &Report::Hashed {
                            seed,
                            g: o.g(),
                            value
                        },
                        v
                    ),
                    o.hash(seed, v) == value
                );
            }
        } else {
            panic!("wrong report shape");
        }
    }

    #[test]
    fn count_hashed_matches_per_value_supports_sweep() {
        // Both loop flavors (mask for power-of-two g, modulo otherwise) must
        // be bit-identical to the default per-value `supports` sweep.
        let mut rng = StdRng::seed_from_u64(9);
        for eps in [1.0f64, 1.5, 2.0] {
            let o = Olh::new(97, eps).unwrap();
            for v in 0..20u32 {
                let report = o.randomize(v % 97, &mut rng);
                let mut fast = vec![0u64; 97];
                o.count_hashed(&mut fast, &report);
                let mut reference = vec![0u64; 97];
                for (u, c) in reference.iter_mut().enumerate() {
                    if o.supports(&report, u as u32) {
                        *c += 1;
                    }
                }
                assert_eq!(fast, reference, "g={} eps={eps}", o.g());
            }
        }
        // A mismatched shape supports nothing, exactly like `supports`.
        let o = Olh::new(8, 1.0).unwrap();
        let mut counts = vec![0u64; 8];
        o.count_hashed(&mut counts, &Report::Value(3));
        assert_eq!(counts, vec![0; 8]);
    }

    #[test]
    fn preimage_into_reuses_the_buffer() {
        let o = Olh::new(40, 2.0).unwrap();
        let mut buf = vec![7u32; 3]; // stale content must be cleared
        for h in 0..o.g() {
            o.preimage_into(1234, h, &mut buf);
            assert_eq!(buf, o.preimage(1234, h), "hash bucket {h}");
        }
    }

    #[test]
    fn estimator_recovers_point_mass() {
        let o = Olh::new(20, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut agg = Aggregator::new(&o);
        for _ in 0..40_000 {
            agg.absorb(&o.randomize(7, &mut rng));
        }
        let est = agg.estimate();
        assert!((est[7] - 1.0).abs() < 0.05, "est[7] = {}", est[7]);
        for (v, &e) in est.iter().enumerate() {
            if v != 7 {
                assert!(e.abs() < 0.05, "est[{v}] = {e}");
            }
        }
    }
}
