//! Protocol selection guidance (§6 of the paper + Wang et al.'s
//! variance analysis).
//!
//! The paper's recommendation for the SMP solution is to deploy OUE or OLH
//! "depending on k_j due to communication costs", keep ε ≤ 1, prefer the
//! non-uniform metric with memoization — because the utility-optimal
//! protocols are also the most attack-resistant. This module encodes the
//! utility side: per-protocol estimator variance at `f → 0` and the standard
//! selection rule.

use crate::deniability;
use crate::oracle::{FrequencyOracle, ProtocolKind};
use crate::ProtocolError;

/// Approximate per-value estimator variance (`f → 0`) of a protocol:
/// `q(1−q) / (n (p−q)²)` with its effective estimator pair.
pub fn approx_variance(
    kind: ProtocolKind,
    k: usize,
    epsilon: f64,
    n: usize,
) -> Result<f64, ProtocolError> {
    let oracle = kind.build(k, epsilon)?;
    Ok(oracle.variance(0.0, n))
}

/// Communication cost in bits of one report (up to constants): GRR/OLH send
/// one value (plus a seed for OLH), subset selection sends ω values, UE
/// protocols send k bits.
pub fn report_bits(kind: ProtocolKind, k: usize, epsilon: f64) -> Result<usize, ProtocolError> {
    let klog = (k.max(2) as f64).log2().ceil() as usize;
    Ok(match kind {
        ProtocolKind::Grr => klog,
        ProtocolKind::Olh => 64 + klog, // hash seed + hashed value
        ProtocolKind::Ss => {
            let ss = crate::ss::SubsetSelection::new(k, epsilon)?;
            ss.omega() * klog
        }
        ProtocolKind::Sue | ProtocolKind::Oue => k,
    })
}

/// A protocol recommendation with its trade-off numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Chosen protocol.
    pub kind: ProtocolKind,
    /// Its approximate variance at the configuration.
    pub variance: f64,
    /// Single-report plausible-deniability attack accuracy (risk proxy).
    pub attack_acc: f64,
    /// Report size in bits.
    pub bits: usize,
}

/// Recommends a frequency oracle for (k, ε, n) following the paper's §6:
/// choose the variance-optimal protocol among the attack-resistant ones
/// (OUE / OLH), falling back to GRR only for tiny domains where it is both
/// optimal and no riskier, and preferring the cheaper report when variances
/// tie (OLH for large k).
pub fn recommend(k: usize, epsilon: f64, n: usize) -> Result<Recommendation, ProtocolError> {
    let describe = |kind: ProtocolKind| -> Result<Recommendation, ProtocolError> {
        let oracle = kind.build(k, epsilon)?;
        Ok(Recommendation {
            kind,
            variance: oracle.variance(0.0, n),
            attack_acc: deniability::expected_acc(&oracle),
            bits: report_bits(kind, k, epsilon)?,
        })
    };
    // Wang et al.: GRR beats OUE/OLH when k − 2 < 3 e^ε ⟺ small domains.
    let grr = describe(ProtocolKind::Grr)?;
    let oue = describe(ProtocolKind::Oue)?;
    let olh = describe(ProtocolKind::Olh)?;
    // "Not materially riskier": on tiny domains every ε-LDP mechanism hands
    // the single-report attacker ≈ p anyway, so allow a 0.1 margin.
    if grr.variance < oue.variance.min(olh.variance)
        && grr.attack_acc <= oue.attack_acc.max(olh.attack_acc) + 0.1
    {
        return Ok(grr);
    }
    // Among OUE and OLH the variances are near-identical; pick by
    // communication: UE reports cost k bits, OLH a constant.
    if oue.bits <= olh.bits {
        Ok(oue)
    } else {
        Ok(olh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_domains_may_use_grr() {
        let rec = recommend(2, 0.5, 10_000).unwrap();
        assert_eq!(
            rec.kind,
            ProtocolKind::Grr,
            "binary domains favor GRR: {rec:?}"
        );
    }

    #[test]
    fn large_domains_prefer_olh_for_communication() {
        let rec = recommend(512, 1.0, 10_000).unwrap();
        assert_eq!(rec.kind, ProtocolKind::Olh, "{rec:?}");
        assert!(rec.bits < 512);
    }

    #[test]
    fn moderate_domains_prefer_oue() {
        let rec = recommend(16, 1.0, 10_000).unwrap();
        assert_eq!(rec.kind, ProtocolKind::Oue, "{rec:?}");
    }

    #[test]
    fn variance_ordering_matches_wang_et_al() {
        // k large, small ε: GRR variance blows up, OUE/OLH stay bounded.
        let grr = approx_variance(ProtocolKind::Grr, 74, 1.0, 1000).unwrap();
        let oue = approx_variance(ProtocolKind::Oue, 74, 1.0, 1000).unwrap();
        assert!(grr > 3.0 * oue, "GRR {grr} vs OUE {oue}");
        // k = 2: GRR is optimal.
        let grr2 = approx_variance(ProtocolKind::Grr, 2, 1.0, 1000).unwrap();
        let oue2 = approx_variance(ProtocolKind::Oue, 2, 1.0, 1000).unwrap();
        assert!(grr2 < oue2, "GRR {grr2} vs OUE {oue2}");
    }

    #[test]
    fn recommended_protocols_are_attack_resistant_at_low_budget() {
        // The §6 story: the recommendation at ε ≤ 1 never hands the attacker
        // more than ~60% single-report accuracy.
        for k in [2usize, 8, 74, 256] {
            let rec = recommend(k, 1.0, 45_222).unwrap();
            assert!(
                rec.attack_acc < 0.62,
                "k={k}: recommended {:?} with attack_acc {}",
                rec.kind,
                rec.attack_acc
            );
        }
    }

    #[test]
    fn report_bits_reflect_encodings() {
        assert_eq!(report_bits(ProtocolKind::Grr, 256, 1.0).unwrap(), 8);
        assert_eq!(report_bits(ProtocolKind::Oue, 256, 1.0).unwrap(), 256);
        assert!(report_bits(ProtocolKind::Olh, 256, 1.0).unwrap() >= 64);
        let ss = report_bits(ProtocolKind::Ss, 74, 1.0).unwrap();
        assert!(ss > 8, "ω-SS sends a subset: {ss}");
    }
}
