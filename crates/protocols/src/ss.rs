//! ω-Subset Selection (ω-SS), §2.2.3 of the paper (Wang et al. / Ye & Barg).
//!
//! The client reports a subset Ω of the domain of size ω. The true value is
//! included with probability `p = ωe^ε / (ωe^ε + k − ω)`; the remaining slots
//! are filled uniformly without replacement from the other values. The
//! variance-optimal subset size is `ω = k / (e^ε + 1)`, rounded to at least 1.

use rand::seq::index::sample;
use rand::Rng;

use crate::error::ProtocolError;
use crate::oracle::{FrequencyOracle, Report};
use crate::{validate_domain, validate_epsilon};

/// ω-Subset Selection protocol for one categorical attribute.
#[derive(Debug, Clone)]
pub struct SubsetSelection {
    k: usize,
    epsilon: f64,
    omega: usize,
    p: f64,
    q: f64,
}

impl SubsetSelection {
    /// Creates an ω-SS instance with the variance-optimal integer ω.
    pub fn new(k: usize, epsilon: f64) -> Result<Self, ProtocolError> {
        let k = validate_domain(k)?;
        let epsilon = validate_epsilon(epsilon)?;
        let e = epsilon.exp();
        let omega = ((k as f64 / (e + 1.0)).round() as usize).clamp(1, k - 1);
        Self::with_omega(k, epsilon, omega)
    }

    /// Creates an ω-SS instance with an explicit subset size `omega`
    /// (must satisfy `1 <= omega <= k − 1`).
    pub fn with_omega(k: usize, epsilon: f64, omega: usize) -> Result<Self, ProtocolError> {
        let k = validate_domain(k)?;
        let epsilon = validate_epsilon(epsilon)?;
        if omega == 0 || omega >= k {
            return Err(ProtocolError::InvalidPrior {
                reason: format!("subset size omega={omega} must lie in 1..k (k={k})"),
            });
        }
        let e = epsilon.exp();
        let (kf, wf) = (k as f64, omega as f64);
        let p = wf * e / (wf * e + kf - wf);
        // Probability that a fixed non-true value lands in Ω:
        // q = [ωe^ε(ω−1) + (k−ω)ω] / [(k−1)(ωe^ε + k − ω)].
        let q = (wf * e * (wf - 1.0) + (kf - wf) * wf) / ((kf - 1.0) * (wf * e + kf - wf));
        Ok(SubsetSelection {
            k,
            epsilon,
            omega,
            p,
            q,
        })
    }

    /// The subset size ω.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Probability that the true value is included in Ω.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability that a fixed other value is included in Ω.
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl FrequencyOracle for SubsetSelection {
    fn domain_size(&self) -> usize {
        self.k
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn randomize<R: Rng + ?Sized>(&self, value: u32, rng: &mut R) -> Report {
        debug_assert!((value as usize) < self.k, "value out of domain");
        let include_true = rng.random::<f64>() < self.p;
        let fill = if include_true {
            self.omega - 1
        } else {
            self.omega
        };
        let mut subset = Vec::with_capacity(self.omega);
        if include_true {
            subset.push(value);
        }
        // Sample `fill` distinct values from the k−1 non-true values by
        // sampling indices in 0..k−1 and shifting past `value`.
        for idx in sample(rng, self.k - 1, fill) {
            let v = idx as u32;
            subset.push(if v >= value { v + 1 } else { v });
        }
        subset.sort_unstable();
        Report::Subset(subset)
    }

    fn supports(&self, report: &Report, value: u32) -> bool {
        matches!(report, Report::Subset(s) if s.binary_search(&value).is_ok())
    }

    fn est_p(&self) -> f64 {
        self.p
    }

    fn est_q(&self) -> f64 {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimal_omega_matches_formula() {
        // k = 74, eps = 1: 74 / (e + 1) ≈ 19.9 → 20.
        assert_eq!(SubsetSelection::new(74, 1.0).unwrap().omega(), 20);
        // Large eps forces omega = 1 (degenerates to GRR-like reporting).
        assert_eq!(SubsetSelection::new(7, 5.0).unwrap().omega(), 1);
    }

    #[test]
    fn omega_one_matches_grr_probabilities() {
        let ss = SubsetSelection::with_omega(10, 2.0, 1).unwrap();
        let grr = crate::grr::Grr::new(10, 2.0).unwrap();
        assert!((ss.p() - grr.p()).abs() < 1e-12);
        assert!((ss.q() - grr.q()).abs() < 1e-12);
    }

    #[test]
    fn p_and_q_form_consistent_expectation() {
        // E[|Ω|] = p + (k−1) q must equal ω.
        for (k, eps) in [(74usize, 1.0), (16, 2.0), (41, 0.5)] {
            let ss = SubsetSelection::new(k, eps).unwrap();
            let expected = ss.p() + (k as f64 - 1.0) * ss.q();
            assert!(
                (expected - ss.omega() as f64).abs() < 1e-9,
                "k={k} eps={eps}: E|Ω|={expected} omega={}",
                ss.omega()
            );
        }
    }

    #[test]
    fn report_has_exactly_omega_distinct_values() {
        let ss = SubsetSelection::new(30, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            match ss.randomize(11, &mut rng) {
                Report::Subset(s) => {
                    assert_eq!(s.len(), ss.omega());
                    let mut d = s.clone();
                    d.dedup();
                    assert_eq!(d.len(), s.len(), "duplicates in subset");
                    assert!(s.iter().all(|&v| (v as usize) < 30));
                }
                other => panic!("unexpected shape {other:?}"),
            }
        }
    }

    #[test]
    fn empirical_inclusion_rates_match_p_and_q() {
        let ss = SubsetSelection::new(12, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 40_000;
        let mut true_in = 0usize;
        let mut other_in = 0usize;
        for _ in 0..trials {
            let r = ss.randomize(4, &mut rng);
            if ss.supports(&r, 4) {
                true_in += 1;
            }
            if ss.supports(&r, 9) {
                other_in += 1;
            }
        }
        let p_emp = true_in as f64 / trials as f64;
        let q_emp = other_in as f64 / trials as f64;
        assert!((p_emp - ss.p()).abs() < 0.01, "p emp {p_emp} vs {}", ss.p());
        assert!((q_emp - ss.q()).abs() < 0.01, "q emp {q_emp} vs {}", ss.q());
    }

    #[test]
    fn with_omega_rejects_out_of_range() {
        assert!(SubsetSelection::with_omega(5, 1.0, 0).is_err());
        assert!(SubsetSelection::with_omega(5, 1.0, 5).is_err());
    }
}
