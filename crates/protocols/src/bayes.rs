//! Prior-aware Bayes-optimal single-report attacker.
//!
//! §3.2.1 of the paper notes that the expectation of its plausible-deniability
//! attack "could be analytically formalized with the Bayes adversary of
//! [Gursoy et al., TIFS'22]". This module implements that stronger adversary:
//! given a prior `π` over the domain (e.g. public Census marginals), predict
//!
//! `v̂ = argmax_v π(v) · Pr[M(v) = y]`.
//!
//! With a uniform prior this coincides in expectation with
//! [`crate::deniability::best_guess`]; with a skewed prior it strictly
//! dominates it, which quantifies how much *more* a background-informed
//! adversary extracts from each report.

use rand::Rng;

use crate::hash::olh_hash;
use crate::oracle::{FrequencyOracle, Oracle, Report};

/// Per-value likelihood `Pr[M(v) = y]` of the observed report, up to a
/// value-independent constant (sufficient for the argmax).
fn likelihoods(oracle: &Oracle, report: &Report) -> Vec<f64> {
    let k = oracle.domain_size();
    match (oracle, report) {
        (Oracle::Grr(grr), Report::Value(y)) => (0..k as u32)
            .map(|v| if v == *y { grr.p() } else { grr.q() })
            .collect(),
        (Oracle::Olh(olh), Report::Hashed { seed, value, g }) => {
            let q_hash = (1.0 - olh.p_hash()) / (f64::from(*g) - 1.0);
            (0..k as u32)
                .map(|v| {
                    if olh_hash(*seed, v, *g) == *value {
                        olh.p_hash()
                    } else {
                        q_hash
                    }
                })
                .collect()
        }
        (Oracle::Ss(ss), Report::Subset(subset)) => {
            // Pr[Ω ∋ v as the true value] vs not: up to the subset-choice
            // constant, likelihood ∝ p if v ∈ Ω else (1 − p)·(adjustment).
            // The exact ratio between members/non-members is what matters.
            (0..k as u32)
                .map(|v| {
                    if subset.binary_search(&v).is_ok() {
                        ss.p()
                    } else {
                        // v ∉ Ω: true value was excluded.
                        (1.0 - ss.p()) / (k as f64 - ss.omega() as f64).max(1.0) * ss.omega() as f64
                    }
                })
                .collect()
        }
        (Oracle::Ue(ue), Report::Bits(bits)) => {
            // Independent bit flips: log-likelihood differs only through the
            // bit at position v: p vs q if set, (1−p) vs (1−q) if clear.
            let (p, q) = (ue.p(), ue.q());
            (0..k)
                .map(|v| {
                    if bits.get(v) {
                        p / q
                    } else {
                        (1.0 - p) / (1.0 - q)
                    }
                })
                .collect()
        }
        // Mismatched shapes carry no information.
        _ => vec![1.0; k],
    }
}

/// Bayes-optimal prediction under prior `prior` (uniform ties broken
/// randomly).
///
/// # Panics
/// Panics when `prior.len() != oracle.domain_size()`.
pub fn bayes_guess<R: Rng + ?Sized>(
    oracle: &Oracle,
    report: &Report,
    prior: &[f64],
    rng: &mut R,
) -> u32 {
    let k = oracle.domain_size();
    assert_eq!(prior.len(), k, "prior length must equal domain size");
    let lik = likelihoods(oracle, report);
    let mut best_score = f64::NEG_INFINITY;
    let mut ties: Vec<u32> = Vec::new();
    for v in 0..k {
        let score = prior[v] * lik[v];
        if score > best_score + 1e-15 {
            best_score = score;
            ties.clear();
            ties.push(v as u32);
        } else if (score - best_score).abs() <= 1e-15 {
            ties.push(v as u32);
        }
    }
    ties[rng.random_range(0..ties.len())]
}

/// Posterior distribution `P(v | y)` under `prior` (normalized).
pub fn posterior(oracle: &Oracle, report: &Report, prior: &[f64]) -> Vec<f64> {
    let k = oracle.domain_size();
    assert_eq!(prior.len(), k, "prior length must equal domain size");
    let lik = likelihoods(oracle, report);
    let mut post: Vec<f64> = prior.iter().zip(&lik).map(|(p, l)| p * l).collect();
    let total: f64 = post.iter().sum();
    if total > 0.0 {
        for x in &mut post {
            *x /= total;
        }
    } else {
        post.fill(1.0 / k as f64);
    }
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deniability;
    use crate::oracle::ProtocolKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Skewed domain: value 0 holds 60 % of the mass.
    fn skewed_prior(k: usize) -> Vec<f64> {
        let mut p = vec![0.4 / (k as f64 - 1.0); k];
        p[0] = 0.6;
        p
    }

    fn simulate(
        kind: ProtocolKind,
        k: usize,
        eps: f64,
        prior: &[f64],
        trials: usize,
    ) -> (f64, f64) {
        let oracle = kind.build(k, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let cdf: Vec<f64> = prior
            .iter()
            .scan(0.0, |acc, &p| {
                *acc += p;
                Some(*acc)
            })
            .collect();
        let (mut bayes_hits, mut pd_hits) = (0usize, 0usize);
        for _ in 0..trials {
            let u: f64 = rng.random();
            let v = cdf.partition_point(|&c| c < u).min(k - 1) as u32;
            let report = oracle.randomize(v, &mut rng);
            if bayes_guess(&oracle, &report, prior, &mut rng) == v {
                bayes_hits += 1;
            }
            if deniability::best_guess(&oracle, &report, &mut rng) == v {
                pd_hits += 1;
            }
        }
        (
            bayes_hits as f64 / trials as f64,
            pd_hits as f64 / trials as f64,
        )
    }

    #[test]
    fn bayes_dominates_plausible_deniability_under_skewed_priors() {
        // At low ε the prior carries most of the information; the Bayes
        // adversary must clearly beat the prior-agnostic rule.
        for kind in ProtocolKind::ALL {
            let prior = skewed_prior(8);
            let (bayes, pd) = simulate(kind, 8, 0.5, &prior, 30_000);
            assert!(
                bayes >= pd - 0.01,
                "{kind}: bayes {bayes} should dominate deniability {pd}"
            );
            // And at least match always-guess-the-mode.
            assert!(bayes >= 0.58, "{kind}: bayes {bayes} below prior mode");
        }
    }

    #[test]
    fn bayes_matches_deniability_under_uniform_prior_for_grr() {
        let k = 8;
        let uniform = vec![1.0 / k as f64; k];
        let (bayes, pd) = simulate(ProtocolKind::Grr, k, 2.0, &uniform, 30_000);
        assert!(
            (bayes - pd).abs() < 0.02,
            "uniform prior: bayes {bayes} vs deniability {pd}"
        );
    }

    #[test]
    fn posterior_is_a_distribution_concentrated_on_the_report() {
        let oracle = ProtocolKind::Grr.build(5, 3.0).unwrap();
        let uniform = vec![0.2; 5];
        let post = posterior(&oracle, &Report::Value(2), &uniform);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(
            post[2] > 0.5,
            "posterior should peak at the report: {post:?}"
        );
        for v in [0usize, 1, 3, 4] {
            assert!(post[v] < post[2]);
        }
    }

    #[test]
    fn posterior_follows_prior_when_budget_is_tiny() {
        let oracle = ProtocolKind::Grr.build(4, 0.001).unwrap();
        let prior = vec![0.7, 0.1, 0.1, 0.1];
        let post = posterior(&oracle, &Report::Value(3), &prior);
        // Almost no information in the report: posterior ≈ prior.
        assert!((post[0] - 0.7).abs() < 0.02, "{post:?}");
    }

    #[test]
    #[should_panic(expected = "prior length")]
    fn bayes_guess_rejects_wrong_prior_length() {
        let oracle = ProtocolKind::Grr.build(4, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        bayes_guess(&oracle, &Report::Value(0), &[0.5, 0.5], &mut rng);
    }

    #[test]
    fn ue_likelihood_uses_only_the_value_bit() {
        // Two reports differing in an unrelated bit must give the same
        // posterior ratio between two candidate values sharing bit states.
        let oracle = ProtocolKind::Oue.build(6, 2.0).unwrap();
        let uniform = vec![1.0 / 6.0; 6];
        let mut bits = crate::BitVec::zeros(6);
        bits.set(1, true);
        let post = posterior(&oracle, &Report::Bits(bits), &uniform);
        assert!(post[1] > post[0], "{post:?}");
        // All clear-bit values tie.
        assert!((post[0] - post[5]).abs() < 1e-12);
    }
}
