//! A compact fixed-length bit vector used for unary-encoded (UE) reports.
//!
//! UE protocols transmit a sanitized one-hot vector of the attribute domain
//! size; for the paper's datasets that is up to 92 bits per attribute and up
//! to `sum(k_j)` bits per RS+FD tuple, so a packed representation matters for
//! the large simulation campaigns.

/// Vectors of up to `INLINE_WORDS · 64` bits are stored inline, without a
/// heap allocation. Every attribute domain in the paper's datasets (k ≤ 92)
/// fits, so the UE report hot path — four `BitVec` reports per user in the
/// SPL ingest bench — allocates nothing.
const INLINE_WORDS: usize = 2;

/// Backing storage: a fixed inline array for short vectors, a heap `Vec` for
/// long ones. The variant is a function of `len` alone (chosen at
/// construction), so equal-length vectors always share a variant.
#[derive(Debug, Clone)]
enum Blocks {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// Fixed-length packed bit vector backed by `u64` blocks.
#[derive(Debug, Clone)]
pub struct BitVec {
    blocks: Blocks,
    len: usize,
}

impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.blocks() == other.blocks()
    }
}

impl Eq for BitVec {}

impl std::hash::Hash for BitVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.blocks().hash(state);
    }
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        let blocks = if len <= INLINE_WORDS * 64 {
            Blocks::Inline([0; INLINE_WORDS])
        } else {
            Blocks::Heap(vec![0; len.div_ceil(64)])
        };
        BitVec { blocks, len }
    }

    /// The valid words of the backing storage (`⌈len/64⌉` of them).
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.blocks {
            Blocks::Inline(a) => &a[..self.len.div_ceil(64)],
            Blocks::Heap(v) => v,
        }
    }

    /// Mutable view of the valid words.
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let wc = self.len.div_ceil(64);
        match &mut self.blocks {
            Blocks::Inline(a) => &mut a[..wc],
            Blocks::Heap(v) => v,
        }
    }

    /// Builds a vector of at most 64 bits from a single word — the fused
    /// tuple sanitizer ([`crate::ue::FusedUeGroup`]) slices its packed word
    /// into per-attribute reports through this without touching the heap.
    ///
    /// # Panics
    /// Panics if `len > 64`; lanes past `len` must be zero (debug-asserted).
    #[inline]
    pub fn from_word(word: u64, len: usize) -> Self {
        assert!(len <= 64, "from_word holds at most 64 bits, got {len}");
        debug_assert!(
            len == 64 || word >> len == 0,
            "trailing bits past len must be zero"
        );
        let mut inline = [0u64; INLINE_WORDS];
        inline[0] = word;
        BitVec {
            blocks: Blocks::Inline(inline),
            len,
        }
    }

    /// Creates a one-hot vector of `len` bits with bit `index` set.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn one_hot(len: usize, index: usize) -> Self {
        let mut bv = Self::zeros(len);
        bv.set(index, true);
        bv
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words()[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        let word = &mut self.words_mut()[index / 64];
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of backing `u64` words (`⌈len/64⌉`).
    #[inline]
    pub fn word_count(&self) -> usize {
        self.len.div_ceil(64)
    }

    /// Mask of the valid lanes of word `wi`: all-ones except for the final
    /// word of a non-multiple-of-64 vector, where only the low `len % 64`
    /// lanes are set.
    ///
    /// # Panics
    /// Panics if `wi >= word_count`.
    #[inline]
    pub fn lane_mask(&self, wi: usize) -> u64 {
        assert!(wi < self.word_count(), "word index {wi} out of range");
        if wi + 1 == self.word_count() && !self.len.is_multiple_of(64) {
            (1u64 << (self.len % 64)) - 1
        } else {
            !0
        }
    }

    /// Overwrites word `wi` with `word`, masking off lanes past
    /// [`BitVec::len`] so the trailing-zeros invariant holds — the
    /// word-parallel sanitize path writes whole sanitized words through
    /// this.
    ///
    /// # Panics
    /// Panics if `wi >= word_count`.
    #[inline]
    pub fn set_word(&mut self, wi: usize, word: u64) {
        let mask = self.lane_mask(wi);
        self.words_mut()[wi] = word & mask;
    }

    /// ORs `word` into word `wi`, masking off lanes past [`BitVec::len`].
    ///
    /// # Panics
    /// Panics if `wi >= word_count`.
    #[inline]
    pub fn or_word(&mut self, wi: usize, word: u64) {
        let mask = self.lane_mask(wi);
        self.words_mut()[wi] |= word & mask;
    }

    /// Clears every bit (length unchanged) — the run-writer reset that lets
    /// a pooled vector be reused without reallocating.
    #[inline]
    pub fn clear(&mut self) {
        self.words_mut().fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words().iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterator over the indices of the set bits, in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        let words = self.words();
        Ones {
            words,
            block_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the set-bit indices into a vector.
    pub fn ones_vec(&self) -> Vec<usize> {
        self.ones().collect()
    }

    /// The backing `u64` blocks (little-endian bit order, trailing bits past
    /// [`BitVec::len`] always zero). Exposed for compact wire encodings that
    /// copy the vector verbatim.
    #[inline]
    pub fn blocks(&self) -> &[u64] {
        self.words()
    }

    /// Rebuilds a vector of `len` bits from its backing blocks — the inverse
    /// of [`BitVec::blocks`].
    ///
    /// # Panics
    /// Panics when `blocks.len()` does not match `len`; debug-asserts that no
    /// trailing bit past `len` is set (every mutation path keeps them zero).
    pub fn from_blocks(blocks: Vec<u64>, len: usize) -> Self {
        assert_eq!(blocks.len(), len.div_ceil(64), "block count mismatch");
        debug_assert!(
            len.is_multiple_of(64) || blocks.last().is_none_or(|b| b >> (len % 64) == 0),
            "trailing bits past len must be zero"
        );
        let blocks = if len <= INLINE_WORDS * 64 {
            let mut inline = [0u64; INLINE_WORDS];
            inline[..blocks.len()].copy_from_slice(&blocks);
            Blocks::Inline(inline)
        } else {
            Blocks::Heap(blocks)
        };
        BitVec { blocks, len }
    }
}

/// Iterator over set-bit indices of a [`BitVec`].
pub struct Ones<'a> {
    words: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear the lowest set bit
                let idx = self.block_idx * 64 + bit;
                // Trailing garbage past `len` can never be set because all
                // mutation paths go through `set`, which bounds-checks.
                return Some(idx);
            }
            self.block_idx += 1;
            if self.block_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        assert!(bv.ones().next().is_none());
    }

    #[test]
    fn one_hot_sets_exactly_one_bit() {
        for k in [1usize, 2, 63, 64, 65, 92, 128] {
            for idx in [0, k / 2, k - 1] {
                let bv = BitVec::one_hot(k, idx);
                assert_eq!(bv.count_ones(), 1);
                assert!(bv.get(idx));
                assert_eq!(bv.ones_vec(), vec![idx]);
            }
        }
    }

    #[test]
    fn set_and_clear_roundtrip() {
        let mut bv = BitVec::zeros(100);
        bv.set(3, true);
        bv.set(64, true);
        bv.set(99, true);
        assert_eq!(bv.ones_vec(), vec![3, 64, 99]);
        bv.set(64, false);
        assert_eq!(bv.ones_vec(), vec![3, 99]);
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bv = BitVec::zeros(10);
        bv.get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bv = BitVec::zeros(10);
        bv.set(10, true);
    }

    #[test]
    fn blocks_roundtrip_through_from_blocks() {
        for k in [1usize, 63, 64, 65, 130] {
            let mut bv = BitVec::zeros(k);
            for i in [0, k / 3, k - 1] {
                bv.set(i, true);
            }
            let rebuilt = BitVec::from_blocks(bv.blocks().to_vec(), k);
            assert_eq!(rebuilt, bv);
        }
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn from_blocks_rejects_wrong_block_count() {
        BitVec::from_blocks(vec![0; 2], 64);
    }

    #[test]
    fn set_word_masks_the_tail_and_or_word_accumulates() {
        for k in [5usize, 64, 65, 130, 192] {
            let mut bv = BitVec::zeros(k);
            assert_eq!(bv.word_count(), k.div_ceil(64));
            for wi in 0..bv.word_count() {
                bv.set_word(wi, !0);
            }
            // Every valid bit set, trailing lanes still zero.
            assert_eq!(bv.count_ones(), k);
            let rebuilt = BitVec::from_blocks(bv.blocks().to_vec(), k);
            assert_eq!(rebuilt, bv);
            bv.clear();
            assert_eq!(bv.count_ones(), 0);
            bv.or_word(0, 0b101);
            bv.or_word(0, 0b110);
            assert_eq!(bv.ones_vec(), vec![0, 1, 2]);
        }
    }

    #[test]
    fn lane_mask_covers_exactly_the_valid_lanes() {
        let bv = BitVec::zeros(130);
        assert_eq!(bv.lane_mask(0), !0);
        assert_eq!(bv.lane_mask(1), !0);
        assert_eq!(bv.lane_mask(2), 0b11);
        let full = BitVec::zeros(128);
        assert_eq!(full.lane_mask(1), !0);
    }

    #[test]
    #[should_panic(expected = "word index")]
    fn set_word_out_of_range_panics() {
        let mut bv = BitVec::zeros(64);
        bv.set_word(1, 1);
    }

    #[test]
    fn inline_and_heap_vectors_agree_across_construction_paths() {
        // k ≤ 128 lives inline, k > 128 on the heap; equality and hashing
        // must be storage-agnostic and `from_blocks` must round-trip both.
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for k in [5usize, 64, 92, 128, 129, 200] {
            let mut bv = BitVec::zeros(k);
            bv.set(k - 1, true);
            bv.set(k / 2, true);
            let rebuilt = BitVec::from_blocks(bv.blocks().to_vec(), k);
            assert_eq!(rebuilt, bv);
            set.insert(bv.clone());
            assert!(set.contains(&rebuilt), "hash differs across paths k={k}");
        }
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn ones_iterator_matches_naive_scan() {
        let mut bv = BitVec::zeros(200);
        let idxs = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idxs {
            bv.set(i, true);
        }
        let naive: Vec<usize> = (0..200).filter(|&i| bv.get(i)).collect();
        assert_eq!(bv.ones_vec(), naive);
        assert_eq!(naive, idxs.to_vec());
    }
}
