//! A compact fixed-length bit vector used for unary-encoded (UE) reports.
//!
//! UE protocols transmit a sanitized one-hot vector of the attribute domain
//! size; for the paper's datasets that is up to 92 bits per attribute and up
//! to `sum(k_j)` bits per RS+FD tuple, so a packed representation matters for
//! the large simulation campaigns.

/// Fixed-length packed bit vector backed by `u64` blocks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a one-hot vector of `len` bits with bit `index` set.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn one_hot(len: usize, index: usize) -> Self {
        let mut bv = Self::zeros(len);
        bv.set(index, true);
        bv
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.blocks[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        if value {
            self.blocks[index / 64] |= mask;
        } else {
            self.blocks[index / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterator over the indices of the set bits, in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            bv: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the set-bit indices into a vector.
    pub fn ones_vec(&self) -> Vec<usize> {
        self.ones().collect()
    }

    /// The backing `u64` blocks (little-endian bit order, trailing bits past
    /// [`BitVec::len`] always zero). Exposed for compact wire encodings that
    /// copy the vector verbatim.
    #[inline]
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Rebuilds a vector of `len` bits from its backing blocks — the inverse
    /// of [`BitVec::blocks`].
    ///
    /// # Panics
    /// Panics when `blocks.len()` does not match `len`; debug-asserts that no
    /// trailing bit past `len` is set (every mutation path keeps them zero).
    pub fn from_blocks(blocks: Vec<u64>, len: usize) -> Self {
        assert_eq!(blocks.len(), len.div_ceil(64), "block count mismatch");
        debug_assert!(
            len.is_multiple_of(64) || blocks.last().is_none_or(|b| b >> (len % 64) == 0),
            "trailing bits past len must be zero"
        );
        BitVec { blocks, len }
    }
}

/// Iterator over set-bit indices of a [`BitVec`].
pub struct Ones<'a> {
    bv: &'a BitVec,
    block_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear the lowest set bit
                let idx = self.block_idx * 64 + bit;
                // Trailing garbage past `len` can never be set because all
                // mutation paths go through `set`, which bounds-checks.
                return Some(idx);
            }
            self.block_idx += 1;
            if self.block_idx >= self.bv.blocks.len() {
                return None;
            }
            self.current = self.bv.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        assert!(bv.ones().next().is_none());
    }

    #[test]
    fn one_hot_sets_exactly_one_bit() {
        for k in [1usize, 2, 63, 64, 65, 92, 128] {
            for idx in [0, k / 2, k - 1] {
                let bv = BitVec::one_hot(k, idx);
                assert_eq!(bv.count_ones(), 1);
                assert!(bv.get(idx));
                assert_eq!(bv.ones_vec(), vec![idx]);
            }
        }
    }

    #[test]
    fn set_and_clear_roundtrip() {
        let mut bv = BitVec::zeros(100);
        bv.set(3, true);
        bv.set(64, true);
        bv.set(99, true);
        assert_eq!(bv.ones_vec(), vec![3, 64, 99]);
        bv.set(64, false);
        assert_eq!(bv.ones_vec(), vec![3, 99]);
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bv = BitVec::zeros(10);
        bv.get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bv = BitVec::zeros(10);
        bv.set(10, true);
    }

    #[test]
    fn blocks_roundtrip_through_from_blocks() {
        for k in [1usize, 63, 64, 65, 130] {
            let mut bv = BitVec::zeros(k);
            for i in [0, k / 3, k - 1] {
                bv.set(i, true);
            }
            let rebuilt = BitVec::from_blocks(bv.blocks().to_vec(), k);
            assert_eq!(rebuilt, bv);
        }
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn from_blocks_rejects_wrong_block_count() {
        BitVec::from_blocks(vec![0; 2], 64);
    }

    #[test]
    fn ones_iterator_matches_naive_scan() {
        let mut bv = BitVec::zeros(200);
        let idxs = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idxs {
            bv.set(i, true);
        }
        let naive: Vec<usize> = (0..200).filter(|&i| bv.get(i)).collect();
        assert_eq!(bv.ones_vec(), naive);
        assert_eq!(naive, idxs.to_vec());
    }
}
