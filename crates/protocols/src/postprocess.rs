//! Consistency post-processing for frequency estimates.
//!
//! Eq. (2) estimates are unbiased but unconstrained: entries can be negative
//! and need not sum to one. The paper's pipeline (and its reference \[52\],
//! Wang et al., NDSS'20) post-processes estimates onto the probability
//! simplex. Two standard methods are provided:
//!
//! * [`clamp_normalize`] — clamp negatives to zero, rescale to sum 1
//!   (the baseline used by `Aggregator::estimate_normalized`);
//! * [`norm_sub`] — the variance-preferred "Norm-Sub": iteratively shift all
//!   positive entries by a common δ and clamp, until the result sums to 1.
//!   This is the exact Euclidean projection onto the simplex.

/// Clamps negatives to zero and rescales to sum one (uniform on total
/// collapse). Re-exported convenience over
/// [`crate::oracle::normalize_simplex`].
pub fn clamp_normalize(estimate: &[f64]) -> Vec<f64> {
    crate::oracle::normalize_simplex(estimate)
}

/// Norm-Sub consistency step: finds δ such that
/// `Σ max(estimate[v] − δ, 0) = 1` and returns the clamped, shifted vector —
/// the Euclidean projection of the estimate onto the probability simplex.
///
/// Returns the uniform distribution for an empty or degenerate input.
pub fn norm_sub(estimate: &[f64]) -> Vec<f64> {
    let k = estimate.len();
    if k == 0 {
        return Vec::new();
    }
    // Sort descending and find the pivot of the simplex projection.
    let mut sorted: Vec<f64> = estimate.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut cumsum = 0.0;
    let mut delta = (sorted[0] - 1.0).max(f64::NEG_INFINITY);
    let mut rho = 0usize;
    for (i, &x) in sorted.iter().enumerate() {
        cumsum += x;
        let candidate = (cumsum - 1.0) / (i + 1) as f64;
        if x - candidate > 0.0 {
            rho = i + 1;
            delta = candidate;
        }
    }
    if rho == 0 {
        // All mass below the pivot — degenerate input; fall back to uniform.
        return vec![1.0 / k as f64; k];
    }
    estimate.iter().map(|&x| (x - delta).max(0.0)).collect()
}

/// Mean squared deviation between two distributions (diagnostic).
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_simplex(p: &[f64]) -> bool {
        p.iter().all(|&x| x >= -1e-12) && (p.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }

    #[test]
    fn norm_sub_is_identity_on_valid_distributions() {
        let p = vec![0.2, 0.5, 0.3];
        let out = norm_sub(&p);
        for (a, b) in out.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn norm_sub_projects_noisy_estimates() {
        let noisy = vec![0.6, -0.1, 0.4, 0.3];
        let out = norm_sub(&noisy);
        assert!(is_simplex(&out), "{out:?}");
        // Ordering is preserved for surviving entries.
        assert!(out[0] > out[2] && out[2] > out[3]);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn norm_sub_matches_euclidean_projection_property() {
        // The projection must be no farther (in L2) from any simplex point
        // than the original is... verify against clamp_normalize on a case
        // where they differ.
        let noisy = vec![0.9, 0.9, -0.5];
        let ns = norm_sub(&noisy);
        let cn = clamp_normalize(&noisy);
        assert!(is_simplex(&ns));
        assert!(is_simplex(&cn));
        assert!(
            l2_distance(&ns, &noisy) <= l2_distance(&cn, &noisy) + 1e-12,
            "norm-sub {ns:?} should be the closest projection, clamp {cn:?}"
        );
    }

    #[test]
    fn norm_sub_handles_all_negative() {
        let out = norm_sub(&[-0.5, -0.2]);
        assert!(is_simplex(&out));
    }

    #[test]
    fn norm_sub_single_entry() {
        assert_eq!(norm_sub(&[3.7]), vec![1.0]);
    }

    #[test]
    fn norm_sub_reduces_mse_versus_raw_noisy_estimates() {
        // Statistical check: projecting noisy unbiased estimates toward the
        // simplex should not hurt (and typically helps) the MSE.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let truth = [0.5, 0.3, 0.15, 0.05];
        let mut rng = StdRng::seed_from_u64(1);
        let (mut raw_mse, mut ns_mse) = (0.0, 0.0);
        for _ in 0..500 {
            let noisy: Vec<f64> = truth
                .iter()
                .map(|&t| t + 0.2 * (rng.random::<f64>() - 0.5))
                .collect();
            let ns = norm_sub(&noisy);
            raw_mse += truth
                .iter()
                .zip(&noisy)
                .map(|(t, e)| (t - e) * (t - e))
                .sum::<f64>();
            ns_mse += truth
                .iter()
                .zip(&ns)
                .map(|(t, e)| (t - e) * (t - e))
                .sum::<f64>();
        }
        assert!(ns_mse <= raw_mse, "norm-sub {ns_mse} vs raw {raw_mse}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn l2_distance_rejects_mismatch() {
        l2_distance(&[1.0], &[1.0, 2.0]);
    }
}
