//! Generalized Randomized Response (GRR), §2.2.1 of the paper.
//!
//! GRR extends Warner's classical randomized response to domains of size
//! `k ≥ 2`: the true value is reported with probability
//! `p = e^ε / (e^ε + k − 1)` and every other value with probability
//! `q = 1 / (e^ε + k − 1)`, satisfying ε-LDP because `p / q = e^ε`.

use rand::Rng;

use crate::error::ProtocolError;
use crate::oracle::{FrequencyOracle, Report};
use crate::{validate_domain, validate_epsilon};

/// Generalized Randomized Response protocol for one categorical attribute.
#[derive(Debug, Clone)]
pub struct Grr {
    k: usize,
    epsilon: f64,
    p: f64,
    q: f64,
}

impl Grr {
    /// Creates a GRR instance for domain size `k` and privacy budget `epsilon`.
    pub fn new(k: usize, epsilon: f64) -> Result<Self, ProtocolError> {
        let k = validate_domain(k)?;
        let epsilon = validate_epsilon(epsilon)?;
        let e = epsilon.exp();
        let denom = e + k as f64 - 1.0;
        Ok(Grr {
            k,
            epsilon,
            p: e / denom,
            q: 1.0 / denom,
        })
    }

    /// Probability of reporting the true value.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting one fixed other value.
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl FrequencyOracle for Grr {
    fn domain_size(&self) -> usize {
        self.k
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn randomize<R: Rng + ?Sized>(&self, value: u32, rng: &mut R) -> Report {
        debug_assert!((value as usize) < self.k, "value out of domain");
        if rng.random::<f64>() < self.p {
            Report::Value(value)
        } else {
            // Uniform over the k−1 other values: draw from 0..k−1 and skip
            // the true value by shifting.
            let r = rng.random_range(0..self.k as u32 - 1);
            Report::Value(if r >= value { r + 1 } else { r })
        }
    }

    fn supports(&self, report: &Report, value: u32) -> bool {
        matches!(report, Report::Value(v) if *v == value)
    }

    fn est_p(&self) -> f64 {
        self.p
    }

    fn est_q(&self) -> f64 {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameters_match_closed_form() {
        let g = Grr::new(4, 1.0).unwrap();
        let e = 1.0f64.exp();
        assert!((g.p() - e / (e + 3.0)).abs() < 1e-12);
        assert!((g.q() - 1.0 / (e + 3.0)).abs() < 1e-12);
        // p + (k−1) q = 1: output distribution is a proper distribution.
        assert!((g.p() + 3.0 * g.q() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn satisfies_ldp_ratio() {
        for eps in [0.1, 1.0, 5.0] {
            let g = Grr::new(10, eps).unwrap();
            assert!((g.p() / g.q() - eps.exp()).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Grr::new(1, 1.0).is_err());
        assert!(Grr::new(4, 0.0).is_err());
        assert!(Grr::new(4, -1.0).is_err());
        assert!(Grr::new(4, f64::INFINITY).is_err());
    }

    #[test]
    fn outputs_stay_in_domain_and_cover_it() {
        let g = Grr::new(5, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..2000 {
            match g.randomize(2, &mut rng) {
                Report::Value(v) => {
                    assert!(v < 5);
                    seen[v as usize] = true;
                }
                other => panic!("unexpected report shape {other:?}"),
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values should appear at eps=0.5"
        );
    }

    #[test]
    fn empirical_keep_rate_matches_p() {
        let g = Grr::new(8, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 60_000;
        let kept = (0..trials)
            .filter(|_| matches!(g.randomize(5, &mut rng), Report::Value(5)))
            .count();
        let rate = kept as f64 / trials as f64;
        assert!(
            (rate - g.p()).abs() < 0.01,
            "empirical {rate} vs p {}",
            g.p()
        );
    }

    #[test]
    fn supports_only_the_reported_value() {
        let g = Grr::new(4, 1.0).unwrap();
        let r = Report::Value(2);
        assert!(g.supports(&r, 2));
        assert!(!g.supports(&r, 1));
    }
}
