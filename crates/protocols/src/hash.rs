//! Seeded universal-style hashing used by Optimal Local Hashing (OLH).
//!
//! OLH requires each user to pick a hash function `H` at random from a family
//! mapping the attribute domain `[k]` into the smaller range `[g]`. We realise
//! the family as a SplitMix64 finalizer keyed by a per-report random 64-bit
//! seed: two independent seeds give (computationally) independent mappings,
//! which is what the protocol's analysis needs in practice.
//!
//! The same mixer doubles as the deterministic seed-derivation utility used by
//! the experiment harness to get reproducible per-(run, ε, protocol) RNG
//! streams.

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two 64-bit words into one well-mixed word.
///
/// Used to derive hierarchical deterministic seeds, e.g.
/// `mix2(run_seed, protocol_index)`.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

/// Combines three 64-bit words into one well-mixed word.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix2(mix2(a, b), c)
}

/// Key stride of [`olh_hash`]: domain value `v` enters the mixer keyed as
/// `seed ^ (v · OLH_KEY_STRIDE)`. Exposed so tight whole-domain counting
/// loops (OLH server-side support sweeps) can advance the key incrementally
/// — one wrapping add per value — instead of re-multiplying, while staying
/// bit-identical to [`olh_hash`].
pub const OLH_KEY_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Hash `value` into `0..g` using the hash function identified by `seed`.
///
/// # Panics
/// Debug-asserts that `g >= 1`.
#[inline]
pub fn olh_hash(seed: u64, value: u32, g: u32) -> u32 {
    debug_assert!(g >= 1);
    let h = splitmix64(seed ^ (u64::from(value)).wrapping_mul(OLH_KEY_STRIDE));
    // The modulo bias is at most g / 2^64, irrelevant for g <= a few hundred.
    (h % u64::from(g)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn mix2_depends_on_both_args_and_order() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
        assert_ne!(mix2(1, 2), mix2(1, 3));
    }

    #[test]
    fn olh_hash_is_in_range_and_deterministic() {
        for g in [2u32, 3, 7, 16] {
            for v in 0..100u32 {
                let h = olh_hash(99, v, g);
                assert!(h < g);
                assert_eq!(h, olh_hash(99, v, g));
            }
        }
    }

    #[test]
    fn olh_hash_distributes_roughly_uniformly() {
        // Chi-square style sanity check: hash 0..k under many seeds and verify
        // each bucket receives close to its expected share.
        let g = 4u32;
        let k = 64u32;
        let seeds = 500u64;
        let mut buckets = vec![0u64; g as usize];
        for seed in 0..seeds {
            for v in 0..k {
                buckets[olh_hash(seed, v, g) as usize] += 1;
            }
        }
        let expected = f64::from(k) * seeds as f64 / f64::from(g);
        for &b in &buckets {
            let rel = (b as f64 - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "bucket load {b} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_hash_functions() {
        let g = 8u32;
        let k = 32u32;
        let a: Vec<u32> = (0..k).map(|v| olh_hash(1, v, g)).collect();
        let b: Vec<u32> = (0..k).map(|v| olh_hash(2, v, g)).collect();
        assert_ne!(a, b);
    }
}
