//! # ldp-protocols
//!
//! Locally differentially private (LDP) *frequency oracle* protocols, the
//! substrate of the PVLDB 2023 paper *"On the Risks of Collecting
//! Multidimensional Data Under Local Differential Privacy"* (Arcolezi et al.).
//!
//! A frequency oracle lets an untrusted aggregator estimate the frequency of
//! every value of one categorical attribute from sanitized user reports. This
//! crate implements the five protocols evaluated in the paper:
//!
//! * [`Grr`] — Generalized Randomized Response (Kairouz et al.)
//! * [`Olh`] — Optimal Local Hashing (Wang et al., USENIX Sec'17)
//! * [`SubsetSelection`] — ω-Subset Selection (Wang et al. / Ye & Barg)
//! * [`UnaryEncoding`] with [`UeMode::Symmetric`] — SUE, a.k.a. Basic One-time
//!   RAPPOR (Erlingsson et al.)
//! * [`UnaryEncoding`] with [`UeMode::Optimized`] — OUE (Wang et al.)
//!
//! All protocols implement the [`FrequencyOracle`] trait: a client-side
//! [`FrequencyOracle::randomize`] producing a [`Report`], and server-side
//! support counting feeding the generic unbiased estimator of
//! [`Aggregator::estimate`] (Eq. (2) of the paper).
//!
//! The [`deniability`] module implements the paper's §3.2.1 single-report
//! "plausible deniability" attack for every protocol together with the
//! closed-form expected attacker accuracies plotted in Fig. 1.
//!
//! ## Example
//!
//! ```
//! use ldp_protocols::{Grr, FrequencyOracle, Aggregator};
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let grr = Grr::new(4, 2.0).unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut agg = Aggregator::new(&grr);
//! for _ in 0..10_000 {
//!     // everyone holds value 2
//!     agg.absorb(&grr.randomize(2, &mut rng));
//! }
//! let est = agg.estimate();
//! assert!((est[2] - 1.0).abs() < 0.05);
//! ```

pub mod bayes;
pub mod bitvec;
pub mod deniability;
pub mod error;
pub mod grr;
pub mod hash;
pub mod olh;
pub mod oracle;
pub mod postprocess;
pub mod selection;
pub mod ss;
pub mod ue;

pub use bitvec::BitVec;
pub use error::ProtocolError;
pub use grr::Grr;
pub use olh::Olh;
pub use oracle::{Aggregator, FrequencyOracle, Oracle, ProtocolKind, Report};
pub use ss::SubsetSelection;
pub use ue::{FusedUeGroup, UeMode, UnaryEncoding};

/// Validates a privacy budget, returning it unchanged when strictly positive
/// and finite.
pub fn validate_epsilon(epsilon: f64) -> Result<f64, ProtocolError> {
    if epsilon.is_finite() && epsilon > 0.0 {
        Ok(epsilon)
    } else {
        Err(ProtocolError::InvalidEpsilon(epsilon))
    }
}

/// Validates a categorical domain size (`k >= 2`).
pub fn validate_domain(k: usize) -> Result<usize, ProtocolError> {
    if k >= 2 {
        Ok(k)
    } else {
        Err(ProtocolError::DomainTooSmall(k))
    }
}
