//! Unary-encoding protocols (SUE and OUE), §2.2.4 of the paper.
//!
//! The input is one-hot encoded into a `k`-bit vector `B`, and every bit is
//! flipped independently:
//!
//! * **SUE** (symmetric, a.k.a. Basic One-time RAPPOR):
//!   `p = e^{ε/2} / (e^{ε/2} + 1)`, `q = 1 / (e^{ε/2} + 1)` (so `p + q = 1`).
//! * **OUE** (optimized): `p = 1/2`, `q = 1 / (e^ε + 1)`.
//!
//! Both satisfy ε-LDP with `ε = ln(p(1−q) / ((1−p)q))`.
//!
//! Besides one-hot inputs, [`UnaryEncoding::perturb_bits`] sanitizes an
//! arbitrary bit vector — the primitive the RS+FD solution uses to build fake
//! reports from zero-vectors (`UE-z`) or random one-hot vectors (`UE-r`).

use rand::Rng;

use crate::bitvec::BitVec;
use crate::error::ProtocolError;
use crate::oracle::{FrequencyOracle, Report};
use crate::{validate_domain, validate_epsilon};

/// Which unary-encoding parametrization to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UeMode {
    /// SUE / Basic One-time RAPPOR (`p + q = 1`).
    Symmetric,
    /// OUE, variance-optimal (`p = 1/2`).
    Optimized,
}

impl UeMode {
    /// Paper-style name ("SUE" or "OUE").
    pub fn name(self) -> &'static str {
        match self {
            UeMode::Symmetric => "SUE",
            UeMode::Optimized => "OUE",
        }
    }
}

/// Unary-encoding protocol (SUE or OUE) for one categorical attribute.
#[derive(Debug, Clone)]
pub struct UnaryEncoding {
    k: usize,
    epsilon: f64,
    mode: UeMode,
    p: f64,
    q: f64,
}

impl UnaryEncoding {
    /// Creates a UE instance for domain size `k`, budget `epsilon` and `mode`.
    pub fn new(k: usize, epsilon: f64, mode: UeMode) -> Result<Self, ProtocolError> {
        let k = validate_domain(k)?;
        let epsilon = validate_epsilon(epsilon)?;
        let (p, q) = match mode {
            UeMode::Symmetric => {
                let e2 = (epsilon / 2.0).exp();
                (e2 / (e2 + 1.0), 1.0 / (e2 + 1.0))
            }
            UeMode::Optimized => (0.5, 1.0 / (epsilon.exp() + 1.0)),
        };
        Ok(UnaryEncoding {
            k,
            epsilon,
            mode,
            p,
            q,
        })
    }

    /// The parametrization in use.
    pub fn mode(&self) -> UeMode {
        self.mode
    }

    /// Probability that a 1-bit stays 1.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability that a 0-bit flips to 1.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Sanitizes an arbitrary `k`-bit input vector bit-by-bit:
    /// 1-bits stay 1 with probability `p`, 0-bits become 1 with probability `q`.
    ///
    /// # Panics
    /// Panics if `input.len() != k`.
    pub fn perturb_bits<R: Rng + ?Sized>(&self, input: &BitVec, rng: &mut R) -> BitVec {
        assert_eq!(input.len(), self.k, "input length must equal domain size");
        let mut out = BitVec::zeros(self.k);
        for i in 0..self.k {
            let keep_p = if input.get(i) { self.p } else { self.q };
            if rng.random::<f64>() < keep_p {
                out.set(i, true);
            }
        }
        out
    }

    /// Sanitizes the all-zero vector (the RS+FD `UE-z` fake-data primitive).
    pub fn perturb_zero_vector<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        self.perturb_bits(&BitVec::zeros(self.k), rng)
    }
}

impl FrequencyOracle for UnaryEncoding {
    fn domain_size(&self) -> usize {
        self.k
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn randomize<R: Rng + ?Sized>(&self, value: u32, rng: &mut R) -> Report {
        debug_assert!((value as usize) < self.k, "value out of domain");
        let encoded = BitVec::one_hot(self.k, value as usize);
        Report::Bits(self.perturb_bits(&encoded, rng))
    }

    fn supports(&self, report: &Report, value: u32) -> bool {
        matches!(report, Report::Bits(bits) if bits.get(value as usize))
    }

    fn est_p(&self) -> f64 {
        self.p
    }

    fn est_q(&self) -> f64 {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sue_parameters_are_symmetric() {
        let ue = UnaryEncoding::new(10, 2.0, UeMode::Symmetric).unwrap();
        assert!((ue.p() + ue.q() - 1.0).abs() < 1e-12);
        let e2 = 1.0f64.exp(); // e^{2/2}
        assert!((ue.p() - e2 / (e2 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn oue_parameters_match_closed_form() {
        let ue = UnaryEncoding::new(10, 2.0, UeMode::Optimized).unwrap();
        assert!((ue.p() - 0.5).abs() < 1e-12);
        assert!((ue.q() - 1.0 / (2.0f64.exp() + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn both_modes_satisfy_epsilon_ldp_identity() {
        // ε = ln(p(1−q) / ((1−p)q)) must hold exactly.
        for mode in [UeMode::Symmetric, UeMode::Optimized] {
            for eps in [0.5, 1.0, 4.0] {
                let ue = UnaryEncoding::new(7, eps, mode).unwrap();
                let implied = (ue.p() * (1.0 - ue.q()) / ((1.0 - ue.p()) * ue.q())).ln();
                assert!(
                    (implied - eps).abs() < 1e-9,
                    "{:?} eps={eps}: implied {implied}",
                    mode
                );
            }
        }
    }

    #[test]
    fn randomize_produces_k_bit_reports() {
        let ue = UnaryEncoding::new(16, 1.0, UeMode::Optimized).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        match ue.randomize(3, &mut rng) {
            Report::Bits(b) => assert_eq!(b.len(), 16),
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn empirical_bit_rates_match_p_and_q() {
        let ue = UnaryEncoding::new(8, 1.5, UeMode::Symmetric).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 40_000;
        let mut true_bit = 0usize;
        let mut other_bit = 0usize;
        for _ in 0..trials {
            if let Report::Bits(b) = ue.randomize(2, &mut rng) {
                if b.get(2) {
                    true_bit += 1;
                }
                if b.get(5) {
                    other_bit += 1;
                }
            }
        }
        let p_emp = true_bit as f64 / trials as f64;
        let q_emp = other_bit as f64 / trials as f64;
        assert!((p_emp - ue.p()).abs() < 0.01);
        assert!((q_emp - ue.q()).abs() < 0.01);
    }

    #[test]
    fn perturb_zero_vector_sets_bits_at_rate_q() {
        let ue = UnaryEncoding::new(50, 1.0, UeMode::Optimized).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 2000;
        let total: usize = (0..trials)
            .map(|_| ue.perturb_zero_vector(&mut rng).count_ones())
            .sum();
        let rate = total as f64 / (trials * 50) as f64;
        assert!((rate - ue.q()).abs() < 0.01, "rate {rate} vs q {}", ue.q());
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn perturb_bits_rejects_wrong_length() {
        let ue = UnaryEncoding::new(8, 1.0, UeMode::Symmetric).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = ue.perturb_bits(&BitVec::zeros(9), &mut rng);
    }
}
