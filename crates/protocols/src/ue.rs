//! Unary-encoding protocols (SUE and OUE), §2.2.4 of the paper.
//!
//! The input is one-hot encoded into a `k`-bit vector `B`, and every bit is
//! flipped independently:
//!
//! * **SUE** (symmetric, a.k.a. Basic One-time RAPPOR):
//!   `p = e^{ε/2} / (e^{ε/2} + 1)`, `q = 1 / (e^{ε/2} + 1)` (so `p + q = 1`).
//! * **OUE** (optimized): `p = 1/2`, `q = 1 / (e^ε + 1)`.
//!
//! Both satisfy ε-LDP with `ε = ln(p(1−q) / ((1−p)q))`.
//!
//! Besides one-hot inputs, [`UnaryEncoding::perturb_bits`] sanitizes an
//! arbitrary bit vector — the primitive the RS+FD solution uses to build fake
//! reports from zero-vectors (`UE-z`) or random one-hot vectors (`UE-r`).
//!
//! # Word-parallel sanitization
//!
//! Sanitizing per bit (one `f64` draw and one bounds-checked store per lane)
//! made UE the client-side bottleneck of every UE-backed solution, so
//! [`UnaryEncoding::perturb_bits_into`] generates whole 64-bit words instead,
//! choosing between two regimes on the protocol's `(p, q)`:
//!
//! * **Sparse** (`q ≤ 2⁻⁵`): the set bits of the Bernoulli(q) background are
//!   geometric **skip-sampled** — one `ln` draw per *flip*, `O(q·k)` work
//!   instead of `O(k)` — and each input 1-bit is then overwritten with an
//!   independent Bernoulli(p) decision (a single 64-bit threshold compare).
//! * **Dense** (`q > 2⁻⁵`): each output word is a batched 64-lane Bernoulli
//!   mask built by `bernoulli_mask` — a lexicographic fixed-point-threshold
//!   compare that spends one RNG word per *still-undecided* lane set, so a
//!   full 64-lane word costs `≈ log₂ 64 + 2 ≈ 8` draws instead of 64. OUE's
//!   `p = 1/2` mask is a single raw RNG word.
//!
//! The crossover constant comes from the per-word cost model: the dense scan
//! decides a `w`-lane word in `≈ log₂ w + 2` draws, while the sparse path
//! pays `≈ 3` draw-equivalents (one `f64` draw plus an `ln`) per expected
//! flip, i.e. `3·q·w` per word — `p` and `k` drop out because input 1-bits
//! cost one threshold compare in either regime and both costs scale linearly
//! with the word count. `3·q·64 < 8 ⇔ q < 1/24`; `2⁻⁵` keeps a safety
//! margin for the flatter small-`k` case (`benches/absorb.rs` measures the
//! two paths on either side at k ∈ {32, 256, 1024}).
//!
//! **Equivalence contract**: the word-parallel paths produce the *exact
//! per-protocol marginal distribution* (each output bit independently 1 with
//! probability `p` on input 1-lanes and `q` on 0-lanes, to the 64-bit
//! fixed-point resolution of `p` and `q` themselves) — but they consume RNG
//! draws in a different order and quantity than the per-bit reference, so
//! bit-stream equality with the old sanitizer is *not* part of the contract.
//! Correctness is certified statistically: `tests/sanitize_conformance.rs`
//! holds per-bit and pooled marginals inside 5σ analytic bands and checks
//! pairwise bit independence, with `#[cfg(test)]` injected-bug shims proving
//! the bands actually reject broken word-mask generators.

use rand::Rng;

use crate::bitvec::BitVec;
use crate::error::ProtocolError;
use crate::oracle::{FrequencyOracle, Report};
use crate::{validate_domain, validate_epsilon};

/// Which unary-encoding parametrization to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UeMode {
    /// SUE / Basic One-time RAPPOR (`p + q = 1`).
    Symmetric,
    /// OUE, variance-optimal (`p = 1/2`).
    Optimized,
}

impl UeMode {
    /// Paper-style name ("SUE" or "OUE").
    pub fn name(self) -> &'static str {
        match self {
            UeMode::Symmetric => "SUE",
            UeMode::Optimized => "OUE",
        }
    }
}

/// Sparse/dense crossover: skip-sampling is used when `q ≤ 2⁻⁵` (see the
/// module-level cost model).
const SPARSE_Q_MAX: f64 = 1.0 / 32.0;

/// `p = 1/2` as a 64-bit fixed-point threshold — OUE's kept-bit mask
/// degenerates to a single raw RNG word.
const HALF_THRESHOLD: u64 = 1u64 << 63;

/// Converts a probability to a 64-bit fixed-point threshold `t` such that
/// `rng.next_u64() < t` holds with probability `t · 2⁻⁶⁴` — the closest
/// representable value to `prob` (the float→int cast saturates, so
/// `prob ≥ 1 − 2⁻⁶⁵` maps to `u64::MAX`).
fn fixed_point(prob: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&prob), "probability out of range");
    (prob * 18_446_744_073_709_551_616.0) as u64
}

/// Builds a word whose `lanes` bits are independently 1 with probability
/// `threshold · 2⁻⁶⁴` (bits outside `lanes` are 0).
///
/// Each lane conceptually compares its own random bit stream against the
/// threshold's binary expansion, most significant bit first; a lane is
/// decided as soon as its drawn bit differs from the threshold bit, so the
/// undecided set halves per draw and a full 64-lane word finishes in
/// `≈ log₂ 64 + 2` draws in expectation (worst case 64 — lanes whose 64
/// drawn bits all equal the threshold compare `==`, which is *not* `<`, and
/// resolve to 0).
#[inline]
fn bernoulli_mask<R: Rng + ?Sized>(threshold: u64, lanes: u64, rng: &mut R) -> u64 {
    let mut ones = 0u64;
    let mut tied = lanes;
    let mut bit = 63u32;
    while tied != 0 {
        let r = rng.next_u64();
        if (threshold >> bit) & 1 == 1 {
            // Lanes that drew 0 under a threshold bit of 1 are decided `<`.
            ones |= tied & !r;
            tied &= r;
        } else {
            // Lanes that drew 1 under a threshold bit of 0 are decided `>`.
            tied &= !r;
        }
        if bit == 0 {
            break;
        }
        bit -= 1;
    }
    ones
}

/// Unary-encoding protocol (SUE or OUE) for one categorical attribute.
#[derive(Debug, Clone)]
pub struct UnaryEncoding {
    k: usize,
    epsilon: f64,
    mode: UeMode,
    p: f64,
    q: f64,
    /// 64-bit fixed-point thresholds of `p` and `q` (see [`fixed_point`]).
    p_thresh: u64,
    q_thresh: u64,
    /// `1 / ln(1 − q)` — the geometric skip-sampling gap scale.
    inv_log1mq: f64,
    /// Chosen regime for the Bernoulli(q) background (`q ≤ SPARSE_Q_MAX`).
    sparse: bool,
}

impl UnaryEncoding {
    /// Creates a UE instance for domain size `k`, budget `epsilon` and `mode`.
    pub fn new(k: usize, epsilon: f64, mode: UeMode) -> Result<Self, ProtocolError> {
        let k = validate_domain(k)?;
        let epsilon = validate_epsilon(epsilon)?;
        let (p, q) = match mode {
            UeMode::Symmetric => {
                let e2 = (epsilon / 2.0).exp();
                (e2 / (e2 + 1.0), 1.0 / (e2 + 1.0))
            }
            UeMode::Optimized => (0.5, 1.0 / (epsilon.exp() + 1.0)),
        };
        Ok(UnaryEncoding {
            k,
            epsilon,
            mode,
            p,
            q,
            p_thresh: fixed_point(p),
            q_thresh: fixed_point(q),
            inv_log1mq: 1.0 / (-q).ln_1p(),
            sparse: q <= SPARSE_Q_MAX,
        })
    }

    /// The parametrization in use.
    pub fn mode(&self) -> UeMode {
        self.mode
    }

    /// Probability that a 1-bit stays 1.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability that a 0-bit flips to 1.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Whether the Bernoulli(q) background uses the geometric skip-sampling
    /// regime (`q ≤ 2⁻⁵`) rather than batched dense word masks — exposed so
    /// benches and the conformance suite can label which side of the
    /// crossover a configuration lands on.
    pub fn sparse_path(&self) -> bool {
        self.sparse
    }

    /// Sanitizes an arbitrary `k`-bit input vector: 1-bits stay 1 with
    /// probability `p`, 0-bits become 1 with probability `q`, every bit
    /// independent. Allocating wrapper around
    /// [`UnaryEncoding::perturb_bits_into`].
    ///
    /// # Panics
    /// Panics if `input.len() != k`.
    pub fn perturb_bits<R: Rng + ?Sized>(&self, input: &BitVec, rng: &mut R) -> BitVec {
        let mut out = BitVec::zeros(self.k);
        self.perturb_bits_into(input, &mut out, rng);
        out
    }

    /// [`UnaryEncoding::perturb_bits`] into a caller-owned vector — the
    /// zero-allocation sanitize entry point. Prior content of `out` is
    /// overwritten whole-word (sparse runs clear it first), so a pooled
    /// vector can be reused across reports without reallocating.
    ///
    /// # Panics
    /// Panics if `input.len() != k` or `out.len() != k`.
    pub fn perturb_bits_into<R: Rng + ?Sized>(
        &self,
        input: &BitVec,
        out: &mut BitVec,
        rng: &mut R,
    ) {
        assert_eq!(input.len(), self.k, "input length must equal domain size");
        assert_eq!(out.len(), self.k, "output length must equal domain size");
        self.perturb_with(input, out, rng, self.sparse);
    }

    /// Sanitizes the all-zero vector (the RS+FD `UE-z` fake-data primitive).
    /// The zero input is never materialized — the word-parallel background
    /// sampler writes the Bernoulli(q) words directly — so the only
    /// allocation is the returned vector itself.
    pub fn perturb_zero_vector<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        let mut out = BitVec::zeros(self.k);
        self.perturb_zero_vector_into(&mut out, rng);
        out
    }

    /// [`UnaryEncoding::perturb_zero_vector`] into a caller-owned vector
    /// (zero allocations; prior content is overwritten).
    ///
    /// # Panics
    /// Panics if `out.len() != k`.
    pub fn perturb_zero_vector_into<R: Rng + ?Sized>(&self, out: &mut BitVec, rng: &mut R) {
        assert_eq!(out.len(), self.k, "output length must equal domain size");
        self.sample_background_into(out, rng, self.sparse);
    }

    /// The original per-bit sanitizer (one `f64` draw per lane), kept as the
    /// distributional reference the conformance suite and the sanitize
    /// micro-bench compare the word-parallel paths against.
    #[doc(hidden)]
    pub fn perturb_bits_reference<R: Rng + ?Sized>(&self, input: &BitVec, rng: &mut R) -> BitVec {
        assert_eq!(input.len(), self.k, "input length must equal domain size");
        let mut out = BitVec::zeros(self.k);
        for i in 0..self.k {
            let keep_p = if input.get(i) { self.p } else { self.q };
            if rng.random::<f64>() < keep_p {
                out.set(i, true);
            }
        }
        out
    }

    /// Forced sparse-regime sanitize (conformance-testing hook: the
    /// crossover property tests drive both regimes on the same `(p, q, k)`).
    #[doc(hidden)]
    pub fn perturb_bits_sparse_into<R: Rng + ?Sized>(
        &self,
        input: &BitVec,
        out: &mut BitVec,
        rng: &mut R,
    ) {
        assert_eq!(input.len(), self.k, "input length must equal domain size");
        assert_eq!(out.len(), self.k, "output length must equal domain size");
        self.perturb_with(input, out, rng, true);
    }

    /// Forced dense-regime sanitize (conformance-testing hook).
    #[doc(hidden)]
    pub fn perturb_bits_dense_into<R: Rng + ?Sized>(
        &self,
        input: &BitVec,
        out: &mut BitVec,
        rng: &mut R,
    ) {
        assert_eq!(input.len(), self.k, "input length must equal domain size");
        assert_eq!(out.len(), self.k, "output length must equal domain size");
        self.perturb_with(input, out, rng, false);
    }

    /// The word-parallel sanitizer behind every public path.
    fn perturb_with<R: Rng + ?Sized>(
        &self,
        input: &BitVec,
        out: &mut BitVec,
        rng: &mut R,
        sparse: bool,
    ) {
        if sparse {
            // Bernoulli(q) background over all lanes (input 1-lanes
            // included), then each input 1-bit is overwritten with an
            // independent Bernoulli(p) decision — the final marginal of a
            // 1-lane is exactly p regardless of its background draw.
            self.sample_background_into(out, rng, true);
            for j in input.ones() {
                out.set(j, rng.next_u64() < self.p_thresh);
            }
        } else {
            for wi in 0..out.word_count() {
                let lanes = out.lane_mask(wi);
                let in_w = input.blocks()[wi];
                let q_mask = bernoulli_mask(self.q_thresh, lanes & !in_w, rng);
                let word = if in_w == 0 {
                    q_mask
                } else {
                    let p_mask = if self.p_thresh == HALF_THRESHOLD {
                        rng.next_u64()
                    } else {
                        bernoulli_mask(self.p_thresh, in_w, rng)
                    };
                    (in_w & p_mask) | q_mask
                };
                out.set_word(wi, word);
            }
        }
    }

    /// Overwrites `out` with independent Bernoulli(q) bits — the shared
    /// background stage of every sanitize path (and the whole of `UE-z`).
    fn sample_background_into<R: Rng + ?Sized>(&self, out: &mut BitVec, rng: &mut R, sparse: bool) {
        if sparse {
            out.clear();
            let mut pos = self.next_gap(rng);
            let end = self.k as f64;
            while pos < end {
                out.set(pos as usize, true);
                pos += 1.0 + self.next_gap(rng);
            }
        } else {
            for wi in 0..out.word_count() {
                let lanes = out.lane_mask(wi);
                out.set_word(wi, bernoulli_mask(self.q_thresh, lanes, rng));
            }
        }
    }

    /// One geometric skip-sampling gap: the number of unflipped lanes before
    /// the next flip, `⌊ln(1−U) / ln(1−q)⌋` with `U` uniform in `[0, 1)`.
    /// Kept in `f64` so a huge gap (tiny `q`) compares against `k` without
    /// integer overflow.
    #[inline]
    fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        ((-u).ln_1p() * self.inv_log1mq).floor()
    }
}

impl FrequencyOracle for UnaryEncoding {
    fn domain_size(&self) -> usize {
        self.k
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn randomize<R: Rng + ?Sized>(&self, value: u32, rng: &mut R) -> Report {
        debug_assert!((value as usize) < self.k, "value out of domain");
        // One-hot sanitize without materializing the one-hot input: sample
        // the Bernoulli(q) background, then overwrite the hot lane with an
        // independent Bernoulli(p) decision.
        let mut out = BitVec::zeros(self.k);
        self.sample_background_into(&mut out, rng, self.sparse);
        out.set(value as usize, rng.next_u64() < self.p_thresh);
        Report::Bits(out)
    }

    fn supports(&self, report: &Report, value: u32) -> bool {
        matches!(report, Report::Bits(bits) if bits.get(value as usize))
    }

    fn est_p(&self) -> f64 {
        self.p
    }

    fn est_q(&self) -> f64 {
        self.q
    }
}

/// Word-fused sanitizer for a tuple of [`UnaryEncoding`] oracles that share
/// one `(p, q)` pair and whose domains pack into a single 64-bit word.
///
/// SPL\[UE\] tuples have exactly this shape: every attribute runs at the same
/// per-attribute budget ε/d, and UE's `(p, q)` depend only on ε — not on the
/// domain size — so the Bernoulli(q) backgrounds of all `d` one-hot reports
/// can be drawn as *one* `bernoulli_mask` scan over the packed lanes
/// (`≈ log₂ Σk + 2` draws for the whole tuple instead of per attribute), and
/// the `d` kept-bit decisions collapse into a single mask (one raw RNG word
/// for OUE's `p = 1/2`). The packed word is then sliced back into
/// per-attribute [`Report::Bits`] vectors via [`BitVec::from_word`], so the
/// fused path allocates nothing beyond the caller's report vector.
///
/// Marginals are identical to calling [`FrequencyOracle::randomize`] once per
/// oracle — every packed lane still compares its own independent bit stream
/// against the shared threshold — only the draw order and count differ, which
/// the statistical-equivalence contract (module docs) explicitly permits.
#[derive(Debug, Clone)]
pub struct FusedUeGroup {
    p_thresh: u64,
    q_thresh: u64,
    /// Packed layout: `(bit offset, domain size)` per attribute, in tuple
    /// order, tightly packed from bit 0.
    layout: Vec<(u32, u32)>,
    /// Union of all packed lanes (bits `0..Σk`).
    lanes: u64,
}

impl FusedUeGroup {
    /// Builds the fused sanitizer, or `None` when the tuple cannot fuse: an
    /// empty group, mixed `(p, q)` thresholds (different budgets or modes),
    /// or a packed width beyond one 64-bit word.
    pub fn build<'a, I>(oracles: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a UnaryEncoding>,
    {
        let mut it = oracles.into_iter();
        let first = it.next()?;
        let (p_thresh, q_thresh) = (first.p_thresh, first.q_thresh);
        let mut layout = vec![(0u32, first.k as u32)];
        let mut total = first.k;
        for ue in it {
            if ue.p_thresh != p_thresh || ue.q_thresh != q_thresh {
                return None;
            }
            layout.push((total as u32, ue.k as u32));
            total += ue.k;
        }
        if total > 64 {
            return None;
        }
        let lanes = if total == 64 { !0 } else { (1u64 << total) - 1 };
        Some(FusedUeGroup {
            p_thresh,
            q_thresh,
            layout,
            lanes,
        })
    }

    /// Number of fused attributes.
    pub fn width(&self) -> usize {
        self.layout.len()
    }

    /// Sanitizes the whole tuple with one fused word draw, pushing one
    /// `k_j`-bit [`Report::Bits`] per attribute onto `out`.
    ///
    /// # Panics
    /// Panics if `values.len() != self.width()`; each value must be inside
    /// its attribute's domain (debug-asserted).
    pub fn randomize_tuple_into<R: Rng + ?Sized>(
        &self,
        values: &[u32],
        out: &mut Vec<Report>,
        rng: &mut R,
    ) {
        assert_eq!(values.len(), self.layout.len(), "tuple width mismatch");
        let mut hot = 0u64;
        for (&v, &(off, k)) in values.iter().zip(&self.layout) {
            debug_assert!(v < k, "value {v} out of domain {k}");
            hot |= 1u64 << (off + v);
        }
        let q_mask = bernoulli_mask(self.q_thresh, self.lanes & !hot, rng);
        let p_mask = if self.p_thresh == HALF_THRESHOLD {
            rng.next_u64()
        } else {
            bernoulli_mask(self.p_thresh, hot, rng)
        };
        let word = (hot & p_mask) | q_mask;
        out.reserve(self.layout.len());
        for &(off, k) in &self.layout {
            let mask = if k == 64 { !0 } else { (1u64 << k) - 1 };
            out.push(Report::Bits(BitVec::from_word(
                (word >> off) & mask,
                k as usize,
            )));
        }
    }
}

/// Deliberate word-mask defects injected behind the test shim
/// [`UnaryEncoding::perturb_bits_buggy`], so the sanitize conformance bands
/// can prove they *reject* each class of bug (power guards — the statistical
/// suite must not rot into a rubber stamp).
#[cfg(test)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InjectedBug {
    /// Off-by-one in an 8-bit-coarse fixed-point compare: the q threshold is
    /// shifted up by exactly 2⁻⁸, biasing every 0-lane by +1/256.
    BiasedThreshold,
    /// The final partial word of a non-multiple-of-64 domain is never
    /// sanitized (its lanes stay 0).
    SkippedTail,
    /// The first word's Bernoulli(q) mask is reused for every later word,
    /// perfectly correlating same-lane bits across words.
    ReusedMask,
}

#[cfg(test)]
impl UnaryEncoding {
    /// Dense-regime sanitize with `bug` injected — test-only shim.
    pub(crate) fn perturb_bits_buggy<R: Rng + ?Sized>(
        &self,
        input: &BitVec,
        rng: &mut R,
        bug: InjectedBug,
    ) -> BitVec {
        assert_eq!(input.len(), self.k, "input length must equal domain size");
        let q_thresh = match bug {
            InjectedBug::BiasedThreshold => self.q_thresh + (1u64 << 56),
            _ => self.q_thresh,
        };
        let mut out = BitVec::zeros(self.k);
        let words = out.word_count();
        let mut reused: Option<u64> = None;
        for wi in 0..words {
            if bug == InjectedBug::SkippedTail && wi + 1 == words && !self.k.is_multiple_of(64) {
                continue;
            }
            let lanes = out.lane_mask(wi);
            let in_w = input.blocks()[wi];
            let q_mask = match (bug, reused) {
                (InjectedBug::ReusedMask, Some(mask)) => mask,
                _ => {
                    let mask = bernoulli_mask(q_thresh, lanes & !in_w, rng);
                    reused = Some(mask);
                    mask
                }
            };
            let word = if in_w == 0 {
                q_mask
            } else {
                let p_mask = if self.p_thresh == HALF_THRESHOLD {
                    rng.next_u64()
                } else {
                    bernoulli_mask(self.p_thresh, in_w, rng)
                };
                (in_w & p_mask) | q_mask
            };
            out.set_word(wi, word);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sue_parameters_are_symmetric() {
        let ue = UnaryEncoding::new(10, 2.0, UeMode::Symmetric).unwrap();
        assert!((ue.p() + ue.q() - 1.0).abs() < 1e-12);
        let e2 = 1.0f64.exp(); // e^{2/2}
        assert!((ue.p() - e2 / (e2 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn oue_parameters_match_closed_form() {
        let ue = UnaryEncoding::new(10, 2.0, UeMode::Optimized).unwrap();
        assert!((ue.p() - 0.5).abs() < 1e-12);
        assert!((ue.q() - 1.0 / (2.0f64.exp() + 1.0)).abs() < 1e-12);
        assert_eq!(ue.p_thresh, HALF_THRESHOLD, "OUE p must be exactly 1/2");
    }

    #[test]
    fn both_modes_satisfy_epsilon_ldp_identity() {
        // ε = ln(p(1−q) / ((1−p)q)) must hold exactly.
        for mode in [UeMode::Symmetric, UeMode::Optimized] {
            for eps in [0.5, 1.0, 4.0] {
                let ue = UnaryEncoding::new(7, eps, mode).unwrap();
                let implied = (ue.p() * (1.0 - ue.q()) / ((1.0 - ue.p()) * ue.q())).ln();
                assert!(
                    (implied - eps).abs() < 1e-9,
                    "{:?} eps={eps}: implied {implied}",
                    mode
                );
            }
        }
    }

    #[test]
    fn crossover_follows_q() {
        // ε = 1 → OUE q ≈ 0.27 (dense); ε = 4 → q ≈ 0.018 (sparse).
        assert!(!UnaryEncoding::new(8, 1.0, UeMode::Optimized)
            .unwrap()
            .sparse_path());
        assert!(UnaryEncoding::new(8, 4.0, UeMode::Optimized)
            .unwrap()
            .sparse_path());
        // SUE at ε = 8 → q = 1/(e⁴+1) ≈ 0.018 (sparse).
        assert!(UnaryEncoding::new(8, 8.0, UeMode::Symmetric)
            .unwrap()
            .sparse_path());
    }

    #[test]
    fn fixed_point_thresholds_match_probabilities() {
        for prob in [0.0f64, 1e-9, 0.25, 0.5, 0.75, 1.0 - 1e-12, 1.0] {
            let t = fixed_point(prob);
            let back = t as f64 / 18_446_744_073_709_551_616.0;
            assert!(
                (back - prob).abs() < 1e-12,
                "prob {prob}: threshold round-trips to {back}"
            );
        }
    }

    #[test]
    fn bernoulli_mask_respects_lanes_and_rate() {
        let mut rng = StdRng::seed_from_u64(99);
        let lanes = 0x00FF_FF00_0F0F_0FF0u64;
        let t = fixed_point(0.3);
        let trials = 20_000;
        let mut set = 0u64;
        for _ in 0..trials {
            let m = bernoulli_mask(t, lanes, &mut rng);
            assert_eq!(m & !lanes, 0, "bits outside lanes must stay zero");
            set += m.count_ones() as u64;
        }
        let rate = set as f64 / (trials as f64 * lanes.count_ones() as f64);
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn randomize_produces_k_bit_reports() {
        let ue = UnaryEncoding::new(16, 1.0, UeMode::Optimized).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        match ue.randomize(3, &mut rng) {
            Report::Bits(b) => assert_eq!(b.len(), 16),
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn empirical_bit_rates_match_p_and_q() {
        let ue = UnaryEncoding::new(8, 1.5, UeMode::Symmetric).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 40_000;
        let mut true_bit = 0usize;
        let mut other_bit = 0usize;
        for _ in 0..trials {
            if let Report::Bits(b) = ue.randomize(2, &mut rng) {
                if b.get(2) {
                    true_bit += 1;
                }
                if b.get(5) {
                    other_bit += 1;
                }
            }
        }
        let p_emp = true_bit as f64 / trials as f64;
        let q_emp = other_bit as f64 / trials as f64;
        assert!((p_emp - ue.p()).abs() < 0.01);
        assert!((q_emp - ue.q()).abs() < 0.01);
    }

    #[test]
    fn perturb_zero_vector_sets_bits_at_rate_q() {
        let ue = UnaryEncoding::new(50, 1.0, UeMode::Optimized).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 2000;
        let total: usize = (0..trials)
            .map(|_| ue.perturb_zero_vector(&mut rng).count_ones())
            .sum();
        let rate = total as f64 / (trials * 50) as f64;
        assert!((rate - ue.q()).abs() < 0.01, "rate {rate} vs q {}", ue.q());
    }

    #[test]
    fn perturb_bits_into_reuses_the_output_vector() {
        let ue = UnaryEncoding::new(100, 1.0, UeMode::Symmetric).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let input = BitVec::one_hot(100, 61);
        let mut out = BitVec::zeros(100);
        // Fill with garbage first: every path must fully overwrite.
        for wi in 0..out.word_count() {
            out.set_word(wi, !0);
        }
        ue.perturb_bits_into(&input, &mut out, &mut rng);
        let ones = out.count_ones();
        // SUE at ε=1: q ≈ 0.38, so ~38 background ones expected; a stale
        // all-ones vector would report ~100.
        assert!(ones < 70, "stale output content leaked: {ones} ones");
        // The trailing-lane invariant survives word writes (k = 100).
        let rebuilt = BitVec::from_blocks(out.blocks().to_vec(), 100);
        assert_eq!(rebuilt, out);
    }

    #[test]
    fn sparse_and_dense_agree_with_reference_on_pooled_rates() {
        // Quick three-way smoke (the full suite lives in
        // tests/sanitize_conformance.rs): pooled 1-lane and 0-lane rates of
        // the forced sparse path, forced dense path and per-bit reference
        // all match (p, q) at 5σ.
        let k = 96;
        let ue = UnaryEncoding::new(k, 2.0, UeMode::Optimized).unwrap();
        let mut input = BitVec::zeros(k);
        for i in [3usize, 64, 65, 95] {
            input.set(i, true);
        }
        let trials = 30_000usize;
        let ones_lanes = input.count_ones();
        let zero_lanes = k - ones_lanes;
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let mut check = |label: &str, f: &mut dyn FnMut(&mut StdRng) -> BitVec| {
            let (mut on_ones, mut on_zeros) = (0usize, 0usize);
            for _ in 0..trials {
                let out = f(&mut rng);
                for j in out.ones() {
                    if input.get(j) {
                        on_ones += 1;
                    } else {
                        on_zeros += 1;
                    }
                }
            }
            let p_hat = on_ones as f64 / (trials * ones_lanes) as f64;
            let q_hat = on_zeros as f64 / (trials * zero_lanes) as f64;
            let p_tol = 5.0 * (ue.p() * (1.0 - ue.p()) / (trials * ones_lanes) as f64).sqrt();
            let q_tol = 5.0 * (ue.q() * (1.0 - ue.q()) / (trials * zero_lanes) as f64).sqrt();
            assert!(
                (p_hat - ue.p()).abs() <= p_tol,
                "{label}: p_hat {p_hat} vs p {} (tol {p_tol})",
                ue.p()
            );
            assert!(
                (q_hat - ue.q()).abs() <= q_tol,
                "{label}: q_hat {q_hat} vs q {} (tol {q_tol})",
                ue.q()
            );
        };
        check("sparse", &mut |rng| {
            let mut out = BitVec::zeros(k);
            ue.perturb_bits_sparse_into(&input, &mut out, rng);
            out
        });
        check("dense", &mut |rng| {
            let mut out = BitVec::zeros(k);
            ue.perturb_bits_dense_into(&input, &mut out, rng);
            out
        });
        check("reference", &mut |rng| {
            ue.perturb_bits_reference(&input, rng)
        });
    }

    #[test]
    fn fused_group_rejects_mixed_parameters_and_wide_tuples() {
        let a = UnaryEncoding::new(16, 1.0, UeMode::Optimized).unwrap();
        let b = UnaryEncoding::new(8, 1.0, UeMode::Optimized).unwrap();
        assert!(FusedUeGroup::build([&a, &b]).is_some());
        // Mismatched budgets → different (p, q) thresholds.
        let other_eps = UnaryEncoding::new(8, 2.0, UeMode::Optimized).unwrap();
        assert!(FusedUeGroup::build([&a, &other_eps]).is_none());
        // Mismatched modes at equal ε likewise.
        let sue = UnaryEncoding::new(8, 1.0, UeMode::Symmetric).unwrap();
        assert!(FusedUeGroup::build([&a, &sue]).is_none());
        // Σk > 64 cannot pack into one word.
        let wide = UnaryEncoding::new(49, 1.0, UeMode::Optimized).unwrap();
        assert!(FusedUeGroup::build([&a, &wide]).is_none());
        // Σk = 64 exactly still packs.
        let rest = UnaryEncoding::new(48, 1.0, UeMode::Optimized).unwrap();
        assert!(FusedUeGroup::build([&a, &rest]).is_some());
        assert!(FusedUeGroup::build(std::iter::empty()).is_none());
    }

    #[test]
    fn fused_tuple_marginals_match_per_oracle_randomize() {
        // SUE exercises the non-trivial p-mask scan (p ≠ 1/2); pooled hot and
        // background rates of the fused path must sit in the same 5σ bands as
        // the per-oracle path's analytic (p, q).
        for mode in [UeMode::Symmetric, UeMode::Optimized] {
            let ks = [16usize, 8, 5, 4];
            let ues: Vec<UnaryEncoding> = ks
                .iter()
                .map(|&k| UnaryEncoding::new(k, 0.25, mode).unwrap())
                .collect();
            let fused = FusedUeGroup::build(ues.iter()).unwrap();
            assert_eq!(fused.width(), ks.len());
            let tuple = [3u32, 7, 0, 2];
            let trials = 30_000usize;
            let mut rng = StdRng::seed_from_u64(0xF05E + mode as u64);
            let (mut hot, mut cold) = (0usize, 0usize);
            let mut out = Vec::new();
            for _ in 0..trials {
                out.clear();
                fused.randomize_tuple_into(&tuple, &mut out, &mut rng);
                for (j, report) in out.iter().enumerate() {
                    let Report::Bits(bits) = report else {
                        panic!("unexpected shape {report:?}");
                    };
                    assert_eq!(bits.len(), ks[j]);
                    hot += bits.get(tuple[j] as usize) as usize;
                    cold += bits.count_ones() - bits.get(tuple[j] as usize) as usize;
                }
            }
            let (p, q) = (ues[0].p(), ues[0].q());
            let hot_lanes = trials * ks.len();
            let cold_lanes = trials * (ks.iter().sum::<usize>() - ks.len());
            let p_hat = hot as f64 / hot_lanes as f64;
            let q_hat = cold as f64 / cold_lanes as f64;
            let p_tol = 5.0 * (p * (1.0 - p) / hot_lanes as f64).sqrt();
            let q_tol = 5.0 * (q * (1.0 - q) / cold_lanes as f64).sqrt();
            assert!(
                (p_hat - p).abs() <= p_tol,
                "{mode:?}: p_hat {p_hat} vs p {p} (tol {p_tol})"
            );
            assert!(
                (q_hat - q).abs() <= q_tol,
                "{mode:?}: q_hat {q_hat} vs q {q} (tol {q_tol})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "tuple width")]
    fn fused_randomize_rejects_wrong_width() {
        let a = UnaryEncoding::new(8, 1.0, UeMode::Optimized).unwrap();
        let fused = FusedUeGroup::build([&a]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        fused.randomize_tuple_into(&[1, 2], &mut Vec::new(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn perturb_bits_rejects_wrong_length() {
        let ue = UnaryEncoding::new(8, 1.0, UeMode::Symmetric).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = ue.perturb_bits(&BitVec::zeros(9), &mut rng);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn perturb_bits_into_rejects_wrong_output_length() {
        let ue = UnaryEncoding::new(8, 1.0, UeMode::Symmetric).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = BitVec::zeros(7);
        ue.perturb_bits_into(&BitVec::zeros(8), &mut out, &mut rng);
    }
}

/// Power guards for the sanitize conformance bands: each deliberately broken
/// word-mask generator behind the [`InjectedBug`] shim must be *rejected* by
/// the same statistical machinery that certifies the real paths, so the
/// bands cannot silently widen into a rubber stamp. (The positive
/// conformance suite over the public API lives in
/// `tests/sanitize_conformance.rs`; these negative twins live in-crate
/// because `#[cfg(test)]` shims are invisible to integration tests.)
#[cfg(test)]
mod power_guards {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const Z: f64 = 5.0;

    /// Pooled 0-lane rate of `trials` sanitizations of the zero vector.
    fn pooled_q_rate(
        ue: &UnaryEncoding,
        trials: usize,
        mut sample: impl FnMut(&mut StdRng) -> BitVec,
        rng: &mut StdRng,
    ) -> f64 {
        let mut set = 0usize;
        for _ in 0..trials {
            set += sample(rng).count_ones();
        }
        set as f64 / (trials * ue.domain_size()) as f64
    }

    #[test]
    fn biased_threshold_is_caught_by_the_pooled_band() {
        // k·trials ≈ 1M pooled 0-lane samples → 5σ ≈ 2.2e-3, well under the
        // injected +2⁻⁸ ≈ 3.9e-3 bias; the honest path must pass the same
        // band.
        let k = 257;
        let trials = 4000;
        let ue = UnaryEncoding::new(k, 1.0, UeMode::Optimized).unwrap();
        let zero = BitVec::zeros(k);
        let tol = Z * (ue.q() * (1.0 - ue.q()) / (trials * k) as f64).sqrt();
        let mut rng = StdRng::seed_from_u64(0x9A5D_0001);
        let honest = pooled_q_rate(&ue, trials, |r| ue.perturb_bits(&zero, r), &mut rng);
        assert!(
            (honest - ue.q()).abs() <= tol,
            "honest path outside its own band: {honest} vs {} (tol {tol})",
            ue.q()
        );
        let buggy = pooled_q_rate(
            &ue,
            trials,
            |r| ue.perturb_bits_buggy(&zero, r, InjectedBug::BiasedThreshold),
            &mut rng,
        );
        assert!(
            (buggy - ue.q()).abs() > tol,
            "off-by-one fixed-point threshold slipped through the band: \
             {buggy} vs {} (tol {tol})",
            ue.q()
        );
    }

    #[test]
    fn skipped_word_tail_is_caught_by_the_per_bit_band() {
        // k = 257 leaves a 1-lane tail word; a generator that forgets it
        // reports that lane at rate 0 instead of q ≈ 0.27 — far outside the
        // per-bit 5σ band at 4000 trials.
        let k = 257;
        let trials = 4000;
        let ue = UnaryEncoding::new(k, 1.0, UeMode::Optimized).unwrap();
        let zero = BitVec::zeros(k);
        let tail = k - 1;
        let tol = Z * (ue.q() * (1.0 - ue.q()) / trials as f64).sqrt();
        let mut rng = StdRng::seed_from_u64(0x9A5D_0002);
        let per_bit_rate = |sample: &mut dyn FnMut(&mut StdRng) -> BitVec, rng: &mut StdRng| {
            let mut set = 0usize;
            for _ in 0..trials {
                if sample(rng).get(tail) {
                    set += 1;
                }
            }
            set as f64 / trials as f64
        };
        let honest = per_bit_rate(&mut |r| ue.perturb_bits(&zero, r), &mut rng);
        assert!(
            (honest - ue.q()).abs() <= tol,
            "honest tail lane outside band: {honest} (tol {tol})"
        );
        let buggy = per_bit_rate(
            &mut |r| ue.perturb_bits_buggy(&zero, r, InjectedBug::SkippedTail),
            &mut rng,
        );
        assert!(
            (buggy - ue.q()).abs() > tol,
            "skipped tail word slipped through the band: {buggy} (tol {tol})"
        );
    }

    #[test]
    fn reused_mask_is_caught_by_the_covariance_band() {
        // Same-lane bits one word apart must be independent: empirical
        // covariance within ±(5σ + slack) of zero. Reusing word 0's mask
        // makes those pairs identical (covariance q(1−q) ≈ 0.2).
        let k = 256;
        let trials = 3000;
        let ue = UnaryEncoding::new(k, 1.0, UeMode::Optimized).unwrap();
        let zero = BitVec::zeros(k);
        let q = ue.q();
        // Var(b_i · b_j) = q²(1 − q²) under independence.
        let tol = Z * (q * q * (1.0 - q * q) / trials as f64).sqrt() + 0.01;
        let max_abs_cov = |sample: &mut dyn FnMut(&mut StdRng) -> BitVec, rng: &mut StdRng| {
            let mut joint = vec![0u32; 64];
            let mut lo = vec![0u32; 64];
            let mut hi = vec![0u32; 64];
            for _ in 0..trials {
                let out = sample(rng);
                for lane in 0..64usize {
                    let a = out.get(lane);
                    let b = out.get(lane + 64);
                    lo[lane] += a as u32;
                    hi[lane] += b as u32;
                    joint[lane] += (a && b) as u32;
                }
            }
            (0..64usize)
                .map(|lane| {
                    let n = trials as f64;
                    (joint[lane] as f64 / n - (lo[lane] as f64 / n) * (hi[lane] as f64 / n)).abs()
                })
                .fold(0.0f64, f64::max)
        };
        let mut rng = StdRng::seed_from_u64(0x9A5D_0003);
        let honest = max_abs_cov(&mut |r| ue.perturb_bits(&zero, r), &mut rng);
        assert!(
            honest <= tol,
            "honest path shows cross-word covariance {honest} (tol {tol})"
        );
        let buggy = max_abs_cov(
            &mut |r| ue.perturb_bits_buggy(&zero, r, InjectedBug::ReusedMask),
            &mut rng,
        );
        assert!(
            buggy > tol,
            "reused word mask slipped through the covariance band: \
             {buggy} (tol {tol})"
        );
    }
}
