//! The §3.2.1 "plausible deniability" attack: given one sanitized report, the
//! adversary predicts the user's true value as the most likely input.
//!
//! Per-protocol best-guess rules (from the paper):
//!
//! * **GRR** — the reported value itself.
//! * **OLH** — a uniform choice within the preimage of the reported hash value.
//! * **ω-SS** — a uniform choice within the reported subset Ω.
//! * **SUE/OUE** — the single set bit; a uniform choice among set bits when
//!   several; a uniform domain guess when none.
//!
//! [`expected_acc`] gives the closed-form expected attacker accuracy of each
//! rule using the *actual integer* protocol parameters (ω, g); the
//! [`paper`] submodule keeps the continuous-approximation formulas printed in
//! the paper for comparison. Note: the paper's SUE formula contains a
//! typographical slip (`e^{ε/2}/(e^{ε/2}+1)^i`); the derivation consistent
//! with its own OUE formula is `p/i · Bin(i−1; k−1, q)`, which is what we
//! implement and validate against Monte-Carlo simulation.

use rand::Rng;

use crate::oracle::{FrequencyOracle, Oracle, Report};

/// Predicts the user's true value from a single sanitized report, following
/// the per-protocol plausible-deniability rules of §3.2.1.
///
/// Randomness is only used to break ties (uniform choices among candidate
/// sets). Allocating convenience over [`best_guess_with`]; per-report attack
/// loops should reuse a scratch buffer through that entry point instead.
pub fn best_guess<R: Rng + ?Sized>(oracle: &Oracle, report: &Report, rng: &mut R) -> u32 {
    best_guess_with(oracle, report, &mut Vec::new(), rng)
}

/// [`best_guess`] with a caller-provided candidate buffer: the OLH arm
/// writes the hash preimage into `scratch` ([`crate::Olh::preimage_into`])
/// instead of allocating one `Vec` per report, so profiling sweeps over
/// millions of observed messages reuse a single buffer. Identical guesses
/// and rng consumption as [`best_guess`].
pub fn best_guess_with<R: Rng + ?Sized>(
    oracle: &Oracle,
    report: &Report,
    scratch: &mut Vec<u32>,
    rng: &mut R,
) -> u32 {
    let k = oracle.domain_size() as u32;
    match (oracle, report) {
        (Oracle::Grr(_), Report::Value(v)) => *v,
        (Oracle::Olh(olh), Report::Hashed { seed, value, .. }) => {
            olh.preimage_into(*seed, *value, scratch);
            if scratch.is_empty() {
                rng.random_range(0..k)
            } else {
                scratch[rng.random_range(0..scratch.len())]
            }
        }
        (Oracle::Ss(_), Report::Subset(subset)) => {
            if subset.is_empty() {
                rng.random_range(0..k)
            } else {
                subset[rng.random_range(0..subset.len())]
            }
        }
        (Oracle::Ue(_), Report::Bits(bits)) => guess_from_bits(bits, k, rng),
        // A mismatched shape carries no information: fall back to random.
        _ => rng.random_range(0..k),
    }
}

/// Predicts the true value from a report *without* protocol internals —
/// covers the shapes appearing in RS+FD tuples (plain values, subsets and
/// unary vectors; hashed reports need the oracle, use [`best_guess`]).
pub fn best_guess_report<R: Rng + ?Sized>(report: &Report, k: usize, rng: &mut R) -> u32 {
    match report {
        Report::Value(v) => *v,
        Report::Subset(subset) if !subset.is_empty() => subset[rng.random_range(0..subset.len())],
        Report::Bits(bits) => guess_from_bits(bits, k as u32, rng),
        _ => rng.random_range(0..k as u32),
    }
}

/// The UE guess rule, allocation-free: a uniform pick among the set bits is
/// drawn by index and resolved with a second bit scan instead of
/// materializing `ones_vec`. Same guesses and rng draws as the historical
/// `ones_vec`-based rule (a single set bit is returned without consuming
/// randomness).
fn guess_from_bits<R: Rng + ?Sized>(bits: &crate::BitVec, k: u32, rng: &mut R) -> u32 {
    match bits.count_ones() {
        0 => rng.random_range(0..k),
        1 => bits.ones().next().expect("one set bit") as u32,
        n => {
            let pick = rng.random_range(0..n);
            bits.ones().nth(pick).expect("pick < count_ones") as u32
        }
    }
}

/// Expected accuracy (in `[0, 1]`) of [`best_guess`] for `oracle`, using the
/// protocol's actual integer parameters.
pub fn expected_acc(oracle: &Oracle) -> f64 {
    match oracle {
        Oracle::Grr(g) => g.p(),
        Oracle::Olh(o) => {
            // Exact expectation with integer g. Case "report = H(v)" (prob
            // p'): the preimage contains v plus B ~ Bin(k−1, 1/g) other
            // values and the uniform pick succeeds with E[1/(1+B)] =
            // g(1 − (1−1/g)^k)/k. Case "report ≠ H(v)" (prob 1−p'): v is not
            // in the preimage, so the attacker only succeeds via the
            // empty-preimage fallback (uniform domain guess, prob 1/k).
            let k = o.domain_size() as f64;
            let g = f64::from(o.g());
            let miss = 1.0 - 1.0 / g;
            let hit_term = o.p_hash() * g * (1.0 - miss.powf(k)) / k;
            let empty_term = (1.0 - o.p_hash()) * miss.powf(k - 1.0) / k;
            hit_term + empty_term
        }
        Oracle::Ss(ss) => {
            // Correct iff v ∈ Ω (prob p) and the uniform pick lands on v (1/ω).
            ss.p() / ss.omega() as f64
        }
        Oracle::Ue(ue) => acc_ue(ue.domain_size(), ue.p(), ue.q()),
    }
}

/// Expected plausible-deniability accuracy for a UE protocol with bit-keep
/// probability `p`, bit-flip probability `q` and domain size `k`:
///
/// `ACC = (1−p)(1−q)^{k−1}/k + Σ_{i=1..k} (p/i)·Bin(i−1; k−1, q)`.
pub fn acc_ue(k: usize, p: f64, q: f64) -> f64 {
    let kf = k as f64;
    // Case: true bit flipped to 0 and no other bit set → uniform domain guess.
    let mut acc = (1.0 - p) * (1.0 - q).powi(k as i32 - 1) / kf;
    // Case: true bit kept and i−1 of the k−1 other bits flipped on → 1/i.
    let mut pmf = (1.0 - q).powi(k as i32 - 1); // Bin(0; k−1, q)
    let ratio = q / (1.0 - q);
    for i in 1..=k {
        acc += p / i as f64 * pmf;
        // Advance pmf from Bin(i−1) to Bin(i): multiply by C ratio.
        let j = i as f64; // next number of successes
        if i < k {
            pmf *= (kf - j) / j * ratio;
        }
    }
    acc
}

/// Continuous-approximation closed forms exactly as printed in the paper
/// (§3.2.1), useful to reproduce Fig. 1 with the paper's own algebra.
pub mod paper {
    /// `ACC_GRR = e^ε / (e^ε + k − 1)`.
    pub fn acc_grr(epsilon: f64, k: usize) -> f64 {
        let e = epsilon.exp();
        e / (e + k as f64 - 1.0)
    }

    /// `ACC_OLH = 1 / (2 · max(k/(e^ε+1), 1))`.
    pub fn acc_olh(epsilon: f64, k: usize) -> f64 {
        let e = epsilon.exp();
        1.0 / (2.0 * (k as f64 / (e + 1.0)).max(1.0))
    }

    /// `ACC_SS = (e^ε + 1) / (2k)`, capped at the ω=1 limit `e^ε/(e^ε+k−1)`.
    pub fn acc_ss(epsilon: f64, k: usize) -> f64 {
        let e = epsilon.exp();
        ((e + 1.0) / (2.0 * k as f64)).min(acc_grr(epsilon, k))
    }

    /// SUE accuracy with the corrected `p/i` term (see module docs).
    pub fn acc_sue(epsilon: f64, k: usize) -> f64 {
        let e2 = (epsilon / 2.0).exp();
        super::acc_ue(k, e2 / (e2 + 1.0), 1.0 / (e2 + 1.0))
    }

    /// OUE accuracy: `(1/(2k))(e^ε/(e^ε+1))^{k−1} + Σ (1/(2i))Bin(i−1;k−1,1/(e^ε+1))`.
    pub fn acc_oue(epsilon: f64, k: usize) -> f64 {
        super::acc_ue(k, 0.5, 1.0 / (epsilon.exp() + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ProtocolKind;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Monte-Carlo accuracy of [`best_guess`] for one protocol configuration.
    fn simulate_acc(kind: ProtocolKind, k: usize, eps: f64, trials: usize, seed: u64) -> f64 {
        let oracle = kind.build(k, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut correct = 0usize;
        for t in 0..trials {
            let v = (t % k) as u32;
            let report = oracle.randomize(v, &mut rng);
            if best_guess(&oracle, &report, &mut rng) == v {
                correct += 1;
            }
        }
        correct as f64 / trials as f64
    }

    #[test]
    fn analytic_acc_matches_simulation_for_all_protocols() {
        for kind in ProtocolKind::ALL {
            for (k, eps) in [(7usize, 1.0), (16, 2.0), (74, 4.0)] {
                let oracle = kind.build(k, eps).unwrap();
                let analytic = expected_acc(&oracle);
                let empirical = simulate_acc(kind, k, eps, 60_000, 1234);
                assert!(
                    (analytic - empirical).abs() < 0.02,
                    "{kind} k={k} eps={eps}: analytic {analytic} vs empirical {empirical}"
                );
            }
        }
    }

    #[test]
    fn best_guess_with_matches_allocating_wrapper() {
        // Same guesses *and* the same rng consumption, with one reused
        // buffer across reports.
        let mut scratch = vec![9u32; 4]; // stale content must not leak
        for kind in ProtocolKind::ALL {
            let oracle = kind.build(16, 2.0).unwrap();
            let mut rng = StdRng::seed_from_u64(77);
            let reports: Vec<_> = (0..50u32)
                .map(|v| oracle.randomize(v % 16, &mut rng))
                .collect();
            let mut rng_a = StdRng::seed_from_u64(5);
            let mut rng_b = StdRng::seed_from_u64(5);
            for report in &reports {
                assert_eq!(
                    best_guess(&oracle, report, &mut rng_a),
                    best_guess_with(&oracle, report, &mut scratch, &mut rng_b),
                    "{kind}"
                );
            }
            // Identical draw counts: the streams stay in lockstep.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{kind}");
        }
    }

    #[test]
    fn grr_guess_is_the_report() {
        let oracle = ProtocolKind::Grr.build(5, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(best_guess(&oracle, &Report::Value(3), &mut rng), 3);
    }

    #[test]
    fn acc_increases_with_epsilon() {
        for kind in ProtocolKind::ALL {
            let lo = expected_acc(&kind.build(16, 1.0).unwrap());
            let hi = expected_acc(&kind.build(16, 6.0).unwrap());
            assert!(hi > lo, "{kind}: acc(6)={hi} <= acc(1)={lo}");
        }
    }

    #[test]
    fn grr_and_ss_dominate_oue_and_olh() {
        // The paper's headline ordering at moderate k and high ε.
        let k = 16;
        let eps = 6.0;
        let grr = expected_acc(&ProtocolKind::Grr.build(k, eps).unwrap());
        let ss = expected_acc(&ProtocolKind::Ss.build(k, eps).unwrap());
        let oue = expected_acc(&ProtocolKind::Oue.build(k, eps).unwrap());
        let olh = expected_acc(&ProtocolKind::Olh.build(k, eps).unwrap());
        assert!(grr > oue && grr > olh);
        assert!(ss > oue && ss > olh);
        // OUE and OLH hover around the asymptotic 1/2 bound of [22]; the
        // exact finite-k expectation can exceed it slightly through the
        // empty-report fallback guess.
        assert!(oue <= 0.55);
        assert!(olh <= 0.55);
    }

    #[test]
    fn paper_formulas_close_to_integer_parameter_versions() {
        // The continuous approximations should track the exact forms closely
        // at the Fig. 1 operating points.
        for eps in [1.0f64, 3.0, 6.0] {
            let k = 74;
            let exact_ss = expected_acc(&ProtocolKind::Ss.build(k, eps).unwrap());
            let approx_ss = paper::acc_ss(eps, k);
            assert!(
                (exact_ss - approx_ss).abs() < 0.05,
                "eps={eps}: exact {exact_ss} vs paper {approx_ss}"
            );
            let exact_olh = expected_acc(&ProtocolKind::Olh.build(k, eps).unwrap());
            let approx_olh = paper::acc_olh(eps, k);
            // The paper's OLH approximation is loosest near k ≈ e^ε + 1.
            assert!(
                (exact_olh - approx_olh).abs() < 0.1,
                "eps={eps}: exact {exact_olh} vs paper {approx_olh}"
            );
        }
    }

    #[test]
    fn acc_ue_is_a_probability_and_binomial_sums_to_one() {
        for k in [2usize, 7, 92] {
            for eps in [0.5, 2.0, 8.0] {
                let a = paper::acc_sue(eps, k);
                assert!((0.0..=1.0).contains(&a), "k={k} eps={eps}: {a}");
                let b = paper::acc_oue(eps, k);
                assert!((0.0..=1.0).contains(&b), "k={k} eps={eps}: {b}");
            }
        }
    }

    #[test]
    fn ue_guess_rules() {
        let oracle = ProtocolKind::Sue.build(6, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        // Single set bit → that bit.
        let one = Report::Bits(crate::BitVec::one_hot(6, 4));
        assert_eq!(best_guess(&oracle, &one, &mut rng), 4);
        // No set bit → uniform guess in domain.
        let zero = Report::Bits(crate::BitVec::zeros(6));
        let g = best_guess(&oracle, &zero, &mut rng);
        assert!(g < 6);
        // Multiple set bits → one of them.
        let mut multi = crate::BitVec::zeros(6);
        multi.set(1, true);
        multi.set(5, true);
        let g = best_guess(&oracle, &Report::Bits(multi), &mut rng);
        assert!(g == 1 || g == 5);
    }
}
