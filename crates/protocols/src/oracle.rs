//! The [`FrequencyOracle`] abstraction, sanitized [`Report`]s, the protocol
//! dispatcher [`Oracle`], and the server-side [`Aggregator`] implementing the
//! generic unbiased estimator of Eq. (2) in the paper.

use rand::Rng;

use crate::bitvec::BitVec;
use crate::error::ProtocolError;
use crate::grr::Grr;
use crate::olh::Olh;
use crate::ss::SubsetSelection;
use crate::ue::{UeMode, UnaryEncoding};

/// A sanitized client report. Each LDP protocol has a distinct output shape,
/// which the paper's §3.2.1 adversarial analysis exploits.
#[derive(Debug, Clone, PartialEq)]
pub enum Report {
    /// A single (possibly perturbed) categorical value — GRR.
    Value(u32),
    /// The hash function seed and the perturbed hashed value — OLH.
    Hashed {
        /// Identifies the hash function `H` chosen by the user.
        seed: u64,
        /// Size of the hash range `[g]`.
        g: u32,
        /// Perturbed value in `0..g`.
        value: u32,
    },
    /// The reported subset Ω of domain values — ω-SS.
    Subset(Vec<u32>),
    /// A sanitized unary-encoded vector — SUE / OUE.
    Bits(BitVec),
}

impl Report {
    /// Short label of the report shape, for diagnostics.
    pub fn shape(&self) -> &'static str {
        match self {
            Report::Value(_) => "value",
            Report::Hashed { .. } => "hashed",
            Report::Subset(_) => "subset",
            Report::Bits(_) => "bits",
        }
    }
}

/// Client + server sides of an LDP frequency-estimation protocol.
///
/// The server side is expressed through [`FrequencyOracle::supports`] plus the
/// effective `(p*, q*)` pair: every protocol in this crate reports value `v`
/// ("supports" it) with probability `p*` when the user's true value is `v`,
/// and `q*` otherwise, which is exactly what the unbiased estimator
/// `f̂(v) = (C(v)/n − q*) / (p* − q*)` (Eq. (2)) requires.
pub trait FrequencyOracle {
    /// Domain size `k` of the attribute.
    fn domain_size(&self) -> usize;

    /// Privacy budget ε the protocol satisfies.
    fn epsilon(&self) -> f64;

    /// Client-side sanitization of `value` (must be `< domain_size`).
    fn randomize<R: Rng + ?Sized>(&self, value: u32, rng: &mut R) -> Report;

    /// Whether `report` counts towards value `value` on the server.
    fn supports(&self, report: &Report, value: u32) -> bool;

    /// Adds a hashed report's support over the whole domain to `counts` —
    /// the `Report::Hashed` arm of [`count_support`], which is `O(k)` per
    /// report and therefore the aggregation hot spot for hashing protocols.
    ///
    /// The default evaluates [`FrequencyOracle::supports`] once per domain
    /// value; implementations with a cheap per-value predicate override it
    /// with a monomorphized tight loop ([`Olh::count_hashed`] sweeps the
    /// hash incrementally). Overrides must stay bit-identical to the default.
    fn count_hashed(&self, counts: &mut [u64], report: &Report) {
        for (v, c) in counts.iter_mut().enumerate() {
            if self.supports(report, v as u32) {
                *c += 1;
            }
        }
    }

    /// Probability that a report supports the user's own true value.
    fn est_p(&self) -> f64;

    /// Probability that a report supports any fixed *other* value.
    fn est_q(&self) -> f64;

    /// Variance of the Eq. (2) estimate of a value with true frequency `f`
    /// from `n` reports: `γ(1−γ) / (n (p*−q*)²)` with `γ = q* + f (p*−q*)`.
    fn variance(&self, f: f64, n: usize) -> f64 {
        let p = self.est_p();
        let q = self.est_q();
        let gamma = q + f * (p - q);
        gamma * (1.0 - gamma) / (n as f64 * (p - q) * (p - q))
    }
}

/// The five protocol families of the paper, as a plain enum for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Generalized Randomized Response.
    Grr,
    /// Optimal Local Hashing.
    Olh,
    /// ω-Subset Selection.
    Ss,
    /// Symmetric Unary Encoding (Basic One-time RAPPOR).
    Sue,
    /// Optimized Unary Encoding.
    Oue,
}

impl ProtocolKind {
    /// All five protocols in the paper's plotting order.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Grr,
        ProtocolKind::Olh,
        ProtocolKind::Ss,
        ProtocolKind::Sue,
        ProtocolKind::Oue,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Grr => "GRR",
            ProtocolKind::Olh => "OLH",
            ProtocolKind::Ss => "SS",
            ProtocolKind::Sue => "SUE",
            ProtocolKind::Oue => "OUE",
        }
    }

    /// Builds the concrete protocol for domain size `k` and budget `epsilon`.
    pub fn build(self, k: usize, epsilon: f64) -> Result<Oracle, ProtocolError> {
        Ok(match self {
            ProtocolKind::Grr => Oracle::Grr(Grr::new(k, epsilon)?),
            ProtocolKind::Olh => Oracle::Olh(Olh::new(k, epsilon)?),
            ProtocolKind::Ss => Oracle::Ss(SubsetSelection::new(k, epsilon)?),
            ProtocolKind::Sue => Oracle::Ue(UnaryEncoding::new(k, epsilon, UeMode::Symmetric)?),
            ProtocolKind::Oue => Oracle::Ue(UnaryEncoding::new(k, epsilon, UeMode::Optimized)?),
        })
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Enum dispatcher over the concrete protocols, convenient for parameter
/// sweeps where the protocol is selected at runtime.
#[derive(Debug, Clone)]
pub enum Oracle {
    /// See [`Grr`].
    Grr(Grr),
    /// See [`Olh`].
    Olh(Olh),
    /// See [`SubsetSelection`].
    Ss(SubsetSelection),
    /// See [`UnaryEncoding`] (covers both SUE and OUE).
    Ue(UnaryEncoding),
}

impl Oracle {
    /// The protocol family of this oracle.
    pub fn kind(&self) -> ProtocolKind {
        match self {
            Oracle::Grr(_) => ProtocolKind::Grr,
            Oracle::Olh(_) => ProtocolKind::Olh,
            Oracle::Ss(_) => ProtocolKind::Ss,
            Oracle::Ue(ue) => match ue.mode() {
                UeMode::Symmetric => ProtocolKind::Sue,
                UeMode::Optimized => ProtocolKind::Oue,
            },
        }
    }
}

impl FrequencyOracle for Oracle {
    fn domain_size(&self) -> usize {
        match self {
            Oracle::Grr(p) => p.domain_size(),
            Oracle::Olh(p) => p.domain_size(),
            Oracle::Ss(p) => p.domain_size(),
            Oracle::Ue(p) => p.domain_size(),
        }
    }

    fn epsilon(&self) -> f64 {
        match self {
            Oracle::Grr(p) => p.epsilon(),
            Oracle::Olh(p) => p.epsilon(),
            Oracle::Ss(p) => p.epsilon(),
            Oracle::Ue(p) => p.epsilon(),
        }
    }

    fn randomize<R: Rng + ?Sized>(&self, value: u32, rng: &mut R) -> Report {
        match self {
            Oracle::Grr(p) => p.randomize(value, rng),
            Oracle::Olh(p) => p.randomize(value, rng),
            Oracle::Ss(p) => p.randomize(value, rng),
            Oracle::Ue(p) => p.randomize(value, rng),
        }
    }

    fn supports(&self, report: &Report, value: u32) -> bool {
        match self {
            Oracle::Grr(p) => p.supports(report, value),
            Oracle::Olh(p) => p.supports(report, value),
            Oracle::Ss(p) => p.supports(report, value),
            Oracle::Ue(p) => p.supports(report, value),
        }
    }

    // One enum dispatch per *report* (not per domain value): the OLH arm
    // lands in the monomorphized tight loop, everything else keeps the
    // default sweep (a hashed report supports nothing under those oracles).
    fn count_hashed(&self, counts: &mut [u64], report: &Report) {
        match self {
            Oracle::Grr(p) => p.count_hashed(counts, report),
            Oracle::Olh(p) => p.count_hashed(counts, report),
            Oracle::Ss(p) => p.count_hashed(counts, report),
            Oracle::Ue(p) => p.count_hashed(counts, report),
        }
    }

    fn est_p(&self) -> f64 {
        match self {
            Oracle::Grr(p) => p.est_p(),
            Oracle::Olh(p) => p.est_p(),
            Oracle::Ss(p) => p.est_p(),
            Oracle::Ue(p) => p.est_p(),
        }
    }

    fn est_q(&self) -> f64 {
        match self {
            Oracle::Grr(p) => p.est_q(),
            Oracle::Olh(p) => p.est_q(),
            Oracle::Ss(p) => p.est_q(),
            Oracle::Ue(p) => p.est_q(),
        }
    }
}

/// Server-side accumulator implementing the paper's Eq. (2) estimator
/// generically over any [`FrequencyOracle`].
#[derive(Debug, Clone)]
pub struct Aggregator<'a, O: FrequencyOracle> {
    oracle: &'a O,
    counts: Vec<u64>,
    n: u64,
}

impl<'a, O: FrequencyOracle> Aggregator<'a, O> {
    /// Creates an empty aggregator for `oracle`.
    pub fn new(oracle: &'a O) -> Self {
        Aggregator {
            counts: vec![0; oracle.domain_size()],
            oracle,
            n: 0,
        }
    }

    /// Absorbs one report, incrementing the support count of each value the
    /// report supports.
    pub fn absorb(&mut self, report: &Report) {
        self.n += 1;
        count_support(self.oracle, &mut self.counts, report);
    }

    /// Absorbs a whole batch of reports through [`count_support_batch`].
    pub fn absorb_batch(&mut self, reports: &[Report]) {
        self.n += reports.len() as u64;
        count_support_batch(self.oracle, &mut self.counts, reports);
    }

    /// Folds another aggregator's state into this one, so shards filled in
    /// parallel can be combined into a single estimate.
    ///
    /// # Panics
    /// Panics when the two aggregators cover different domain sizes.
    pub fn merge(&mut self, other: &Aggregator<'_, O>) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge aggregators over different domains"
        );
        self.n += other.n;
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
    }

    /// Number of absorbed reports.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Raw support counts `C(v)`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Unbiased frequency estimates via Eq. (2):
    /// `f̂(v) = (C(v)/n − q*) / (p* − q*)`.
    ///
    /// Returns all-zeros when no report has been absorbed.
    pub fn estimate(&self) -> Vec<f64> {
        if self.n == 0 {
            return vec![0.0; self.counts.len()];
        }
        let n = self.n as f64;
        let p = self.oracle.est_p();
        let q = self.oracle.est_q();
        let denom = p - q;
        self.counts
            .iter()
            .map(|&c| (c as f64 / n - q) / denom)
            .collect()
    }

    /// Estimates post-processed onto the probability simplex: negative
    /// entries clamped to zero and the vector re-normalized to sum to one
    /// (the standard consistency step; a uniform vector is returned when
    /// everything clamps to zero).
    pub fn estimate_normalized(&self) -> Vec<f64> {
        normalize_simplex(&self.estimate())
    }
}

/// Adds one report's support to a raw count vector — the oracle-aware
/// counting path shared by [`Aggregator::absorb`] and the SPL/SMP arms of
/// the multidimensional streaming aggregator one layer up (fake-data tuples,
/// which never need oracle support evaluation, have a direct sibling in
/// `ldp_core`).
///
/// Out-of-domain reports (a `Value` ≥ k, a bit vector of the wrong width, a
/// subset entry ≥ k) trip a `debug_assert` so malformed inputs fail loudly
/// in tests; release builds skip the stray entries, matching the historical
/// behavior.
pub fn count_support<O: FrequencyOracle>(oracle: &O, counts: &mut [u64], report: &Report) {
    match report {
        // Fast paths that avoid scanning the whole domain.
        Report::Value(v) => {
            debug_assert!(
                (*v as usize) < counts.len(),
                "report value {v} outside domain of size {}",
                counts.len()
            );
            if let Some(c) = counts.get_mut(*v as usize) {
                *c += 1;
            }
        }
        Report::Subset(subset) => {
            for &v in subset {
                debug_assert!(
                    (v as usize) < counts.len(),
                    "subset entry {v} outside domain of size {}",
                    counts.len()
                );
                if let Some(c) = counts.get_mut(v as usize) {
                    *c += 1;
                }
            }
        }
        Report::Bits(bits) => {
            debug_assert_eq!(
                bits.len(),
                counts.len(),
                "bit-vector report width does not match the domain"
            );
            for idx in bits.ones() {
                if let Some(c) = counts.get_mut(idx) {
                    *c += 1;
                }
            }
        }
        // OLH needs the oracle's hash evaluation over the full domain; the
        // trait hook dispatches once per report into the oracle's tightest
        // sweep (see `FrequencyOracle::count_hashed`).
        Report::Hashed { .. } => oracle.count_hashed(counts, report),
    }
}

/// [`count_support`] over a whole slice of reports — the batch entry point
/// the streaming aggregation layers feed channel batches through, so the
/// per-report dispatch is amortized across a message instead of paid per
/// absorb call.
pub fn count_support_batch<O: FrequencyOracle>(oracle: &O, counts: &mut [u64], reports: &[Report]) {
    for report in reports {
        count_support(oracle, counts, report);
    }
}

/// Clamps negative entries to zero and renormalizes to sum 1. If the clamped
/// vector sums to zero, returns the uniform distribution.
pub fn normalize_simplex(raw: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = raw.iter().map(|&x| x.max(0.0)).collect();
    let s: f64 = out.iter().sum();
    if s > 0.0 {
        for x in &mut out {
            *x /= s;
        }
    } else if !out.is_empty() {
        let u = 1.0 / out.len() as f64;
        out.fill(u);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kind_roundtrip_through_build() {
        for kind in ProtocolKind::ALL {
            let oracle = kind.build(8, 1.5).unwrap();
            assert_eq!(oracle.kind(), kind);
            assert_eq!(oracle.domain_size(), 8);
            assert!((oracle.epsilon() - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn build_rejects_bad_parameters() {
        for kind in ProtocolKind::ALL {
            assert!(kind.build(1, 1.0).is_err());
            assert!(kind.build(4, 0.0).is_err());
            assert!(kind.build(4, f64::NAN).is_err());
        }
    }

    #[test]
    fn est_p_greater_than_est_q_for_all_protocols() {
        for kind in ProtocolKind::ALL {
            for k in [2usize, 5, 74] {
                for eps in [0.5, 1.0, 4.0] {
                    let o = kind.build(k, eps).unwrap();
                    assert!(
                        o.est_p() > o.est_q(),
                        "{kind} k={k} eps={eps}: p={} q={}",
                        o.est_p(),
                        o.est_q()
                    );
                }
            }
        }
    }

    #[test]
    fn aggregator_estimates_sum_to_about_one() {
        let mut rng = StdRng::seed_from_u64(11);
        for kind in ProtocolKind::ALL {
            let o = kind.build(6, 2.0).unwrap();
            let mut agg = Aggregator::new(&o);
            for i in 0..6000u32 {
                agg.absorb(&o.randomize(i % 6, &mut rng));
            }
            let est = agg.estimate();
            let total: f64 = est.iter().sum();
            assert!(
                (total - 1.0).abs() < 0.1,
                "{kind}: estimates sum to {total}"
            );
        }
    }

    #[test]
    fn merged_shards_match_sequential_absorption() {
        let mut rng = StdRng::seed_from_u64(21);
        for kind in ProtocolKind::ALL {
            let o = kind.build(6, 2.0).unwrap();
            let reports: Vec<Report> = (0..600u32).map(|i| o.randomize(i % 6, &mut rng)).collect();
            let mut sequential = Aggregator::new(&o);
            for r in &reports {
                sequential.absorb(r);
            }
            let mut shards = [
                Aggregator::new(&o),
                Aggregator::new(&o),
                Aggregator::new(&o),
            ];
            for (i, r) in reports.iter().enumerate() {
                shards[i % 3].absorb(r);
            }
            let mut merged = Aggregator::new(&o);
            for s in &shards {
                merged.merge(s);
            }
            assert_eq!(sequential.n(), merged.n());
            assert_eq!(sequential.counts(), merged.counts());
            for (a, b) in sequential.estimate().iter().zip(merged.estimate()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind}: merge must be exact");
            }
        }
    }

    #[test]
    fn absorb_batch_matches_one_by_one_absorption() {
        let mut rng = StdRng::seed_from_u64(31);
        for kind in ProtocolKind::ALL {
            let o = kind.build(9, 2.0).unwrap();
            let reports: Vec<Report> = (0..300u32).map(|i| o.randomize(i % 9, &mut rng)).collect();
            let mut one_by_one = Aggregator::new(&o);
            for r in &reports {
                one_by_one.absorb(r);
            }
            let mut batched = Aggregator::new(&o);
            batched.absorb_batch(&reports);
            assert_eq!(one_by_one.n(), batched.n(), "{kind}");
            assert_eq!(one_by_one.counts(), batched.counts(), "{kind}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside domain")]
    fn absorb_rejects_out_of_domain_value_in_debug() {
        let o = ProtocolKind::Grr.build(4, 1.0).unwrap();
        let mut agg = Aggregator::new(&o);
        agg.absorb(&Report::Value(9));
    }

    #[test]
    fn empty_aggregator_estimates_zero() {
        let o = ProtocolKind::Grr.build(4, 1.0).unwrap();
        let agg = Aggregator::new(&o);
        assert_eq!(agg.estimate(), vec![0.0; 4]);
        assert_eq!(agg.n(), 0);
    }

    #[test]
    fn normalize_simplex_handles_all_negative() {
        let out = normalize_simplex(&[-0.2, -0.1]);
        assert_eq!(out, vec![0.5, 0.5]);
    }

    #[test]
    fn normalize_simplex_clamps_and_scales() {
        let out = normalize_simplex(&[0.5, -0.5, 0.5]);
        assert_eq!(out, vec![0.5, 0.0, 0.5]);
        let s: f64 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_default_matches_gamma_formula() {
        let o = ProtocolKind::Grr.build(4, 1.0).unwrap();
        let (p, q) = (o.est_p(), o.est_q());
        let f = 0.3;
        let gamma = q + f * (p - q);
        let expect = gamma * (1.0 - gamma) / (1000.0 * (p - q) * (p - q));
        assert!((o.variance(f, 1000) - expect).abs() < 1e-15);
    }
}
