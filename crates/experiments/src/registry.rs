//! The unified experiment registry: every figure, table and ablation of the
//! reproduction as a runtime-selectable [`ExperimentKind`], mirroring the
//! `SolutionKind`/`AttackKind` construction pattern one layer up.
//!
//! [`ExperimentKind::build`] yields a [`DynExperiment`] behind the
//! object-safe [`Experiment`] trait; the `risks` CLI binary drives the whole
//! registry through it (`risks list` / `risks describe` / `risks run`), and
//! [`crate::runner`] schedules selected experiments across threads,
//! cost-sorted longest-first, writing one JSON manifest per run.
//!
//! ```
//! use ldp_experiments::registry::{Experiment, ExperimentKind};
//! use ldp_experiments::ExpConfig;
//!
//! // Runtime selection, exactly like SolutionKind/AttackKind one layer down:
//! let exp = ExperimentKind::from_id("fig01").unwrap().build();
//! assert_eq!(exp.id(), "fig01");
//! assert_eq!(exp.paper_ref(), "§3.2.3, Fig. 1");
//!
//! // Fig. 1 is analytical (no simulation), so it is cheap enough to run in
//! // a doctest; heavier experiments go through `risks run`.
//! let cfg = ExpConfig {
//!     runs: 1,
//!     scale: 0.01,
//!     threads: 1,
//!     seed: 42,
//!     out_dir: std::env::temp_dir().join("risks_doctest"),
//! };
//! let report = exp.run(&cfg);
//! assert_eq!(report.files(), ["fig01.csv"]);
//! assert!(report.total_rows() > 0);
//! ```

use std::path::Path;

use crate::table::Table;
use crate::ExpConfig;

/// One produced table plus the CSV file name it is persisted under.
#[derive(Debug, Clone)]
pub struct TableOutput {
    /// CSV file name (relative to the configured output directory).
    pub file: String,
    /// The table itself.
    pub table: Table,
}

/// Structured result of one experiment run: every table the experiment
/// produced, tagged with its output file name. Replaces the ad-hoc
/// `Table` / `(Table, Table)` / `Vec<Table>` returns of the old per-figure
/// binaries; printing and CSV persistence are the runner's job, so the
/// experiment bodies stay pure.
#[derive(Debug, Clone, Default)]
pub struct ExperimentReport {
    /// The produced tables in presentation order.
    pub tables: Vec<TableOutput>,
}

impl ExperimentReport {
    /// An empty report.
    pub fn new() -> Self {
        ExperimentReport::default()
    }

    /// Adds a table under the given CSV file name (builder style).
    pub fn with(mut self, file: impl Into<String>, table: Table) -> Self {
        self.tables.push(TableOutput {
            file: file.into(),
            table,
        });
        self
    }

    /// The output file names, in order.
    pub fn files(&self) -> Vec<String> {
        self.tables.iter().map(|t| t.file.clone()).collect()
    }

    /// Total data rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.table.len()).sum()
    }

    /// Renders every table to one string (single `print!` keeps output from
    /// concurrently finishing experiments unscrambled).
    pub fn render(&self) -> String {
        self.tables
            .iter()
            .map(|t| t.table.render())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Writes every table as CSV into `dir`.
    ///
    /// # Panics
    /// Panics on I/O failure — experiment runs should fail loudly.
    pub fn write_csvs(&self, dir: &Path) {
        for t in &self.tables {
            t.table.write_csv(dir, &t.file);
        }
    }
}

/// An experiment of the reproduction, object-safe so the runner can schedule
/// heterogeneous experiments through one `&dyn Experiment` surface — the
/// experiment-layer counterpart of `MultidimSolution` / `Attack`.
pub trait Experiment {
    /// Stable identifier (`"fig04"`, `"ablation_topk"`); the `risks` CLI and
    /// the manifests key on it.
    fn id(&self) -> &'static str;
    /// One-line description of what the experiment measures.
    fn title(&self) -> &'static str;
    /// Where in the paper the reproduced figure/table lives.
    fn paper_ref(&self) -> &'static str;
    /// The datasets the experiment simulates (empty for analytical plots).
    fn datasets(&self) -> &'static [&'static str];
    /// CSV files a successful run produces.
    fn outputs(&self) -> &'static [&'static str];
    /// Relative cost estimate (≈ seconds at default scale on a small box).
    /// The scheduler sorts descending on this, longest-first.
    fn estimated_cost(&self) -> f64;
    /// Runs the experiment and returns its tables.
    fn run(&self, cfg: &ExpConfig) -> ExperimentReport;
}

/// Every experiment of the reproduction as a plain enum for sweeps and
/// runtime configuration — 15 paper figures (the paper numbers its plots 1–17
/// with 7–8 being diagrams) plus the two DESIGN.md ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentKind {
    /// Fig. 1: analytical expected attacker ACC over multiple collections.
    Fig01,
    /// Fig. 2: RID-ACC on Adult, SMP, FK-RI, uniform ε-LDP.
    Fig02,
    /// Fig. 3: AIF-ACC on ACSEmployment against RS+FD (NK/PK/HM).
    Fig03,
    /// Fig. 4: RID-ACC on Adult against RS+FD\[GRR\] (chained attack).
    Fig04,
    /// Fig. 5: averaged MSE on ACSEmployment, RS+RFD vs RS+FD.
    Fig05,
    /// Fig. 6: AIF-ACC on ACSEmployment against the RS+RFD countermeasure.
    Fig06,
    /// Fig. 9: RID-ACC on ACSEmployment, SMP, FK-RI.
    Fig09,
    /// Fig. 10: RID-ACC on Adult, SMP, PK-RI.
    Fig10,
    /// Fig. 11: RID-ACC on Adult under the non-uniform ε-LDP metric.
    Fig11,
    /// Fig. 12: RID-ACC on Adult under α-PIE, uniform sampling.
    Fig12,
    /// Fig. 13: RID-ACC on Adult under α-PIE, non-uniform sampling.
    Fig13,
    /// Fig. 14: AIF-ACC on Adult against RS+FD (NK/PK/HM).
    Fig14,
    /// Fig. 15: AIF-ACC on Nursery (the negative control).
    Fig15,
    /// Fig. 16: analytical + experimental utility on Adult, four priors.
    Fig16,
    /// Fig. 17: AIF-ACC on ACSEmployment against RS+RFD, incorrect priors.
    Fig17,
    /// Ablation: classifier family (GBDT vs logistic regression).
    AblationClassifier,
    /// Ablation: top-k sensitivity of the re-identification decision.
    AblationTopk,
    /// Extension: mean-estimation MSE of the numeric mechanisms vs ε.
    NumericMse,
    /// Extension: NUM-VRI value-range inference risk vs ε.
    NumericRisk,
    /// Extension: averaging-attack ASR vs rounds under the budget policies.
    LongitudinalRisk,
    /// Extension: averaged-estimator MSE vs rounds under the budget policies.
    LongitudinalMse,
}

impl ExperimentKind {
    /// Every experiment, in presentation order.
    pub const ALL: [ExperimentKind; 21] = [
        ExperimentKind::Fig01,
        ExperimentKind::Fig02,
        ExperimentKind::Fig03,
        ExperimentKind::Fig04,
        ExperimentKind::Fig05,
        ExperimentKind::Fig06,
        ExperimentKind::Fig09,
        ExperimentKind::Fig10,
        ExperimentKind::Fig11,
        ExperimentKind::Fig12,
        ExperimentKind::Fig13,
        ExperimentKind::Fig14,
        ExperimentKind::Fig15,
        ExperimentKind::Fig16,
        ExperimentKind::Fig17,
        ExperimentKind::AblationClassifier,
        ExperimentKind::AblationTopk,
        ExperimentKind::NumericMse,
        ExperimentKind::NumericRisk,
        ExperimentKind::LongitudinalRisk,
        ExperimentKind::LongitudinalMse,
    ];

    /// Stable identifier, equal to `build().id()`.
    pub fn id(self) -> &'static str {
        self.build().id()
    }

    /// Looks an experiment up by its identifier.
    pub fn from_id(id: &str) -> Option<ExperimentKind> {
        ExperimentKind::ALL.into_iter().find(|k| k.id() == id)
    }

    /// Builds the runnable experiment — the single construction path, the
    /// counterpart of `SolutionKind::build` / `AttackKind::build`.
    /// (Experiment selection has no invalid configurations, so unlike those
    /// this one is infallible.)
    pub fn build(self) -> DynExperiment {
        DynExperiment { kind: self }
    }
}

impl std::fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Dispatcher over the registered experiments (the counterpart of
/// `DynSolution` / `DynAttack`): one object-safe experiment surface with the
/// figure chosen at runtime.
#[derive(Debug, Clone, Copy)]
pub struct DynExperiment {
    kind: ExperimentKind,
}

impl DynExperiment {
    /// The experiment this instance runs.
    pub fn kind(&self) -> ExperimentKind {
        self.kind
    }

    /// Stable multi-line description used by `risks describe` (and asserted
    /// stable by the registry tests).
    pub fn describe(&self) -> String {
        let datasets = if self.datasets().is_empty() {
            "none (analytical)".to_string()
        } else {
            self.datasets().join(", ")
        };
        format!(
            "{id}: {title}\n  paper:    {paper}\n  datasets: {datasets}\n  \
             outputs:  {outputs}\n  est. cost: {cost} (default scale) / {full} (RISKS_FULL=1)\n",
            id = self.id(),
            title = self.title(),
            paper = self.paper_ref(),
            outputs = self.outputs().join(", "),
            cost = human_secs(self.estimated_cost()),
            full = human_secs(self.estimated_cost() * self.full_scale_factor()),
        )
    }

    /// How much longer a `RISKS_FULL=1` run takes than the default scale
    /// (runs 3→20 and n 0.15→1.0 compound; analytical figures are flat).
    pub fn full_scale_factor(&self) -> f64 {
        match self.kind {
            ExperimentKind::Fig01 => 1.0,
            _ => 60.0,
        }
    }
}

impl Experiment for DynExperiment {
    fn id(&self) -> &'static str {
        match self.kind {
            ExperimentKind::Fig01 => "fig01",
            ExperimentKind::Fig02 => "fig02",
            ExperimentKind::Fig03 => "fig03",
            ExperimentKind::Fig04 => "fig04",
            ExperimentKind::Fig05 => "fig05",
            ExperimentKind::Fig06 => "fig06",
            ExperimentKind::Fig09 => "fig09",
            ExperimentKind::Fig10 => "fig10",
            ExperimentKind::Fig11 => "fig11",
            ExperimentKind::Fig12 => "fig12",
            ExperimentKind::Fig13 => "fig13",
            ExperimentKind::Fig14 => "fig14",
            ExperimentKind::Fig15 => "fig15",
            ExperimentKind::Fig16 => "fig16",
            ExperimentKind::Fig17 => "fig17",
            ExperimentKind::AblationClassifier => "ablation_classifier",
            ExperimentKind::AblationTopk => "ablation_topk",
            ExperimentKind::NumericMse => "numeric_mse",
            ExperimentKind::NumericRisk => "numeric_risk",
            ExperimentKind::LongitudinalRisk => "longitudinal_risk",
            ExperimentKind::LongitudinalMse => "longitudinal_mse",
        }
    }

    fn title(&self) -> &'static str {
        match self.kind {
            ExperimentKind::Fig01 => "analytical expected attacker ACC over multiple collections",
            ExperimentKind::Fig02 => "RID-ACC on Adult (SMP, FK-RI, uniform eps-LDP)",
            ExperimentKind::Fig03 => "AIF-ACC on ACSEmployment vs RS+FD (NK/PK/HM)",
            ExperimentKind::Fig04 => "RID-ACC on Adult vs RS+FD[GRR] (chained attack)",
            ExperimentKind::Fig05 => "averaged MSE on ACSEmployment (RS+RFD vs RS+FD)",
            ExperimentKind::Fig06 => "AIF-ACC on ACSEmployment vs RS+RFD (correct priors)",
            ExperimentKind::Fig09 => "RID-ACC on ACSEmployment (SMP, FK-RI)",
            ExperimentKind::Fig10 => "RID-ACC on Adult (SMP, PK-RI)",
            ExperimentKind::Fig11 => "RID-ACC on Adult (non-uniform eps-LDP metric)",
            ExperimentKind::Fig12 => "RID-ACC on Adult (alpha-PIE, uniform sampling)",
            ExperimentKind::Fig13 => "RID-ACC on Adult (alpha-PIE, non-uniform sampling)",
            ExperimentKind::Fig14 => "AIF-ACC on Adult vs RS+FD (NK/PK/HM)",
            ExperimentKind::Fig15 => "AIF-ACC on Nursery (negative control)",
            ExperimentKind::Fig16 => "analytical + experimental utility on Adult (four priors)",
            ExperimentKind::Fig17 => "AIF-ACC on ACSEmployment vs RS+RFD (incorrect priors)",
            ExperimentKind::AblationClassifier => "inference-attack classifier family ablation",
            ExperimentKind::AblationTopk => "re-identification top-k sensitivity ablation",
            ExperimentKind::NumericMse => {
                "mean-estimation MSE of Duchi/PM/HM in a mixed k-of-d collection"
            }
            ExperimentKind::NumericRisk => {
                "NUM-VRI value-range inference accuracy vs the numeric mechanisms"
            }
            ExperimentKind::LongitudinalRisk => {
                "averaging-attack ASR vs rounds: eps-splitting vs memoization"
            }
            ExperimentKind::LongitudinalMse => {
                "averaged-estimator MSE vs rounds: eps-splitting vs memoization"
            }
        }
    }

    fn paper_ref(&self) -> &'static str {
        match self.kind {
            ExperimentKind::Fig01 => "§3.2.3, Fig. 1",
            ExperimentKind::Fig02 => "§4.2, Fig. 2",
            ExperimentKind::Fig03 => "§4.2, Fig. 3",
            ExperimentKind::Fig04 => "§4.2, Fig. 4",
            ExperimentKind::Fig05 => "§5.2.2, Fig. 5",
            ExperimentKind::Fig06 => "§5.2.3, Fig. 6",
            ExperimentKind::Fig09 => "Appendix C, Fig. 9",
            ExperimentKind::Fig10 => "Appendix C, Fig. 10",
            ExperimentKind::Fig11 => "Appendix C, Fig. 11",
            ExperimentKind::Fig12 => "Appendix C, Fig. 12",
            ExperimentKind::Fig13 => "Appendix C, Fig. 13",
            ExperimentKind::Fig14 => "Appendix D, Fig. 14",
            ExperimentKind::Fig15 => "Appendix D, Fig. 15",
            ExperimentKind::Fig16 => "Appendix E, Fig. 16",
            ExperimentKind::Fig17 => "Appendix E, Fig. 17",
            ExperimentKind::AblationClassifier => "DESIGN.md ablation (Fig. 3 setting)",
            ExperimentKind::AblationTopk => "DESIGN.md ablation (Fig. 2 setting)",
            ExperimentKind::NumericMse => "extension (§7 outlook): numeric utility",
            ExperimentKind::NumericRisk => "extension (§7 outlook): numeric risk",
            ExperimentKind::LongitudinalRisk => "extension (§7 outlook): longitudinal risk",
            ExperimentKind::LongitudinalMse => "extension (§7 outlook): longitudinal utility",
        }
    }

    fn datasets(&self) -> &'static [&'static str] {
        match self.kind {
            ExperimentKind::Fig01 => &[],
            ExperimentKind::Fig02
            | ExperimentKind::Fig04
            | ExperimentKind::Fig10
            | ExperimentKind::Fig11
            | ExperimentKind::Fig12
            | ExperimentKind::Fig13
            | ExperimentKind::Fig14
            | ExperimentKind::Fig16
            | ExperimentKind::AblationTopk => &["Adult"],
            ExperimentKind::Fig03
            | ExperimentKind::Fig05
            | ExperimentKind::Fig06
            | ExperimentKind::Fig09
            | ExperimentKind::Fig17
            | ExperimentKind::AblationClassifier => &["ACSEmployment"],
            ExperimentKind::Fig15 => &["Nursery"],
            ExperimentKind::NumericMse | ExperimentKind::NumericRisk => &["MixedSurvey"],
            ExperimentKind::LongitudinalRisk | ExperimentKind::LongitudinalMse => &["Adult"],
        }
    }

    fn outputs(&self) -> &'static [&'static str] {
        match self.kind {
            ExperimentKind::Fig01 => &["fig01.csv"],
            ExperimentKind::Fig02 => &["fig02.csv"],
            ExperimentKind::Fig03 => &["fig03.csv"],
            ExperimentKind::Fig04 => &["fig04.csv"],
            ExperimentKind::Fig05 => &["fig05_correct.csv", "fig05_incorrect.csv"],
            ExperimentKind::Fig06 => &["fig06.csv"],
            ExperimentKind::Fig09 => &["fig09.csv"],
            ExperimentKind::Fig10 => &["fig10.csv"],
            ExperimentKind::Fig11 => &["fig11_fk.csv", "fig11_pk.csv"],
            ExperimentKind::Fig12 => &["fig12_fk.csv", "fig12_pk.csv"],
            ExperimentKind::Fig13 => &["fig13_fk.csv", "fig13_pk.csv"],
            ExperimentKind::Fig14 => &["fig14.csv"],
            ExperimentKind::Fig15 => &["fig15.csv"],
            ExperimentKind::Fig16 => &[
                "fig16_correct.csv",
                "fig16_dir.csv",
                "fig16_zipf.csv",
                "fig16_exp.csv",
            ],
            ExperimentKind::Fig17 => &["fig17.csv"],
            ExperimentKind::AblationClassifier => &["ablation_classifier.csv"],
            ExperimentKind::AblationTopk => &["ablation_topk.csv"],
            ExperimentKind::NumericMse => &["numeric_mse.csv"],
            ExperimentKind::NumericRisk => &["numeric_risk.csv"],
            ExperimentKind::LongitudinalRisk => &["longitudinal_risk.csv"],
            ExperimentKind::LongitudinalMse => &["longitudinal_mse.csv"],
        }
    }

    fn estimated_cost(&self) -> f64 {
        // Rough single-core seconds at the default scale (runs = 3,
        // scale = 0.15); only the *ordering* matters to the scheduler.
        match self.kind {
            ExperimentKind::Fig01 => 0.1,
            ExperimentKind::Fig02 => 150.0,
            ExperimentKind::Fig03 => 120.0,
            ExperimentKind::Fig04 => 200.0,
            ExperimentKind::Fig05 => 60.0,
            ExperimentKind::Fig06 => 100.0,
            ExperimentKind::Fig09 => 130.0,
            ExperimentKind::Fig10 => 140.0,
            ExperimentKind::Fig11 => 280.0,
            ExperimentKind::Fig12 => 260.0,
            ExperimentKind::Fig13 => 260.0,
            ExperimentKind::Fig14 => 110.0,
            ExperimentKind::Fig15 => 90.0,
            ExperimentKind::Fig16 => 120.0,
            ExperimentKind::Fig17 => 100.0,
            ExperimentKind::AblationClassifier => 70.0,
            ExperimentKind::AblationTopk => 80.0,
            ExperimentKind::NumericMse => 40.0,
            ExperimentKind::NumericRisk => 85.0,
            ExperimentKind::LongitudinalRisk => 180.0,
            ExperimentKind::LongitudinalMse => 50.0,
        }
    }

    fn run(&self, cfg: &ExpConfig) -> ExperimentReport {
        match self.kind {
            ExperimentKind::Fig01 => crate::fig01::run(cfg),
            ExperimentKind::Fig02 => crate::fig02::run(cfg),
            ExperimentKind::Fig03 => crate::fig03::run(cfg),
            ExperimentKind::Fig04 => crate::fig04::run(cfg),
            ExperimentKind::Fig05 => crate::fig05::run(cfg),
            ExperimentKind::Fig06 => crate::fig06::run(cfg),
            ExperimentKind::Fig09 => crate::fig09::run(cfg),
            ExperimentKind::Fig10 => crate::fig10::run(cfg),
            ExperimentKind::Fig11 => crate::fig11::run(cfg),
            ExperimentKind::Fig12 => crate::fig12::run(cfg),
            ExperimentKind::Fig13 => crate::fig13::run(cfg),
            ExperimentKind::Fig14 => crate::fig14::run(cfg),
            ExperimentKind::Fig15 => crate::fig15::run(cfg),
            ExperimentKind::Fig16 => crate::fig16::run(cfg),
            ExperimentKind::Fig17 => crate::fig17::run(cfg),
            ExperimentKind::AblationClassifier => crate::ablation::run_classifier(cfg),
            ExperimentKind::AblationTopk => crate::ablation::run_topk(cfg),
            ExperimentKind::NumericMse => crate::numeric::run_mse(cfg),
            ExperimentKind::NumericRisk => crate::numeric::run_risk(cfg),
            ExperimentKind::LongitudinalRisk => crate::longitudinal::run_risk(cfg),
            ExperimentKind::LongitudinalMse => crate::longitudinal::run_mse(cfg),
        }
    }
}

/// Formats a duration estimate for humans: `~8 s`, `~3 min`, `~2.5 h`.
pub fn human_secs(secs: f64) -> String {
    if secs < 1.0 {
        "<1 s".to_string()
    } else if secs < 90.0 {
        format!("~{} s", secs.round() as u64)
    } else if secs < 5400.0 {
        format!("~{} min", (secs / 60.0).round() as u64)
    } else {
        format!("~{:.1} h", secs / 3600.0)
    }
}

/// The README reproduction matrix, generated from the registry so the docs
/// cannot drift from the code (`risks list --markdown` prints exactly this;
/// the registry tests assert README.md embeds it verbatim).
pub fn markdown_matrix() -> String {
    let mut out = String::new();
    out.push_str("| id | reproduces | datasets | command | est. default | est. `RISKS_FULL=1` |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for kind in ExperimentKind::ALL {
        let exp = kind.build();
        let datasets = if exp.datasets().is_empty() {
            "—".to_string()
        } else {
            exp.datasets().join(", ")
        };
        out.push_str(&format!(
            "| `{id}` | {paper} | {datasets} | `risks run {id}` | {cost} | {full} |\n",
            id = exp.id(),
            paper = exp.paper_ref(),
            cost = human_secs(exp.estimated_cost()),
            full = human_secs(exp.estimated_cost() * exp.full_scale_factor()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_roundtrip_ids() {
        for kind in ExperimentKind::ALL {
            let exp = kind.build();
            assert_eq!(ExperimentKind::from_id(exp.id()), Some(kind));
            assert!(!exp.title().is_empty());
            assert!(!exp.outputs().is_empty());
            assert!(exp.estimated_cost() > 0.0);
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let exp: Box<dyn Experiment> = Box::new(ExperimentKind::Fig01.build());
        assert_eq!(exp.id(), "fig01");
    }

    #[test]
    fn human_secs_ranges() {
        assert_eq!(human_secs(0.1), "<1 s");
        assert_eq!(human_secs(8.0), "~8 s");
        assert_eq!(human_secs(180.0), "~3 min");
        assert_eq!(human_secs(9000.0), "~2.5 h");
    }

    #[test]
    fn matrix_has_one_row_per_experiment() {
        let matrix = markdown_matrix();
        // Header + separator + one row per kind.
        assert_eq!(matrix.lines().count(), 2 + ExperimentKind::ALL.len());
        for kind in ExperimentKind::ALL {
            assert!(matrix.contains(&format!("`risks run {kind}`")));
        }
    }
}
