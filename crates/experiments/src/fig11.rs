//! Fig. 11 (Appendix C): RID-ACC on Adult, SMP, FK-RI and PK-RI models with
//! the **non-uniform** ε-LDP metric (sampling with replacement +
//! memoization).

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::table::Table;
use crate::{eps_grid, ExpConfig};

/// Runs the figure; prints both tables and writes
/// `fig11_fk.csv` / `fig11_pk.csv`.
pub fn run(cfg: &ExpConfig) -> (Table, Table) {
    let base = SmpReidentParams {
        dataset: DatasetChoice::Adult,
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Epsilon(eps_grid()),
        setting: SamplingSetting::NonUniform,
        background: Background::Full,
        n_surveys: 5,
    };
    let fk = crate::smp_reident::run(cfg, &base, "Fig 11 FK-RI (Adult, non-uniform eps-LDP)");
    fk.print();
    fk.write_csv(&cfg.out_dir, "fig11_fk.csv");

    let pk_params = SmpReidentParams {
        background: Background::Partial,
        ..base
    };
    let pk = crate::smp_reident::run(cfg, &pk_params, "Fig 11 PK-RI (Adult, non-uniform eps-LDP)");
    pk.print();
    pk.write_csv(&cfg.out_dir, "fig11_pk.csv");
    (fk, pk)
}
