//! Fig. 11 (Appendix C): RID-ACC on Adult, SMP, FK-RI and PK-RI models with
//! the **non-uniform** ε-LDP metric (sampling with replacement +
//! memoization).

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::registry::ExperimentReport;
use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig11_fk.csv` and `fig11_pk.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let base = SmpReidentParams {
        dataset: DatasetChoice::Adult,
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Epsilon(eps_grid()),
        setting: SamplingSetting::NonUniform,
        background: Background::Full,
        n_surveys: 5,
    };
    let fk = crate::smp_reident::run(cfg, &base, "Fig 11 FK-RI (Adult, non-uniform eps-LDP)");

    let pk_params = SmpReidentParams {
        background: Background::Partial,
        ..base
    };
    let pk = crate::smp_reident::run(cfg, &pk_params, "Fig 11 PK-RI (Adult, non-uniform eps-LDP)");
    ExperimentReport::new()
        .with("fig11_fk.csv", fk)
        .with("fig11_pk.csv", pk)
}
