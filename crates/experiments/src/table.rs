//! Aligned text tables + CSV output for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple result table: printed aligned to stdout and persisted as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The data rows (used by tests and post-processing).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV into `dir/name` (creating `dir`). Silent on
    /// success — progress reporting is the runner's job.
    ///
    /// # Panics
    /// Panics on I/O failure — experiment runs should fail loudly.
    pub fn write_csv(&self, dir: &Path, name: &str) {
        fs::create_dir_all(dir).expect("cannot create output directory");
        let path = dir.join(name);
        let mut f = fs::File::create(&path).expect("cannot create CSV file");
        writeln!(f, "{}", self.headers.join(",")).expect("csv write failed");
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).expect("csv write failed");
        }
    }
}

/// Formats a float with 4 significant decimals for tables.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["100".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("metric"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("ldp_experiments_table_test");
        t.write_csv(&dir, "demo.csv");
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
    }

    #[test]
    fn fnum_formats_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(123.456), "123.5");
        assert_eq!(fnum(0.12345), "0.1235");
        assert!(fnum(0.0001).contains('e'));
    }
}
