//! Fig. 16 (Appendix E): analytical (approximate variance) and experimental
//! (averaged MSE) utility on Adult for RS+RFD vs RS+FD under "Correct" and
//! the three "Incorrect" prior families (DIR / ZIPF / EXP).

use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol};
use ldp_datasets::priors::IncorrectPrior;
use ldp_protocols::UeMode;

use crate::aif::{AifDataset, PriorSpec};
use crate::mse::{MseMethod, MseParams};
use crate::registry::ExperimentReport;
use crate::{eps_ln_grid, ExpConfig};

fn methods(prior: PriorSpec) -> Vec<MseMethod> {
    vec![
        MseMethod::RsRfd(RsRfdProtocol::Grr, prior),
        MseMethod::RsRfd(RsRfdProtocol::UeR(UeMode::Symmetric), prior),
        MseMethod::RsRfd(RsRfdProtocol::UeR(UeMode::Optimized), prior),
        MseMethod::RsFd(RsFdProtocol::Grr),
        MseMethod::RsFd(RsFdProtocol::UeR(UeMode::Symmetric)),
        MseMethod::RsFd(RsFdProtocol::UeR(UeMode::Optimized)),
    ]
}

/// Runs the figure; the report carries one `fig16_<prior>.csv` per prior
/// family. The `analytic_var` column carries the paper's analytical curves.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let priors = [
        ("correct", PriorSpec::Correct),
        ("dir", PriorSpec::Incorrect(IncorrectPrior::Dirichlet)),
        ("zipf", PriorSpec::Incorrect(IncorrectPrior::Zipf)),
        ("exp", PriorSpec::Incorrect(IncorrectPrior::Exp)),
    ];
    let mut report = ExperimentReport::new();
    for (label, prior) in priors {
        let params = MseParams {
            dataset: AifDataset::Adult,
            methods: methods(prior),
            eps: eps_ln_grid(),
        };
        let table = crate::mse::run(
            cfg,
            &params,
            &format!("Fig 16 (Adult, {label} priors, analytic + experimental)"),
        );
        report = report.with(format!("fig16_{label}.csv"), table);
    }
    report
}
