//! Experiment configuration from environment variables.

use std::path::PathBuf;

use ldp_datasets::corpora;
use ldp_datasets::{mixed, Dataset, MixedDataset};
use ldp_gbdt::GbdtParams;

/// Shared configuration of all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Repetitions averaged per parameter point.
    pub runs: usize,
    /// Fraction of each dataset's paper-scale `n` to simulate.
    pub scale: f64,
    /// Worker threads for the parameter-grid sweeps.
    pub threads: usize,
    /// Master seed; every (figure, run, point) derives its own stream.
    pub seed: u64,
    /// Directory receiving CSV outputs.
    pub out_dir: PathBuf,
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

impl ExpConfig {
    /// Reads `RISKS_*` environment variables (see crate docs).
    pub fn from_env() -> Self {
        let full = env_parse::<u8>("RISKS_FULL").unwrap_or(0) == 1;
        let runs = env_parse("RISKS_RUNS").unwrap_or(if full { 20 } else { 3 });
        let scale: f64 = env_parse("RISKS_SCALE").unwrap_or(if full { 1.0 } else { 0.15 });
        let threads = env_parse("RISKS_THREADS").unwrap_or_else(ldp_sim::par::default_threads);
        let seed = env_parse("RISKS_SEED").unwrap_or(42);
        let out_dir =
            PathBuf::from(std::env::var("RISKS_OUT").unwrap_or_else(|_| "results".to_string()));
        ExpConfig {
            runs: runs.max(1),
            scale: scale.clamp(0.01, 1.0),
            threads: threads.max(1),
            seed,
            out_dir,
        }
    }

    fn scaled(&self, paper_n: usize, floor: usize) -> usize {
        ((paper_n as f64 * self.scale) as usize)
            .max(floor)
            .min(paper_n)
    }

    /// Adult-like dataset at the configured scale.
    pub fn adult(&self, run: u64) -> Dataset {
        corpora::adult_like(self.scaled(corpora::ADULT_N, 2000), self.seed ^ (run << 8))
    }

    /// ACSEmployment-like dataset at the configured scale.
    pub fn acs(&self, run: u64) -> Dataset {
        corpora::acs_employment_like(
            self.scaled(corpora::ACS_EMPLOYMENT_N, 1500),
            self.seed ^ (run << 8) ^ 0xACE,
        )
    }

    /// Nursery-like dataset at the configured scale.
    pub fn nursery(&self, run: u64) -> Dataset {
        corpora::nursery_like(
            self.scaled(corpora::NURSERY_N, 1500),
            self.seed ^ (run << 8) ^ 0x9925,
        )
    }

    /// MixedSurvey corpus (categorical survey plus age / hours-per-week
    /// continuous attributes) at the configured scale — the bed of the
    /// numeric-dimension extension experiments.
    pub fn mixed_survey(&self, run: u64) -> MixedDataset {
        mixed::mixed_survey_like(
            self.scaled(mixed::MIXED_SURVEY_N, 1500),
            self.seed ^ (run << 8) ^ 0x317ED,
        )
    }

    /// The scaled-down XGBoost stand-in used by every inference attack.
    ///
    /// `min_child_weight` is lowered from XGBoost's default 1.0 because the
    /// softmax hessian per row is ≈ p(1−p) ≈ 1/d, so at sub-paper population
    /// scales a weight of 1.0 vetoes exactly the rare-bit splits the UE
    /// attacks rely on.
    pub fn attack_gbdt(&self) -> GbdtParams {
        GbdtParams {
            rounds: 15,
            max_depth: 4,
            learning_rate: 0.3,
            subsample: 0.8,
            colsample: 0.8,
            min_child_weight: 0.05,
            ..GbdtParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        // Do not read the real environment in tests beyond defaults; the
        // parse helpers tolerate absence.
        let cfg = ExpConfig::from_env();
        assert!(cfg.runs >= 1);
        assert!(cfg.scale > 0.0 && cfg.scale <= 1.0);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn scaled_respects_floor_and_cap() {
        let cfg = ExpConfig {
            runs: 1,
            scale: 0.01,
            threads: 1,
            seed: 0,
            out_dir: PathBuf::from("results"),
        };
        assert_eq!(cfg.scaled(45_222, 2000), 2000);
        let cfg_full = ExpConfig { scale: 1.0, ..cfg };
        assert_eq!(cfg_full.scaled(45_222, 2000), 45_222);
    }

    #[test]
    fn datasets_match_schema_dimensions() {
        let cfg = ExpConfig {
            runs: 1,
            scale: 0.05,
            threads: 1,
            seed: 7,
            out_dir: PathBuf::from("results"),
        };
        assert_eq!(cfg.adult(0).d(), 10);
        assert_eq!(cfg.acs(0).d(), 18);
        assert_eq!(cfg.nursery(0).d(), 9);
    }
}
