//! The `risks serve` command body: one traffic-shaped streamed collection
//! run through the `ldp_server` ingestion service, with throughput and
//! estimate-quality reporting plus the usual per-run manifest.
//!
//! This is the operational twin of the figure experiments: instead of
//! reproducing a plot, it exercises the production path — client-side
//! sanitization following a seeded arrival schedule, bounded-channel
//! ingestion, sharded aggregation, graceful drain — and reports reports/sec
//! and the mean absolute error of the drained estimates against the
//! dataset's true marginals.

use std::path::PathBuf;
use std::time::Instant;

use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol, SolutionKind};
use ldp_datasets::{corpora, Dataset};
use ldp_protocols::{ProtocolKind, UeMode};
use ldp_server::{EpochSnapshot, ServerConfig, WireServer};
use ldp_sim::{BudgetPolicy, CollectionPipeline, CollectionRun, TrafficGenerator, TrafficShape};

use crate::manifest::{config_hash, git_rev, Manifest};
use crate::table::{fnum, Table};
use crate::ExpConfig;

/// The corpora `risks serve` can stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeDataset {
    /// Adult-like (d = 10).
    Adult,
    /// ACSEmployment-like (d = 18).
    Acs,
    /// Nursery-like (d = 9).
    Nursery,
}

impl ServeDataset {
    /// Every dataset, in CLI documentation order.
    pub const ALL: [ServeDataset; 3] = [
        ServeDataset::Adult,
        ServeDataset::Acs,
        ServeDataset::Nursery,
    ];

    /// Stable CLI identifier.
    pub fn id(self) -> &'static str {
        match self {
            ServeDataset::Adult => "adult",
            ServeDataset::Acs => "acs",
            ServeDataset::Nursery => "nursery",
        }
    }

    /// Looks a dataset up by its CLI identifier.
    pub fn from_id(id: &str) -> Option<ServeDataset> {
        ServeDataset::ALL.into_iter().find(|d| d.id() == id)
    }

    /// Materializes the corpus at the configured scale.
    pub fn build(self, cfg: &ExpConfig) -> Dataset {
        match self {
            ServeDataset::Adult => cfg.adult(0),
            ServeDataset::Acs => cfg.acs(0),
            ServeDataset::Nursery => cfg.nursery(0),
        }
    }

    /// [`ServeDataset::build`] with an optional explicit population size.
    ///
    /// `--users` exists because `--scale` is capped at the paper's n (the
    /// Adult corpus tops out at 45,222 users) while the ingestion-tier soak
    /// runs want millions. The override uses the same run-0 seed derivations
    /// as [`ServeDataset::build`], so server and producer processes agree on
    /// the corpus bit-for-bit whenever they agree on `(dataset, seed, users)`.
    pub fn build_sized(self, cfg: &ExpConfig, users: Option<usize>) -> Dataset {
        let Some(n) = users else {
            return self.build(cfg);
        };
        let n = n.max(1);
        match self {
            ServeDataset::Adult => corpora::adult_like(n, cfg.seed),
            ServeDataset::Acs => corpora::acs_employment_like(n, cfg.seed ^ 0xACE),
            ServeDataset::Nursery => corpora::nursery_like(n, cfg.seed ^ 0x9925),
        }
    }
}

impl std::fmt::Display for ServeDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// The `(id, kind)` table behind [`solution_from_id`] — also the CLI help's
/// source of truth, so the docs cannot drift from the parser.
pub const SOLUTION_IDS: [(&str, SolutionKind); 15] = [
    ("spl-grr", SolutionKind::Spl(ProtocolKind::Grr)),
    ("spl-olh", SolutionKind::Spl(ProtocolKind::Olh)),
    ("spl-ss", SolutionKind::Spl(ProtocolKind::Ss)),
    ("spl-sue", SolutionKind::Spl(ProtocolKind::Sue)),
    ("spl-oue", SolutionKind::Spl(ProtocolKind::Oue)),
    ("smp-grr", SolutionKind::Smp(ProtocolKind::Grr)),
    ("smp-olh", SolutionKind::Smp(ProtocolKind::Olh)),
    ("smp-ss", SolutionKind::Smp(ProtocolKind::Ss)),
    ("smp-sue", SolutionKind::Smp(ProtocolKind::Sue)),
    ("smp-oue", SolutionKind::Smp(ProtocolKind::Oue)),
    ("rsfd-grr", SolutionKind::RsFd(RsFdProtocol::Grr)),
    (
        "rsfd-uez",
        SolutionKind::RsFd(RsFdProtocol::UeZ(UeMode::Optimized)),
    ),
    (
        "rsfd-uer",
        SolutionKind::RsFd(RsFdProtocol::UeR(UeMode::Optimized)),
    ),
    ("rsrfd-grr", SolutionKind::RsRfd(RsRfdProtocol::Grr)),
    (
        "rsrfd-uer",
        SolutionKind::RsRfd(RsRfdProtocol::UeR(UeMode::Optimized)),
    ),
];

/// Looks a collection solution up by its CLI identifier (`"rsfd-grr"`).
pub fn solution_from_id(id: &str) -> Option<SolutionKind> {
    SOLUTION_IDS
        .iter()
        .find(|(sid, _)| *sid == id)
        .map(|&(_, kind)| kind)
}

/// One parsed `risks serve` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Collection solution to stream.
    pub solution: SolutionKind,
    /// Corpus to synthesize.
    pub dataset: ServeDataset,
    /// Arrival schedule shape.
    pub shape: TrafficShape,
    /// User-level privacy budget ε (for the whole campaign: under
    /// [`BudgetPolicy::SplitEps`] each of the `rounds` epochs spends ε/R).
    pub epsilon: f64,
    /// Explicit population size (`--users`), overriding `--scale`.
    pub users: Option<usize>,
    /// Collection rounds (`--rounds`); every user reports once per round.
    pub rounds: usize,
    /// Closed-epoch snapshots the server retains (`--retain`).
    pub retain: usize,
    /// Longitudinal budget policy (`--budget split|memoize`).
    pub budget: BudgetPolicy,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            solution: SolutionKind::RsFd(RsFdProtocol::Grr),
            dataset: ServeDataset::Adult,
            shape: TrafficShape::Steady,
            epsilon: 1.0,
            users: None,
            rounds: 1,
            retain: 4,
            budget: BudgetPolicy::SplitEps,
        }
    }
}

/// The measured outcome of one serve run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The drained collection run.
    pub run: CollectionRun,
    /// Wall-clock seconds from first wave to drained snapshot.
    pub wall_secs: f64,
    /// End-to-end ingestion throughput (sanitize + route + absorb + drain).
    pub reports_per_sec: f64,
    /// Mean absolute error of the normalized estimates vs the dataset's
    /// true marginals, averaged over every attribute-value cell.
    pub mae: f64,
    /// Closed per-epoch windows the server retained (newest-`retain` of the
    /// `rounds` epochs; empty for a single-round run).
    pub epochs: Vec<EpochSnapshot>,
}

/// Streams `spec` under `cfg` and measures it.
pub fn run_serve(spec: &ServeSpec, cfg: &ExpConfig) -> ServeOutcome {
    let dataset = spec.dataset.build_sized(cfg, spec.users);
    let ks = dataset.schema().cardinalities();
    let pipeline = CollectionPipeline::from_kind(spec.solution, &ks, spec.epsilon)
        .expect("serve spec validated at parse time")
        .seed(cfg.seed)
        .threads(cfg.threads);
    let traffic = TrafficGenerator::new(spec.shape, dataset.n()).seed(cfg.seed);
    let started = Instant::now();
    let (run, epochs) = if spec.rounds > 1 {
        let longitudinal = pipeline
            .serve_rounds(&dataset, &traffic, spec.rounds, spec.budget, spec.retain)
            .expect("serve spec validated at parse time");
        (longitudinal.cumulative, longitudinal.epochs)
    } else {
        (pipeline.serve(&dataset, &traffic), Vec::new())
    };
    let wall_secs = started.elapsed().as_secs_f64();
    let mae = mean_abs_error(&run.normalized, &dataset.marginals());
    ServeOutcome {
        reports_per_sec: run.n as f64 / wall_secs.max(1e-9),
        run,
        wall_secs,
        mae,
        epochs,
    }
}

/// Options of the networked `risks serve --listen` mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListenOpts {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Producer sessions to wait for before draining.
    pub producers: usize,
    /// File to write the bound address to (for scripted producers when the
    /// port is ephemeral).
    pub addr_file: Option<PathBuf>,
    /// Socket read timeout in milliseconds (`--read-timeout-ms`); a producer
    /// silent for longer is ABORTed so it cannot wedge the drain barrier.
    /// Doubles as the resume grace period: a faulted session that has not
    /// reconnected within it is reaped from the fleet instead of wedging the
    /// drain. `0` disables both.
    pub read_timeout_ms: u64,
    /// Shared-secret handshake token (`--auth-token`); connections whose
    /// HELLO carries a different token's digest are rejected with
    /// `ABORT_AUTH`. `None` accepts only tokenless producers.
    pub auth_token: Option<String>,
}

/// Binds a [`WireServer`] for `spec`, waits for `producers` DRAINed
/// sessions, and measures the drained aggregate exactly like [`run_serve`].
///
/// The corpus is materialized only long enough to capture its schema and
/// true marginals, then dropped **before** the listener binds — the serving
/// process holds the merged aggregate and per-shard queues, nothing
/// proportional to the population, so server RSS stays flat at any `--users`
/// (the nightly soak pins this).
pub fn run_serve_listen(
    spec: &ServeSpec,
    cfg: &ExpConfig,
    listen: &ListenOpts,
) -> std::io::Result<ServeOutcome> {
    let dataset = spec.dataset.build_sized(cfg, spec.users);
    let ks = dataset.schema().cardinalities();
    let truth = dataset.marginals();
    let expected = dataset.n() as u64 * spec.rounds as u64;
    drop(dataset);
    // The wire handshake fingerprints the solution the producers actually
    // run, which under ε-splitting is the ε/R per-round rebuild.
    let solution = spec
        .solution
        .build(&ks, spec.epsilon)
        .and_then(|s| spec.budget.round_solution(&s, spec.rounds))
        .expect("serve spec validated at parse time");
    let server = WireServer::bind(
        listen.addr.as_str(),
        solution,
        ServerConfig::default()
            .shards(cfg.threads)
            .retain(spec.retain)
            .read_timeout_ms(listen.read_timeout_ms)
            .auth_token(listen.auth_token.clone()),
    )?
    .producers(listen.producers);
    let addr = server.local_addr();
    if let Some(path) = &listen.addr_file {
        std::fs::write(path, format!("{addr}\n"))?;
    }
    eprintln!(
        "[risks] serve: listening on {addr}, waiting for {} producer(s) to drain",
        listen.producers
    );
    let started = Instant::now();
    // Fleet rendezvous, not a plain drain count: a producer that faulted
    // past its resume grace is reaped and counted toward the rendezvous, so
    // one dead producer degrades the run instead of wedging it.
    server.wait_for_fleet(listen.producers);
    let rejected = server.rejected_connections();
    let reaped = server.reaped_sessions();
    let epochs = server.epochs();
    let snapshot = server.finish();
    let wall_secs = started.elapsed().as_secs_f64();
    if reaped > 0 {
        eprintln!(
            "[risks] serve: DEGRADED — reaped {reaped} dead producer session(s); \
             the drained aggregate is missing their unacked partitions"
        );
    }
    if snapshot.n != expected {
        eprintln!(
            "[risks] serve: drained {} reports, expected {expected} — did the \
             producer fleet cover every `--part` with matching flags?",
            snapshot.n
        );
    }
    if rejected > 0 {
        eprintln!("[risks] serve: rejected {rejected} malformed connection(s)");
    }
    let mae = mean_abs_error(&snapshot.normalized, &truth);
    Ok(ServeOutcome {
        reports_per_sec: snapshot.n as f64 / wall_secs.max(1e-9),
        run: CollectionRun {
            aggregator: snapshot.aggregator,
            estimates: snapshot.estimates,
            normalized: snapshot.normalized,
            n: snapshot.n,
            shards: snapshot.shards,
        },
        wall_secs,
        mae,
        epochs,
    })
}

/// The per-epoch windowed view of a longitudinal serve run: one row per
/// retained closed epoch (`risks serve --rounds R --retain W`).
fn windows_table(outcome: &ServeOutcome) -> Table {
    let mut table = Table::new(
        "retained epoch windows".to_string(),
        &["epoch", "n", "reports_per_user_attr"],
    );
    for epoch in &outcome.epochs {
        let cells: usize = epoch.snapshot.normalized.iter().map(Vec::len).sum();
        table.row(vec![
            epoch.epoch.to_string(),
            epoch.snapshot.n.to_string(),
            fnum(epoch.snapshot.n as f64 / cells.max(1) as f64),
        ]);
    }
    table
}

/// Mean absolute cell-wise difference between two estimate matrices.
fn mean_abs_error(estimates: &[Vec<f64>], truth: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    let mut cells = 0usize;
    for (e, t) in estimates.iter().zip(truth) {
        for (a, b) in e.iter().zip(t) {
            total += (a - b).abs();
            cells += 1;
        }
    }
    if cells == 0 {
        0.0
    } else {
        total / cells as f64
    }
}

/// The config-hash key of one serve request: unlike the figure experiments,
/// whose results are fully determined by `(id, seed, runs, scale)`, a serve
/// run's outputs also depend on everything in the [`ServeSpec`] — so the
/// spec is folded into the hashed id and two runs with different solutions,
/// datasets, shapes or budgets always record different hashes.
pub fn serve_hash_id(spec: &ServeSpec) -> String {
    let solution_id = SOLUTION_IDS
        .iter()
        .find(|(_, kind)| *kind == spec.solution)
        .map_or("custom", |(id, _)| id);
    format!(
        "serve:{solution_id}:{}:{}:{}:{}:{}:{}:{}",
        spec.dataset,
        spec.shape,
        spec.epsilon.to_bits(),
        spec.users.map_or(-1i64, |u| u as i64),
        spec.rounds,
        spec.retain,
        spec.budget.id()
    )
}

/// Writes the drained normalized estimates as `serve_estimates.csv`.
///
/// Unlike `serve.csv` (which carries wall-clock and throughput columns and
/// thus differs between runs), this file is a pure function of
/// `(spec, seed)` — the CI loopback-smoke job byte-compares it between the
/// in-process and multi-process paths, so values are printed with full
/// `f64` round-trip precision.
fn write_estimates_csv(outcome: &ServeOutcome, cfg: &ExpConfig) {
    let mut table = Table::new(
        "drained normalized estimates".to_string(),
        &["attr", "value", "estimate"],
    );
    for (attr, row) in outcome.run.normalized.iter().enumerate() {
        for (value, est) in row.iter().enumerate() {
            table.row(vec![
                attr.to_string(),
                value.to_string(),
                format!("{est:.17e}"),
            ]);
        }
    }
    table.write_csv(&cfg.out_dir, "serve_estimates.csv");
}

/// Runs a serve request end to end for the CLI: stream (in-process, or over
/// the wire protocol when `listen` is set), print the table (unless
/// `quiet`), persist `serve.csv` + `serve_estimates.csv` and a
/// `serve.manifest.json`. Returns the process exit code.
pub fn execute_serve(
    spec: &ServeSpec,
    cfg: &ExpConfig,
    quiet: bool,
    listen: Option<&ListenOpts>,
) -> i32 {
    let solution_id = SOLUTION_IDS
        .iter()
        .find(|(_, kind)| *kind == spec.solution)
        .map_or("custom", |(id, _)| id);
    eprintln!(
        "[risks] serve {} on {} ({} traffic): eps={} rounds={} budget={} retain={} threads={} \
         seed={} scale={} users={}",
        solution_id,
        spec.dataset,
        spec.shape,
        spec.epsilon,
        spec.rounds,
        spec.budget,
        spec.retain,
        cfg.threads,
        cfg.seed,
        cfg.scale,
        spec.users.map_or("auto".to_string(), |u| u.to_string()),
    );
    let outcome = match listen {
        None => run_serve(spec, cfg),
        Some(opts) => match run_serve_listen(spec, cfg, opts) {
            Ok(outcome) => outcome,
            Err(err) => {
                eprintln!("[risks] serve: listener failed: {err}");
                return 1;
            }
        },
    };
    let mut table = Table::new(
        format!(
            "risks serve — {} on {} under {} traffic",
            spec.solution.name(),
            spec.dataset,
            spec.shape
        ),
        &[
            "solution",
            "dataset",
            "shape",
            "eps",
            "rounds",
            "budget",
            "n",
            "threads",
            "wall_s",
            "reports_per_sec",
            "mae",
        ],
    );
    table.row(vec![
        solution_id.to_string(),
        spec.dataset.id().to_string(),
        spec.shape.id().to_string(),
        fnum(spec.epsilon),
        spec.rounds.to_string(),
        spec.budget.id().to_string(),
        outcome.run.n.to_string(),
        cfg.threads.to_string(),
        fnum(outcome.wall_secs),
        format!("{:.0}", outcome.reports_per_sec),
        format!("{:.5}", outcome.mae),
    ]);
    if !quiet {
        print!("{}", table.render());
    }
    table.write_csv(&cfg.out_dir, "serve.csv");
    write_estimates_csv(&outcome, cfg);
    if !outcome.epochs.is_empty() {
        let windows = windows_table(&outcome);
        if !quiet {
            print!("{}", windows.render());
        }
        windows.write_csv(&cfg.out_dir, "serve_windows.csv");
    }
    let manifest = Manifest {
        id: "serve".to_string(),
        config_hash: config_hash(&serve_hash_id(spec), cfg),
        seed: cfg.seed,
        // A serve invocation is always exactly one pass over the population.
        runs: 1,
        scale: cfg.scale,
        wall_secs: outcome.wall_secs,
        rows: table.len(),
        git_rev: git_rev(),
        outputs: if outcome.epochs.is_empty() {
            vec!["serve.csv".to_string(), "serve_estimates.csv".to_string()]
        } else {
            vec![
                "serve.csv".to_string(),
                "serve_estimates.csv".to_string(),
                "serve_windows.csv".to_string(),
            ]
        },
    };
    let path = manifest.write(&cfg.out_dir);
    eprintln!(
        "[risks] serve done in {:.2}s: {} reports ({:.0}/s, MAE {:.5}) → serve.csv + {}",
        outcome.wall_secs,
        outcome.run.n,
        outcome.reports_per_sec,
        outcome.mae,
        path.display()
    );
    0
}

/// Runs one producer of a `risks produce --connect` fleet: rebuilds the
/// corpus and traffic schedule from `spec`/`cfg` (which must match the
/// serving process's flags), streams its `part` of the population over the
/// wire with the given client-side wire behavior (auth, deadline, reconnect
/// budget, optional fault plan), and drains. With `snapshot_every > 0` an
/// incremental SNAPSHOT round trip is logged every that many waves. Returns
/// the exit code.
#[allow(clippy::too_many_arguments)]
pub fn execute_produce(
    spec: &ServeSpec,
    cfg: &ExpConfig,
    connect: &str,
    part: usize,
    parts: usize,
    snapshot_every: usize,
    quiet: bool,
    client: ldp_sim::ClientConfig,
) -> i32 {
    let dataset = spec.dataset.build_sized(cfg, spec.users);
    let ks = dataset.schema().cardinalities();
    let pipeline = CollectionPipeline::from_kind(spec.solution, &ks, spec.epsilon)
        .expect("produce spec validated at parse time")
        .seed(cfg.seed)
        .client(client);
    let traffic = TrafficGenerator::new(spec.shape, dataset.n()).seed(cfg.seed);
    eprintln!(
        "[risks] produce {part}/{parts} → {connect}: {} on {} ({} traffic, {} users, seed {})",
        spec.solution.name(),
        spec.dataset,
        spec.shape,
        dataset.n(),
        cfg.seed
    );
    let started = Instant::now();
    // Multi-round fleets advance via the EPOCH barrier instead of
    // incremental SNAPSHOT polling, so `snapshot_every` applies only to the
    // single-round path.
    let result = if spec.rounds > 1 {
        pipeline.serve_remote_rounds(
            &dataset,
            &traffic,
            connect,
            part,
            parts,
            spec.rounds,
            spec.budget,
        )
    } else {
        pipeline.serve_remote_part(
            &dataset,
            &traffic,
            connect,
            part,
            parts,
            snapshot_every,
            &mut |snapshot| {
                if !quiet {
                    eprintln!(
                        "[risks] produce {part}/{parts}: server aggregate at {} reports",
                        snapshot.n
                    );
                }
            },
        )
    };
    let wall_secs = started.elapsed().as_secs_f64();
    match result {
        Ok(acked) => {
            eprintln!(
                "[risks] produce {part}/{parts} done in {wall_secs:.2}s: \
                 server acknowledged {acked} reports ({:.0}/s)",
                acked as f64 / wall_secs.max(1e-9)
            );
            0
        }
        Err(err) => {
            eprintln!("[risks] produce {part}/{parts} failed: {err}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            runs: 1,
            scale: 0.05,
            threads: 2,
            seed: 7,
            out_dir: PathBuf::from("results"),
        }
    }

    #[test]
    fn solution_ids_roundtrip_and_build() {
        for (id, kind) in SOLUTION_IDS {
            assert_eq!(solution_from_id(id), Some(kind), "{id}");
            assert!(kind.build(&[4, 3], 1.0).is_ok(), "{id} must be buildable");
        }
        assert_eq!(solution_from_id("carrier-pigeon"), None);
    }

    #[test]
    fn dataset_ids_roundtrip() {
        for ds in ServeDataset::ALL {
            assert_eq!(ServeDataset::from_id(ds.id()), Some(ds));
        }
        assert_eq!(ServeDataset::from_id("mnist"), None);
    }

    #[test]
    fn run_serve_measures_a_real_stream() {
        let cfg = tiny_cfg();
        let spec = ServeSpec {
            solution: SolutionKind::Smp(ProtocolKind::Grr),
            dataset: ServeDataset::Nursery,
            shape: TrafficShape::Burst,
            epsilon: 2.0,
            ..ServeSpec::default()
        };
        let outcome = run_serve(&spec, &cfg);
        assert_eq!(outcome.run.n as usize, cfg.nursery(0).n());
        assert!(outcome.reports_per_sec > 0.0);
        assert!(outcome.mae.is_finite() && outcome.mae < 0.5);
        // Streamed serve equals the batch pipeline at equal seed.
        let ds = spec.dataset.build(&cfg);
        let batch = CollectionPipeline::from_kind(
            spec.solution,
            &ds.schema().cardinalities(),
            spec.epsilon,
        )
        .unwrap()
        .seed(cfg.seed)
        .threads(cfg.threads)
        .run(&ds);
        assert_eq!(outcome.run.aggregator.counts(), batch.aggregator.counts());
    }

    #[test]
    fn users_override_sizes_the_corpus_deterministically() {
        let cfg = tiny_cfg();
        let spec = ServeSpec {
            users: Some(777),
            ..ServeSpec::default()
        };
        let ds = spec.dataset.build_sized(&cfg, spec.users);
        assert_eq!(ds.n(), 777);
        // Same seed derivation as the scale path: at the natural size the
        // override reproduces `build` exactly.
        let natural = spec.dataset.build(&cfg);
        let sized = spec.dataset.build_sized(&cfg, Some(natural.n()));
        assert_eq!(sized.n(), natural.n());
        assert_eq!(sized.marginals(), natural.marginals());
    }

    #[test]
    fn listen_mode_drains_a_remote_producer_bit_identically() {
        let cfg = tiny_cfg();
        let spec = ServeSpec {
            dataset: ServeDataset::Nursery,
            users: Some(400),
            ..ServeSpec::default()
        };
        // Baseline: the in-process batch pipeline at equal seed.
        let ds = spec.dataset.build_sized(&cfg, spec.users);
        let ks = ds.schema().cardinalities();
        let baseline = CollectionPipeline::from_kind(spec.solution, &ks, spec.epsilon)
            .unwrap()
            .seed(cfg.seed)
            .run(&ds);
        // Networked: bind on an ephemeral port, discover it through the
        // addr file, and drive one producer fleet of two parts.
        let dir = std::env::temp_dir().join(format!("risks-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let listen = ListenOpts {
            addr: "127.0.0.1:0".to_string(),
            producers: 2,
            addr_file: Some(addr_file.clone()),
            read_timeout_ms: 0,
            auth_token: None,
        };
        let server = {
            let (spec, cfg, listen) = (spec.clone(), cfg.clone(), listen.clone());
            std::thread::spawn(move || run_serve_listen(&spec, &cfg, &listen).unwrap())
        };
        while !addr_file.exists() {
            std::thread::yield_now();
        }
        let addr = std::fs::read_to_string(&addr_file)
            .unwrap()
            .trim()
            .to_string();
        for part in 0..2 {
            assert_eq!(
                execute_produce(
                    &spec,
                    &cfg,
                    &addr,
                    part,
                    2,
                    0,
                    true,
                    ldp_sim::ClientConfig::default()
                ),
                0,
                "producer {part} must drain cleanly"
            );
        }
        let outcome = server.join().unwrap();
        assert_eq!(outcome.run.n, baseline.n);
        assert_eq!(
            outcome.run.aggregator.counts(),
            baseline.aggregator.counts()
        );
        for (a, b) in outcome
            .run
            .normalized
            .iter()
            .flatten()
            .zip(baseline.normalized.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_round_listen_matches_the_in_process_longitudinal_run() {
        let cfg = tiny_cfg();
        let spec = ServeSpec {
            dataset: ServeDataset::Nursery,
            users: Some(300),
            rounds: 2,
            retain: 2,
            budget: BudgetPolicy::SplitEps,
            ..ServeSpec::default()
        };
        // Baseline: the in-process longitudinal serve at equal seed.
        let baseline = run_serve(&spec, &cfg);
        assert_eq!(baseline.run.n, 600);
        assert_eq!(baseline.epochs.len(), 2);
        // Networked: one producer drives both rounds through the EPOCH
        // barrier; the drained cumulative aggregate and the retained epoch
        // windows must match bit-for-bit.
        let dir = std::env::temp_dir().join(format!("risks-serve-rounds-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let listen = ListenOpts {
            addr: "127.0.0.1:0".to_string(),
            producers: 1,
            addr_file: Some(addr_file.clone()),
            read_timeout_ms: 0,
            auth_token: None,
        };
        let server = {
            let (spec, cfg, listen) = (spec.clone(), cfg.clone(), listen.clone());
            std::thread::spawn(move || run_serve_listen(&spec, &cfg, &listen).unwrap())
        };
        while !addr_file.exists() {
            std::thread::yield_now();
        }
        let addr = std::fs::read_to_string(&addr_file)
            .unwrap()
            .trim()
            .to_string();
        assert_eq!(
            execute_produce(
                &spec,
                &cfg,
                &addr,
                0,
                1,
                0,
                true,
                ldp_sim::ClientConfig::default()
            ),
            0
        );
        let outcome = server.join().unwrap();
        assert_eq!(outcome.run.n, baseline.run.n);
        assert_eq!(
            outcome.run.aggregator.counts(),
            baseline.run.aggregator.counts()
        );
        assert_eq!(outcome.epochs.len(), baseline.epochs.len());
        for (remote, local) in outcome.epochs.iter().zip(&baseline.epochs) {
            assert_eq!(remote.epoch, local.epoch);
            assert_eq!(remote.snapshot.n, local.snapshot.n);
            assert_eq!(
                remote.snapshot.aggregator.counts(),
                local.snapshot.aggregator.counts()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mean_abs_error_handles_empty_input() {
        assert_eq!(mean_abs_error(&[], &[]), 0.0);
        assert!(mean_abs_error(&[vec![0.5, 0.5]], &[vec![0.25, 0.75]]) - 0.25 < 1e-12);
    }

    #[test]
    fn manifest_hash_distinguishes_serve_specs() {
        use crate::manifest::config_hash;
        let cfg = tiny_cfg();
        let base = ServeSpec::default();
        let hash = |spec: &ServeSpec| config_hash(&serve_hash_id(spec), &cfg);
        // Every spec dimension must reach the recorded hash.
        let variants = [
            ServeSpec {
                solution: SolutionKind::Smp(ProtocolKind::Oue),
                ..base.clone()
            },
            ServeSpec {
                dataset: ServeDataset::Acs,
                ..base.clone()
            },
            ServeSpec {
                shape: TrafficShape::Churn,
                ..base.clone()
            },
            ServeSpec {
                epsilon: 4.0,
                ..base.clone()
            },
            ServeSpec {
                users: Some(12_345),
                ..base.clone()
            },
            ServeSpec {
                rounds: 4,
                ..base.clone()
            },
            ServeSpec {
                retain: 8,
                ..base.clone()
            },
            ServeSpec {
                budget: BudgetPolicy::Memoize,
                ..base.clone()
            },
        ];
        for variant in &variants {
            assert_ne!(
                hash(variant),
                hash(&base),
                "{variant:?} must not collide with the default spec"
            );
        }
        assert_eq!(hash(&base), hash(&base.clone()));
    }
}
