//! Longitudinal collection experiments (extension, §7 outlook): what `R`
//! repeated collections of the same population cost under the two budget
//! policies.
//!
//! * [`run_risk`] — `longitudinal_risk`: the averaging adversary's ASR as a
//!   function of the round count. Under naive ε-splitting every round leaks
//!   a fresh ε/R view (a sampling solution discloses a different attribute
//!   each round — coverage `≈ d(1−(1−1/d)^R)`), so the pooled
//!   re-identification risk **rises** with `R`; under RAPPOR-style
//!   memoization each round replays the round-0 report and the curve is
//!   exactly flat.
//! * [`run_mse`] — `longitudinal_mse`: the analyst's utility mirror. The
//!   natural longitudinal estimator averages the per-round estimates;
//!   ε-splitting pays GRR variance at ε/R (which grows much faster than the
//!   `1/R` averaging gain buys back), memoization keeps the full-ε
//!   single-round error on every round.

use std::collections::BTreeMap;

use ldp_core::attacks::{AttackKind, AveragingConfig, ReidentConfig};
use ldp_core::metrics::{mean_std, mse_avg};
use ldp_core::solutions::SolutionKind;
use ldp_protocols::hash::{mix2, mix3};
use ldp_protocols::ProtocolKind;
use ldp_sim::par::par_map;
use ldp_sim::{AttackPipeline, BudgetPolicy, CollectionPipeline};

use crate::registry::ExperimentReport;
use crate::table::{fnum, Table};
use crate::{ExpConfig, TOP_KS};

/// Round counts both longitudinal sweeps evaluate.
pub const ROUNDS_GRID: [usize; 4] = [1, 2, 4, 8];

/// Total privacy budget of the campaign. High on purpose: the risk sweep
/// wants each ε/R round to still carry signal, so the attribute-coverage
/// growth of fresh-randomness sampling — not per-round noise — dominates
/// the ε-splitting curve.
const RISK_EPSILON: f64 = 32.0;

/// Total budget of the utility sweep (mid-grid, where splitting visibly
/// hurts without drowning every round in noise).
const MSE_EPSILON: f64 = 4.0;

fn fig_seed(cfg: &ExpConfig, tag: &str) -> u64 {
    mix2(
        cfg.seed,
        tag.bytes().fold(0u64, |h, b| mix2(h, u64::from(b))),
    )
}

/// Grid items carry their own seed, derived from `(policy, run)` but **not**
/// from `rounds`: round counts of the same campaign share users and
/// randomness streams, which makes the R-axis a paired comparison —
/// memoization is exactly flat per run, and the ε-splitting curve is not
/// blurred by re-drawing the population at every R.
fn policy_grid(cfg: &ExpConfig, fig_seed: u64) -> Vec<(BudgetPolicy, usize, u64, u64)> {
    BudgetPolicy::ALL
        .into_iter()
        .enumerate()
        .flat_map(|(p, policy)| {
            ROUNDS_GRID.into_iter().flat_map(move |rounds| {
                (0..cfg.runs as u64)
                    .map(move |run| (policy, rounds, run, mix3(fig_seed, p as u64, run)))
            })
        })
        .collect()
}

/// `longitudinal_risk`: averaging-attack ASR vs round count, per budget
/// policy (`policy, rounds, top_k, asr_mean, asr_std, baseline`).
pub fn run_risk(cfg: &ExpConfig) -> ExperimentReport {
    let fig_seed = fig_seed(cfg, "longitudinal_risk");
    let grid = policy_grid(cfg, fig_seed);

    let points: Vec<(BudgetPolicy, usize, Vec<f64>, Vec<f64>)> =
        par_map(grid.len(), cfg.threads, |g| {
            let (policy, rounds, run, item_seed) = grid[g];
            let dataset = cfg.adult(run);
            let ks = dataset.schema().cardinalities();
            let collection = CollectionPipeline::from_kind(
                SolutionKind::Smp(ProtocolKind::Grr),
                &ks,
                RISK_EPSILON,
            )
            .expect("SMP[GRR] builds for every eps > 0")
            .seed(item_seed)
            .threads(1);
            let attack = AttackPipeline::from_kind(AttackKind::Averaging(AveragingConfig {
                rounds,
                reident: ReidentConfig {
                    top_ks: TOP_KS.to_vec(),
                    ..ReidentConfig::default()
                },
            }))
            .expect("averaging attack kind")
            .seed(item_seed)
            .threads(1);
            let outcome = attack
                .run_rounds(&collection, &dataset, rounds, policy)
                .expect("per-round solution builds")
                .outcome;
            let o = outcome.reident().expect("reident outcome");
            (policy, rounds, o.rid_acc.clone(), o.baseline.clone())
        });

    let mut buckets: BTreeMap<(&'static str, usize, usize), (Vec<f64>, f64)> = BTreeMap::new();
    for (policy, rounds, accs, baselines) in points {
        for (slot, &k) in TOP_KS.iter().enumerate() {
            let entry = buckets
                .entry((policy.id(), rounds, k))
                .or_insert_with(|| (Vec::new(), baselines[slot]));
            entry.0.push(accs[slot]);
        }
    }

    let mut table = Table::new(
        "longitudinal_risk: averaging-attack RID-ACC (%) vs rounds, SMP[GRR], Adult".to_string(),
        &[
            "policy", "rounds", "top_k", "asr_mean", "asr_std", "baseline",
        ],
    );
    for ((policy, rounds, k), (accs, baseline)) in buckets {
        let ms = mean_std(&accs);
        table.row(vec![
            policy.to_string(),
            rounds.to_string(),
            k.to_string(),
            fnum(ms.mean),
            fnum(ms.std),
            fnum(baseline),
        ]);
    }
    ExperimentReport::new().with("longitudinal_risk.csv", table)
}

/// `longitudinal_mse`: averaged-estimator MSE vs round count, per budget
/// policy (`policy, rounds, mse_mean, mse_std`).
pub fn run_mse(cfg: &ExpConfig) -> ExperimentReport {
    let fig_seed = fig_seed(cfg, "longitudinal_mse");
    let grid = policy_grid(cfg, fig_seed);

    let points: Vec<(BudgetPolicy, usize, f64)> = par_map(grid.len(), cfg.threads, |g| {
        let (policy, rounds, run, item_seed) = grid[g];
        let dataset = cfg.adult(run);
        let ks = dataset.schema().cardinalities();
        let truth = dataset.marginals();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, MSE_EPSILON)
                .expect("SMP[GRR] builds for every eps > 0")
                .seed(item_seed)
                .threads(1);
        let round_runs = pipeline
            .run_rounds(&dataset, rounds, policy)
            .expect("per-round solution builds");
        // The analyst's longitudinal estimator: average the per-round
        // estimates (memoized rounds are identical, so averaging is a no-op
        // there by construction).
        let mut avg: Vec<Vec<f64>> = truth.iter().map(|m| vec![0.0; m.len()]).collect();
        for run in &round_runs {
            for (a, est) in avg.iter_mut().zip(&run.estimates) {
                for (s, &e) in a.iter_mut().zip(est) {
                    *s += e / round_runs.len() as f64;
                }
            }
        }
        (policy, rounds, mse_avg(&truth, &avg))
    });

    let mut buckets: BTreeMap<(&'static str, usize), Vec<f64>> = BTreeMap::new();
    for (policy, rounds, mse) in points {
        buckets.entry((policy.id(), rounds)).or_default().push(mse);
    }

    let mut table = Table::new(
        "longitudinal_mse: averaged-estimator MSE vs rounds, SMP[GRR], Adult".to_string(),
        &["policy", "rounds", "mse_mean", "mse_std"],
    );
    for ((policy, rounds), mses) in buckets {
        let ms = mean_std(&mses);
        table.row(vec![
            policy.to_string(),
            rounds.to_string(),
            fnum(ms.mean),
            fnum(ms.std),
        ]);
    }
    ExperimentReport::new().with("longitudinal_mse.csv", table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            runs: 1,
            scale: 0.01,
            threads: 2,
            seed: 11,
            out_dir: PathBuf::from("/tmp/risks-ldp-test"),
        }
    }

    #[test]
    fn risk_table_covers_the_policy_by_rounds_grid() {
        let report = run_risk(&tiny_cfg());
        let table = &report.tables[0].table;
        assert_eq!(
            table.len(),
            BudgetPolicy::ALL.len() * ROUNDS_GRID.len() * TOP_KS.len()
        );
        for row in table.rows() {
            let acc: f64 = row[3].parse().unwrap();
            assert!((0.0..=100.0).contains(&acc), "ASR {acc}");
        }
    }

    #[test]
    fn mse_table_covers_the_grid_and_memoize_is_flat() {
        let report = run_mse(&tiny_cfg());
        let table = &report.tables[0].table;
        assert_eq!(table.len(), BudgetPolicy::ALL.len() * ROUNDS_GRID.len());
        // Memoized rounds replay round 0, so the averaged estimator — and
        // its MSE — is identical at every round count.
        let memo: Vec<f64> = table
            .rows()
            .iter()
            .filter(|r| r[0] == "memoize")
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert_eq!(memo.len(), ROUNDS_GRID.len());
        for m in &memo {
            assert_eq!(m, &memo[0], "memoization must keep MSE exactly flat");
        }
    }
}
