//! Cross-experiment scheduling: runs a selection of registry experiments in
//! parallel over [`ldp_sim::par::par_queue`], cost-sorted longest-first, with
//! per-run JSON manifests for caching and auditability.
//!
//! The thread budget is split two ways: up to [`RunOptions::jobs`]
//! experiments run concurrently (outer queue), and each experiment's
//! [`ExpConfig::threads`] is divided by the number of concurrent jobs so the
//! machine is never oversubscribed. A panicking experiment is caught,
//! reported as [`ExpStatus::Failed`] and does not take the other experiments
//! down — the runner's exit status (via [`RunSummary::any_failed`]) is how
//! failures propagate.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use ldp_sim::par::par_queue;

use crate::manifest::{config_hash, git_rev, Manifest};
use crate::registry::{Experiment, ExperimentKind};
use crate::ExpConfig;

/// Options of one `risks run` invocation.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Re-run even when a fresh manifest certifies a cache hit.
    pub force: bool,
    /// Maximum experiments in flight at once (`None`: min(4, threads)).
    pub jobs: Option<usize>,
    /// Suppress table output (manifests and CSVs are still written).
    pub quiet: bool,
}

/// How one scheduled experiment ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpStatus {
    /// Ran to completion; manifest and CSVs written.
    Completed {
        /// Wall-clock seconds the experiment took.
        wall_secs: f64,
        /// Total data rows produced.
        rows: usize,
    },
    /// Skipped: a manifest with the same config hash and intact outputs
    /// already exists (pass `--force` to re-run).
    Cached,
    /// The experiment panicked; the payload is the panic message.
    Failed(String),
}

/// The outcome of one scheduling pass over a selection of experiments.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-experiment status, in the order the experiments were requested.
    pub results: Vec<(ExperimentKind, ExpStatus)>,
    /// Wall-clock seconds for the whole pass.
    pub wall_secs: f64,
}

impl RunSummary {
    /// Whether any experiment failed (drives the CLI's exit code — the old
    /// `bin/all.rs` silently dropped results and always exited 0).
    pub fn any_failed(&self) -> bool {
        self.results
            .iter()
            .any(|(_, s)| matches!(s, ExpStatus::Failed(_)))
    }

    /// The statuses partitioned into (completed, cached, failed) ids.
    pub fn partition_ids(&self) -> (Vec<&'static str>, Vec<&'static str>, Vec<&'static str>) {
        let mut done = Vec::new();
        let mut cached = Vec::new();
        let mut failed = Vec::new();
        for (kind, status) in &self.results {
            match status {
                ExpStatus::Completed { .. } => done.push(kind.id()),
                ExpStatus::Cached => cached.push(kind.id()),
                ExpStatus::Failed(_) => failed.push(kind.id()),
            }
        }
        (done, cached, failed)
    }
}

/// Runs the selected experiments under `cfg`, returning one status per
/// requested kind (input order). See the module docs for the scheduling
/// model.
pub fn run_experiments(kinds: &[ExperimentKind], cfg: &ExpConfig, opts: &RunOptions) -> RunSummary {
    let started = Instant::now();
    let rev = git_rev();

    // Cache pass: a fresh manifest (same config hash and code revision,
    // outputs intact) is a hit unless --force.
    let mut scheduled: Vec<ExperimentKind> = Vec::new();
    let mut statuses: Vec<(ExperimentKind, Option<ExpStatus>)> = Vec::new();
    for &kind in kinds {
        let exp = kind.build();
        let fresh = !opts.force
            && Manifest::load(&cfg.out_dir, exp.id())
                .is_some_and(|m| m.is_fresh(exp.id(), cfg, rev.as_deref()));
        if fresh {
            eprintln!(
                "[risks] {} cached (manifest fresh; --force to re-run)",
                exp.id()
            );
            statuses.push((kind, Some(ExpStatus::Cached)));
        } else {
            scheduled.push(kind);
            statuses.push((kind, None));
        }
    }

    // Longest-first: the queue hands jobs out in order, so sorting by
    // descending cost keeps the expensive figures from becoming the tail.
    scheduled.sort_by(|a, b| {
        b.build()
            .estimated_cost()
            .total_cmp(&a.build().estimated_cost())
    });

    let jobs = opts
        .jobs
        .unwrap_or_else(|| cfg.threads.min(4))
        .clamp(1, scheduled.len().max(1));
    // Split the thread budget across concurrent experiments; each experiment
    // still parallelizes internally over its share.
    let inner = ExpConfig {
        threads: (cfg.threads / jobs).max(1),
        ..cfg.clone()
    };

    let outcomes: Vec<(ExperimentKind, ExpStatus)> = par_queue(scheduled.len(), jobs, |i| {
        let kind = scheduled[i];
        (kind, run_one(kind, &inner, opts, rev.as_deref()))
    });

    for (kind, status) in outcomes {
        let slot = statuses
            .iter_mut()
            .find(|(k, s)| *k == kind && s.is_none())
            .expect("scheduled experiment came from the request list");
        slot.1 = Some(status);
    }
    RunSummary {
        results: statuses
            .into_iter()
            .map(|(k, s)| (k, s.expect("every experiment got a status")))
            .collect(),
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Runs one experiment, prints its tables, persists CSVs + manifest.
fn run_one(
    kind: ExperimentKind,
    cfg: &ExpConfig,
    opts: &RunOptions,
    git_rev: Option<&str>,
) -> ExpStatus {
    let exp = kind.build();
    eprintln!("[risks] running {} ({}) …", exp.id(), exp.paper_ref());
    let started = Instant::now();
    let report = match catch_unwind(AssertUnwindSafe(|| exp.run(cfg))) {
        Ok(report) => report,
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            eprintln!("[risks] {} FAILED: {msg}", exp.id());
            return ExpStatus::Failed(msg);
        }
    };
    let wall_secs = started.elapsed().as_secs_f64();
    if !opts.quiet {
        print!("{}", report.render());
    }
    report.write_csvs(&cfg.out_dir);
    let manifest = Manifest {
        id: exp.id().to_string(),
        config_hash: config_hash(exp.id(), cfg),
        seed: cfg.seed,
        runs: cfg.runs,
        scale: cfg.scale,
        wall_secs,
        rows: report.total_rows(),
        git_rev: git_rev.map(str::to_string),
        outputs: report.files(),
    };
    let path = manifest.write(&cfg.out_dir);
    eprintln!(
        "[risks] {} done in {wall_secs:.1}s ({} rows) → {} + {}",
        exp.id(),
        manifest.rows,
        manifest.outputs.join(", "),
        path.display()
    );
    ExpStatus::Completed {
        wall_secs,
        rows: manifest.rows,
    }
}

/// Human-readable text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "experiment panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_partitions_and_flags_failures() {
        let summary = RunSummary {
            results: vec![
                (
                    ExperimentKind::Fig01,
                    ExpStatus::Completed {
                        wall_secs: 0.1,
                        rows: 5,
                    },
                ),
                (ExperimentKind::Fig02, ExpStatus::Cached),
                (ExperimentKind::Fig03, ExpStatus::Failed("boom".into())),
            ],
            wall_secs: 0.2,
        };
        assert!(summary.any_failed());
        let (done, cached, failed) = summary.partition_ids();
        assert_eq!(done, ["fig01"]);
        assert_eq!(cached, ["fig02"]);
        assert_eq!(failed, ["fig03"]);
    }
}
