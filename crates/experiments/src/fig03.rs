//! Fig. 3: attacker's AIF-ACC on ACSEmployment with the NK / PK / HM attack
//! models against all five RS+FD protocols.

use ldp_core::solutions::RsFdProtocol;

use crate::aif::{AifDataset, AifParams, SolutionSpec};
use crate::registry::ExperimentReport;
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig03.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let params = AifParams {
        dataset: AifDataset::Acs,
        specs: RsFdProtocol::ALL
            .iter()
            .map(|&p| SolutionSpec::RsFd(p))
            .collect(),
        models: crate::aif::paper_models(),
        eps: eps_grid(),
    };
    let table = crate::aif::run(cfg, &params, "Fig 3 (ACSEmployment, RS+FD)");
    ExperimentReport::new().with("fig03.csv", table)
}
