//! Fig. 3: attacker's AIF-ACC on ACSEmployment with the NK / PK / HM attack
//! models against all five RS+FD protocols.

use ldp_core::solutions::RsFdProtocol;

use crate::aif::{AifDataset, AifParams, SolutionSpec};
use crate::table::Table;
use crate::{eps_grid, ExpConfig};

/// Runs the figure; prints the table and writes `fig03.csv`.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = AifParams {
        dataset: AifDataset::Acs,
        specs: RsFdProtocol::ALL
            .iter()
            .map(|&p| SolutionSpec::RsFd(p))
            .collect(),
        models: crate::aif::paper_models(),
        eps: eps_grid(),
    };
    let table = crate::aif::run(cfg, &params, "Fig 3 (ACSEmployment, RS+FD)");
    table.print();
    table.write_csv(&cfg.out_dir, "fig03.csv");
    table
}
