//! Fig. 4: RID-ACC on Adult against the **RS+FD\[GRR\]** solution (FK-RI,
//! uniform metric): the adversary must first infer the sampled attribute
//! (NK, s = 1n), so profiling errors chain and re-identification collapses
//! compared with SMP (Fig. 2).

use std::collections::BTreeMap;

use ldp_core::attacks::{AttackKind, ReidentConfig};
use ldp_core::inference::AttackClassifier;
use ldp_core::metrics::mean_std;
use ldp_core::solutions::RsFdProtocol;
use ldp_protocols::hash::{mix2, mix3};
use ldp_sim::par::par_map;
use ldp_sim::{run_rsfd_campaign, AttackPipeline, RsFdCampaignConfig, SurveyPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::registry::ExperimentReport;
use crate::table::{fnum, Table};
use crate::{eps_grid, ExpConfig, SURVEY_COUNTS, TOP_KS};

/// Runs the figure; the report carries `fig04.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let eps = eps_grid();
    let fig_seed = mix2(cfg.seed, 0x000F_1604);
    let n_surveys = 5usize;

    let grid: Vec<(usize, u64)> = (0..eps.len())
        .flat_map(|ei| (0..cfg.runs as u64).map(move |run| (ei, run)))
        .collect();

    // (eps index, [( (surveys, k), rid_acc )]) per grid item.
    type Point = (usize, Vec<((usize, usize), f64)>);
    let points: Vec<Point> = par_map(grid.len(), cfg.threads, |g| {
        let (ei, run) = grid[g];
        let item_seed = mix3(fig_seed, g as u64, run);
        let dataset = cfg.adult(run);
        let mut plan_rng = StdRng::seed_from_u64(mix3(fig_seed, run, 0x91A7));
        let plan = SurveyPlan::generate(dataset.d(), n_surveys, &mut plan_rng);
        let config = RsFdCampaignConfig {
            protocol: RsFdProtocol::Grr,
            epsilon: eps[ei],
            synth_factor: 1.0,
            classifier: AttackClassifier::Gbdt(cfg.attack_gbdt()),
        };
        let snapshots = run_rsfd_campaign(&dataset, &plan, &config, item_seed, 1)
            .expect("campaign construction");
        let evaluator = AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig {
            top_ks: TOP_KS.to_vec(),
            ..ReidentConfig::default()
        }))
        .expect("reident attack kind")
        .seed(item_seed)
        .threads(1);
        let attack = evaluator.reident_index(&dataset);
        let mut point = Vec::new();
        for &sv in SURVEY_COUNTS.iter().filter(|&&s| s <= n_surveys) {
            let accs = evaluator.rid_acc(&attack, &snapshots[sv - 1]);
            for (slot, &k) in TOP_KS.iter().enumerate() {
                point.push(((sv, k), accs[slot]));
            }
        }
        (ei, point)
    });

    let mut buckets: BTreeMap<(usize, usize, usize), Vec<f64>> = BTreeMap::new();
    for (ei, point) in points {
        for ((sv, k), acc) in point {
            buckets.entry((ei, sv, k)).or_default().push(acc);
        }
    }

    let n_population = cfg.adult(0).n();
    let mut table = Table::new(
        "Fig 4: RS+FD[GRR] re-identification on Adult (FK-RI, uniform eps-LDP)",
        &[
            "eps",
            "surveys",
            "top_k",
            "rid_acc_mean",
            "rid_acc_std",
            "baseline",
        ],
    );
    for ((ei, sv, k), accs) in buckets {
        let ms = mean_std(&accs);
        table.row(vec![
            fnum(eps[ei]),
            sv.to_string(),
            k.to_string(),
            fnum(ms.mean),
            fnum(ms.std),
            fnum(100.0 * k as f64 / n_population as f64),
        ]);
    }
    ExperimentReport::new().with("fig04.csv", table)
}
