//! Fig. 9 (Appendix C): RID-ACC on ACSEmployment, SMP, FK-RI, uniform
//! ε-LDP metric, all five protocols.

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::registry::ExperimentReport;
use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig09.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let params = SmpReidentParams {
        dataset: DatasetChoice::Acs,
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Epsilon(eps_grid()),
        setting: SamplingSetting::Uniform,
        background: Background::Full,
        n_surveys: 5,
    };
    let table = crate::smp_reident::run(
        cfg,
        &params,
        "Fig 9 (ACSEmployment, FK-RI, uniform eps-LDP)",
    );
    ExperimentReport::new().with("fig09.csv", table)
}
