//! Fig. 17 (Appendix E): attacker's AIF-ACC on ACSEmployment against RS+RFD
//! with **incorrect** priors (Dirichlet / Zipf / Exponential), NK model.

use ldp_core::inference::AttackModel;
use ldp_core::solutions::RsRfdProtocol;
use ldp_datasets::priors::IncorrectPrior;

use crate::aif::{AifDataset, AifParams, PriorSpec, SolutionSpec};
use crate::registry::ExperimentReport;
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig17.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let mut specs = Vec::new();
    for prior in [
        IncorrectPrior::Dirichlet,
        IncorrectPrior::Zipf,
        IncorrectPrior::Exp,
    ] {
        for protocol in RsRfdProtocol::ALL {
            specs.push(SolutionSpec::RsRfd(protocol, PriorSpec::Incorrect(prior)));
        }
    }
    let models = [1.0, 3.0, 5.0]
        .iter()
        .map(|&s| {
            (
                format!("NK s={s:.0}n"),
                AttackModel::NoKnowledge { synth_factor: s },
            )
        })
        .collect();
    let params = AifParams {
        dataset: AifDataset::Acs,
        specs,
        models,
        eps: eps_grid(),
    };
    let table = crate::aif::run(
        cfg,
        &params,
        "Fig 17 (ACSEmployment, RS+RFD, incorrect priors)",
    );
    ExperimentReport::new().with("fig17.csv", table)
}
