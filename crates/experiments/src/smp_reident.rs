//! Shared runner for the SMP re-identification sweeps
//! (Figs. 2, 9, 10, 11, 12, 13).

use std::collections::BTreeMap;

use ldp_core::attacks::{AttackKind, BackgroundKnowledge, ReidentConfig};
use ldp_core::metrics::mean_std;
use ldp_datasets::Dataset;
use ldp_protocols::hash::{mix2, mix3};
use ldp_protocols::ProtocolKind;
use ldp_sim::par::par_map;
use ldp_sim::{AttackPipeline, PrivacyModel, SamplingSetting, SmpCampaign, SurveyPlan};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

use crate::table::{fnum, Table};
use crate::{ExpConfig, SURVEY_COUNTS, TOP_KS};

/// Which corpus the sweep collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// Adult-like (d = 10).
    Adult,
    /// ACSEmployment-like (d = 18).
    Acs,
}

/// The x-axis of the sweep: ε for LDP, β for α-PIE.
#[derive(Debug, Clone)]
pub enum XAxis {
    /// Standard ε-LDP sweep.
    Epsilon(Vec<f64>),
    /// α-PIE sweep parameterized by the Bayes error β.
    Beta(Vec<f64>),
}

/// Adversary background knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Background {
    /// FK-RI: the full d-dimensional dataset.
    Full,
    /// PK-RI: a random attribute subset of size in `[⌈d/2⌉, d − 1]`.
    Partial,
}

/// Parameters of one SMP re-identification sweep.
#[derive(Debug, Clone)]
pub struct SmpReidentParams {
    /// Corpus.
    pub dataset: DatasetChoice,
    /// Frequency-oracle families to evaluate.
    pub kinds: Vec<ProtocolKind>,
    /// Privacy sweep axis.
    pub xaxis: XAxis,
    /// Attribute-sampling setting across surveys.
    pub setting: SamplingSetting,
    /// FK-RI or PK-RI.
    pub background: Background,
    /// Total surveys (the paper: 5).
    pub n_surveys: usize,
}

fn load(cfg: &ExpConfig, choice: DatasetChoice, run: u64) -> Dataset {
    match choice {
        DatasetChoice::Adult => cfg.adult(run),
        DatasetChoice::Acs => cfg.acs(run),
    }
}

/// One measured point: RID-ACC (%) per (survey count, top-k).
type Point = Vec<((usize, usize), f64)>;

/// Runs the sweep and returns the result table
/// (`protocol, x, surveys, k, rid_acc_mean, rid_acc_std, baseline`).
pub fn run(cfg: &ExpConfig, params: &SmpReidentParams, fig: &str) -> Table {
    let xs: &[f64] = match &params.xaxis {
        XAxis::Epsilon(v) | XAxis::Beta(v) => v,
    };
    let x_label = match params.xaxis {
        XAxis::Epsilon(_) => "eps",
        XAxis::Beta(_) => "beta",
    };
    let fig_seed = mix2(
        cfg.seed,
        fig.bytes().fold(0u64, |h, b| mix2(h, u64::from(b))),
    );

    // Flatten the (kind, x, run) grid for outer-loop parallelism.
    let grid: Vec<(usize, usize, u64)> = (0..params.kinds.len())
        .flat_map(|ki| {
            xs.iter()
                .enumerate()
                .flat_map(move |(xi, _)| (0..cfg.runs as u64).map(move |run| (ki, xi, run)))
        })
        .collect();

    let points: Vec<(usize, usize, Point)> = par_map(grid.len(), cfg.threads, |g| {
        let (ki, xi, run) = grid[g];
        let kind = params.kinds[ki];
        let x = xs[xi];
        let item_seed = mix3(fig_seed, g as u64, run);

        let dataset = load(cfg, params.dataset, run);
        let ks = dataset.schema().cardinalities();
        let mut plan_rng = StdRng::seed_from_u64(mix3(fig_seed, run, 0x91A7));
        let plan = SurveyPlan::generate(dataset.d(), params.n_surveys, &mut plan_rng);

        let model = match params.xaxis {
            XAxis::Epsilon(_) => PrivacyModel::Ldp { epsilon: x },
            XAxis::Beta(_) => PrivacyModel::Pie { beta: x },
        };
        let campaign = SmpCampaign::new(kind, &ks, &model, dataset.n(), params.setting)
            .expect("campaign construction");
        let snapshots = campaign.run(&dataset, &plan, item_seed, 1);

        let background = match params.background {
            Background::Full => BackgroundKnowledge::Full,
            Background::Partial => {
                let mut rng = StdRng::seed_from_u64(mix3(fig_seed, run, 0xB0_0C));
                let d = dataset.d();
                let size = rng.random_range(d.div_ceil(2)..d);
                let mut a: Vec<usize> = sample(&mut rng, d, size).into_iter().collect();
                a.sort_unstable();
                BackgroundKnowledge::Partial(a)
            }
        };
        // Sharded, per-target-seeded RID-ACC evaluation at the configured
        // top-ks and background knowledge (grid items already run in
        // parallel, so each pipeline evaluates inline).
        let evaluator = AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig {
            top_ks: TOP_KS.to_vec(),
            background,
            ..ReidentConfig::default()
        }))
        .expect("reident attack kind")
        .seed(item_seed)
        .threads(1);
        let attack = evaluator.reident_index(&dataset);

        let mut point = Vec::new();
        for &sv in SURVEY_COUNTS.iter().filter(|&&s| s <= params.n_surveys) {
            let accs = evaluator.rid_acc(&attack, &snapshots[sv - 1]);
            for (k_slot, &k) in TOP_KS.iter().enumerate() {
                point.push(((sv, k), accs[k_slot]));
            }
        }
        (ki, xi, point)
    });

    // Aggregate runs.
    let mut buckets: BTreeMap<(usize, usize, usize, usize), Vec<f64>> = BTreeMap::new();
    for (ki, xi, point) in points {
        for ((sv, k), acc) in point {
            buckets.entry((ki, xi, sv, k)).or_default().push(acc);
        }
    }

    let n_population = load(cfg, params.dataset, 0).n();
    let mut table = Table::new(
        format!("{fig}: SMP re-identification (RID-ACC %)"),
        &[
            "protocol",
            x_label,
            "surveys",
            "top_k",
            "rid_acc_mean",
            "rid_acc_std",
            "baseline",
        ],
    );
    for ((ki, xi, sv, k), accs) in buckets {
        let ms = mean_std(&accs);
        table.row(vec![
            params.kinds[ki].name().to_string(),
            fnum(xs[xi]),
            sv.to_string(),
            k.to_string(),
            fnum(ms.mean),
            fnum(ms.std),
            fnum(100.0 * k as f64 / n_population as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn smp_reident_runner_sweeps_through_the_attack_pipeline() {
        let cfg = ExpConfig {
            runs: 1,
            scale: 0.01,
            threads: 2,
            seed: 7,
            out_dir: PathBuf::from("/tmp/risks-ldp-test"),
        };
        let params = SmpReidentParams {
            dataset: DatasetChoice::Adult,
            kinds: vec![ProtocolKind::Grr],
            xaxis: XAxis::Epsilon(vec![6.0]),
            setting: SamplingSetting::Uniform,
            background: Background::Partial,
            n_surveys: 2,
        };
        let table = run(&cfg, &params, "smoke");
        // One row per (kind, eps, surveys<=2, top_k): 1 x 1 x 1 x 2.
        assert_eq!(table.rows().len(), 2);
        for row in table.rows() {
            let acc: f64 = row[4].parse().unwrap();
            assert!((0.0..=100.0).contains(&acc), "RID-ACC {acc}");
        }
    }
}
