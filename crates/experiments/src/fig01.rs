//! Fig. 1: analytical expected attacker accuracy over multiple collections,
//! `d = 3`, `k = [74, 7, 16]`, `#surveys = 3`, uniform (Eq. 4) and
//! non-uniform (Eq. 5) privacy metrics.

use ldp_core::profiling::{expected_acc_nonuniform, expected_acc_uniform};
use ldp_protocols::{deniability, ProtocolKind};

use crate::registry::ExperimentReport;
use crate::table::{fnum, Table};
use crate::{eps_grid, ExpConfig};

/// The Fig. 1 attribute domains.
pub const FIG1_KS: [usize; 3] = [74, 7, 16];

/// Per-attribute single-report attack accuracies for one protocol at `eps`.
pub fn acc_per_attribute(kind: ProtocolKind, eps: f64, ks: &[usize]) -> Vec<f64> {
    ks.iter()
        .map(|&k| deniability::expected_acc(&kind.build(k, eps).expect("valid config")))
        .collect()
}

/// Runs the figure; the report carries `fig01.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let _ = cfg; // analytical: nothing to scale or seed
    let mut table = Table::new(
        "Fig 1: analytical expected ACC after #surveys = d = 3 (k = [74, 7, 16])",
        &["protocol", "eps", "acc_uniform_pct", "acc_nonuniform_pct"],
    );
    for kind in ProtocolKind::ALL {
        for eps in eps_grid() {
            let accs = acc_per_attribute(kind, eps, &FIG1_KS);
            table.row(vec![
                kind.name().to_string(),
                fnum(eps),
                fnum(100.0 * expected_acc_uniform(&accs)),
                fnum(100.0 * expected_acc_nonuniform(&accs)),
            ]);
        }
    }
    ExperimentReport::new().with("fig01.csv", table)
}
