//! The `risks` command-line interface: `list` / `describe` / `run` over the
//! experiment registry. Argument parsing is hand-rolled (the workspace
//! vendors its dependencies — no clap) and lives here, out of the binary, so
//! it is unit-testable.

use crate::registry::{markdown_matrix, Experiment, ExperimentKind};
use crate::runner::{run_experiments, ExpStatus, RunOptions};
use crate::serve::{solution_from_id, ListenOpts, ServeDataset, ServeSpec};
use crate::ExpConfig;
use ldp_sim::traffic::TrafficShape;
use ldp_sim::BudgetPolicy;

/// Usage text printed by `risks help` and on parse errors.
pub const USAGE: &str = "\
risks — registry-driven runner for the PVLDB'23 reproduction experiments

USAGE:
    risks list [--markdown]            enumerate every experiment
    risks describe <ids…|all>          metadata of selected experiments
    risks run <ids…|all> [options]     run experiments (parallel, cached)
    risks serve [options]              stream a corpus through ldp_server
    risks produce --connect <ADDR>     stream one producer's share of the
                                       population to a `serve --listen` server
    risks help                         this text

RUN OPTIONS (defaults come from the RISKS_* environment variables):
    --runs <N>       repetitions per parameter point
    --scale <F>      dataset-size fraction of the paper's n (0.01–1.0)
    --seed <N>       master seed
    --threads <N>    total worker-thread budget
    --jobs <N>       experiments in flight at once (default min(4, threads))
    --out <DIR>      output directory for CSVs and manifests
    --force          re-run even when a fresh manifest exists
    --quiet          suppress table output

SERVE OPTIONS (plus --scale/--seed/--threads/--out/--quiet from above):
    --solution <ID>  collection solution (default rsfd-grr); one of
                     spl-*, smp-* with * in grr|olh|ss|sue|oue,
                     rsfd-grr|rsfd-uez|rsfd-uer, rsrfd-grr|rsrfd-uer
    --dataset <ID>   adult | acs | nursery (default adult)
    --shape <ID>     steady | burst | ramp | churn (default steady)
    --eps <F>        user-level privacy budget ε (default 1.0)
    --users <N>      exact population size (overrides --scale; lets soak
                     runs exceed the paper-scale cap)
    --rounds <R>     longitudinal mode: every user reports R times, one
                     epoch per round (default 1)
    --budget <ID>    split | memoize — how the campaign spends ε across
                     rounds: ε/R per round, or sanitize once and replay
                     the memoized report (default split)
    --retain <W>     closed-epoch snapshots the server keeps for windowed
                     queries (default 4; serve-side only)
    --listen <ADDR>  networked mode: bind the versioned wire-protocol
                     listener (`127.0.0.1:0` picks a free port) and
                     aggregate remote `risks produce` sessions instead of
                     sanitizing in-process
    --producers <N>  with --listen: producer sessions to wait for before
                     the final drain (default 1)
    --addr-file <P>  with --listen: write the bound address to file P
                     (how scripts discover an ephemeral port)
    --read-timeout-ms <MS>
                     with --listen: ABORT a producer connection silent for
                     MS milliseconds so a hung process cannot wedge the
                     drain barrier; also the resume grace period after
                     which a faulted session is reaped from the fleet
                     (default 0 = neither)
    --auth-token <T> with --listen: shared-secret handshake token; a HELLO
                     carrying a different token's digest is rejected with
                     ABORT_AUTH (default: accept tokenless producers only)

PRODUCE OPTIONS (--solution/--dataset/--shape/--eps/--users/--rounds/
--budget/--scale/--seed and --quiet from above; every spec flag must match
the serving process):
    --connect <ADDR>      server address (e.g. the --addr-file contents)
    --part <i/N>          stream only users with uid mod N == i, so N
                          producers with parts 0/N…(N-1)/N cover the
                          population exactly once (default 0/1)
    --snapshot-every <W>  log an incremental server snapshot every W
                          traffic waves (0 = never)
    --auth-token <T>      shared-secret handshake token (must match the
                          server's --auth-token)
    --retries <N>         reconnect-and-resume attempts per transport
                          fault before giving up (default 8; 0 fails fast)
    --client-timeout-ms <MS>
                          socket read/connect deadline; a silent server
                          surfaces as a typed timeout instead of a hang
                          (default 0 = block forever)
    --fault-plan <SPEC>   inject deterministic transport faults on this
                          producer's own sends, SPEC =
                          seed=<u64>,every=<n>[,max=<n>][,kinds=a+b+c]
                          with kinds from drop|delay|reset|truncate|
                          duplicate (chaos testing; the drained estimates
                          must still match a clean run bit-for-bit)

`risks serve` sanitizes every user with the seeded per-user rng streams,
pushes the reports through the bounded-channel ingestion service following
the arrival schedule, drains it, and reports reports/sec plus the MAE of
the drained estimates against the true marginals (the result is
bit-identical to the batch pipeline at equal seed). With --listen the
reports instead arrive as checksummed CompactBatch frames over TCP from
`risks produce` processes — same drained bits, real sockets. Writes
serve.csv, serve_estimates.csv (deterministic, full f64 precision) and
serve.manifest.json under --out.

An experiment is skipped as a cache hit when `<out>/<id>.manifest.json`
matches the current (id, seed, runs, scale) hash and git revision and its
CSVs exist. Exit code: 0 when everything succeeded or was cached, 1
otherwise.
";

/// A parsed `risks` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `risks list [--markdown]`.
    List {
        /// Emit the README reproduction matrix instead of the plain table.
        markdown: bool,
    },
    /// `risks describe <ids…|all>`.
    Describe {
        /// The selected experiments.
        kinds: Vec<ExperimentKind>,
    },
    /// `risks run <ids…|all> [options]`.
    Run {
        /// The selected experiments.
        kinds: Vec<ExperimentKind>,
        /// `--runs` override.
        runs: Option<usize>,
        /// `--scale` override.
        scale: Option<f64>,
        /// `--seed` override.
        seed: Option<u64>,
        /// `--threads` override.
        threads: Option<usize>,
        /// `--jobs` cap on concurrent experiments.
        jobs: Option<usize>,
        /// `--out` override.
        out: Option<String>,
        /// `--force` re-run flag.
        force: bool,
        /// `--quiet` table suppression.
        quiet: bool,
    },
    /// `risks serve [options]`.
    Serve {
        /// What to stream (solution, dataset, traffic shape, ε, users).
        spec: ServeSpec,
        /// `--listen`/`--producers`/`--addr-file` networked-mode options.
        listen: Option<ListenOpts>,
        /// `--scale` override.
        scale: Option<f64>,
        /// `--seed` override.
        seed: Option<u64>,
        /// `--threads` override (server shards + sanitization threads).
        threads: Option<usize>,
        /// `--out` override.
        out: Option<String>,
        /// `--quiet` table suppression.
        quiet: bool,
    },
    /// `risks produce --connect <addr> [options]`.
    Produce {
        /// What to stream — must match the serving process's spec.
        spec: ServeSpec,
        /// Server address to connect to.
        connect: String,
        /// This producer's index within the fleet.
        part: usize,
        /// Total fleet size.
        parts: usize,
        /// Incremental snapshot cadence in traffic waves (0 = never).
        snapshot_every: usize,
        /// Client-side wire behavior: `--auth-token`, `--retries`,
        /// `--client-timeout-ms`, `--fault-plan`.
        client: ldp_sim::ClientConfig,
        /// `--scale` override.
        scale: Option<f64>,
        /// `--seed` override.
        seed: Option<u64>,
        /// `--quiet` snapshot-log suppression.
        quiet: bool,
    },
    /// `risks help` / `--help`.
    Help,
}

/// Parses argv (without the program name). Errors are user-facing messages.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => {
            let mut markdown = false;
            for arg in it {
                match arg {
                    "--markdown" => markdown = true,
                    other => return Err(format!("unknown `list` argument `{other}`")),
                }
            }
            Ok(Command::List { markdown })
        }
        Some("describe") => {
            let mut it = it.peekable();
            let kinds = parse_ids(&mut it)?;
            if let Some(extra) = it.next() {
                return Err(format!("unknown `describe` argument `{extra}`"));
            }
            Ok(Command::Describe { kinds })
        }
        Some("run") => {
            let mut it = it.peekable();
            let kinds = parse_ids(&mut it)?;
            let (mut runs, mut scale, mut seed, mut threads, mut jobs, mut out) =
                (None, None, None, None, None, None);
            let (mut force, mut quiet) = (false, false);
            while let Some(arg) = it.next() {
                match arg {
                    "--force" => force = true,
                    "--quiet" => quiet = true,
                    "--runs" => runs = Some(flag_value(arg, it.next())?),
                    "--scale" => scale = Some(flag_value(arg, it.next())?),
                    "--seed" => seed = Some(flag_value(arg, it.next())?),
                    "--threads" => threads = Some(flag_value(arg, it.next())?),
                    "--jobs" => jobs = Some(flag_value(arg, it.next())?),
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or("`--out` needs a directory argument")?
                                .to_string(),
                        )
                    }
                    other => return Err(format!("unknown `run` argument `{other}`")),
                }
            }
            Ok(Command::Run {
                kinds,
                runs,
                scale,
                seed,
                threads,
                jobs,
                out,
                force,
                quiet,
            })
        }
        Some("serve") => {
            let mut spec = ServeSpec::default();
            let (mut scale, mut seed, mut threads, mut out) = (None, None, None, None);
            let mut quiet = false;
            let (mut listen_addr, mut producers, mut addr_file) =
                (None::<String>, None::<usize>, None::<String>);
            let mut read_timeout_ms = None::<u64>;
            let mut auth_token = None::<String>;
            while let Some(arg) = it.next() {
                if parse_spec_flag(arg, &mut it, &mut spec)? {
                    continue;
                }
                match arg {
                    "--quiet" => quiet = true,
                    "--auth-token" => {
                        auth_token = Some(
                            it.next()
                                .ok_or("`--auth-token` needs a token value")?
                                .to_string(),
                        )
                    }
                    "--listen" => {
                        listen_addr = Some(
                            it.next()
                                .ok_or("`--listen` needs a bind address")?
                                .to_string(),
                        )
                    }
                    "--producers" => producers = Some(flag_value(arg, it.next())?),
                    "--read-timeout-ms" => read_timeout_ms = Some(flag_value(arg, it.next())?),
                    "--addr-file" => {
                        addr_file = Some(
                            it.next()
                                .ok_or("`--addr-file` needs a file path")?
                                .to_string(),
                        )
                    }
                    "--scale" => scale = Some(flag_value(arg, it.next())?),
                    "--seed" => seed = Some(flag_value(arg, it.next())?),
                    "--threads" => threads = Some(flag_value(arg, it.next())?),
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or("`--out` needs a directory argument")?
                                .to_string(),
                        )
                    }
                    other => return Err(format!("unknown `serve` argument `{other}`")),
                }
            }
            let listen = match listen_addr {
                Some(addr) => Some(ListenOpts {
                    addr,
                    producers: producers.unwrap_or(1).max(1),
                    addr_file: addr_file.map(std::path::PathBuf::from),
                    read_timeout_ms: read_timeout_ms.unwrap_or(0),
                    auth_token,
                }),
                None if producers.is_some()
                    || addr_file.is_some()
                    || read_timeout_ms.is_some()
                    || auth_token.is_some() =>
                {
                    return Err("`--producers`, `--addr-file`, `--read-timeout-ms` and \
                         `--auth-token` require `--listen`"
                        .to_string())
                }
                None => None,
            };
            Ok(Command::Serve {
                spec,
                listen,
                scale,
                seed,
                threads,
                out,
                quiet,
            })
        }
        Some("produce") => {
            let mut spec = ServeSpec::default();
            let (mut scale, mut seed) = (None, None);
            let mut quiet = false;
            let mut connect = None::<String>;
            let mut part = (0usize, 1usize);
            let mut snapshot_every = 0usize;
            let mut client = ldp_sim::ClientConfig::resilient();
            while let Some(arg) = it.next() {
                if parse_spec_flag(arg, &mut it, &mut spec)? {
                    continue;
                }
                match arg {
                    "--quiet" => quiet = true,
                    "--connect" => {
                        connect = Some(
                            it.next()
                                .ok_or("`--connect` needs a server address")?
                                .to_string(),
                        )
                    }
                    "--part" => {
                        part = parse_part(it.next().ok_or("`--part` needs `i/N`")?)?;
                    }
                    "--snapshot-every" => snapshot_every = flag_value(arg, it.next())?,
                    "--auth-token" => {
                        client.auth = Some(
                            it.next()
                                .ok_or("`--auth-token` needs a token value")?
                                .to_string(),
                        )
                    }
                    "--retries" => client.retries = flag_value(arg, it.next())?,
                    "--client-timeout-ms" => client.read_timeout_ms = flag_value(arg, it.next())?,
                    "--fault-plan" => {
                        let raw = it.next().ok_or("`--fault-plan` needs a spec")?;
                        client.fault_plan = Some(
                            ldp_sim::FaultPlan::parse(raw)
                                .map_err(|e| format!("invalid `--fault-plan`: {e}"))?,
                        );
                    }
                    "--scale" => scale = Some(flag_value(arg, it.next())?),
                    "--seed" => seed = Some(flag_value(arg, it.next())?),
                    other => return Err(format!("unknown `produce` argument `{other}`")),
                }
            }
            let connect = connect.ok_or("`produce` requires `--connect <addr>`")?;
            Ok(Command::Produce {
                spec,
                connect,
                part: part.0,
                parts: part.1,
                snapshot_every,
                client,
                scale,
                seed,
                quiet,
            })
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `risks help`)")),
    }
}

/// Parses the [`ServeSpec`] flags shared by `serve` and `produce`
/// (`--solution`, `--dataset`, `--shape`, `--eps`, `--users`). Returns
/// whether `arg` was consumed.
fn parse_spec_flag<'a>(
    arg: &str,
    it: &mut impl Iterator<Item = &'a str>,
    spec: &mut ServeSpec,
) -> Result<bool, String> {
    match arg {
        "--solution" => {
            let raw = it.next().ok_or("`--solution` needs an id")?;
            spec.solution = solution_from_id(raw)
                .ok_or_else(|| format!("unknown solution `{raw}` (see `risks help`)"))?;
        }
        "--dataset" => {
            let raw = it.next().ok_or("`--dataset` needs an id")?;
            spec.dataset = ServeDataset::from_id(raw)
                .ok_or_else(|| format!("unknown dataset `{raw}` (adult | acs | nursery)"))?;
        }
        "--shape" => {
            let raw = it.next().ok_or("`--shape` needs an id")?;
            spec.shape = TrafficShape::from_id(raw)
                .ok_or_else(|| format!("unknown shape `{raw}` (steady | burst | ramp | churn)"))?;
        }
        "--eps" => {
            spec.epsilon = flag_value(arg, it.next())?;
            // Finiteness matters too: "inf" parses as f64 but would only
            // fail deep inside solution construction.
            if !spec.epsilon.is_finite() || spec.epsilon <= 0.0 {
                return Err(format!(
                    "`--eps` must be positive and finite, got {}",
                    spec.epsilon
                ));
            }
        }
        "--users" => {
            let users: usize = flag_value(arg, it.next())?;
            if users == 0 {
                return Err("`--users` must be at least 1".to_string());
            }
            spec.users = Some(users);
        }
        "--rounds" => {
            let rounds: usize = flag_value(arg, it.next())?;
            if rounds == 0 {
                return Err("`--rounds` must be at least 1".to_string());
            }
            spec.rounds = rounds;
        }
        "--retain" => {
            let retain: usize = flag_value(arg, it.next())?;
            if retain == 0 {
                return Err("`--retain` must keep at least 1 epoch window".to_string());
            }
            spec.retain = retain;
        }
        "--budget" => {
            let raw = it.next().ok_or("`--budget` needs an id")?;
            spec.budget = BudgetPolicy::from_id(raw)
                .ok_or_else(|| format!("unknown budget policy `{raw}` (split | memoize)"))?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses a `--part i/N` fleet coordinate.
fn parse_part(raw: &str) -> Result<(usize, usize), String> {
    let err = || format!("`--part` expects `i/N` with i < N, got `{raw}`");
    let (i, n) = raw.split_once('/').ok_or_else(err)?;
    let i: usize = i.parse().map_err(|_| err())?;
    let n: usize = n.parse().map_err(|_| err())?;
    if n == 0 || i >= n {
        return Err(err());
    }
    Ok((i, n))
}

/// Resolves leading experiment ids (`all` expands to the whole registry),
/// stopping at the first `--flag`. Duplicates are dropped, order kept.
fn parse_ids<'a, I: Iterator<Item = &'a str>>(
    it: &mut std::iter::Peekable<I>,
) -> Result<Vec<ExperimentKind>, String> {
    let mut kinds: Vec<ExperimentKind> = Vec::new();
    while let Some(&arg) = it.peek() {
        if arg.starts_with("--") {
            break;
        }
        it.next();
        if arg == "all" {
            for k in ExperimentKind::ALL {
                if !kinds.contains(&k) {
                    kinds.push(k);
                }
            }
            continue;
        }
        let kind = ExperimentKind::from_id(arg).ok_or_else(|| {
            format!("unknown experiment `{arg}` (see `risks list` for the registry)")
        })?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err("no experiments selected (pass ids or `all`)".to_string());
    }
    Ok(kinds)
}

fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<&str>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("`{flag}` needs a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for `{flag}`"))
}

/// The plain `risks list` table.
pub fn list_text() -> String {
    let mut out = String::new();
    let width = ExperimentKind::ALL
        .iter()
        .map(|k| k.id().len())
        .max()
        .unwrap_or(0);
    for kind in ExperimentKind::ALL {
        let exp = kind.build();
        out.push_str(&format!(
            "{id:<width$}  {paper:<22} {title}\n",
            id = exp.id(),
            paper = exp.paper_ref(),
            title = exp.title(),
        ));
    }
    out
}

/// Executes a parsed command, returning the process exit code.
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            0
        }
        Command::List { markdown } => {
            if markdown {
                print!("{}", markdown_matrix());
            } else {
                print!("{}", list_text());
            }
            0
        }
        Command::Describe { kinds } => {
            for kind in kinds {
                print!("{}", kind.build().describe());
            }
            0
        }
        Command::Run {
            kinds,
            runs,
            scale,
            seed,
            threads,
            jobs,
            out,
            force,
            quiet,
        } => {
            let mut cfg = ExpConfig::from_env();
            if let Some(v) = runs {
                cfg.runs = v.max(1);
            }
            if let Some(v) = scale {
                cfg.scale = v.clamp(0.01, 1.0);
            }
            if let Some(v) = seed {
                cfg.seed = v;
            }
            if let Some(v) = threads {
                cfg.threads = v.max(1);
            }
            if let Some(v) = out {
                cfg.out_dir = std::path::PathBuf::from(v);
            }
            let opts = RunOptions { force, jobs, quiet };
            eprintln!(
                "[risks] {} experiment(s): runs={} scale={} threads={} seed={} out={}",
                kinds.len(),
                cfg.runs,
                cfg.scale,
                cfg.threads,
                cfg.seed,
                cfg.out_dir.display()
            );
            let summary = run_experiments(&kinds, &cfg, &opts);
            let (done, cached, failed) = summary.partition_ids();
            eprintln!(
                "[risks] finished in {:.1}s: {} completed, {} cached, {} failed",
                summary.wall_secs,
                done.len(),
                cached.len(),
                failed.len()
            );
            for (kind, status) in &summary.results {
                if let ExpStatus::Failed(msg) = status {
                    eprintln!("[risks]   {} failed: {msg}", kind.id());
                }
            }
            i32::from(summary.any_failed())
        }
        Command::Serve {
            spec,
            listen,
            scale,
            seed,
            threads,
            out,
            quiet,
        } => {
            let mut cfg = ExpConfig::from_env();
            if let Some(v) = scale {
                cfg.scale = v.clamp(0.01, 1.0);
            }
            if let Some(v) = seed {
                cfg.seed = v;
            }
            if let Some(v) = threads {
                cfg.threads = v.max(1);
            }
            if let Some(v) = out {
                cfg.out_dir = std::path::PathBuf::from(v);
            }
            crate::serve::execute_serve(&spec, &cfg, quiet, listen.as_ref())
        }
        Command::Produce {
            spec,
            connect,
            part,
            parts,
            snapshot_every,
            mut client,
            scale,
            seed,
            quiet,
        } => {
            let mut cfg = ExpConfig::from_env();
            if let Some(v) = scale {
                cfg.scale = v.clamp(0.01, 1.0);
            }
            if let Some(v) = seed {
                cfg.seed = v;
            }
            // Desynchronize the fleet's reconnect jitter: producers sharing
            // a seed must not retry in lockstep.
            client.backoff_seed = cfg.seed ^ ((part as u64) << 32) ^ parts as u64;
            crate::serve::execute_produce(
                &spec,
                &cfg,
                &connect,
                part,
                parts,
                snapshot_every,
                quiet,
                client,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_list_and_help() {
        assert_eq!(parse(&s(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&s(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            parse(&s(&["list"])).unwrap(),
            Command::List { markdown: false }
        );
        assert_eq!(
            parse(&s(&["list", "--markdown"])).unwrap(),
            Command::List { markdown: true }
        );
    }

    #[test]
    fn parses_run_with_overrides() {
        let cmd = parse(&s(&[
            "run", "fig04", "fig01", "--scale", "0.01", "--jobs", "2", "--force",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                kinds,
                scale,
                jobs,
                force,
                quiet,
                ..
            } => {
                assert_eq!(kinds, vec![ExperimentKind::Fig04, ExperimentKind::Fig01]);
                assert_eq!(scale, Some(0.01));
                assert_eq!(jobs, Some(2));
                assert!(force);
                assert!(!quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_expands_and_dedupes() {
        let cmd = parse(&s(&["describe", "fig04", "all"])).unwrap();
        match cmd {
            Command::Describe { kinds } => {
                assert_eq!(kinds.len(), ExperimentKind::ALL.len());
                assert_eq!(kinds[0], ExperimentKind::Fig04);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&s(&["run"])).is_err());
        assert!(parse(&s(&["run", "fig99"])).is_err());
        assert!(parse(&s(&["run", "fig01", "--bogus"])).is_err());
        assert!(parse(&s(&["run", "fig01", "--scale"])).is_err());
        assert!(parse(&s(&["describe", "fig01", "--markdwon"])).is_err());
        assert!(parse(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let cmd = parse(&s(&["serve"])).unwrap();
        match cmd {
            Command::Serve {
                spec, scale, quiet, ..
            } => {
                assert_eq!(spec, ServeSpec::default());
                assert_eq!(scale, None);
                assert!(!quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&s(&[
            "serve",
            "--solution",
            "smp-oue",
            "--dataset",
            "nursery",
            "--shape",
            "churn",
            "--eps",
            "2.5",
            "--threads",
            "8",
            "--quiet",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                spec,
                threads,
                quiet,
                ..
            } => {
                assert_eq!(
                    spec.solution,
                    crate::serve::solution_from_id("smp-oue").unwrap()
                );
                assert_eq!(spec.dataset, ServeDataset::Nursery);
                assert_eq!(spec.shape, TrafficShape::Churn);
                assert_eq!(spec.epsilon, 2.5);
                assert_eq!(threads, Some(8));
                assert!(quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_longitudinal_flags() {
        let cmd = parse(&s(&[
            "serve", "--rounds", "4", "--budget", "memoize", "--retain", "2",
        ]))
        .unwrap();
        match cmd {
            Command::Serve { spec, .. } => {
                assert_eq!(spec.rounds, 4);
                assert_eq!(spec.budget, BudgetPolicy::Memoize);
                assert_eq!(spec.retain, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The spec flags are shared with `produce` so fleets can match the
        // serving process.
        match parse(&s(&[
            "produce",
            "--connect",
            "h:1",
            "--rounds",
            "2",
            "--budget",
            "split",
        ]))
        .unwrap()
        {
            Command::Produce { spec, .. } => {
                assert_eq!(spec.rounds, 2);
                assert_eq!(spec.budget, BudgetPolicy::SplitEps);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&s(&["serve", "--rounds", "0"])).is_err());
        assert!(parse(&s(&["serve", "--retain", "0"])).is_err());
        assert!(parse(&s(&["serve", "--budget", "yolo"])).is_err());
        // --read-timeout-ms is a listener option.
        assert!(parse(&s(&["serve", "--read-timeout-ms", "50"])).is_err());
        match parse(&s(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--read-timeout-ms",
            "250",
        ]))
        .unwrap()
        {
            Command::Serve { listen, .. } => {
                assert_eq!(listen.unwrap().read_timeout_ms, 250);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_bad_values() {
        assert!(parse(&s(&["serve", "--solution", "nope"])).is_err());
        assert!(parse(&s(&["serve", "--dataset", "mnist"])).is_err());
        assert!(parse(&s(&["serve", "--shape", "tsunami"])).is_err());
        assert!(parse(&s(&["serve", "--eps", "-1"])).is_err());
        assert!(parse(&s(&["serve", "--eps", "0"])).is_err());
        assert!(parse(&s(&["serve", "--bogus"])).is_err());
        // USAGE documents every parseable solution id.
        for (id, _) in crate::serve::SOLUTION_IDS {
            assert!(
                parse(&s(&["serve", "--solution", id])).is_ok(),
                "{id} must parse"
            );
        }
    }

    #[test]
    fn parses_serve_listen_options() {
        let cmd = parse(&s(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--producers",
            "3",
            "--addr-file",
            "/tmp/addr",
            "--users",
            "100000",
        ]))
        .unwrap();
        match cmd {
            Command::Serve { spec, listen, .. } => {
                assert_eq!(spec.users, Some(100_000));
                let listen = listen.expect("--listen must populate ListenOpts");
                assert_eq!(listen.addr, "127.0.0.1:0");
                assert_eq!(listen.producers, 3);
                assert_eq!(
                    listen.addr_file,
                    Some(std::path::PathBuf::from("/tmp/addr"))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Plain serve stays in-process.
        match parse(&s(&["serve"])).unwrap() {
            Command::Serve { listen, .. } => assert_eq!(listen, None),
            other => panic!("unexpected {other:?}"),
        }
        // The networked-only flags are rejected without --listen.
        assert!(parse(&s(&["serve", "--producers", "2"])).is_err());
        assert!(parse(&s(&["serve", "--addr-file", "/tmp/addr"])).is_err());
        assert!(parse(&s(&["serve", "--users", "0"])).is_err());
    }

    #[test]
    fn parses_produce_with_fleet_coordinates() {
        let cmd = parse(&s(&[
            "produce",
            "--connect",
            "127.0.0.1:9000",
            "--part",
            "1/4",
            "--solution",
            "smp-olh",
            "--users",
            "5000",
            "--snapshot-every",
            "8",
            "--quiet",
        ]))
        .unwrap();
        match cmd {
            Command::Produce {
                spec,
                connect,
                part,
                parts,
                snapshot_every,
                quiet,
                ..
            } => {
                assert_eq!(connect, "127.0.0.1:9000");
                assert_eq!((part, parts), (1, 4));
                assert_eq!(snapshot_every, 8);
                assert_eq!(spec.solution, solution_from_id("smp-olh").unwrap());
                assert_eq!(spec.users, Some(5000));
                assert!(quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: one-producer fleet, no snapshots.
        match parse(&s(&["produce", "--connect", "h:1"])).unwrap() {
            Command::Produce {
                part,
                parts,
                snapshot_every,
                ..
            } => {
                assert_eq!((part, parts), (0, 1));
                assert_eq!(snapshot_every, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_produce_client_options() {
        let cmd = parse(&s(&[
            "produce",
            "--connect",
            "h:1",
            "--auth-token",
            "sesame",
            "--retries",
            "3",
            "--client-timeout-ms",
            "500",
            "--fault-plan",
            "seed=7,every=4,max=2,kinds=drop+reset",
        ]))
        .unwrap();
        match cmd {
            Command::Produce { client, .. } => {
                assert_eq!(client.auth.as_deref(), Some("sesame"));
                assert_eq!(client.retries, 3);
                assert_eq!(client.read_timeout_ms, 500);
                let plan = client.fault_plan.expect("--fault-plan must be parsed");
                assert_eq!((plan.seed, plan.every, plan.max), (7, 4, 2));
                assert_eq!(plan.kinds.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: resilient client, no auth, no faults.
        match parse(&s(&["produce", "--connect", "h:1"])).unwrap() {
            Command::Produce { client, .. } => {
                assert_eq!(client, ldp_sim::ClientConfig::resilient());
                assert_eq!(client.retries, 8);
                assert_eq!(client.auth, None);
                assert_eq!(client.fault_plan, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Malformed fault plans fail at parse time, not mid-stream.
        assert!(parse(&s(&[
            "produce",
            "--connect",
            "h:1",
            "--fault-plan",
            "every=4"
        ]))
        .is_err());
        // The serve-side auth flag needs --listen.
        assert!(parse(&s(&["serve", "--auth-token", "sesame"])).is_err());
        match parse(&s(&["serve", "--listen", "h:0", "--auth-token", "sesame"])).unwrap() {
            Command::Serve { listen, .. } => {
                assert_eq!(listen.unwrap().auth_token.as_deref(), Some("sesame"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn produce_rejects_bad_arguments() {
        // --connect is mandatory.
        assert!(parse(&s(&["produce"])).is_err());
        assert!(parse(&s(&["produce", "--part", "0/2"])).is_err());
        // Malformed fleet coordinates.
        for bad in ["2/2", "3/2", "x/y", "0/0", "1", "1/", "/2"] {
            assert!(
                parse(&s(&["produce", "--connect", "h:1", "--part", bad])).is_err(),
                "`--part {bad}` must be rejected"
            );
        }
        // Unknown and serve-only flags.
        assert!(parse(&s(&["produce", "--connect", "h:1", "--bogus"])).is_err());
        assert!(parse(&s(&["produce", "--connect", "h:1", "--listen", "x"])).is_err());
    }

    #[test]
    fn list_text_covers_registry() {
        let text = list_text();
        assert_eq!(text.lines().count(), ExperimentKind::ALL.len());
        assert!(text.contains("fig04"));
        assert!(text.contains("ablation_topk"));
    }
}
