//! The `risks` command-line interface: `list` / `describe` / `run` over the
//! experiment registry. Argument parsing is hand-rolled (the workspace
//! vendors its dependencies — no clap) and lives here, out of the binary, so
//! it is unit-testable.

use crate::registry::{markdown_matrix, Experiment, ExperimentKind};
use crate::runner::{run_experiments, ExpStatus, RunOptions};
use crate::serve::{solution_from_id, ServeDataset, ServeSpec};
use crate::ExpConfig;
use ldp_sim::traffic::TrafficShape;

/// Usage text printed by `risks help` and on parse errors.
pub const USAGE: &str = "\
risks — registry-driven runner for the PVLDB'23 reproduction experiments

USAGE:
    risks list [--markdown]            enumerate every experiment
    risks describe <ids…|all>          metadata of selected experiments
    risks run <ids…|all> [options]     run experiments (parallel, cached)
    risks serve [options]              stream a corpus through ldp_server
    risks help                         this text

RUN OPTIONS (defaults come from the RISKS_* environment variables):
    --runs <N>       repetitions per parameter point
    --scale <F>      dataset-size fraction of the paper's n (0.01–1.0)
    --seed <N>       master seed
    --threads <N>    total worker-thread budget
    --jobs <N>       experiments in flight at once (default min(4, threads))
    --out <DIR>      output directory for CSVs and manifests
    --force          re-run even when a fresh manifest exists
    --quiet          suppress table output

SERVE OPTIONS (plus --scale/--seed/--threads/--out/--quiet from above):
    --solution <ID>  collection solution (default rsfd-grr); one of
                     spl-*, smp-* with * in grr|olh|ss|sue|oue,
                     rsfd-grr|rsfd-uez|rsfd-uer, rsrfd-grr|rsrfd-uer
    --dataset <ID>   adult | acs | nursery (default adult)
    --shape <ID>     steady | burst | ramp | churn (default steady)
    --eps <F>        user-level privacy budget ε (default 1.0)

`risks serve` sanitizes every user with the seeded per-user rng streams,
pushes the reports through the bounded-channel ingestion service following
the arrival schedule, drains it, and reports reports/sec plus the MAE of
the drained estimates against the true marginals (the result is
bit-identical to the batch pipeline at equal seed). Writes serve.csv and
serve.manifest.json under --out.

An experiment is skipped as a cache hit when `<out>/<id>.manifest.json`
matches the current (id, seed, runs, scale) hash and git revision and its
CSVs exist. Exit code: 0 when everything succeeded or was cached, 1
otherwise.
";

/// A parsed `risks` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `risks list [--markdown]`.
    List {
        /// Emit the README reproduction matrix instead of the plain table.
        markdown: bool,
    },
    /// `risks describe <ids…|all>`.
    Describe {
        /// The selected experiments.
        kinds: Vec<ExperimentKind>,
    },
    /// `risks run <ids…|all> [options]`.
    Run {
        /// The selected experiments.
        kinds: Vec<ExperimentKind>,
        /// `--runs` override.
        runs: Option<usize>,
        /// `--scale` override.
        scale: Option<f64>,
        /// `--seed` override.
        seed: Option<u64>,
        /// `--threads` override.
        threads: Option<usize>,
        /// `--jobs` cap on concurrent experiments.
        jobs: Option<usize>,
        /// `--out` override.
        out: Option<String>,
        /// `--force` re-run flag.
        force: bool,
        /// `--quiet` table suppression.
        quiet: bool,
    },
    /// `risks serve [options]`.
    Serve {
        /// What to stream (solution, dataset, traffic shape, ε).
        spec: ServeSpec,
        /// `--scale` override.
        scale: Option<f64>,
        /// `--seed` override.
        seed: Option<u64>,
        /// `--threads` override (server shards + sanitization threads).
        threads: Option<usize>,
        /// `--out` override.
        out: Option<String>,
        /// `--quiet` table suppression.
        quiet: bool,
    },
    /// `risks help` / `--help`.
    Help,
}

/// Parses argv (without the program name). Errors are user-facing messages.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => {
            let mut markdown = false;
            for arg in it {
                match arg {
                    "--markdown" => markdown = true,
                    other => return Err(format!("unknown `list` argument `{other}`")),
                }
            }
            Ok(Command::List { markdown })
        }
        Some("describe") => {
            let mut it = it.peekable();
            let kinds = parse_ids(&mut it)?;
            if let Some(extra) = it.next() {
                return Err(format!("unknown `describe` argument `{extra}`"));
            }
            Ok(Command::Describe { kinds })
        }
        Some("run") => {
            let mut it = it.peekable();
            let kinds = parse_ids(&mut it)?;
            let (mut runs, mut scale, mut seed, mut threads, mut jobs, mut out) =
                (None, None, None, None, None, None);
            let (mut force, mut quiet) = (false, false);
            while let Some(arg) = it.next() {
                match arg {
                    "--force" => force = true,
                    "--quiet" => quiet = true,
                    "--runs" => runs = Some(flag_value(arg, it.next())?),
                    "--scale" => scale = Some(flag_value(arg, it.next())?),
                    "--seed" => seed = Some(flag_value(arg, it.next())?),
                    "--threads" => threads = Some(flag_value(arg, it.next())?),
                    "--jobs" => jobs = Some(flag_value(arg, it.next())?),
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or("`--out` needs a directory argument")?
                                .to_string(),
                        )
                    }
                    other => return Err(format!("unknown `run` argument `{other}`")),
                }
            }
            Ok(Command::Run {
                kinds,
                runs,
                scale,
                seed,
                threads,
                jobs,
                out,
                force,
                quiet,
            })
        }
        Some("serve") => {
            let mut spec = ServeSpec::default();
            let (mut scale, mut seed, mut threads, mut out) = (None, None, None, None);
            let mut quiet = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--quiet" => quiet = true,
                    "--solution" => {
                        let raw = it.next().ok_or("`--solution` needs an id")?;
                        spec.solution = solution_from_id(raw).ok_or_else(|| {
                            format!("unknown solution `{raw}` (see `risks help`)")
                        })?;
                    }
                    "--dataset" => {
                        let raw = it.next().ok_or("`--dataset` needs an id")?;
                        spec.dataset = ServeDataset::from_id(raw).ok_or_else(|| {
                            format!("unknown dataset `{raw}` (adult | acs | nursery)")
                        })?;
                    }
                    "--shape" => {
                        let raw = it.next().ok_or("`--shape` needs an id")?;
                        spec.shape = TrafficShape::from_id(raw).ok_or_else(|| {
                            format!("unknown shape `{raw}` (steady | burst | ramp | churn)")
                        })?;
                    }
                    "--eps" => {
                        spec.epsilon = flag_value(arg, it.next())?;
                        // Finiteness matters too: "inf" parses as f64 but
                        // would only fail deep inside solution construction.
                        if !spec.epsilon.is_finite() || spec.epsilon <= 0.0 {
                            return Err(format!(
                                "`--eps` must be positive and finite, got {}",
                                spec.epsilon
                            ));
                        }
                    }
                    "--scale" => scale = Some(flag_value(arg, it.next())?),
                    "--seed" => seed = Some(flag_value(arg, it.next())?),
                    "--threads" => threads = Some(flag_value(arg, it.next())?),
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or("`--out` needs a directory argument")?
                                .to_string(),
                        )
                    }
                    other => return Err(format!("unknown `serve` argument `{other}`")),
                }
            }
            Ok(Command::Serve {
                spec,
                scale,
                seed,
                threads,
                out,
                quiet,
            })
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `risks help`)")),
    }
}

/// Resolves leading experiment ids (`all` expands to the whole registry),
/// stopping at the first `--flag`. Duplicates are dropped, order kept.
fn parse_ids<'a, I: Iterator<Item = &'a str>>(
    it: &mut std::iter::Peekable<I>,
) -> Result<Vec<ExperimentKind>, String> {
    let mut kinds: Vec<ExperimentKind> = Vec::new();
    while let Some(&arg) = it.peek() {
        if arg.starts_with("--") {
            break;
        }
        it.next();
        if arg == "all" {
            for k in ExperimentKind::ALL {
                if !kinds.contains(&k) {
                    kinds.push(k);
                }
            }
            continue;
        }
        let kind = ExperimentKind::from_id(arg).ok_or_else(|| {
            format!("unknown experiment `{arg}` (see `risks list` for the registry)")
        })?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err("no experiments selected (pass ids or `all`)".to_string());
    }
    Ok(kinds)
}

fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<&str>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("`{flag}` needs a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for `{flag}`"))
}

/// The plain `risks list` table.
pub fn list_text() -> String {
    let mut out = String::new();
    let width = ExperimentKind::ALL
        .iter()
        .map(|k| k.id().len())
        .max()
        .unwrap_or(0);
    for kind in ExperimentKind::ALL {
        let exp = kind.build();
        out.push_str(&format!(
            "{id:<width$}  {paper:<22} {title}\n",
            id = exp.id(),
            paper = exp.paper_ref(),
            title = exp.title(),
        ));
    }
    out
}

/// Executes a parsed command, returning the process exit code.
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            0
        }
        Command::List { markdown } => {
            if markdown {
                print!("{}", markdown_matrix());
            } else {
                print!("{}", list_text());
            }
            0
        }
        Command::Describe { kinds } => {
            for kind in kinds {
                print!("{}", kind.build().describe());
            }
            0
        }
        Command::Run {
            kinds,
            runs,
            scale,
            seed,
            threads,
            jobs,
            out,
            force,
            quiet,
        } => {
            let mut cfg = ExpConfig::from_env();
            if let Some(v) = runs {
                cfg.runs = v.max(1);
            }
            if let Some(v) = scale {
                cfg.scale = v.clamp(0.01, 1.0);
            }
            if let Some(v) = seed {
                cfg.seed = v;
            }
            if let Some(v) = threads {
                cfg.threads = v.max(1);
            }
            if let Some(v) = out {
                cfg.out_dir = std::path::PathBuf::from(v);
            }
            let opts = RunOptions { force, jobs, quiet };
            eprintln!(
                "[risks] {} experiment(s): runs={} scale={} threads={} seed={} out={}",
                kinds.len(),
                cfg.runs,
                cfg.scale,
                cfg.threads,
                cfg.seed,
                cfg.out_dir.display()
            );
            let summary = run_experiments(&kinds, &cfg, &opts);
            let (done, cached, failed) = summary.partition_ids();
            eprintln!(
                "[risks] finished in {:.1}s: {} completed, {} cached, {} failed",
                summary.wall_secs,
                done.len(),
                cached.len(),
                failed.len()
            );
            for (kind, status) in &summary.results {
                if let ExpStatus::Failed(msg) = status {
                    eprintln!("[risks]   {} failed: {msg}", kind.id());
                }
            }
            i32::from(summary.any_failed())
        }
        Command::Serve {
            spec,
            scale,
            seed,
            threads,
            out,
            quiet,
        } => {
            let mut cfg = ExpConfig::from_env();
            if let Some(v) = scale {
                cfg.scale = v.clamp(0.01, 1.0);
            }
            if let Some(v) = seed {
                cfg.seed = v;
            }
            if let Some(v) = threads {
                cfg.threads = v.max(1);
            }
            if let Some(v) = out {
                cfg.out_dir = std::path::PathBuf::from(v);
            }
            crate::serve::execute_serve(&spec, &cfg, quiet)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_list_and_help() {
        assert_eq!(parse(&s(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&s(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            parse(&s(&["list"])).unwrap(),
            Command::List { markdown: false }
        );
        assert_eq!(
            parse(&s(&["list", "--markdown"])).unwrap(),
            Command::List { markdown: true }
        );
    }

    #[test]
    fn parses_run_with_overrides() {
        let cmd = parse(&s(&[
            "run", "fig04", "fig01", "--scale", "0.01", "--jobs", "2", "--force",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                kinds,
                scale,
                jobs,
                force,
                quiet,
                ..
            } => {
                assert_eq!(kinds, vec![ExperimentKind::Fig04, ExperimentKind::Fig01]);
                assert_eq!(scale, Some(0.01));
                assert_eq!(jobs, Some(2));
                assert!(force);
                assert!(!quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_expands_and_dedupes() {
        let cmd = parse(&s(&["describe", "fig04", "all"])).unwrap();
        match cmd {
            Command::Describe { kinds } => {
                assert_eq!(kinds.len(), ExperimentKind::ALL.len());
                assert_eq!(kinds[0], ExperimentKind::Fig04);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&s(&["run"])).is_err());
        assert!(parse(&s(&["run", "fig99"])).is_err());
        assert!(parse(&s(&["run", "fig01", "--bogus"])).is_err());
        assert!(parse(&s(&["run", "fig01", "--scale"])).is_err());
        assert!(parse(&s(&["describe", "fig01", "--markdwon"])).is_err());
        assert!(parse(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let cmd = parse(&s(&["serve"])).unwrap();
        match cmd {
            Command::Serve {
                spec, scale, quiet, ..
            } => {
                assert_eq!(spec, ServeSpec::default());
                assert_eq!(scale, None);
                assert!(!quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&s(&[
            "serve",
            "--solution",
            "smp-oue",
            "--dataset",
            "nursery",
            "--shape",
            "churn",
            "--eps",
            "2.5",
            "--threads",
            "8",
            "--quiet",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                spec,
                threads,
                quiet,
                ..
            } => {
                assert_eq!(
                    spec.solution,
                    crate::serve::solution_from_id("smp-oue").unwrap()
                );
                assert_eq!(spec.dataset, ServeDataset::Nursery);
                assert_eq!(spec.shape, TrafficShape::Churn);
                assert_eq!(spec.epsilon, 2.5);
                assert_eq!(threads, Some(8));
                assert!(quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_bad_values() {
        assert!(parse(&s(&["serve", "--solution", "nope"])).is_err());
        assert!(parse(&s(&["serve", "--dataset", "mnist"])).is_err());
        assert!(parse(&s(&["serve", "--shape", "tsunami"])).is_err());
        assert!(parse(&s(&["serve", "--eps", "-1"])).is_err());
        assert!(parse(&s(&["serve", "--eps", "0"])).is_err());
        assert!(parse(&s(&["serve", "--bogus"])).is_err());
        // USAGE documents every parseable solution id.
        for (id, _) in crate::serve::SOLUTION_IDS {
            assert!(
                parse(&s(&["serve", "--solution", id])).is_ok(),
                "{id} must parse"
            );
        }
    }

    #[test]
    fn list_text_covers_registry() {
        let text = list_text();
        assert_eq!(text.lines().count(), ExperimentKind::ALL.len());
        assert!(text.contains("fig04"));
        assert!(text.contains("ablation_topk"));
    }
}
