//! Fig. 6: attacker's AIF-ACC on ACSEmployment against the **RS+RFD**
//! countermeasure with "Correct" priors — the attack should barely beat the
//! baseline.

use ldp_core::solutions::RsRfdProtocol;

use crate::aif::{AifDataset, AifParams, PriorSpec, SolutionSpec};
use crate::registry::ExperimentReport;
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig06.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let params = AifParams {
        dataset: AifDataset::Acs,
        specs: RsRfdProtocol::ALL
            .iter()
            .map(|&p| SolutionSpec::RsRfd(p, PriorSpec::Correct))
            .collect(),
        models: crate::aif::paper_models(),
        eps: eps_grid(),
    };
    let table = crate::aif::run(
        cfg,
        &params,
        "Fig 6 (ACSEmployment, RS+RFD, correct priors)",
    );
    ExperimentReport::new().with("fig06.csv", table)
}
