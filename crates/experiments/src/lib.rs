//! # ldp-experiments
//!
//! Reproduction harness behind one registry-driven entry point: every figure,
//! table and ablation of the paper's evaluation is an [`registry::ExperimentKind`]
//! (the experiment-layer mirror of `SolutionKind`/`AttackKind`), and the
//! `risks` binary drives the whole registry:
//!
//! ```sh
//! risks list                    # enumerate the registry
//! risks describe fig04         # paper ref, datasets, outputs, cost
//! risks run fig01 fig04        # parallel, longest-first, manifest-cached
//! risks run all                # the whole reproduction
//! ```
//!
//! Each run prints the series the paper plots, writes CSVs under `results/`
//! and records a `<id>.manifest.json` (config hash, seed, scale, wall time,
//! outputs, git rev) so identical re-runs are cache hits (see
//! [`manifest`] / [`runner`]).
//!
//! Scale knobs (environment variables; `risks run` flags override them):
//!
//! * `RISKS_RUNS` — repetitions averaged per point (default 3; paper: 20).
//! * `RISKS_SCALE` — dataset-size fraction of the paper's n (default 0.15).
//! * `RISKS_THREADS` — worker threads (default: all cores).
//! * `RISKS_SEED` — master seed (default 42).
//! * `RISKS_FULL=1` — paper scale (`runs = 20`, `scale = 1.0`).
//! * `RISKS_OUT` — output directory for CSVs (default `results`).

pub mod ablation;
pub mod aif;
pub mod cli;
pub mod config;
pub mod longitudinal;
pub mod manifest;
pub mod mse;
pub mod numeric;
pub mod registry;
pub mod runner;
pub mod serve;
pub mod smp_reident;
pub mod table;

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;

pub use config::ExpConfig;
pub use registry::{DynExperiment, Experiment, ExperimentKind, ExperimentReport};
pub use table::Table;

/// The paper's ε grid for the attack experiments (§4.2).
pub fn eps_grid() -> Vec<f64> {
    (1..=10).map(f64::from).collect()
}

/// The paper's ε grid for the utility experiments (§5.2.2): ln(2)…ln(7).
pub fn eps_ln_grid() -> Vec<f64> {
    (2..=7).map(|x| f64::from(x).ln()).collect()
}

/// The paper's Bayes-error grid for the α-PIE experiments (Appendix C).
pub fn beta_grid() -> Vec<f64> {
    (0..=9).map(|i| 0.95 - 0.05 * f64::from(i)).collect()
}

/// The survey counts after which RID-ACC is measured (paper: 2–5).
pub const SURVEY_COUNTS: [usize; 4] = [2, 3, 4, 5];

/// Top-k values of the re-identification decision (paper: 1 and 10).
pub const TOP_KS: [usize; 2] = [1, 10];
