//! Shared runner for the multidimensional frequency-estimation utility
//! sweeps (Figs. 5 and 16): empirical `MSE_avg` plus the analytic
//! approximate-variance curves.

use std::collections::BTreeMap;

use ldp_core::metrics::{mean_std, mse_avg};
use ldp_core::solutions::{RsFd, RsFdProtocol, RsRfd, RsRfdProtocol};
use ldp_datasets::Dataset;
use ldp_protocols::hash::{mix2, mix3};
use ldp_sim::par::par_map;
use ldp_sim::CollectionPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aif::{AifDataset, PriorSpec};
use crate::table::{fnum, Table};
use crate::ExpConfig;

/// One estimation method under comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MseMethod {
    /// RS+FD with uniform fake data.
    RsFd(RsFdProtocol),
    /// RS+RFD with prior-driven fake data.
    RsRfd(RsRfdProtocol, PriorSpec),
}

impl MseMethod {
    /// Paper-style label.
    pub fn name(self) -> String {
        match self {
            MseMethod::RsFd(p) => p.name(),
            MseMethod::RsRfd(p, prior) => format!("{}({})", p.name(), prior.name()),
        }
    }
}

/// Parameters of one utility sweep.
#[derive(Debug, Clone)]
pub struct MseParams {
    /// Corpus.
    pub dataset: AifDataset,
    /// Methods to compare.
    pub methods: Vec<MseMethod>,
    /// ε grid (the paper uses ln 2 … ln 7).
    pub eps: Vec<f64>,
}

fn load(cfg: &ExpConfig, choice: AifDataset, run: u64) -> Dataset {
    match choice {
        AifDataset::Adult => cfg.adult(run),
        AifDataset::Acs => cfg.acs(run),
        AifDataset::Nursery => cfg.nursery(run),
    }
}

/// Runs the sweep; returns
/// (`method, eps, mse_mean, mse_std, analytic_var`).
///
/// `analytic_var` is the f = 0 approximate estimator variance averaged over
/// attributes and values (the paper's Fig. 16 analytic curves); for RS+RFD it
/// uses the run-0 priors.
pub fn run(cfg: &ExpConfig, params: &MseParams, fig: &str) -> Table {
    let fig_seed = mix2(
        cfg.seed,
        fig.bytes().fold(0u64, |h, b| mix2(h, u64::from(b))),
    );
    let grid: Vec<(usize, usize, u64)> = (0..params.methods.len())
        .flat_map(|mi| {
            (0..params.eps.len())
                .flat_map(move |ei| (0..cfg.runs as u64).map(move |run| (mi, ei, run)))
        })
        .collect();

    let measurements: Vec<(usize, usize, f64, f64)> = par_map(grid.len(), cfg.threads, |g| {
        let (mi, ei, run) = grid[g];
        let eps = params.eps[ei];
        let collect_seed = mix3(fig_seed, g as u64, run);
        let mut rng = StdRng::seed_from_u64(collect_seed);
        let dataset = load(cfg, params.dataset, run);
        let ks = dataset.schema().cardinalities();
        let truth = dataset.marginals();
        let n = dataset.n();

        // Each grid point is already one parallel work item, so the inner
        // pipeline streams single-threaded: sanitize → absorb, no buffering.
        let (solution, analytic) = match params.methods[mi] {
            MseMethod::RsFd(protocol) => {
                let solution = RsFd::new(protocol, &ks, eps).expect("rsfd construction");
                let analytic = (0..ks.len())
                    .map(|j| solution.approx_variance(j, n))
                    .sum::<f64>()
                    / ks.len() as f64;
                (solution.into(), analytic)
            }
            MseMethod::RsRfd(protocol, prior_spec) => {
                let priors = prior_spec.build(&dataset, &mut rng);
                let solution = RsRfd::new(protocol, &ks, eps, priors).expect("rsrfd construction");
                let analytic = (0..ks.len())
                    .map(|j| solution.approx_variance_avg(j, n))
                    .sum::<f64>()
                    / ks.len() as f64;
                (solution.into(), analytic)
            }
        };
        let out = CollectionPipeline::new(solution)
            .seed(collect_seed)
            .threads(1)
            .run(&dataset);
        (mi, ei, mse_avg(&truth, &out.estimates), analytic)
    });

    let mut buckets: BTreeMap<(usize, usize), (Vec<f64>, f64)> = BTreeMap::new();
    for (mi, ei, mse, analytic) in measurements {
        let e = buckets.entry((mi, ei)).or_insert((Vec::new(), analytic));
        e.0.push(mse);
    }

    let mut table = Table::new(
        format!("{fig}: multidimensional frequency estimation (MSE_avg)"),
        &["method", "eps", "mse_mean", "mse_std", "analytic_var"],
    );
    for ((mi, ei), (mses, analytic)) in buckets {
        let ms = mean_std(&mses);
        table.row(vec![
            params.methods[mi].name(),
            fnum(params.eps[ei]),
            fnum(ms.mean),
            fnum(ms.std),
            fnum(analytic),
        ]);
    }
    table
}
