//! Fig. 13 (Appendix C): RID-ACC on Adult, SMP, FK-RI and PK-RI models with
//! the **α-PIE** privacy metric and **non-uniform** sampling.

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::table::Table;
use crate::{beta_grid, ExpConfig};

/// Runs the figure; prints both tables and writes
/// `fig13_fk.csv` / `fig13_pk.csv`.
pub fn run(cfg: &ExpConfig) -> (Table, Table) {
    let base = SmpReidentParams {
        dataset: DatasetChoice::Adult,
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Beta(beta_grid()),
        setting: SamplingSetting::NonUniform,
        background: Background::Full,
        n_surveys: 5,
    };
    let fk = crate::smp_reident::run(cfg, &base, "Fig 13 FK-RI (Adult, non-uniform alpha-PIE)");
    fk.print();
    fk.write_csv(&cfg.out_dir, "fig13_fk.csv");

    let pk_params = SmpReidentParams {
        background: Background::Partial,
        ..base
    };
    let pk = crate::smp_reident::run(
        cfg,
        &pk_params,
        "Fig 13 PK-RI (Adult, non-uniform alpha-PIE)",
    );
    pk.print();
    pk.write_csv(&cfg.out_dir, "fig13_pk.csv");
    (fk, pk)
}
