//! Fig. 13 (Appendix C): RID-ACC on Adult, SMP, FK-RI and PK-RI models with
//! the **α-PIE** privacy metric and **non-uniform** sampling.

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::registry::ExperimentReport;
use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::{beta_grid, ExpConfig};

/// Runs the figure; the report carries `fig13_fk.csv` and `fig13_pk.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let base = SmpReidentParams {
        dataset: DatasetChoice::Adult,
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Beta(beta_grid()),
        setting: SamplingSetting::NonUniform,
        background: Background::Full,
        n_surveys: 5,
    };
    let fk = crate::smp_reident::run(cfg, &base, "Fig 13 FK-RI (Adult, non-uniform alpha-PIE)");

    let pk_params = SmpReidentParams {
        background: Background::Partial,
        ..base
    };
    let pk = crate::smp_reident::run(
        cfg,
        &pk_params,
        "Fig 13 PK-RI (Adult, non-uniform alpha-PIE)",
    );
    ExperimentReport::new()
        .with("fig13_fk.csv", fk)
        .with("fig13_pk.csv", pk)
}
