//! Shared runner for the sampled-attribute inference sweeps
//! (Figs. 3, 6, 14, 15, 17).

use std::collections::BTreeMap;

use ldp_core::attacks::{AttackKind, InferenceConfig};
use ldp_core::inference::{AttackClassifier, AttackModel};
use ldp_core::metrics::mean_std;
use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol, SolutionKind};
use ldp_datasets::priors::{correct_priors_scaled, IncorrectPrior};
use ldp_datasets::Dataset;
use ldp_protocols::hash::{mix2, mix3};
use ldp_sim::par::par_map;
use ldp_sim::{AttackPipeline, CollectionPipeline};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fnum, Table};
use crate::ExpConfig;

/// Which corpus the sweep collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AifDataset {
    /// Adult-like (d = 10).
    Adult,
    /// ACSEmployment-like (d = 18).
    Acs,
    /// Nursery-like (d = 9, uniform marginals — the negative control).
    Nursery,
}

/// How RS+RFD priors are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorSpec {
    /// "Correct": true marginals through an ε = 0.1 Laplace mechanism.
    Correct,
    /// "Incorrect": Dirichlet / Zipf / Exponential priors (Appendix E).
    Incorrect(IncorrectPrior),
}

impl PriorSpec {
    /// Short label for tables.
    pub fn name(self) -> String {
        match self {
            PriorSpec::Correct => "Correct".to_string(),
            PriorSpec::Incorrect(p) => p.name().to_string(),
        }
    }

    /// Builds per-attribute priors for `dataset`. "Correct" priors calibrate
    /// their Laplace noise to the *paper-scale* population of the matching
    /// corpus (a Census release does not get noisier because an experiment
    /// subsamples its users).
    pub fn build(self, dataset: &Dataset, rng: &mut StdRng) -> Vec<Vec<f64>> {
        match self {
            PriorSpec::Correct => {
                let reference_n = match dataset.d() {
                    10 => ldp_datasets::corpora::ADULT_N,
                    18 => ldp_datasets::corpora::ACS_EMPLOYMENT_N,
                    9 => ldp_datasets::corpora::NURSERY_N,
                    _ => dataset.n(),
                };
                correct_priors_scaled(dataset, 0.1, reference_n.max(dataset.n()), rng)
            }
            PriorSpec::Incorrect(p) => p.generate_all(&dataset.schema().cardinalities(), rng),
        }
    }
}

/// Which fake-data solution is attacked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolutionSpec {
    /// An RS+FD variant.
    RsFd(RsFdProtocol),
    /// An RS+RFD variant with a prior source.
    RsRfd(RsRfdProtocol, PriorSpec),
}

impl SolutionSpec {
    /// Paper-style label.
    pub fn name(self) -> String {
        match self {
            SolutionSpec::RsFd(p) => p.name(),
            SolutionSpec::RsRfd(p, prior) => format!("{}({})", p.name(), prior.name()),
        }
    }
}

/// Parameters of one inference-attack sweep.
#[derive(Debug, Clone)]
pub struct AifParams {
    /// Corpus.
    pub dataset: AifDataset,
    /// Solutions to attack.
    pub specs: Vec<SolutionSpec>,
    /// Attacker models with display labels (e.g. `"NK s=1"`).
    pub models: Vec<(String, AttackModel)>,
    /// ε grid.
    pub eps: Vec<f64>,
}

fn load(cfg: &ExpConfig, choice: AifDataset, run: u64) -> Dataset {
    match choice {
        AifDataset::Adult => cfg.adult(run),
        AifDataset::Acs => cfg.acs(run),
        AifDataset::Nursery => cfg.nursery(run),
    }
}

/// Runs the sweep and returns
/// (`solution, model, eps, aif_acc_mean, aif_acc_std, baseline`).
pub fn run(cfg: &ExpConfig, params: &AifParams, fig: &str) -> Table {
    let fig_seed = mix2(
        cfg.seed,
        fig.bytes().fold(0u64, |h, b| mix2(h, u64::from(b))),
    );
    let grid: Vec<(usize, usize, usize, u64)> = (0..params.specs.len())
        .flat_map(|si| {
            (0..params.eps.len()).flat_map(move |ei| {
                (0..params.models.len())
                    .flat_map(move |mi| (0..cfg.runs as u64).map(move |run| (si, ei, mi, run)))
            })
        })
        .collect();

    let measurements: Vec<(usize, usize, usize, f64, f64)> =
        par_map(grid.len(), cfg.threads, |g| {
            let (si, ei, mi, run) = grid[g];
            let eps = params.eps[ei];
            let item_seed = mix3(fig_seed, g as u64, run);
            let dataset = load(cfg, params.dataset, run);
            let ks = dataset.schema().cardinalities();
            let classifier = AttackClassifier::Gbdt(cfg.attack_gbdt());
            let model = params.models[mi].1;

            // Collection: the deployed fake-data solution, streamed with the
            // item's own seed (grid items already run in parallel, so both
            // pipelines evaluate inline).
            let collection = match params.specs[si] {
                SolutionSpec::RsFd(protocol) => {
                    CollectionPipeline::from_kind(SolutionKind::RsFd(protocol), &ks, eps)
                        .expect("rsfd construction")
                }
                SolutionSpec::RsRfd(protocol, prior_spec) => {
                    let mut prior_rng = StdRng::seed_from_u64(mix3(item_seed, 0x9812, 0));
                    let priors = prior_spec.build(&dataset, &mut prior_rng);
                    CollectionPipeline::new(
                        SolutionKind::RsRfd(protocol)
                            .build_with_priors(&ks, eps, priors)
                            .expect("rsrfd construction"),
                    )
                }
            }
            .seed(item_seed)
            .threads(1);

            // Attack: the §3.3 inference scenario through the unified
            // pipeline — fit on the observed round, sharded ASR evaluation.
            let run = AttackPipeline::from_kind(AttackKind::SampledAttribute(InferenceConfig {
                model,
                classifier,
            }))
            .expect("inference attack kind")
            .seed(item_seed)
            .threads(1)
            .run(&collection, &dataset);
            let outcome = run.outcome.inference().expect("inference outcome");
            (si, ei, mi, outcome.aif_acc, outcome.baseline)
        });

    let mut buckets: BTreeMap<(usize, usize, usize), (Vec<f64>, f64)> = BTreeMap::new();
    for (si, ei, mi, acc, baseline) in measurements {
        let e = buckets
            .entry((si, mi, ei))
            .or_insert((Vec::new(), baseline));
        e.0.push(acc);
    }

    let mut table = Table::new(
        format!("{fig}: sampled-attribute inference (AIF-ACC %)"),
        &[
            "solution",
            "model",
            "eps",
            "aif_acc_mean",
            "aif_acc_std",
            "baseline",
        ],
    );
    for ((si, mi, ei), (accs, baseline)) in buckets {
        let ms = mean_std(&accs);
        table.row(vec![
            params.specs[si].name(),
            params.models[mi].0.clone(),
            fnum(params.eps[ei]),
            fnum(ms.mean),
            fnum(ms.std),
            fnum(baseline),
        ]);
    }
    table
}

/// The paper's nine attacker-model settings of Fig. 3 (NK / PK / HM grids).
pub fn paper_models() -> Vec<(String, AttackModel)> {
    let mut models = Vec::new();
    for s in [1.0, 3.0, 5.0] {
        models.push((
            format!("NK s={s:.0}n"),
            AttackModel::NoKnowledge { synth_factor: s },
        ));
    }
    for f in [0.1, 0.3, 0.5] {
        models.push((
            format!("PK npk={f}n"),
            AttackModel::PartialKnowledge {
                compromised_frac: f,
            },
        ));
    }
    for (s, f) in [(1.0, 0.1), (3.0, 0.3), (5.0, 0.5)] {
        models.push((
            format!("HM s={s:.0}n npk={f}n"),
            AttackModel::Hybrid {
                synth_factor: s,
                compromised_frac: f,
            },
        ));
    }
    models
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn aif_runner_sweeps_through_the_attack_pipeline() {
        let cfg = ExpConfig {
            runs: 1,
            scale: 0.01,
            threads: 2,
            seed: 7,
            out_dir: PathBuf::from("/tmp/risks-ldp-test"),
        };
        let params = AifParams {
            dataset: AifDataset::Adult,
            specs: vec![
                SolutionSpec::RsFd(RsFdProtocol::Grr),
                SolutionSpec::RsRfd(RsRfdProtocol::Grr, PriorSpec::Correct),
            ],
            models: vec![(
                "NK s=1n".to_string(),
                AttackModel::NoKnowledge { synth_factor: 1.0 },
            )],
            eps: vec![4.0],
        };
        let table = run(&cfg, &params, "smoke");
        // One row per (solution, model, eps); AIF-ACC within [0, 100].
        assert_eq!(table.rows().len(), 2);
        for row in table.rows() {
            let acc: f64 = row[3].parse().unwrap();
            assert!((0.0..=100.0).contains(&acc), "AIF-ACC {acc}");
        }
    }
}
