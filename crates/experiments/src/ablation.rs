//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **classifier family** — the inference attack with GBDT (the paper's
//!   XGBoost stand-in) vs multinomial logistic regression;
//! * **top-k sensitivity** — how the re-identification decision's k changes
//!   the attacker's success, beyond the paper's k ∈ {1, 10}.

use std::collections::BTreeMap;

use ldp_core::inference::{AttackClassifier, AttackModel, SampledAttributeAttack};
use ldp_core::metrics::mean_std;
use ldp_core::reident::ReidentAttack;
use ldp_core::solutions::{MultidimReport, MultidimSolution, RsFd, RsFdProtocol};
use ldp_gbdt::LogisticParams;
use ldp_protocols::hash::{mix2, mix3};
use ldp_protocols::{ProtocolKind, UeMode};
use ldp_sim::par::par_map;
use ldp_sim::{rid_acc_multi, PrivacyModel, SamplingSetting, SmpCampaign, SurveyPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::registry::ExperimentReport;
use crate::table::{fnum, Table};
use crate::ExpConfig;

/// Classifier-family ablation on the Fig. 3 setting (ACSEmployment, NK,
/// s = 1n): GBDT vs logistic regression per RS+FD protocol.
pub fn run_classifier(cfg: &ExpConfig) -> ExperimentReport {
    let eps = [2.0, 6.0, 10.0];
    let protocols = [
        RsFdProtocol::Grr,
        RsFdProtocol::UeZ(UeMode::Symmetric),
        RsFdProtocol::UeZ(UeMode::Optimized),
        RsFdProtocol::UeR(UeMode::Optimized),
    ];
    let classifiers: Vec<(&str, AttackClassifier)> = vec![
        ("gbdt", AttackClassifier::Gbdt(cfg.attack_gbdt())),
        (
            "logistic",
            AttackClassifier::Logistic(LogisticParams::default()),
        ),
    ];
    let fig_seed = mix2(cfg.seed, 0x00AB_1A7E);

    let n_classifiers = classifiers.len();
    let grid: Vec<(usize, usize, usize, u64)> = (0..protocols.len())
        .flat_map(|pi| {
            (0..eps.len()).flat_map(move |ei| {
                (0..n_classifiers)
                    .flat_map(move |ci| (0..cfg.runs as u64).map(move |run| (pi, ei, ci, run)))
            })
        })
        .collect();
    let classifiers_ref = &classifiers;
    let measurements: Vec<(usize, usize, usize, f64)> = par_map(grid.len(), cfg.threads, |g| {
        let (pi, ei, ci, run) = grid[g];
        let mut rng = StdRng::seed_from_u64(mix3(fig_seed, g as u64, run));
        let ds = cfg.acs(run);
        let ks = ds.schema().cardinalities();
        let solution = RsFd::new(protocols[pi], &ks, eps[ei]).expect("rsfd");
        let observed: Vec<MultidimReport> =
            ds.rows().map(|t| solution.report(t, &mut rng)).collect();
        let out = SampledAttributeAttack::evaluate(
            &solution,
            &observed,
            &AttackModel::NoKnowledge { synth_factor: 1.0 },
            &classifiers_ref[ci].1,
            &mut rng,
        );
        (pi, ei, ci, out.aif_acc)
    });

    let mut buckets: BTreeMap<(usize, usize, usize), Vec<f64>> = BTreeMap::new();
    for (pi, ei, ci, acc) in measurements {
        buckets.entry((pi, ci, ei)).or_default().push(acc);
    }
    let mut table = Table::new(
        "Ablation: attack classifier family (ACSEmployment, NK s=1n)",
        &[
            "solution",
            "classifier",
            "eps",
            "aif_acc_mean",
            "aif_acc_std",
        ],
    );
    for ((pi, ci, ei), accs) in buckets {
        let ms = mean_std(&accs);
        table.row(vec![
            protocols[pi].name(),
            classifiers[ci].0.to_string(),
            fnum(eps[ei]),
            fnum(ms.mean),
            fnum(ms.std),
        ]);
    }
    ExperimentReport::new().with("ablation_classifier.csv", table)
}

/// Top-k sensitivity of the SMP re-identification decision (Adult, GRR,
/// uniform metric, 5 surveys).
pub fn run_topk(cfg: &ExpConfig) -> ExperimentReport {
    let eps = [2.0, 6.0, 10.0];
    let top_ks = [1usize, 5, 10, 50, 100];
    let fig_seed = mix2(cfg.seed, 0x00AB_1A70);

    let grid: Vec<(usize, u64)> = (0..eps.len())
        .flat_map(|ei| (0..cfg.runs as u64).map(move |run| (ei, run)))
        .collect();
    let measurements: Vec<(usize, Vec<f64>)> = par_map(grid.len(), cfg.threads, |g| {
        let (ei, run) = grid[g];
        let item_seed = mix3(fig_seed, g as u64, run);
        let ds = cfg.adult(run);
        let ks = ds.schema().cardinalities();
        let mut rng = StdRng::seed_from_u64(mix3(fig_seed, run, 3));
        let plan = SurveyPlan::generate(ds.d(), 5, &mut rng);
        let campaign = SmpCampaign::new(
            ProtocolKind::Grr,
            &ks,
            &PrivacyModel::Ldp { epsilon: eps[ei] },
            ds.n(),
            SamplingSetting::Uniform,
        )
        .expect("campaign");
        let snaps = campaign.run(&ds, &plan, item_seed, 1);
        let all: Vec<usize> = (0..ds.d()).collect();
        let attack = ReidentAttack::build(&ds, &all);
        (ei, rid_acc_multi(&attack, &snaps[4], &top_ks, item_seed, 1))
    });

    let mut buckets: BTreeMap<(usize, usize), Vec<f64>> = BTreeMap::new();
    for (ei, accs) in measurements {
        for (slot, &acc) in accs.iter().enumerate() {
            buckets.entry((ei, slot)).or_default().push(acc);
        }
    }
    let n = cfg.adult(0).n();
    let mut table = Table::new(
        "Ablation: top-k sensitivity (Adult, SMP[GRR], FK-RI, 5 surveys)",
        &["eps", "top_k", "rid_acc_mean", "rid_acc_std", "baseline"],
    );
    for ((ei, slot), accs) in buckets {
        let ms = mean_std(&accs);
        table.row(vec![
            fnum(eps[ei]),
            top_ks[slot].to_string(),
            fnum(ms.mean),
            fnum(ms.std),
            fnum(100.0 * top_ks[slot] as f64 / n as f64),
        ]);
    }
    ExperimentReport::new().with("ablation_topk.csv", table)
}
