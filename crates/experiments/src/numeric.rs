//! Numeric-dimension extension experiments (beyond the paper's categorical
//! evaluation): utility and risk of the Duchi / Piecewise / Hybrid
//! mechanisms when continuous attributes ride along a mixed sample-k-of-d
//! collection.
//!
//! * `numeric_mse` — empirical MSE of the per-attribute mean estimate vs ε,
//!   next to the closed-form prediction assembled from each mechanism's
//!   `Var[y | t]` plus the k-of-d sub-sampling variance.
//! * `numeric_risk` — NUM-VRI (value-range inference) attacker accuracy vs
//!   ε against every mechanism, with the population-prior baseline.

use std::collections::BTreeMap;

use ldp_core::attacks::{AttackKind, NumericConfig};
use ldp_core::metrics::mean_std;
use ldp_core::solutions::{MixedKind, SolutionKind};
use ldp_core::{NumericKind, NumericOracle};
use ldp_datasets::MixedDataset;
use ldp_protocols::hash::{mix2, mix3};
use ldp_protocols::ProtocolKind;
use ldp_sim::par::par_map;
use ldp_sim::{AttackPipeline, CollectionPipeline};

use crate::registry::ExperimentReport;
use crate::table::{fnum, Table};
use crate::ExpConfig;

/// Numeric mechanisms under comparison, in presentation order.
const MECHANISMS: [NumericKind; 3] = [
    NumericKind::Duchi,
    NumericKind::Piecewise,
    NumericKind::Hybrid,
];

/// Per-user attribute budget of the mixed rounds: ε splits over `SAMPLE_K`
/// sampled dimensions, the paper's SPL/SMP trade-off carried over to the
/// heterogeneous schema.
const SAMPLE_K: usize = 2;

/// Buckets of the value-range inference decision (equal width over
/// `[-1, 1]`; 4 keeps the prior baseline well below 100% on MixedSurvey).
const RISK_BUCKETS: usize = 4;

fn mixed_solution(mixed: &MixedDataset, mech: NumericKind, eps: f64) -> ldp_core::DynSolution {
    SolutionKind::Mixed(MixedKind {
        protocol: ProtocolKind::Grr,
        numeric: mech,
        sample_k: SAMPLE_K,
    })
    .build(&mixed.ks(), eps)
    .expect("mixed solution construction")
}

/// Closed-form prediction of the squared error of one numeric dimension's
/// mean estimate under the k-of-d mixed collection.
///
/// Each of the ≈ `n·k/d` users reporting dimension `j` contributes an
/// unbiased report with mechanism variance `Var[y | tᵢ]` at the split
/// budget ε/k; on top, the reporting users are a without-replacement
/// subsample of the population, adding `(1 − k/d)·Var_pop(t)` per report.
fn analytic_mean_mse(mixed: &MixedDataset, j: usize, mech: NumericKind, eps: f64) -> f64 {
    let oracle = mech
        .build(eps / SAMPLE_K as f64)
        .expect("numeric oracle construction");
    let n = mixed.n() as f64;
    let mech_var = (0..mixed.n())
        .map(|i| oracle.variance(mixed.num_value(i, j)))
        .sum::<f64>()
        / n;
    let mean = mixed.numeric_mean(j);
    let pop_var = (0..mixed.n())
        .map(|i| (mixed.num_value(i, j) - mean).powi(2))
        .sum::<f64>()
        / n;
    let frac = SAMPLE_K as f64 / mixed.d() as f64;
    (mech_var + (1.0 - frac) * pop_var) / (n * frac)
}

/// Runs the utility sweep; the report carries `numeric_mse.csv` with
/// `(mechanism, eps, mse_mean, mse_std, analytic_var)` rows where the MSE
/// averages the squared mean-estimate error over the numeric attributes.
pub fn run_mse(cfg: &ExpConfig) -> ExperimentReport {
    let fig_seed = mix2(cfg.seed, 0x4E55_4D4D_5345); // "NUMMSE"
    let eps_grid = crate::eps_grid();
    let grid: Vec<(usize, usize, u64)> = (0..MECHANISMS.len())
        .flat_map(|mi| {
            (0..eps_grid.len())
                .flat_map(move |ei| (0..cfg.runs as u64).map(move |run| (mi, ei, run)))
        })
        .collect();

    let measurements: Vec<(usize, usize, f64, f64)> = par_map(grid.len(), cfg.threads, |g| {
        let (mi, ei, run) = grid[g];
        let eps = eps_grid[ei];
        let mech = MECHANISMS[mi];
        let collect_seed = mix3(fig_seed, g as u64, run);
        let mixed = cfg.mixed_survey(run);
        let out = CollectionPipeline::new(mixed_solution(&mixed, mech, eps))
            .seed(collect_seed)
            .threads(1)
            .run_mixed(&mixed);
        let d_cat = mixed.d_cat();
        let mse = (0..mixed.d_num())
            .map(|j| (out.estimates[d_cat + j][0] - mixed.numeric_mean(j)).powi(2))
            .sum::<f64>()
            / mixed.d_num() as f64;
        let analytic = (0..mixed.d_num())
            .map(|j| analytic_mean_mse(&mixed, j, mech, eps))
            .sum::<f64>()
            / mixed.d_num() as f64;
        (mi, ei, mse, analytic)
    });

    let mut buckets: BTreeMap<(usize, usize), (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (mi, ei, mse, analytic) in measurements {
        let e = buckets.entry((mi, ei)).or_default();
        e.0.push(mse);
        e.1.push(analytic);
    }

    let mut table = Table::new(
        "numeric_mse: mean-estimation MSE of numeric mechanisms (mixed k-of-d collection)",
        &["mechanism", "eps", "mse_mean", "mse_std", "analytic_var"],
    );
    for ((mi, ei), (mses, analytics)) in buckets {
        let ms = mean_std(&mses);
        let analytic = analytics.iter().sum::<f64>() / analytics.len() as f64;
        table.row(vec![
            MECHANISMS[mi].name().to_string(),
            fnum(eps_grid[ei]),
            fnum(ms.mean),
            fnum(ms.std),
            fnum(analytic),
        ]);
    }
    ExperimentReport::new().with("numeric_mse.csv", table)
}

/// Runs the risk sweep; the report carries `numeric_risk.csv` with
/// `(mechanism, eps, acc_mean, acc_std, baseline, lift)` rows — NUM-VRI
/// accuracy (%) on the first numeric attribute against every mechanism,
/// next to the population-prior baseline it must beat.
pub fn run_risk(cfg: &ExpConfig) -> ExperimentReport {
    let fig_seed = mix2(cfg.seed, 0x4E55_4D52_4953); // "NUMRIS"
    let eps_grid = crate::eps_grid();
    let grid: Vec<(usize, usize, u64)> = (0..MECHANISMS.len())
        .flat_map(|mi| {
            (0..eps_grid.len())
                .flat_map(move |ei| (0..cfg.runs as u64).map(move |run| (mi, ei, run)))
        })
        .collect();

    let measurements: Vec<(usize, usize, f64, f64)> = par_map(grid.len(), cfg.threads, |g| {
        let (mi, ei, run) = grid[g];
        let eps = eps_grid[ei];
        let mech = MECHANISMS[mi];
        let collect_seed = mix3(fig_seed, g as u64, run);
        let mixed = cfg.mixed_survey(run);
        let collection = CollectionPipeline::new(mixed_solution(&mixed, mech, eps))
            .seed(collect_seed)
            .threads(1);
        let attack = AttackPipeline::from_kind(AttackKind::NumericValueRange(NumericConfig {
            dim: mixed.d_cat(),
            buckets: RISK_BUCKETS,
        }))
        .expect("numeric attack construction")
        .seed(collect_seed)
        .threads(1);
        let outcome = attack
            .run_mixed(&collection, &mixed)
            .outcome
            .numeric()
            .expect("numeric outcome")
            .clone();
        (mi, ei, outcome.acc, outcome.baseline)
    });

    let mut buckets: BTreeMap<(usize, usize), (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (mi, ei, acc, baseline) in measurements {
        let e = buckets.entry((mi, ei)).or_default();
        e.0.push(acc);
        e.1.push(baseline);
    }

    let mut table = Table::new(
        "numeric_risk: NUM-VRI attacker accuracy vs numeric mechanisms",
        &[
            "mechanism",
            "eps",
            "acc_mean",
            "acc_std",
            "baseline",
            "lift",
        ],
    );
    for ((mi, ei), (accs, baselines)) in buckets {
        let ms = mean_std(&accs);
        let baseline = baselines.iter().sum::<f64>() / baselines.len() as f64;
        table.row(vec![
            MECHANISMS[mi].name().to_string(),
            fnum(eps_grid[ei]),
            fnum(ms.mean),
            fnum(ms.std),
            fnum(baseline),
            fnum(ms.mean - baseline),
        ]);
    }
    ExperimentReport::new().with("numeric_risk.csv", table)
}
