//! Fig. 14 (Appendix D): attacker's AIF-ACC on Adult with the NK / PK / HM
//! attack models against all five RS+FD protocols.

use ldp_core::solutions::RsFdProtocol;

use crate::aif::{AifDataset, AifParams, SolutionSpec};
use crate::table::Table;
use crate::{eps_grid, ExpConfig};

/// Runs the figure; prints the table and writes `fig14.csv`.
pub fn run(cfg: &ExpConfig) -> Table {
    let params = AifParams {
        dataset: AifDataset::Adult,
        specs: RsFdProtocol::ALL
            .iter()
            .map(|&p| SolutionSpec::RsFd(p))
            .collect(),
        models: crate::aif::paper_models(),
        eps: eps_grid(),
    };
    let table = crate::aif::run(cfg, &params, "Fig 14 (Adult, RS+FD)");
    table.print();
    table.write_csv(&cfg.out_dir, "fig14.csv");
    table
}
