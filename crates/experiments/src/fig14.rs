//! Fig. 14 (Appendix D): attacker's AIF-ACC on Adult with the NK / PK / HM
//! attack models against all five RS+FD protocols.

use ldp_core::solutions::RsFdProtocol;

use crate::aif::{AifDataset, AifParams, SolutionSpec};
use crate::registry::ExperimentReport;
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig14.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let params = AifParams {
        dataset: AifDataset::Adult,
        specs: RsFdProtocol::ALL
            .iter()
            .map(|&p| SolutionSpec::RsFd(p))
            .collect(),
        models: crate::aif::paper_models(),
        eps: eps_grid(),
    };
    let table = crate::aif::run(cfg, &params, "Fig 14 (Adult, RS+FD)");
    ExperimentReport::new().with("fig14.csv", table)
}
