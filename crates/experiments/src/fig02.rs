//! Fig. 2: RID-ACC on Adult, SMP solution, FK-RI model, uniform ε-LDP
//! privacy metric, top-1/top-10, varying the protocol and #surveys.

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::registry::ExperimentReport;
use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig02.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let params = SmpReidentParams {
        dataset: DatasetChoice::Adult,
        // The paper plots GRR / SUE / OLH / OUE and notes ω-SS ≈ GRR; we
        // include ω-SS explicitly.
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Epsilon(eps_grid()),
        setting: SamplingSetting::Uniform,
        background: Background::Full,
        n_surveys: 5,
    };
    let table = crate::smp_reident::run(cfg, &params, "Fig 2 (Adult, FK-RI, uniform eps-LDP)");
    ExperimentReport::new().with("fig02.csv", table)
}
