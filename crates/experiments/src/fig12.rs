//! Fig. 12 (Appendix C): RID-ACC on Adult, SMP, FK-RI and PK-RI models with
//! the **α-PIE** privacy metric (uniform sampling), varying the Bayes error
//! β from 0.95 down to 0.5.

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::registry::ExperimentReport;
use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::{beta_grid, ExpConfig};

/// Runs the figure; the report carries `fig12_fk.csv` and `fig12_pk.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let base = SmpReidentParams {
        dataset: DatasetChoice::Adult,
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Beta(beta_grid()),
        setting: SamplingSetting::Uniform,
        background: Background::Full,
        n_surveys: 5,
    };
    let fk = crate::smp_reident::run(cfg, &base, "Fig 12 FK-RI (Adult, uniform alpha-PIE)");

    let pk_params = SmpReidentParams {
        background: Background::Partial,
        ..base
    };
    let pk = crate::smp_reident::run(cfg, &pk_params, "Fig 12 PK-RI (Adult, uniform alpha-PIE)");
    ExperimentReport::new()
        .with("fig12_fk.csv", fk)
        .with("fig12_pk.csv", pk)
}
