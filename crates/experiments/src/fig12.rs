//! Fig. 12 (Appendix C): RID-ACC on Adult, SMP, FK-RI and PK-RI models with
//! the **α-PIE** privacy metric (uniform sampling), varying the Bayes error
//! β from 0.95 down to 0.5.

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::table::Table;
use crate::{beta_grid, ExpConfig};

/// Runs the figure; prints both tables and writes
/// `fig12_fk.csv` / `fig12_pk.csv`.
pub fn run(cfg: &ExpConfig) -> (Table, Table) {
    let base = SmpReidentParams {
        dataset: DatasetChoice::Adult,
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Beta(beta_grid()),
        setting: SamplingSetting::Uniform,
        background: Background::Full,
        n_surveys: 5,
    };
    let fk = crate::smp_reident::run(cfg, &base, "Fig 12 FK-RI (Adult, uniform alpha-PIE)");
    fk.print();
    fk.write_csv(&cfg.out_dir, "fig12_fk.csv");

    let pk_params = SmpReidentParams {
        background: Background::Partial,
        ..base
    };
    let pk = crate::smp_reident::run(cfg, &pk_params, "Fig 12 PK-RI (Adult, uniform alpha-PIE)");
    pk.print();
    pk.write_csv(&cfg.out_dir, "fig12_pk.csv");
    (fk, pk)
}
