//! Per-run JSON manifests: every `risks run` writes one
//! `<id>.manifest.json` next to the experiment's CSVs recording *what*
//! produced them — config hash, seed, scale, wall time, output files and git
//! revision — so result directories are diffable and runs are resumable
//! (`risks run` skips an experiment whose manifest matches the current
//! config hash unless `--force`).
//!
//! The format is deliberately flat (string / number / string-array fields
//! only) so it round-trips through the tiny hand-rolled parser below — the
//! workspace vendors its few dependencies and carries no JSON crate.

use std::fs;
use std::path::{Path, PathBuf};

use ldp_protocols::hash::mix2;

use crate::ExpConfig;

/// Record of one completed experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Experiment identifier (`"fig04"`).
    pub id: String,
    /// Hash of everything that determines the results (id, seed, runs,
    /// scale) — *not* thread count or output directory, which don't.
    pub config_hash: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Repetitions per parameter point.
    pub runs: usize,
    /// Dataset-size fraction of the paper's n.
    pub scale: f64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Total data rows across the produced tables.
    pub rows: usize,
    /// `git rev-parse HEAD` at run time, when available.
    pub git_rev: Option<String>,
    /// CSV files the run produced (relative to the manifest's directory).
    pub outputs: Vec<String>,
}

/// The result-determining config hash for one experiment id, formatted as a
/// fixed-width hex string.
pub fn config_hash(id: &str, cfg: &ExpConfig) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for &b in id.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    h = mix2(h, cfg.seed);
    h = mix2(h, cfg.runs as u64);
    h = mix2(h, cfg.scale.to_bits());
    format!("{h:016x}")
}

/// Best-effort current git revision (the manifests should work from plain
/// tarballs too, so failure is just `None`).
pub fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

impl Manifest {
    /// The manifest path for experiment `id` under `dir`.
    pub fn path(dir: &Path, id: &str) -> PathBuf {
        dir.join(format!("{id}.manifest.json"))
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let outputs = self
            .outputs
            .iter()
            .map(|o| format!("\"{}\"", escape(o)))
            .collect::<Vec<_>>()
            .join(", ");
        let git_rev = match &self.git_rev {
            Some(rev) => format!("\"{}\"", escape(rev)),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"id\": \"{id}\",\n  \"config_hash\": \"{hash}\",\n  \"seed\": {seed},\n  \
             \"runs\": {runs},\n  \"scale\": {scale},\n  \"wall_secs\": {wall},\n  \
             \"rows\": {rows},\n  \"git_rev\": {git_rev},\n  \"outputs\": [{outputs}]\n}}\n",
            id = escape(&self.id),
            hash = escape(&self.config_hash),
            seed = self.seed,
            runs = self.runs,
            scale = self.scale,
            wall = self.wall_secs,
            rows = self.rows,
        )
    }

    /// Parses a manifest written by [`Manifest::to_json`]. Returns `None` on
    /// any missing field — a truncated or hand-edited manifest simply counts
    /// as "no previous run".
    pub fn parse(json: &str) -> Option<Manifest> {
        Some(Manifest {
            id: str_field(json, "id")?,
            config_hash: str_field(json, "config_hash")?,
            seed: int_field(json, "seed")?,
            runs: int_field(json, "runs")? as usize,
            scale: num_field(json, "scale")?,
            wall_secs: num_field(json, "wall_secs")?,
            rows: int_field(json, "rows")? as usize,
            git_rev: str_field(json, "git_rev"),
            outputs: str_array_field(json, "outputs")?,
        })
    }

    /// Writes the manifest into `dir` (creating it), returning the path.
    ///
    /// # Panics
    /// Panics on I/O failure — a run whose record cannot be persisted should
    /// fail loudly.
    pub fn write(&self, dir: &Path) -> PathBuf {
        fs::create_dir_all(dir).expect("cannot create output directory");
        let path = Manifest::path(dir, &self.id);
        fs::write(&path, self.to_json()).expect("cannot write manifest");
        path
    }

    /// Loads the manifest for `id` from `dir`, if present and parseable.
    pub fn load(dir: &Path, id: &str) -> Option<Manifest> {
        let json = fs::read_to_string(Manifest::path(dir, id)).ok()?;
        Manifest::parse(&json)
    }

    /// Whether this manifest certifies a cache hit for the given config:
    /// matching config hash, every recorded output still on disk, and — when
    /// both sides know their git revision — the same code. The config hash
    /// covers only `(id, seed, runs, scale)`; results also depend on the
    /// code that produced them, so a recorded revision different from
    /// `current_rev` means the CSVs may be stale and the run is redone.
    pub fn is_fresh(&self, id: &str, cfg: &ExpConfig, current_rev: Option<&str>) -> bool {
        let same_code = match (&self.git_rev, current_rev) {
            (Some(recorded), Some(current)) => recorded == current,
            // Either side unknown (tarball checkout): trust the hash.
            _ => true,
        };
        self.id == id
            && same_code
            && self.config_hash == config_hash(id, cfg)
            && !self.outputs.is_empty()
            && self.outputs.iter().all(|o| cfg.out_dir.join(o).is_file())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Value of `"key": "value"`, unescaped.
fn str_field(json: &str, key: &str) -> Option<String> {
    let rest = field_value(json, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

/// Value of `"key": <integer>`, parsed without an f64 detour (u64 seeds
/// above 2^53 must round-trip exactly).
fn int_field(json: &str, key: &str) -> Option<u64> {
    let rest = field_value(json, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Value of `"key": <number>`.
fn num_field(json: &str, key: &str) -> Option<f64> {
    let rest = field_value(json, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Value of `"key": ["a", "b"]` as owned strings.
fn str_array_field(json: &str, key: &str) -> Option<Vec<String>> {
    let rest = field_value(json, key)?;
    let rest = rest.strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    let mut out = Vec::new();
    let mut remaining = body.trim();
    while remaining.starts_with('"') {
        let item = str_field(&format!("\"x\": {remaining}"), "x")?;
        // Advance past the quoted item (re-escaped length + 2 quotes).
        let consumed = 2 + escape(&item).len();
        remaining = remaining[consumed..].trim_start_matches(',').trim();
        out.push(item);
    }
    remaining.is_empty().then_some(out)
}

/// The text right after `"key":`, trimmed.
fn field_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    Some(json[at + needle.len()..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn cfg(seed: u64, runs: usize, scale: f64) -> ExpConfig {
        ExpConfig {
            runs,
            scale,
            threads: 1,
            seed,
            out_dir: PathBuf::from("results"),
        }
    }

    fn sample() -> Manifest {
        Manifest {
            id: "fig04".to_string(),
            config_hash: config_hash("fig04", &cfg(42, 3, 0.15)),
            seed: 42,
            runs: 3,
            scale: 0.15,
            wall_secs: 12.5,
            rows: 160,
            git_rev: Some("deadbeef".to_string()),
            outputs: vec!["fig04.csv".to_string()],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.to_json()), Some(m));
    }

    #[test]
    fn large_seeds_roundtrip_exactly() {
        // Above 2^53 an f64 detour would round the seed.
        let m = Manifest {
            seed: u64::MAX - 1,
            ..sample()
        };
        assert_eq!(Manifest::parse(&m.to_json()), Some(m));
    }

    #[test]
    fn roundtrip_without_git_rev() {
        let m = Manifest {
            git_rev: None,
            ..sample()
        };
        assert_eq!(Manifest::parse(&m.to_json()), Some(m));
    }

    #[test]
    fn hash_depends_on_result_inputs_only() {
        let base = config_hash("fig04", &cfg(42, 3, 0.15));
        assert_eq!(base, config_hash("fig04", &cfg(42, 3, 0.15)));
        assert_ne!(base, config_hash("fig02", &cfg(42, 3, 0.15)));
        assert_ne!(base, config_hash("fig04", &cfg(43, 3, 0.15)));
        assert_ne!(base, config_hash("fig04", &cfg(42, 4, 0.15)));
        assert_ne!(base, config_hash("fig04", &cfg(42, 3, 0.2)));
        // Threads and out_dir must NOT change the hash.
        let mut other = cfg(42, 3, 0.15);
        other.threads = 8;
        other.out_dir = PathBuf::from("elsewhere");
        assert_eq!(base, config_hash("fig04", &other));
    }

    #[test]
    fn freshness_requires_outputs_on_disk() {
        let dir = std::env::temp_dir().join("ldp_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut c = cfg(42, 3, 0.15);
        c.out_dir.clone_from(&dir);
        let m = Manifest {
            config_hash: config_hash("fig04", &c),
            ..sample()
        };
        std::fs::remove_file(dir.join("fig04.csv")).ok();
        assert!(
            !m.is_fresh("fig04", &c, None),
            "missing CSV must not be fresh"
        );
        std::fs::write(dir.join("fig04.csv"), "x\n").unwrap();
        assert!(m.is_fresh("fig04", &c, None));
        // Same code revision (or an unknown one) keeps the hit; a different
        // revision means the CSVs may be stale.
        assert!(m.is_fresh("fig04", &c, Some("deadbeef")));
        assert!(!m.is_fresh("fig04", &c, Some("0123abcd")));
        let unrecorded = Manifest {
            git_rev: None,
            ..m.clone()
        };
        assert!(unrecorded.is_fresh("fig04", &c, Some("0123abcd")));
        // A config change invalidates the hit.
        c.seed = 7;
        assert!(!m.is_fresh("fig04", &c, None));
    }

    #[test]
    fn parse_rejects_truncation() {
        let json = sample().to_json();
        assert_eq!(Manifest::parse(&json[..json.len() / 2]), None);
    }
}
