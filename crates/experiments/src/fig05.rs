//! Fig. 5: averaged MSE of multidimensional frequency estimation on
//! ACSEmployment — RS+RFD vs RS+FD with "Correct" and "Incorrect"
//! (Dirichlet) priors, ε ∈ {ln 2, …, ln 7}.

use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol};
use ldp_datasets::priors::IncorrectPrior;
use ldp_protocols::UeMode;

use crate::aif::{AifDataset, PriorSpec};
use crate::mse::{MseMethod, MseParams};
use crate::registry::ExperimentReport;
use crate::{eps_ln_grid, ExpConfig};

fn methods(prior: PriorSpec) -> Vec<MseMethod> {
    vec![
        MseMethod::RsRfd(RsRfdProtocol::Grr, prior),
        MseMethod::RsRfd(RsRfdProtocol::UeR(UeMode::Symmetric), prior),
        MseMethod::RsRfd(RsRfdProtocol::UeR(UeMode::Optimized), prior),
        MseMethod::RsFd(RsFdProtocol::Grr),
        MseMethod::RsFd(RsFdProtocol::UeR(UeMode::Symmetric)),
        MseMethod::RsFd(RsFdProtocol::UeR(UeMode::Optimized)),
    ]
}

/// Runs the figure; the report carries `fig05_correct.csv` and
/// `fig05_incorrect.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let correct = MseParams {
        dataset: AifDataset::Acs,
        methods: methods(PriorSpec::Correct),
        eps: eps_ln_grid(),
    };
    let t_correct = crate::mse::run(cfg, &correct, "Fig 5a (ACSEmployment, correct priors)");

    let incorrect = MseParams {
        dataset: AifDataset::Acs,
        methods: methods(PriorSpec::Incorrect(IncorrectPrior::Dirichlet)),
        eps: eps_ln_grid(),
    };
    let t_incorrect = crate::mse::run(
        cfg,
        &incorrect,
        "Fig 5b (ACSEmployment, incorrect DIR priors)",
    );
    ExperimentReport::new()
        .with("fig05_correct.csv", t_correct)
        .with("fig05_incorrect.csv", t_incorrect)
}
