//! Regenerates Fig. 12 of the paper. See DESIGN.md §5 and crate docs for
//! the scale knobs (RISKS_RUNS, RISKS_SCALE, RISKS_FULL, …).

fn main() {
    let cfg = ldp_experiments::ExpConfig::from_env();
    eprintln!(
        "[fig12] runs={} scale={} threads={} seed={}",
        cfg.runs, cfg.scale, cfg.threads, cfg.seed
    );
    let start = std::time::Instant::now();
    let _ = ldp_experiments::fig12::run(&cfg);
    eprintln!("[fig12] done in {:.1?}", start.elapsed());
}
