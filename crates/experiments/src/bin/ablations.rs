//! Runs the ablation studies called out in DESIGN.md: classifier family for
//! the inference attack and top-k sensitivity for re-identification.

fn main() {
    let cfg = ldp_experiments::ExpConfig::from_env();
    eprintln!(
        "[ablations] runs={} scale={} threads={} seed={}",
        cfg.runs, cfg.scale, cfg.threads, cfg.seed
    );
    let start = std::time::Instant::now();
    let t = ldp_experiments::ablation::run_classifier(&cfg);
    t.print();
    t.write_csv(&cfg.out_dir, "ablation_classifier.csv");
    let t = ldp_experiments::ablation::run_topk(&cfg);
    t.print();
    t.write_csv(&cfg.out_dir, "ablation_topk.csv");
    eprintln!("[ablations] done in {:.1?}", start.elapsed());
}
