//! Regenerates every figure of the paper in sequence. Heavy — prefer the
//! individual `figNN` binaries while iterating, and use `RISKS_SCALE` /
//! `RISKS_RUNS` to trade fidelity for time.

use std::time::Instant;

use ldp_experiments::ExpConfig;

fn timed(name: &str, f: impl FnOnce()) {
    let start = Instant::now();
    eprintln!("[all] running {name} …");
    f();
    eprintln!("[all] {name} done in {:.1?}", start.elapsed());
}

fn main() {
    let cfg = ExpConfig::from_env();
    eprintln!(
        "[all] runs={} scale={} threads={} seed={} out={}",
        cfg.runs,
        cfg.scale,
        cfg.threads,
        cfg.seed,
        cfg.out_dir.display()
    );
    let start = Instant::now();
    timed("fig01", || drop(ldp_experiments::fig01::run(&cfg)));
    timed("fig02", || drop(ldp_experiments::fig02::run(&cfg)));
    timed("fig03", || drop(ldp_experiments::fig03::run(&cfg)));
    timed("fig04", || drop(ldp_experiments::fig04::run(&cfg)));
    timed("fig05", || drop(ldp_experiments::fig05::run(&cfg)));
    timed("fig06", || drop(ldp_experiments::fig06::run(&cfg)));
    timed("fig09", || drop(ldp_experiments::fig09::run(&cfg)));
    timed("fig10", || drop(ldp_experiments::fig10::run(&cfg)));
    timed("fig11", || drop(ldp_experiments::fig11::run(&cfg)));
    timed("fig12", || drop(ldp_experiments::fig12::run(&cfg)));
    timed("fig13", || drop(ldp_experiments::fig13::run(&cfg)));
    timed("fig14", || drop(ldp_experiments::fig14::run(&cfg)));
    timed("fig15", || drop(ldp_experiments::fig15::run(&cfg)));
    timed("fig16", || drop(ldp_experiments::fig16::run(&cfg)));
    timed("fig17", || drop(ldp_experiments::fig17::run(&cfg)));
    eprintln!("[all] everything done in {:.1?}", start.elapsed());
}
