//! Regenerates Fig. 11 of the paper. See DESIGN.md §5 and crate docs for
//! the scale knobs (RISKS_RUNS, RISKS_SCALE, RISKS_FULL, …).

fn main() {
    let cfg = ldp_experiments::ExpConfig::from_env();
    eprintln!(
        "[fig11] runs={} scale={} threads={} seed={}",
        cfg.runs, cfg.scale, cfg.threads, cfg.seed
    );
    let start = std::time::Instant::now();
    let _ = ldp_experiments::fig11::run(&cfg);
    eprintln!("[fig11] done in {:.1?}", start.elapsed());
}
