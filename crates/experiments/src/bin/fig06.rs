//! Regenerates Fig. 06 of the paper. See DESIGN.md §5 and crate docs for
//! the scale knobs (RISKS_RUNS, RISKS_SCALE, RISKS_FULL, …).

fn main() {
    let cfg = ldp_experiments::ExpConfig::from_env();
    eprintln!(
        "[fig06] runs={} scale={} threads={} seed={}",
        cfg.runs, cfg.scale, cfg.threads, cfg.seed
    );
    let start = std::time::Instant::now();
    let _ = ldp_experiments::fig06::run(&cfg);
    eprintln!("[fig06] done in {:.1?}", start.elapsed());
}
