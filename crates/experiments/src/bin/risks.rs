//! `risks` — the single registry-driven entry point for every reproduction
//! experiment (replaces the per-figure binaries and the serial `all`):
//!
//! ```sh
//! risks list                 # every figure/table/ablation in the registry
//! risks describe fig04       # metadata: paper ref, datasets, cost
//! risks run fig01 fig04      # parallel, cached, manifest-writing
//! risks run all --force      # regenerate everything
//! risks serve --shape burst  # stream a corpus through the ingestion server
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match ldp_experiments::cli::parse(&args) {
        Ok(cmd) => ldp_experiments::cli::execute(cmd),
        Err(msg) => {
            eprintln!("risks: {msg}");
            eprint!("{}", ldp_experiments::cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
