//! Fig. 15 (Appendix D): attacker's AIF-ACC on Nursery — the negative
//! control: uniform-like marginals make uniform fake data indistinguishable,
//! so only RS+FD[UE-z] should leak.

use ldp_core::solutions::RsFdProtocol;

use crate::aif::{AifDataset, AifParams, SolutionSpec};
use crate::registry::ExperimentReport;
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig15.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let params = AifParams {
        dataset: AifDataset::Nursery,
        specs: RsFdProtocol::ALL
            .iter()
            .map(|&p| SolutionSpec::RsFd(p))
            .collect(),
        models: crate::aif::paper_models(),
        eps: eps_grid(),
    };
    let table = crate::aif::run(cfg, &params, "Fig 15 (Nursery, RS+FD)");
    ExperimentReport::new().with("fig15.csv", table)
}
