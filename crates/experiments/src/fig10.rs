//! Fig. 10 (Appendix C): RID-ACC on Adult, SMP, **PK-RI** model (partial
//! background knowledge), uniform ε-LDP metric.

use ldp_protocols::ProtocolKind;
use ldp_sim::SamplingSetting;

use crate::registry::ExperimentReport;
use crate::smp_reident::{Background, DatasetChoice, SmpReidentParams, XAxis};
use crate::{eps_grid, ExpConfig};

/// Runs the figure; the report carries `fig10.csv`.
pub fn run(cfg: &ExpConfig) -> ExperimentReport {
    let params = SmpReidentParams {
        dataset: DatasetChoice::Adult,
        kinds: ProtocolKind::ALL.to_vec(),
        xaxis: XAxis::Epsilon(eps_grid()),
        setting: SamplingSetting::Uniform,
        background: Background::Partial,
        n_surveys: 5,
    };
    let table = crate::smp_reident::run(cfg, &params, "Fig 10 (Adult, PK-RI, uniform eps-LDP)");
    ExperimentReport::new().with("fig10.csv", table)
}
