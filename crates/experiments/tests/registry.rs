//! Registry + runner integration tests: construction, id uniqueness, stable
//! `describe` output, the manifest cache round-trip, and the README
//! reproduction matrix (which is generated from the registry and must not
//! drift).

use std::collections::HashSet;
use std::path::PathBuf;

use ldp_experiments::manifest::Manifest;
use ldp_experiments::registry::{markdown_matrix, Experiment, ExperimentKind};
use ldp_experiments::runner::{run_experiments, ExpStatus, RunOptions};
use ldp_experiments::ExpConfig;

#[test]
fn every_kind_constructs_with_unique_ids_and_outputs() {
    let mut ids = HashSet::new();
    let mut outputs = HashSet::new();
    for kind in ExperimentKind::ALL {
        let exp = kind.build();
        assert!(ids.insert(exp.id()), "duplicate id {}", exp.id());
        assert!(!exp.paper_ref().is_empty());
        assert!(exp.estimated_cost() > 0.0);
        for o in exp.outputs() {
            assert!(outputs.insert(*o), "output {o} produced by two experiments");
            assert!(o.ends_with(".csv"));
        }
        assert_eq!(ExperimentKind::from_id(exp.id()), Some(kind));
    }
    assert_eq!(ids.len(), 21, "the registry covers all 21 experiments");
}

#[test]
fn describe_output_is_stable() {
    // `risks describe` is part of the documented surface; a change here must
    // be deliberate (and mirrored in docs).
    assert_eq!(
        ExperimentKind::Fig04.build().describe(),
        "fig04: RID-ACC on Adult vs RS+FD[GRR] (chained attack)\n  \
         paper:    §4.2, Fig. 4\n  \
         datasets: Adult\n  \
         outputs:  fig04.csv\n  \
         est. cost: ~3 min (default scale) / ~3.3 h (RISKS_FULL=1)\n"
    );
    assert_eq!(
        ExperimentKind::Fig01.build().describe(),
        "fig01: analytical expected attacker ACC over multiple collections\n  \
         paper:    §3.2.3, Fig. 1\n  \
         datasets: none (analytical)\n  \
         outputs:  fig01.csv\n  \
         est. cost: <1 s (default scale) / <1 s (RISKS_FULL=1)\n"
    );
}

#[test]
fn smoke_run_roundtrips_a_cached_manifest() {
    let out_dir = std::env::temp_dir().join(format!("risks_registry_smoke_{}", std::process::id()));
    std::fs::remove_dir_all(&out_dir).ok();
    let cfg = ExpConfig {
        runs: 1,
        scale: 0.01,
        threads: 2,
        seed: 42,
        out_dir: out_dir.clone(),
    };
    let opts = RunOptions {
        quiet: true,
        ..RunOptions::default()
    };

    // First invocation runs fig04 and writes CSV + manifest.
    let summary = run_experiments(&[ExperimentKind::Fig04], &cfg, &opts);
    assert!(!summary.any_failed());
    assert!(
        matches!(summary.results[0].1, ExpStatus::Completed { rows, .. } if rows > 0),
        "{:?}",
        summary.results
    );
    assert!(out_dir.join("fig04.csv").is_file());
    let manifest = Manifest::load(&out_dir, "fig04").expect("manifest written and parseable");
    assert_eq!(manifest.id, "fig04");
    assert_eq!(manifest.seed, 42);
    assert_eq!(manifest.outputs, ["fig04.csv"]);
    assert!(manifest.rows > 0);
    assert!(manifest.wall_secs > 0.0);

    // A second identical invocation recognizes the manifest as a cache hit.
    let summary = run_experiments(&[ExperimentKind::Fig04], &cfg, &opts);
    assert_eq!(summary.results[0].1, ExpStatus::Cached);

    // Changing a result-determining knob invalidates the cache; --force does
    // too even when nothing changed.
    let reseeded = ExpConfig {
        seed: 7,
        ..cfg.clone()
    };
    let summary = run_experiments(&[ExperimentKind::Fig04], &reseeded, &opts);
    assert!(matches!(summary.results[0].1, ExpStatus::Completed { .. }));
    let forced = RunOptions {
        force: true,
        ..opts.clone()
    };
    let summary = run_experiments(&[ExperimentKind::Fig04], &cfg, &forced);
    assert!(matches!(summary.results[0].1, ExpStatus::Completed { .. }));

    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn readme_reproduction_matrix_matches_registry() {
    // README.md embeds `risks list --markdown` between markers; regenerating
    // it is the fix when this fails:
    //   cargo run -p ldp-experiments --bin risks -- list --markdown
    let readme_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("README.md readable");
    let begin = "<!-- BEGIN REPRODUCTION MATRIX (generated: risks list --markdown) -->\n";
    let end = "<!-- END REPRODUCTION MATRIX -->";
    let start = readme
        .find(begin)
        .expect("README.md has the reproduction-matrix begin marker")
        + begin.len();
    let stop = readme
        .find(end)
        .expect("README.md has the reproduction-matrix end marker");
    assert_eq!(
        readme[start..stop].trim_end_matches('\n'),
        markdown_matrix().trim_end_matches('\n'),
        "README reproduction matrix drifted from the registry — regenerate \
         it with `risks list --markdown`"
    );
}
