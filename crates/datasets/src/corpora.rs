//! The three evaluation corpora of the paper (§4.1), as synthetic stand-ins
//! with identical (n, d, k). See DESIGN.md §4 for the substitution argument.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::generator::{GeneratorConfig, LatentClassGenerator};
use crate::schema::{Attribute, Schema};

/// Schema of the UCI *Adult* dataset selection used by the paper:
/// d = 10, k = [74, 7, 16, 7, 14, 6, 5, 2, 41, 2].
pub fn adult_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("age", 74),
        Attribute::new("workclass", 7),
        Attribute::new("education", 16),
        Attribute::new("marital-status", 7),
        Attribute::new("occupation", 14),
        Attribute::new("relationship", 6),
        Attribute::new("race", 5),
        Attribute::new("sex", 2),
        Attribute::new("native-country", 41),
        Attribute::new("salary", 2),
    ])
}

/// Schema of the Folktables *ACSEmployment* (Montana) selection:
/// d = 18, k = [92, 25, 5, 2, 2, 9, 4, 5, 5, 4, 2, 18, 2, 2, 3, 9, 3, 6].
pub fn acs_employment_schema() -> Schema {
    let ks = [92u32, 25, 5, 2, 2, 9, 4, 5, 5, 4, 2, 18, 2, 2, 3, 9, 3, 6];
    Schema::new(
        ks.iter()
            .enumerate()
            .map(|(j, &k)| Attribute::new(format!("ACS{}", j + 1), k))
            .collect(),
    )
}

/// Schema of the UCI *Nursery* dataset: d = 9, k = [3, 5, 4, 4, 3, 2, 3, 3, 5].
pub fn nursery_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("parents", 3),
        Attribute::new("has_nurs", 5),
        Attribute::new("form", 4),
        Attribute::new("children", 4),
        Attribute::new("housing", 3),
        Attribute::new("finance", 2),
        Attribute::new("social", 3),
        Attribute::new("health", 3),
        Attribute::new("class", 5),
    ])
}

/// Paper sample counts.
pub const ADULT_N: usize = 45_222;
/// Paper sample counts.
pub const ACS_EMPLOYMENT_N: usize = 10_336;
/// Paper sample counts.
pub const NURSERY_N: usize = 12_959;

fn generate(schema: Schema, config: GeneratorConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    LatentClassGenerator::new(schema, config, &mut rng).generate(&mut rng)
}

/// Synthetic *Adult*-like dataset at the paper's size (`n` = 45 222), or a
/// smaller `n` for scaled-down runs.
pub fn adult_like(n: usize, seed: u64) -> Dataset {
    generate(
        adult_schema(),
        GeneratorConfig {
            n,
            clusters: 12,
            skew: 1.9,
            uniform_mix: 0.08,
            cluster_skew: 0.5,
        },
        seed,
    )
}

/// Synthetic *ACSEmployment*-like dataset (`n` = 10 336 at paper scale).
pub fn acs_employment_like(n: usize, seed: u64) -> Dataset {
    generate(
        acs_employment_schema(),
        GeneratorConfig {
            n,
            clusters: 10,
            skew: 2.2,
            uniform_mix: 0.05,
            cluster_skew: 0.6,
        },
        seed,
    )
}

/// Synthetic *Nursery*-like dataset (`n` = 12 959 at paper scale) with the
/// uniform-like marginals that make the RS+FD inference attack fail
/// (Appendix D, Fig. 15).
pub fn nursery_like(n: usize, seed: u64) -> Dataset {
    generate(
        nursery_schema(),
        GeneratorConfig {
            n,
            clusters: 2,
            skew: 0.3,
            uniform_mix: 0.9,
            cluster_skew: 0.2,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_match_paper_dimensions() {
        assert_eq!(adult_schema().d(), 10);
        assert_eq!(
            adult_schema().cardinalities(),
            vec![74, 7, 16, 7, 14, 6, 5, 2, 41, 2]
        );
        assert_eq!(acs_employment_schema().d(), 18);
        assert_eq!(acs_employment_schema().total_cells(), 198);
        assert_eq!(nursery_schema().d(), 9);
        assert_eq!(
            nursery_schema().cardinalities(),
            vec![3, 5, 4, 4, 3, 2, 3, 3, 5]
        );
    }

    #[test]
    fn corpora_generate_requested_sizes() {
        let adult = adult_like(2000, 1);
        assert_eq!(adult.n(), 2000);
        assert_eq!(adult.d(), 10);
        let acs = acs_employment_like(1500, 1);
        assert_eq!(acs.n(), 1500);
        assert_eq!(acs.d(), 18);
        let nursery = nursery_like(1000, 1);
        assert_eq!(nursery.n(), 1000);
        assert_eq!(nursery.d(), 9);
    }

    #[test]
    fn adult_like_has_high_uniqueness_on_many_attributes() {
        // The re-identification precondition: most users are unique given
        // the full attribute set (true for the real Adult dataset too).
        let ds = adult_like(10_000, 2);
        let all: Vec<usize> = (0..ds.d()).collect();
        let u = ds.uniqueness_fraction(&all);
        assert!(u > 0.5, "full-profile uniqueness too low: {u}");
        // But single attributes identify (almost) nobody.
        assert!(ds.uniqueness_fraction(&[7]) < 0.01);
    }

    #[test]
    fn nursery_like_marginals_are_near_uniform() {
        let ds = nursery_like(12_959, 3);
        for j in 0..ds.d() {
            let k = ds.schema().k(j);
            let uniform = 1.0 / k as f64;
            for &p in &ds.marginal(j) {
                assert!(
                    (p - uniform).abs() < 0.05,
                    "attribute {j}: {p} vs uniform {uniform}"
                );
            }
        }
    }

    #[test]
    fn acs_like_marginals_are_skewed() {
        let ds = acs_employment_like(10_336, 4);
        // At least half the attributes should deviate visibly from uniform.
        let mut skewed = 0;
        for j in 0..ds.d() {
            let k = ds.schema().k(j);
            let uniform = 1.0 / k as f64;
            let dev = ds
                .marginal(j)
                .iter()
                .map(|&p| (p - uniform).abs())
                .fold(0.0f64, f64::max);
            if dev > 0.1 * uniform.max(0.05) {
                skewed += 1;
            }
        }
        assert!(skewed >= ds.d() / 2, "only {skewed} skewed attributes");
    }

    #[test]
    fn corpora_are_deterministic_per_seed() {
        let a = adult_like(100, 42);
        let b = adult_like(100, 42);
        let c = adult_like(100, 43);
        assert_eq!(a.row(10), b.row(10));
        assert_ne!(
            (0..100).map(|i| a.row(i).to_vec()).collect::<Vec<_>>(),
            (0..100).map(|i| c.row(i).to_vec()).collect::<Vec<_>>()
        );
    }
}
