//! In-memory multidimensional categorical dataset with the statistics the
//! paper's attacks depend on (marginals, uniqueness / anonymity sets).

use std::collections::HashMap;

use rand::seq::index::sample;
use rand::Rng;

use crate::schema::Schema;

/// A dataset of `n` users, each holding one value per attribute of the
/// [`Schema`]. Rows are stored row-major (`n × d` values).
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    data: Vec<u32>,
}

impl Dataset {
    /// Wraps row-major `data` (length must be a multiple of `schema.d()`)
    /// after validating every value against its attribute domain.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-domain values; datasets are
    /// produced by generators/loaders that must uphold these invariants.
    pub fn new(schema: Schema, data: Vec<u32>) -> Self {
        let d = schema.d();
        assert_eq!(data.len() % d, 0, "data length must be a multiple of d");
        for (idx, &v) in data.iter().enumerate() {
            let j = idx % d;
            assert!(
                (v as usize) < schema.k(j),
                "row {} attribute {j}: value {v} outside domain {}",
                idx / d,
                schema.k(j)
            );
        }
        Dataset { schema, data }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of users `n`.
    pub fn n(&self) -> usize {
        if self.schema.d() == 0 {
            0
        } else {
            self.data.len() / self.schema.d()
        }
    }

    /// Number of attributes `d`.
    pub fn d(&self) -> usize {
        self.schema.d()
    }

    /// Value of attribute `j` for user `i`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> u32 {
        self.data[i * self.schema.d() + j]
    }

    /// The full record of user `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        let d = self.schema.d();
        &self.data[i * d..(i + 1) * d]
    }

    /// Iterator over all records.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.schema.d())
    }

    /// Normalized marginal distribution of attribute `j`.
    pub fn marginal(&self, j: usize) -> Vec<f64> {
        let k = self.schema.k(j);
        let mut counts = vec![0u64; k];
        for i in 0..self.n() {
            counts[self.value(i, j) as usize] += 1;
        }
        let n = self.n().max(1) as f64;
        counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// Marginals of every attribute (the paper's true frequencies `f`).
    pub fn marginals(&self) -> Vec<Vec<f64>> {
        (0..self.d()).map(|j| self.marginal(j)).collect()
    }

    /// Fraction of users whose projection onto `attrs` is unique in the
    /// dataset — the "uniqueness" driving re-identification risk.
    pub fn uniqueness_fraction(&self, attrs: &[usize]) -> f64 {
        if self.n() == 0 {
            return 0.0;
        }
        let mut groups: HashMap<Vec<u32>, u32> = HashMap::with_capacity(self.n());
        for i in 0..self.n() {
            let key: Vec<u32> = attrs.iter().map(|&j| self.value(i, j)).collect();
            *groups.entry(key).or_insert(0) += 1;
        }
        let unique: usize = groups.values().filter(|&&c| c == 1).count();
        unique as f64 / self.n() as f64
    }

    /// Size of the anonymity set (equivalence class) of each user under the
    /// projection onto `attrs`.
    pub fn anonymity_sets(&self, attrs: &[usize]) -> Vec<u32> {
        let mut groups: HashMap<Vec<u32>, u32> = HashMap::with_capacity(self.n());
        for i in 0..self.n() {
            let key: Vec<u32> = attrs.iter().map(|&j| self.value(i, j)).collect();
            *groups.entry(key).or_insert(0) += 1;
        }
        (0..self.n())
            .map(|i| {
                let key: Vec<u32> = attrs.iter().map(|&j| self.value(i, j)).collect();
                groups[&key]
            })
            .collect()
    }

    /// Uniform random subsample of `m` users (without replacement), keeping
    /// the schema. Returns a clone when `m >= n`.
    pub fn subsample<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Dataset {
        if m >= self.n() {
            return self.clone();
        }
        let d = self.d();
        let mut data = Vec::with_capacity(m * d);
        let mut idx: Vec<usize> = sample(rng, self.n(), m).into_iter().collect();
        idx.sort_unstable();
        for i in idx {
            data.extend_from_slice(self.row(i));
        }
        Dataset {
            schema: self.schema.clone(),
            data,
        }
    }

    /// Restricts the dataset to a subset of attributes (in the given order),
    /// producing the partial background knowledge `D_PK` of §3.2.4.
    pub fn project(&self, attrs: &[usize]) -> Dataset {
        let atts = attrs
            .iter()
            .map(|&j| self.schema.attributes()[j].clone())
            .collect();
        let schema = Schema::new(atts);
        let mut data = Vec::with_capacity(self.n() * attrs.len());
        for i in 0..self.n() {
            for &j in attrs {
                data.push(self.value(i, j));
            }
        }
        Dataset { schema, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let schema = Schema::from_cardinalities(&[2, 3]);
        Dataset::new(schema, vec![0, 0, 1, 2, 0, 0, 1, 1])
    }

    #[test]
    fn dimensions_and_access() {
        let ds = toy();
        assert_eq!(ds.n(), 4);
        assert_eq!(ds.d(), 2);
        assert_eq!(ds.value(1, 1), 2);
        assert_eq!(ds.row(3), &[1, 1]);
        assert_eq!(ds.rows().count(), 4);
    }

    #[test]
    fn marginals_are_normalized_and_correct() {
        let ds = toy();
        let m0 = ds.marginal(0);
        assert_eq!(m0, vec![0.5, 0.5]);
        let m1 = ds.marginal(1);
        assert!((m1.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(m1, vec![0.5, 0.25, 0.25]);
    }

    #[test]
    fn uniqueness_counts_singletons() {
        let ds = toy();
        // Projections on both attributes: rows are (0,0),(1,2),(0,0),(1,1):
        // (1,2) and (1,1) are unique → 2/4.
        assert_eq!(ds.uniqueness_fraction(&[0, 1]), 0.5);
        // On attribute 0 alone nothing is unique.
        assert_eq!(ds.uniqueness_fraction(&[0]), 0.0);
    }

    #[test]
    fn anonymity_sets_match_group_sizes() {
        let ds = toy();
        assert_eq!(ds.anonymity_sets(&[0]), vec![2, 2, 2, 2]);
        assert_eq!(ds.anonymity_sets(&[0, 1]), vec![2, 1, 2, 1]);
    }

    #[test]
    fn subsample_preserves_schema_and_rows() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let sub = ds.subsample(2, &mut rng);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.d(), 2);
        for row in sub.rows() {
            assert!(ds.rows().any(|r| r == row));
        }
        // m >= n returns everything.
        assert_eq!(ds.subsample(10, &mut rng).n(), 4);
    }

    #[test]
    fn project_reorders_attributes() {
        let ds = toy();
        let p = ds.project(&[1]);
        assert_eq!(p.d(), 1);
        assert_eq!(p.row(1), &[2]);
        assert_eq!(p.schema().attributes()[0].name, "A2");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn new_rejects_out_of_domain_values() {
        let schema = Schema::from_cardinalities(&[2, 3]);
        Dataset::new(schema, vec![0, 3]);
    }
}
