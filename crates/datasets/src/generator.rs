//! Latent-class mixture generator for census-like categorical data.
//!
//! Each record is produced by (1) drawing a latent cluster `z` from a skewed
//! mixture and (2) drawing each attribute value independently from the
//! cluster-specific categorical distribution `θ_{z,j}`. Cluster-specific
//! distributions are Zipf-shaped with a per-cluster random permutation of the
//! value order, blended with the uniform distribution by `uniform_mix`.
//!
//! This construction yields the two dataset properties the paper's attacks
//! need (see DESIGN.md §4):
//!
//! * **skewed marginals** — the mixture of permuted Zipf distributions is far
//!   from uniform when `uniform_mix` is small;
//! * **inter-attribute correlation and uniqueness** — attributes share the
//!   latent cluster, so attribute combinations concentrate per cluster and
//!   rare combinations become identifying.

use rand::Rng;

use crate::dataset::Dataset;
use crate::schema::Schema;

/// Configuration of the [`LatentClassGenerator`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of records to generate.
    pub n: usize,
    /// Number of latent clusters (≥ 1).
    pub clusters: usize,
    /// Zipf exponent of the per-cluster value distributions (0 ⇒ uniform).
    pub skew: f64,
    /// Blend factor towards the uniform distribution in `[0, 1]`
    /// (1 ⇒ fully uniform attributes, defeating frequency-based attacks).
    pub uniform_mix: f64,
    /// Zipf exponent of the cluster-weight distribution.
    pub cluster_skew: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n: 10_000,
            clusters: 10,
            skew: 1.2,
            uniform_mix: 0.1,
            cluster_skew: 0.6,
        }
    }
}

/// Generator of synthetic categorical datasets with controllable skew and
/// correlation. Construct once per (schema, seed) and call
/// [`LatentClassGenerator::generate`].
#[derive(Debug, Clone)]
pub struct LatentClassGenerator {
    schema: Schema,
    config: GeneratorConfig,
    /// Cluster mixture weights (cumulative, for inverse-CDF sampling).
    cluster_cdf: Vec<f64>,
    /// `theta[c][j]` = cumulative distribution of attribute `j` in cluster `c`.
    theta_cdf: Vec<Vec<Vec<f64>>>,
}

/// Normalized Zipf probabilities `p(i) ∝ 1/(i+1)^s` over `0..k`.
pub fn zipf_pmf(k: usize, s: f64) -> Vec<f64> {
    let mut pmf: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = pmf.iter().sum();
    for p in &mut pmf {
        *p /= total;
    }
    pmf
}

/// Turns a pmf into a cumulative distribution (last entry forced to 1.0).
fn to_cdf(pmf: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = pmf
        .iter()
        .map(|&p| {
            acc += p;
            acc
        })
        .collect();
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

/// Inverse-CDF sample from a cumulative distribution.
fn sample_cdf<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.random();
    // Binary search for the first entry >= u.
    match cdf.binary_search_by(|probe| probe.partial_cmp(&u).expect("no NaN in cdf")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

impl LatentClassGenerator {
    /// Builds the generator's cluster and per-attribute distributions.
    ///
    /// # Panics
    /// Panics when `config.clusters == 0` or `uniform_mix ∉ [0, 1]`.
    pub fn new<R: Rng + ?Sized>(schema: Schema, config: GeneratorConfig, rng: &mut R) -> Self {
        assert!(config.clusters >= 1, "need at least one cluster");
        assert!(
            (0.0..=1.0).contains(&config.uniform_mix),
            "uniform_mix must lie in [0, 1]"
        );
        let cluster_pmf = zipf_pmf(config.clusters, config.cluster_skew);
        let cluster_cdf = to_cdf(&cluster_pmf);

        let mut theta_cdf = Vec::with_capacity(config.clusters);
        for _ in 0..config.clusters {
            let mut per_attr = Vec::with_capacity(schema.d());
            for j in 0..schema.d() {
                let k = schema.k(j);
                // Census-like shape: mass concentrates on low codes (think
                // `native-country` or binned `age`), which also keeps the
                // signal threshold-friendly for tree learners, like the real
                // corpora. Clusters differ by exponent jitter and a small
                // cyclic shift of the head — the shared latent z then induces
                // cross-attribute correlation.
                let exponent = config.skew * (0.7 + 0.6 * rng.random::<f64>());
                let base = zipf_pmf(k, exponent);
                let shift = if k > 2 {
                    rng.random_range(0..=(k / 4))
                } else {
                    0
                };
                let u = 1.0 / k as f64;
                let mut pmf = vec![0.0; k];
                for (rank, &p) in base.iter().enumerate() {
                    let value = (rank + shift) % k;
                    pmf[value] = (1.0 - config.uniform_mix) * p + config.uniform_mix * u;
                }
                per_attr.push(to_cdf(&pmf));
            }
            theta_cdf.push(per_attr);
        }
        LatentClassGenerator {
            schema,
            config,
            cluster_cdf,
            theta_cdf,
        }
    }

    /// The schema this generator produces.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generates `config.n` records.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let d = self.schema.d();
        let mut data = Vec::with_capacity(self.config.n * d);
        for _ in 0..self.config.n {
            let z = sample_cdf(&self.cluster_cdf, rng);
            for j in 0..d {
                data.push(sample_cdf(&self.theta_cdf[z][j], rng) as u32);
            }
        }
        Dataset::new(self.schema.clone(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(skew: f64, mix: f64, n: usize) -> Dataset {
        let schema = Schema::from_cardinalities(&[10, 5, 20]);
        let mut rng = StdRng::seed_from_u64(7);
        let gen = LatentClassGenerator::new(
            schema,
            GeneratorConfig {
                n,
                clusters: 6,
                skew,
                uniform_mix: mix,
                cluster_skew: 0.5,
            },
            &mut rng,
        );
        gen.generate(&mut rng)
    }

    #[test]
    fn zipf_pmf_is_normalized_and_decreasing() {
        let pmf = zipf_pmf(10, 1.2);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for w in pmf.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn generates_requested_shape() {
        let ds = build(1.2, 0.1, 500);
        assert_eq!(ds.n(), 500);
        assert_eq!(ds.d(), 3);
    }

    #[test]
    fn skewed_config_produces_nonuniform_marginals() {
        let ds = build(1.5, 0.05, 20_000);
        // L∞ distance from uniform should be clearly positive.
        let m = ds.marginal(0);
        let dev = m.iter().map(|&p| (p - 0.1f64).abs()).fold(0.0f64, f64::max);
        assert!(dev > 0.05, "marginal too uniform: {m:?}");
    }

    #[test]
    fn uniform_mix_one_produces_near_uniform_marginals() {
        let ds = build(1.5, 1.0, 40_000);
        let m = ds.marginal(1); // k = 5 → uniform 0.2
        for &p in &m {
            assert!((p - 0.2).abs() < 0.02, "marginal {m:?} not uniform");
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = build(1.2, 0.1, 300);
        let b = build(1.2, 0.1, 300);
        assert_eq!(a.row(7), b.row(7));
        assert_eq!(a.row(299), b.row(299));
    }

    #[test]
    fn latent_clusters_induce_correlation() {
        // Mutual information between two attributes should be positive under
        // a skewed multi-cluster config (they share the latent z).
        let ds = build(1.5, 0.0, 40_000);
        let (k0, k1) = (10usize, 5usize);
        let mut joint = vec![vec![0.0f64; k1]; k0];
        for i in 0..ds.n() {
            joint[ds.value(i, 0) as usize][ds.value(i, 1) as usize] += 1.0;
        }
        let n = ds.n() as f64;
        let m0 = ds.marginal(0);
        let m1 = ds.marginal(1);
        let mut mi = 0.0;
        for a in 0..k0 {
            for b in 0..k1 {
                let pab = joint[a][b] / n;
                if pab > 0.0 && m0[a] > 0.0 && m1[b] > 0.0 {
                    mi += pab * (pab / (m0[a] * m1[b])).ln();
                }
            }
        }
        assert!(mi > 0.01, "mutual information too small: {mi}");
    }
}
