//! Mixed categorical + continuous datasets for the numeric-dimension
//! subsystem.
//!
//! The paper's corpora are purely categorical, but real deployments (and the
//! numeric LDP literature the mechanisms come from) mix ordinal/categorical
//! attributes with continuous ones. A [`MixedDataset`] extends the row-major
//! [`Dataset`] with `m` continuous attributes, each normalized from its
//! declared `[lo, hi]` range into the canonical `[-1, 1]` input domain of the
//! numeric mechanisms at construction time.
//!
//! Dimension layout convention: the `d_cat` categorical attributes occupy
//! dimensions `0..d_cat` and the `d_num` numeric attributes occupy dimensions
//! `d_cat..d_cat + d_num`. [`MixedDataset::ks`] encodes this as the
//! heterogeneous cardinality vector the mixed solution consumes, with `0`
//! marking a numeric dimension (the `NUMERIC_DIM` sentinel of `ldp-core`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::generator::{GeneratorConfig, LatentClassGenerator};
use crate::schema::{Attribute, Schema};

/// A continuous attribute with a declared value range `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericAttribute {
    /// Human-readable attribute name.
    pub name: String,
    /// Smallest representable raw value.
    pub lo: f64,
    /// Largest representable raw value.
    pub hi: f64,
}

impl NumericAttribute {
    /// Creates a numeric attribute.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and both bounds are finite.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "numeric attribute range must be finite with lo < hi, got [{lo}, {hi}]"
        );
        NumericAttribute {
            name: name.into(),
            lo,
            hi,
        }
    }

    /// Maps a raw value in `[lo, hi]` to the normalized domain `[-1, 1]`.
    pub fn normalize(&self, v: f64) -> f64 {
        (2.0 * (v - self.lo) / (self.hi - self.lo) - 1.0).clamp(-1.0, 1.0)
    }

    /// Maps a normalized value in `[-1, 1]` back to the raw range.
    pub fn denormalize(&self, t: f64) -> f64 {
        self.lo + (t + 1.0) / 2.0 * (self.hi - self.lo)
    }
}

/// A dataset of `n` users with both categorical and continuous attributes.
///
/// Categorical values live in an embedded [`Dataset`] (reusing its marginal /
/// uniqueness machinery); continuous values are stored row-major, already
/// normalized to `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct MixedDataset {
    cat: Dataset,
    numeric_attrs: Vec<NumericAttribute>,
    /// Row-major `n × d_num` normalized values.
    num: Vec<f64>,
}

impl MixedDataset {
    /// Wraps a categorical dataset plus raw continuous values (row-major,
    /// `n × numeric_attrs.len()`, each within its attribute's `[lo, hi]`).
    /// Values are normalized to `[-1, 1]` on construction.
    ///
    /// # Panics
    /// Panics on length mismatch, non-finite values, values outside their
    /// declared range, or an empty numeric attribute list (use [`Dataset`]
    /// directly for purely categorical data).
    pub fn new(cat: Dataset, numeric_attrs: Vec<NumericAttribute>, raw: Vec<f64>) -> Self {
        let m = numeric_attrs.len();
        assert!(
            m > 0,
            "a mixed dataset needs at least one numeric attribute"
        );
        assert_eq!(
            raw.len(),
            cat.n() * m,
            "numeric data length must be n × d_num"
        );
        let mut num = Vec::with_capacity(raw.len());
        for (idx, &v) in raw.iter().enumerate() {
            let attr = &numeric_attrs[idx % m];
            assert!(
                v.is_finite() && v >= attr.lo && v <= attr.hi,
                "row {} numeric attribute {}: value {v} outside [{}, {}]",
                idx / m,
                idx % m,
                attr.lo,
                attr.hi
            );
            num.push(attr.normalize(v));
        }
        MixedDataset {
            cat,
            numeric_attrs,
            num,
        }
    }

    /// Number of users `n`.
    pub fn n(&self) -> usize {
        self.cat.n()
    }

    /// Total number of dimensions (categorical + numeric).
    pub fn d(&self) -> usize {
        self.cat.d() + self.numeric_attrs.len()
    }

    /// Number of categorical dimensions.
    pub fn d_cat(&self) -> usize {
        self.cat.d()
    }

    /// Number of numeric dimensions.
    pub fn d_num(&self) -> usize {
        self.numeric_attrs.len()
    }

    /// The categorical portion of the dataset (dimensions `0..d_cat`).
    pub fn cat(&self) -> &Dataset {
        &self.cat
    }

    /// The continuous attribute declarations (dimensions `d_cat..d`).
    pub fn numeric_attributes(&self) -> &[NumericAttribute] {
        &self.numeric_attrs
    }

    /// The heterogeneous cardinality vector for the mixed solution:
    /// categorical cardinalities followed by a `0` sentinel per numeric
    /// dimension.
    pub fn ks(&self) -> Vec<usize> {
        let mut ks = self.cat.schema().cardinalities();
        ks.extend(std::iter::repeat_n(0, self.numeric_attrs.len()));
        ks
    }

    /// Normalized value (`[-1, 1]`) of numeric attribute `j` (indexed
    /// `0..d_num`) for user `i`.
    #[inline]
    pub fn num_value(&self, i: usize, j: usize) -> f64 {
        self.num[i * self.numeric_attrs.len() + j]
    }

    /// The full normalized numeric record of user `i`.
    #[inline]
    pub fn num_row(&self, i: usize) -> &[f64] {
        let m = self.numeric_attrs.len();
        &self.num[i * m..(i + 1) * m]
    }

    /// Population mean of numeric attribute `j` in the normalized domain —
    /// the ground truth the numeric mechanisms estimate.
    pub fn numeric_mean(&self, j: usize) -> f64 {
        if self.n() == 0 {
            return 0.0;
        }
        (0..self.n()).map(|i| self.num_value(i, j)).sum::<f64>() / self.n() as f64
    }

    /// Equal-width `buckets`-bin histogram of numeric attribute `j` over
    /// `[-1, 1]`, normalized to a probability vector. This is the prior the
    /// value-range inference attack fits from population knowledge.
    pub fn numeric_histogram(&self, j: usize, buckets: usize) -> Vec<f64> {
        assert!(buckets >= 2, "histogram needs at least 2 buckets");
        let mut counts = vec![0u64; buckets];
        for i in 0..self.n() {
            counts[bucket_of(self.num_value(i, j), buckets)] += 1;
        }
        let n = self.n().max(1) as f64;
        counts.iter().map(|&c| c as f64 / n).collect()
    }
}

/// Index of the equal-width bucket over `[-1, 1]` containing `t` (values are
/// clamped to the domain, so `t = 1.0` lands in the last bucket).
pub fn bucket_of(t: f64, buckets: usize) -> usize {
    let x = (t.clamp(-1.0, 1.0) + 1.0) / 2.0 * buckets as f64;
    (x as usize).min(buckets - 1)
}

/// Center of bucket `b` (of `buckets` equal-width buckets over `[-1, 1]`) in
/// the normalized domain.
pub fn bucket_center(b: usize, buckets: usize) -> f64 {
    -1.0 + (2.0 * b as f64 + 1.0) / buckets as f64
}

/// Reference population size of the MixedSurvey corpus (the scale the
/// numeric extension experiments treat as "paper scale").
pub const MIXED_SURVEY_N: usize = 30_000;

/// Schema of the synthetic mixed "survey" corpus: 4 categorical attributes.
pub fn mixed_survey_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("region", 8),
        Attribute::new("employment", 5),
        Attribute::new("education", 6),
        Attribute::new("sex", 2),
    ])
}

/// Numeric attributes of the synthetic mixed "survey" corpus.
pub fn mixed_survey_numeric_attributes() -> Vec<NumericAttribute> {
    vec![
        NumericAttribute::new("age", 18.0, 90.0),
        NumericAttribute::new("hours-per-week", 0.0, 80.0),
    ]
}

/// Synthetic mixed corpus: 4 categorical attributes (d = 4,
/// k = [8, 5, 6, 2]) plus 2 continuous ones (`age`, `hours-per-week`) whose
/// distributions are skewed and correlated with the categorical part, so
/// numeric priors are informative for the value-range inference attack.
pub fn mixed_survey_like(n: usize, seed: u64) -> MixedDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let cat = LatentClassGenerator::new(
        mixed_survey_schema(),
        GeneratorConfig {
            n,
            clusters: 6,
            skew: 1.6,
            uniform_mix: 0.1,
            cluster_skew: 0.5,
        },
        &mut rng,
    )
    .generate(&mut rng);
    let attrs = mixed_survey_numeric_attributes();
    let mut raw = Vec::with_capacity(n * attrs.len());
    for i in 0..n {
        // Age skews young-to-middle, shifted by employment status; triangular
        // noise (sum of two uniforms) keeps the marginal clearly non-uniform.
        let employment = cat.value(i, 1) as f64;
        let base_age = 24.0 + 6.0 * employment;
        let noise: f64 = rng.random_range(0.0..1.0) + rng.random_range(0.0..1.0);
        let age =
            (base_age + 14.0 * (noise - 1.0) + rng.random_range(0.0f64..22.0)).clamp(18.0, 90.0);
        raw.push(age);
        // Weekly hours cluster around full-time, modulated by employment.
        let base_hours = 12.0 + 8.0 * employment;
        let hnoise: f64 = rng.random_range(0.0..1.0) + rng.random_range(0.0..1.0);
        let hours = (base_hours + 12.0 * (hnoise - 1.0)).clamp(0.0, 80.0);
        raw.push(hours);
    }
    MixedDataset::new(cat, attrs, raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> MixedDataset {
        let cat = Dataset::new(Schema::from_cardinalities(&[2, 3]), vec![0, 0, 1, 2, 0, 1]);
        let attrs = vec![NumericAttribute::new("x", 0.0, 10.0)];
        MixedDataset::new(cat, attrs, vec![0.0, 5.0, 10.0])
    }

    #[test]
    fn normalization_and_layout() {
        let ds = toy();
        assert_eq!(ds.n(), 3);
        assert_eq!(ds.d(), 3);
        assert_eq!(ds.d_cat(), 2);
        assert_eq!(ds.d_num(), 1);
        assert_eq!(ds.ks(), vec![2, 3, 0]);
        assert_eq!(ds.num_value(0, 0), -1.0);
        assert_eq!(ds.num_value(1, 0), 0.0);
        assert_eq!(ds.num_value(2, 0), 1.0);
        assert_eq!(ds.num_row(1), &[0.0]);
        assert!((ds.numeric_mean(0)).abs() < 1e-12);
    }

    #[test]
    fn attribute_round_trips_values() {
        let a = NumericAttribute::new("age", 18.0, 90.0);
        for v in [18.0, 33.5, 90.0] {
            let t = a.normalize(v);
            assert!((-1.0..=1.0).contains(&t));
            assert!((a.denormalize(t) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn buckets_partition_the_domain() {
        assert_eq!(bucket_of(-1.0, 4), 0);
        assert_eq!(bucket_of(-0.51, 4), 0);
        assert_eq!(bucket_of(-0.49, 4), 1);
        assert_eq!(bucket_of(0.0, 4), 2);
        assert_eq!(bucket_of(1.0, 4), 3);
        for b in 0..4 {
            assert_eq!(bucket_of(bucket_center(b, 4), 4), b);
        }
    }

    #[test]
    fn histogram_is_a_probability_vector() {
        let ds = mixed_survey_like(5000, 7);
        for j in 0..ds.d_num() {
            let h = ds.numeric_histogram(j, 8);
            assert_eq!(h.len(), 8);
            assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // Age is skewed: its histogram should not be uniform.
        let h = ds.numeric_histogram(0, 8);
        let max = h.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 0.2, "age histogram unexpectedly flat: {h:?}");
    }

    #[test]
    fn survey_corpus_is_deterministic_and_sized() {
        let a = mixed_survey_like(200, 42);
        let b = mixed_survey_like(200, 42);
        let c = mixed_survey_like(200, 43);
        assert_eq!(a.n(), 200);
        assert_eq!(a.ks(), vec![8, 5, 6, 2, 0, 0]);
        assert_eq!(a.num_row(10), b.num_row(10));
        assert_eq!(a.cat().row(10), b.cat().row(10));
        assert_ne!(
            (0..200).map(|i| a.num_row(i).to_vec()).collect::<Vec<_>>(),
            (0..200).map(|i| c.num_row(i).to_vec()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_numeric_values_panic() {
        let cat = Dataset::new(Schema::from_cardinalities(&[2]), vec![0]);
        MixedDataset::new(cat, vec![NumericAttribute::new("x", 0.0, 1.0)], vec![1.5]);
    }
}
