//! Minimal CSV persistence for datasets (used by the examples so a user can
//! inspect and re-load the synthetic corpora).

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::dataset::Dataset;
use crate::schema::{Attribute, Schema};

/// Errors raised when loading a dataset from CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the file (bad header, ragged row, bad integer).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse { line, reason } => {
                write!(f, "csv parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `dataset` as CSV: a header of attribute names, then one row of
/// integer codes per user.
pub fn save(dataset: &Dataset, path: &Path) -> Result<(), CsvError> {
    let mut out = BufWriter::new(File::create(path)?);
    let names: Vec<&str> = dataset
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    writeln!(out, "{}", names.join(","))?;
    for row in dataset.rows() {
        let mut first = true;
        for &v in row {
            if !first {
                write!(out, ",")?;
            }
            write!(out, "{v}")?;
            first = false;
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

/// Loads a dataset written by [`save`]. Cardinalities are inferred as
/// `max(value) + 1` per column (with a floor of 2).
pub fn load(path: &Path) -> Result<Dataset, CsvError> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header = lines.next().ok_or(CsvError::Parse {
        line: 1,
        reason: "empty file".into(),
    })??;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let d = names.len();
    if d == 0 {
        return Err(CsvError::Parse {
            line: 1,
            reason: "header has no columns".into(),
        });
    }
    let mut data: Vec<u32> = Vec::new();
    let mut maxes = vec![0u32; d];
    for (idx, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != d {
            return Err(CsvError::Parse {
                line: idx + 2,
                reason: format!("expected {d} fields, got {}", fields.len()),
            });
        }
        for (j, f) in fields.iter().enumerate() {
            let v: u32 = f.trim().parse().map_err(|e| CsvError::Parse {
                line: idx + 2,
                reason: format!("bad integer {f:?}: {e}"),
            })?;
            maxes[j] = maxes[j].max(v);
            data.push(v);
        }
    }
    let schema = Schema::new(
        names
            .into_iter()
            .zip(&maxes)
            .map(|(name, &m)| Attribute::new(name, (m + 1).max(2)))
            .collect(),
    );
    Ok(Dataset::new(schema, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpora::adult_like;

    #[test]
    fn roundtrip_preserves_rows() {
        let ds = adult_like(200, 5);
        let dir = std::env::temp_dir().join("ldp_datasets_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adult.csv");
        save(&ds, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.n(), ds.n());
        assert_eq!(loaded.d(), ds.d());
        for i in [0usize, 57, 199] {
            assert_eq!(loaded.row(i), ds.row(i));
        }
        assert_eq!(
            loaded.schema().attributes()[0].name,
            ds.schema().attributes()[0].name
        );
    }

    #[test]
    fn load_rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("ldp_datasets_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.csv");
        std::fs::write(&path, "a,b\n1,2\n3\n").unwrap();
        match load(&path) {
            Err(CsvError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_bad_integers() {
        let dir = std::env::temp_dir().join("ldp_datasets_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("badint.csv");
        std::fs::write(&path, "a\nx\n").unwrap();
        assert!(matches!(load(&path), Err(CsvError::Parse { .. })));
    }
}
