//! Prior distributions for the RS+RFD countermeasure (§5.2 of the paper).
//!
//! * **"Correct" priors** — the true per-attribute marginals perturbed with a
//!   centralized-DP Laplace mechanism splitting `ε = 0.1` over the `d`
//!   attributes, exactly as the paper simulates priors released by a Census
//!   bureau the previous year.
//! * **"Incorrect" priors** — deliberately wrong priors: Dirichlet(1)
//!   (uniform on the simplex), Zipf(s = 1.01) and Exponential(λ = 1), the
//!   latter two histogrammed from 100 000 samples into the `k_j` buckets, as
//!   in Appendix E.

use rand::Rng;

use crate::dataset::Dataset;

/// One draw from the Laplace distribution with location 0 and `scale` b.
pub fn laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    // Inverse-CDF: u ∈ (−1/2, 1/2), x = −b · sgn(u) · ln(1 − 2|u|).
    let u: f64 = rng.random::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Clamps negatives to zero and renormalizes; falls back to uniform when the
/// whole vector clamps away.
fn renormalize(mut v: Vec<f64>) -> Vec<f64> {
    for x in &mut v {
        *x = x.max(0.0);
    }
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in &mut v {
            *x /= s;
        }
    } else if !v.is_empty() {
        let u = 1.0 / v.len() as f64;
        v.fill(u);
    }
    v
}

/// "Correct" priors: each attribute's true marginal released through an
/// `ε_total`-DP Laplace mechanism with the budget split evenly over the `d`
/// attributes (paper: `ε_total = 0.1`). Histogram queries have L1
/// sensitivity 2/n in frequency space, so the noise scale is
/// `2 / (n · ε_total / d)` per entry.
pub fn correct_priors<R: Rng + ?Sized>(
    dataset: &Dataset,
    epsilon_total: f64,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    correct_priors_scaled(dataset, epsilon_total, dataset.n(), rng)
}

/// [`correct_priors`] with the Laplace noise calibrated to a *reference*
/// population size (e.g. the paper-scale n when experiments subsample the
/// dataset: a Census release is computed on the full population, so its noise
/// does not grow when the experiment shrinks).
pub fn correct_priors_scaled<R: Rng + ?Sized>(
    dataset: &Dataset,
    epsilon_total: f64,
    reference_n: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    assert!(epsilon_total > 0.0, "DP budget must be positive");
    let d = dataset.d() as f64;
    let n = reference_n.max(1) as f64;
    let scale = 2.0 / (n * (epsilon_total / d));
    dataset
        .marginals()
        .into_iter()
        .map(|marginal| {
            renormalize(
                marginal
                    .into_iter()
                    .map(|f| f + laplace(scale, rng))
                    .collect(),
            )
        })
        .collect()
}

/// Families of deliberately wrong priors evaluated in Appendix E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncorrectPrior {
    /// Dirichlet with concentration 1 (uniform over the simplex).
    Dirichlet,
    /// Zipf distribution with exponent `s = 1.01`.
    Zipf,
    /// Exponential distribution with rate `λ = 1`.
    Exp,
}

impl IncorrectPrior {
    /// Paper-style label ("DIR", "ZIPF", "EXP").
    pub fn name(self) -> &'static str {
        match self {
            IncorrectPrior::Dirichlet => "DIR",
            IncorrectPrior::Zipf => "ZIPF",
            IncorrectPrior::Exp => "EXP",
        }
    }

    /// Samples one prior over a domain of size `k`.
    pub fn generate<R: Rng + ?Sized>(self, k: usize, rng: &mut R) -> Vec<f64> {
        match self {
            IncorrectPrior::Dirichlet => dirichlet_uniform(k, rng),
            IncorrectPrior::Zipf => zipf_histogram_prior(k, 1.01, 100_000, rng),
            IncorrectPrior::Exp => exp_histogram_prior(k, 1.0, 100_000, rng),
        }
    }

    /// Samples one prior per attribute of `cardinalities`.
    pub fn generate_all<R: Rng + ?Sized>(
        self,
        cardinalities: &[usize],
        rng: &mut R,
    ) -> Vec<Vec<f64>> {
        cardinalities
            .iter()
            .map(|&k| self.generate(k, rng))
            .collect()
    }
}

/// Dirichlet(1, …, 1): normalized Exponential(1) draws.
pub fn dirichlet_uniform<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Vec<f64> {
    let draws: Vec<f64> = (0..k).map(|_| exp_sample(1.0, rng)).collect();
    renormalize(draws)
}

/// One Exponential(λ) sample via inverse CDF.
fn exp_sample<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.random();
    // 1 − u ∈ (0, 1]: avoids ln(0).
    -(1.0 - u).ln() / lambda
}

/// Zipf(s) prior over `k` buckets, reconstructed from `samples` draws of a
/// bounded Zipf on ranks `1..=k` (the paper histograms unbounded draws; a
/// bounded support gives the identical shape over the k buckets).
pub fn zipf_histogram_prior<R: Rng + ?Sized>(
    k: usize,
    s: f64,
    samples: usize,
    rng: &mut R,
) -> Vec<f64> {
    let pmf = crate::generator::zipf_pmf(k, s);
    let mut cdf = Vec::with_capacity(k);
    let mut acc = 0.0;
    for &p in &pmf {
        acc += p;
        cdf.push(acc);
    }
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    let mut hist = vec![0u64; k];
    for _ in 0..samples {
        let u: f64 = rng.random();
        let idx = cdf.partition_point(|&c| c < u).min(k - 1);
        hist[idx] += 1;
    }
    renormalize(hist.into_iter().map(|c| c as f64).collect())
}

/// Exponential(λ) prior over `k` buckets: histogram `samples` draws into `k`
/// equal-width buckets over `[0, max_draw]`.
pub fn exp_histogram_prior<R: Rng + ?Sized>(
    k: usize,
    lambda: f64,
    samples: usize,
    rng: &mut R,
) -> Vec<f64> {
    let draws: Vec<f64> = (0..samples).map(|_| exp_sample(lambda, rng)).collect();
    let max = draws.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    let mut hist = vec![0u64; k];
    for x in draws {
        let idx = ((x / max) * k as f64) as usize;
        hist[idx.min(k - 1)] += 1;
    }
    renormalize(hist.into_iter().map(|c| c as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn is_distribution(p: &[f64]) -> bool {
        p.iter().all(|&x| (0.0..=1.0).contains(&x)) && (p.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }

    #[test]
    fn laplace_is_centered_and_scaled() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let scale = 2.0;
        let draws: Vec<f64> = (0..n).map(|_| laplace(scale, &mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var of Laplace(b) = 2 b².
        assert!((var - 2.0 * scale * scale).abs() < 0.3, "var {var}");
    }

    #[test]
    fn correct_priors_are_distributions_close_to_marginals() {
        let schema = Schema::from_cardinalities(&[4, 6]);
        let data: Vec<u32> = (0..4000u32).flat_map(|i| [i % 4, (i * 7) % 6]).collect();
        let ds = Dataset::new(schema, data);
        let mut rng = StdRng::seed_from_u64(5);
        let priors = correct_priors(&ds, 0.1, &mut rng);
        assert_eq!(priors.len(), 2);
        for (j, prior) in priors.iter().enumerate() {
            assert!(is_distribution(prior), "prior {j} = {prior:?}");
        }
        // With n = 4000 and eps = 0.1/2, the noise scale is 0.01: the prior
        // should stay within a few percent of the true marginal.
        let truth = ds.marginal(0);
        for (p, t) in priors[0].iter().zip(&truth) {
            assert!((p - t).abs() < 0.2, "prior {p} vs truth {t}");
        }
    }

    #[test]
    fn dirichlet_uniform_is_distribution_and_varies() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = dirichlet_uniform(8, &mut rng);
        let b = dirichlet_uniform(8, &mut rng);
        assert!(is_distribution(&a));
        assert!(is_distribution(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_prior_is_skewed_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = zipf_histogram_prior(10, 1.01, 100_000, &mut rng);
        assert!(is_distribution(&p));
        assert!(p[0] > p[9], "zipf should be decreasing overall: {p:?}");
        assert!(p[0] > 0.2, "head mass too small: {p:?}");
    }

    #[test]
    fn exp_prior_is_decreasing_distribution() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = exp_histogram_prior(8, 1.0, 100_000, &mut rng);
        assert!(is_distribution(&p));
        assert!(p[0] > p[4], "exp prior should decay: {p:?}");
    }

    #[test]
    fn incorrect_prior_generate_all_covers_every_attribute() {
        let mut rng = StdRng::seed_from_u64(15);
        for kind in [
            IncorrectPrior::Dirichlet,
            IncorrectPrior::Zipf,
            IncorrectPrior::Exp,
        ] {
            let all = kind.generate_all(&[3, 5, 7], &mut rng);
            assert_eq!(all.len(), 3);
            assert_eq!(all[2].len(), 7);
            for p in &all {
                assert!(is_distribution(p), "{} produced {p:?}", kind.name());
            }
        }
    }
}
