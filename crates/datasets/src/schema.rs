//! Dataset schemas: named categorical attributes with finite domains.

use std::fmt;

/// One categorical attribute with a finite, indexed domain `0..cardinality`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Human-readable name (e.g. `"age"`).
    pub name: String,
    /// Domain size `k_j >= 2`.
    pub cardinality: u32,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cardinality: u32) -> Self {
        Attribute {
            name: name.into(),
            cardinality,
        }
    }
}

/// An ordered list of attributes describing one dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, validating that every attribute has `cardinality >= 2`.
    ///
    /// # Panics
    /// Panics when any attribute has fewer than two values — schemas are
    /// static configuration, so this is a programming error, not an input
    /// error.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        assert!(
            !attributes.is_empty(),
            "schema needs at least one attribute"
        );
        for a in &attributes {
            assert!(
                a.cardinality >= 2,
                "attribute {:?} must have cardinality >= 2",
                a.name
            );
        }
        Schema { attributes }
    }

    /// Builds a schema from bare cardinalities with names `A1, A2, …`.
    pub fn from_cardinalities(cardinalities: &[u32]) -> Self {
        Schema::new(
            cardinalities
                .iter()
                .enumerate()
                .map(|(j, &k)| Attribute::new(format!("A{}", j + 1), k))
                .collect(),
        )
    }

    /// Number of attributes `d`.
    pub fn d(&self) -> usize {
        self.attributes.len()
    }

    /// Domain size of attribute `j`.
    pub fn k(&self, j: usize) -> usize {
        self.attributes[j].cardinality as usize
    }

    /// All domain sizes as a vector (the paper's `k`).
    pub fn cardinalities(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .map(|a| a.cardinality as usize)
            .collect()
    }

    /// The attributes, in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Total number of cells `sum(k_j)` (the unary-encoded tuple width).
    pub fn total_cells(&self) -> usize {
        self.attributes.iter().map(|a| a.cardinality as usize).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema(d={}, k=[", self.d())?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.cardinality)?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cardinalities_names_attributes() {
        let s = Schema::from_cardinalities(&[3, 4, 5]);
        assert_eq!(s.d(), 3);
        assert_eq!(s.k(1), 4);
        assert_eq!(s.attributes()[0].name, "A1");
        assert_eq!(s.total_cells(), 12);
    }

    #[test]
    #[should_panic(expected = "cardinality >= 2")]
    fn rejects_unary_attribute() {
        Schema::from_cardinalities(&[3, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn rejects_empty_schema() {
        Schema::new(vec![]);
    }

    #[test]
    fn display_shows_cardinalities() {
        let s = Schema::from_cardinalities(&[2, 9]);
        assert_eq!(s.to_string(), "Schema(d=2, k=[2, 9])");
    }
}
