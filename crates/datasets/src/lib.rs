//! # ldp-datasets
//!
//! Synthetic multidimensional categorical datasets standing in for the three
//! corpora used in the paper's evaluation (§4.1):
//!
//! * [`corpora::adult_like`] — UCI *Adult* (n = 45 222, d = 10,
//!   k = [74, 7, 16, 7, 14, 6, 5, 2, 41, 2]);
//! * [`corpora::acs_employment_like`] — Folktables *ACSEmployment*, Montana
//!   (n = 10 336, d = 18);
//! * [`corpora::nursery_like`] — UCI *Nursery* (n = 12 959, d = 9), whose
//!   uniform-like marginals defeat the RS+FD inference attack.
//!
//! The real corpora cannot be downloaded in this environment, so a
//! [`generator::LatentClassGenerator`] produces datasets with the same
//! (n, d, k) and the two properties the paper's attacks rely on: **skewed
//! marginals** (so a classifier can tell LDP reports from uniform fake data)
//! and **record uniqueness** under attribute combinations (so
//! re-identification is possible). See DESIGN.md §4 for the substitution
//! argument.
//!
//! The [`priors`] module implements the prior distributions of §5.2: "Correct"
//! priors from a Laplace mechanism on the true marginals and "Incorrect"
//! Dirichlet(1) / Zipf / Exponential priors.

pub mod corpora;
pub mod csv;
pub mod dataset;
pub mod generator;
pub mod mixed;
pub mod priors;
pub mod schema;

pub use dataset::Dataset;
pub use generator::{GeneratorConfig, LatentClassGenerator};
pub use mixed::{MixedDataset, NumericAttribute};
pub use priors::{correct_priors, IncorrectPrior};
pub use schema::{Attribute, Schema};
