//! Edge-case coverage of the core solutions and attacks: degenerate inputs,
//! missing groups, extreme parameters.

use ldp_core::inference::{encode_features, AttackClassifier, AttackModel, SampledAttributeAttack};
use ldp_core::pie;
use ldp_core::profiling::Profile;
use ldp_core::reident::{MatchScratch, ReidentAttack};
use ldp_core::solutions::{MultidimReport, MultidimSolution, RsFd, RsFdProtocol, Smp, SmpReport};
use ldp_datasets::{Dataset, Schema};
use ldp_gbdt::GbdtParams;
use ldp_protocols::{ProtocolKind, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn smp_estimate_with_unsampled_attribute_is_zero() {
    // If no user ever samples attribute 1, its estimate must be all-zero
    // (n_j = 0), not NaN.
    let smp = Smp::new(ProtocolKind::Grr, &[3, 4], 1.0).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let reports: Vec<SmpReport> = (0..100)
        .map(|_| smp.report_attr(&[1, 2], 0, &mut rng))
        .collect();
    let est = smp.estimate(&reports);
    assert!(est[0].iter().all(|f| f.is_finite()));
    assert_eq!(
        est[1],
        vec![0.0; 4],
        "unsampled attribute must estimate zero"
    );
}

#[test]
fn rsfd_estimate_of_empty_report_set_is_zero() {
    let rsfd = RsFd::new(RsFdProtocol::Grr, &[3, 4], 1.0).unwrap();
    let est = rsfd.estimate(&[]);
    assert_eq!(est.len(), 2);
    assert!(est.iter().flatten().all(|&f| f == 0.0));
}

#[test]
fn encode_features_on_empty_slice_yields_empty_matrix() {
    let x = encode_features(&[], &[3, 4], false);
    assert_eq!(x.n_rows(), 0);
}

#[test]
fn inference_attack_with_minimum_population() {
    // Two users, two attributes: the pipeline must not panic and must emit
    // valid percentages.
    let rsfd = RsFd::new(RsFdProtocol::Grr, &[3, 3], 2.0).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let observed: Vec<MultidimReport> = (0..2).map(|_| rsfd.report(&[1, 2], &mut rng)).collect();
    let out = SampledAttributeAttack::evaluate(
        &rsfd,
        &observed,
        &AttackModel::NoKnowledge { synth_factor: 1.0 },
        &AttackClassifier::Gbdt(GbdtParams {
            rounds: 2,
            ..GbdtParams::default()
        }),
        &mut rng,
    );
    assert!((0.0..=100.0).contains(&out.aif_acc));
    assert_eq!(out.n_test, 2);
}

#[test]
fn reident_with_single_record_population() {
    let schema = Schema::from_cardinalities(&[2, 2]);
    let ds = Dataset::new(schema, vec![1, 0]);
    let attack = ReidentAttack::build(&ds, &[0, 1]);
    let mut rng = StdRng::seed_from_u64(3);
    let mut scratch = MatchScratch::default();
    let mut p = Profile::new();
    p.observe(0, 1);
    // The only record always wins at top-1 whatever the profile says.
    assert!(attack.hit_in_top_k(&p, 0, 1, &mut scratch, &mut rng));
    let mut wrong = Profile::new();
    wrong.observe(0, 0);
    assert!(attack.hit_in_top_k(&wrong, 0, 1, &mut scratch, &mut rng));
}

#[test]
fn reident_top_k_larger_than_population_always_hits() {
    let schema = Schema::from_cardinalities(&[2]);
    let ds = Dataset::new(schema, vec![0, 1, 0]);
    let attack = ReidentAttack::build(&ds, &[0]);
    let mut rng = StdRng::seed_from_u64(4);
    let mut scratch = MatchScratch::default();
    let mut p = Profile::new();
    p.observe(0, 1);
    for id in 0..3 {
        assert!(attack.hit_in_top_k(&p, id, 10, &mut scratch, &mut rng));
    }
}

#[test]
fn pie_extreme_betas() {
    // β = 1: α = 0 → everything randomizes with the floor budget.
    assert!(matches!(
        pie::decide(1.0, 10_000, 2),
        pie::PieDecision::Randomize { epsilon } if epsilon > 0.0
    ));
    // β = 0: α = log2(n) − 1, huge → everything small passes through.
    assert!(matches!(
        pie::decide(0.0, 10_000, 64),
        pie::PieDecision::PassThrough
    ));
}

#[test]
fn multidim_report_shapes_are_stable_for_every_variant() {
    let ks = [4usize, 2, 5];
    let mut rng = StdRng::seed_from_u64(5);
    for protocol in RsFdProtocol::ALL {
        let rsfd = RsFd::new(protocol, &ks, 1.0).unwrap();
        let r = rsfd.report(&[3, 1, 0], &mut rng);
        for (j, rep) in r.values.iter().enumerate() {
            match (rsfd.is_unary(), rep) {
                (true, Report::Bits(b)) => assert_eq!(b.len(), ks[j]),
                (false, Report::Value(v)) => assert!((*v as usize) < ks[j]),
                other => panic!("{}: unexpected shape {other:?}", protocol.name()),
            }
        }
    }
}

#[test]
fn profile_entries_cap_at_d_under_repeated_observation() {
    let mut p = Profile::new();
    for round in 0..50usize {
        p.observe(round % 4, round as u32);
    }
    assert_eq!(p.len(), 4);
}
