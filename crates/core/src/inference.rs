//! The §3.3 sampled-attribute inference attack against RS+FD / RS+RFD.
//!
//! Given a full sanitized tuple `y = [y_1, …, y_d]`, the attacker predicts
//! which attribute carries the ε′-LDP report (the rest being fake data). The
//! paper's three attacker models differ in how the training set is built:
//!
//! * **NK** (no knowledge): the attacker estimates all attribute frequencies
//!   from the observed LDP reports, generates `s` synthetic profiles from
//!   those estimates, and runs the *known* mechanism on them to obtain
//!   labelled training data.
//! * **PK** (partial knowledge): the attacker knows the sampled attribute of
//!   `n_pk` compromised users and trains on their real tuples.
//! * **HM** (hybrid): both.
//!
//! The classifier is a stand-in for the paper's XGBoost: either
//! [`ldp_gbdt::GbdtClassifier`] or the linear [`ldp_gbdt::LogisticRegression`]
//! ablation.

use ldp_gbdt::{DenseMatrix, GbdtClassifier, GbdtParams, LogisticParams, LogisticRegression};
use ldp_protocols::Report;
use rand::seq::index::sample;
use rand::Rng;

use crate::solutions::{sample_cdf, to_cdf, MultidimReport, MultidimSolution};

/// Attacker knowledge model (§3.3.1–3.3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackModel {
    /// Train on `synth_factor · n` synthetic profiles only.
    NoKnowledge {
        /// Multiple of the population size to synthesize (paper: 1, 3, 5).
        synth_factor: f64,
    },
    /// Train on `compromised_frac · n` compromised real users.
    PartialKnowledge {
        /// Fraction of users whose sampled attribute leaked (paper: 0.1–0.5).
        compromised_frac: f64,
    },
    /// Union of the NK and PK training sets.
    Hybrid {
        /// Synthetic multiple, as in [`AttackModel::NoKnowledge`].
        synth_factor: f64,
        /// Compromised fraction, as in [`AttackModel::PartialKnowledge`].
        compromised_frac: f64,
    },
}

impl AttackModel {
    /// Short label used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AttackModel::NoKnowledge { .. } => "NK",
            AttackModel::PartialKnowledge { .. } => "PK",
            AttackModel::Hybrid { .. } => "HM",
        }
    }

    /// Number of synthetic training profiles this model generates for a
    /// population of `n` observed users — the single source of the
    /// `n_train` bookkeeping.
    pub fn synth_count(&self, n: usize) -> usize {
        match *self {
            AttackModel::NoKnowledge { synth_factor }
            | AttackModel::Hybrid { synth_factor, .. } => {
                (synth_factor * n as f64).round() as usize
            }
            AttackModel::PartialKnowledge { .. } => 0,
        }
    }
}

/// Which classifier family the attacker trains.
#[derive(Debug, Clone)]
pub enum AttackClassifier {
    /// Gradient-boosted trees (the paper's XGBoost stand-in).
    Gbdt(GbdtParams),
    /// Multinomial logistic regression (ablation).
    Logistic(LogisticParams),
}

impl Default for AttackClassifier {
    fn default() -> Self {
        AttackClassifier::Gbdt(GbdtParams::default())
    }
}

#[derive(Debug, Clone)]
enum TrainedModel {
    Gbdt(GbdtClassifier),
    Logistic(LogisticRegression),
}

/// A trained sampled-attribute classifier.
#[derive(Debug, Clone)]
pub struct SampledAttributeAttack {
    model: TrainedModel,
    ks: Vec<usize>,
    unary: bool,
}

/// Attack evaluation result.
#[derive(Debug, Clone, Copy)]
pub struct InferenceOutcome {
    /// Attacker's attribute-inference accuracy (%) on the test users.
    pub aif_acc: f64,
    /// Random-guess baseline (%): `100/d`.
    pub baseline: f64,
    /// Training-set size used.
    pub n_train: usize,
    /// Test-set size.
    pub n_test: usize,
}

/// Encodes full tuples as classifier features: concatenated bits for unary
/// protocols, raw value codes for GRR-style protocols.
pub fn encode_features(reports: &[&MultidimReport], ks: &[usize], unary: bool) -> DenseMatrix {
    let width: usize = if unary { ks.iter().sum() } else { ks.len() };
    let mut flat = Vec::with_capacity(reports.len() * width);
    for r in reports {
        debug_assert_eq!(r.values.len(), ks.len(), "tuple width mismatch");
        if unary {
            for rep in &r.values {
                match rep {
                    Report::Bits(bits) => {
                        let start = flat.len();
                        flat.resize(start + bits.len(), 0.0f32);
                        for b in bits.ones() {
                            flat[start + b] = 1.0;
                        }
                    }
                    other => panic!("expected unary report, got {}", other.shape()),
                }
            }
        } else {
            for rep in &r.values {
                match rep {
                    Report::Value(v) => flat.push(*v as f32),
                    other => panic!("expected value report, got {}", other.shape()),
                }
            }
        }
    }
    DenseMatrix::from_flat(flat, reports.len(), width)
}

impl SampledAttributeAttack {
    /// Trains the attack. `observed` holds all sanitized tuples the attacker
    /// sees; the returned test indices point into `observed` (all users for
    /// NK, the non-compromised ones for PK/HM).
    pub fn train<S: MultidimSolution, R: Rng + ?Sized>(
        solution: &S,
        observed: &[MultidimReport],
        model: &AttackModel,
        classifier: &AttackClassifier,
        rng: &mut R,
    ) -> (Self, Vec<usize>) {
        assert!(!observed.is_empty(), "attack needs observed reports");
        let n = observed.len();
        let d = solution.d();
        let unary = solution.is_unary();

        let (synth_factor, compromised_frac) = match *model {
            AttackModel::NoKnowledge { synth_factor } => (synth_factor, 0.0),
            AttackModel::PartialKnowledge { compromised_frac } => (0.0, compromised_frac),
            AttackModel::Hybrid {
                synth_factor,
                compromised_frac,
            } => (synth_factor, compromised_frac),
        };
        assert!(synth_factor >= 0.0 && compromised_frac >= 0.0);
        assert!(compromised_frac < 1.0, "cannot compromise everyone");

        // Compromised users (PK/HM) train; the rest are the test set.
        let n_pk = (compromised_frac * n as f64).round() as usize;
        let mut compromised: Vec<usize> = if n_pk > 0 {
            sample(rng, n, n_pk.min(n - 1)).into_iter().collect()
        } else {
            Vec::new()
        };
        compromised.sort_unstable();
        let mut is_compromised = vec![false; n];
        for &i in &compromised {
            is_compromised[i] = true;
        }
        let test_idx: Vec<usize> = (0..n).filter(|&i| !is_compromised[i]).collect();

        // Attacker-side frequency estimates over everything it observed,
        // projected onto the simplex for sampling synthetic profiles.
        let mut train_reports: Vec<MultidimReport> = Vec::new();
        let n_synth = model.synth_count(n);
        if n_synth > 0 {
            let est = solution.estimate_normalized(observed);
            let cdfs: Vec<Vec<f64>> = est.iter().map(|f| to_cdf(f)).collect();
            let mut tuple = vec![0u32; d];
            for _ in 0..n_synth {
                for (j, cdf) in cdfs.iter().enumerate() {
                    tuple[j] = sample_cdf(cdf, rng) as u32;
                }
                train_reports.push(solution.report(&tuple, rng));
            }
        }
        let mut labels: Vec<u32> = train_reports.iter().map(|r| r.sampled as u32).collect();
        let mut train_refs: Vec<&MultidimReport> = train_reports.iter().collect();
        for &i in &compromised {
            train_refs.push(&observed[i]);
            labels.push(observed[i].sampled as u32);
        }
        assert!(
            !train_refs.is_empty(),
            "attack model produced an empty training set"
        );

        let x = encode_features(&train_refs, solution.ks(), unary);
        let model =
            match classifier {
                AttackClassifier::Gbdt(params) => {
                    TrainedModel::Gbdt(GbdtClassifier::fit(&x, &labels, d, params, rng.random()))
                }
                AttackClassifier::Logistic(params) => TrainedModel::Logistic(
                    LogisticRegression::fit(&x, &labels, d, params, rng.random()),
                ),
            };
        (
            SampledAttributeAttack {
                model,
                ks: solution.ks().to_vec(),
                unary,
            },
            test_idx,
        )
    }

    /// Predicts the sampled attribute of each tuple.
    pub fn predict(&self, reports: &[&MultidimReport]) -> Vec<u32> {
        if reports.is_empty() {
            return Vec::new();
        }
        let x = encode_features(reports, &self.ks, self.unary);
        match &self.model {
            TrainedModel::Gbdt(m) => m.predict(&x),
            TrainedModel::Logistic(m) => m.predict(&x),
        }
    }

    /// Trains and scores the attack in one call (the Fig. 3/14/15 pipeline).
    pub fn evaluate<S: MultidimSolution, R: Rng + ?Sized>(
        solution: &S,
        observed: &[MultidimReport],
        model: &AttackModel,
        classifier: &AttackClassifier,
        rng: &mut R,
    ) -> InferenceOutcome {
        let (attack, test_idx) = Self::train(solution, observed, model, classifier, rng);
        let test: Vec<&MultidimReport> = test_idx.iter().map(|&i| &observed[i]).collect();
        let pred = attack.predict(&test);
        let hits = pred
            .iter()
            .zip(&test_idx)
            .filter(|&(&p, &i)| p as usize == observed[i].sampled)
            .count();
        let n_train = observed.len() - test_idx.len() + model.synth_count(observed.len());
        InferenceOutcome {
            aif_acc: 100.0 * hits as f64 / test_idx.len().max(1) as f64,
            baseline: 100.0 / solution.d() as f64,
            n_train,
            n_test: test_idx.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solutions::{RsFd, RsFdProtocol, RsRfd, RsRfdProtocol};
    use ldp_protocols::UeMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Skewed population: value 0 dominates every attribute.
    fn skewed_tuples(n: usize, ks: &[usize], rng: &mut StdRng) -> Vec<Vec<u32>> {
        (0..n)
            .map(|_| {
                ks.iter()
                    .map(|&k| {
                        if rng.random::<f64>() < 0.7 {
                            0
                        } else {
                            rng.random_range(0..k as u32)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn fast_gbdt() -> AttackClassifier {
        AttackClassifier::Gbdt(GbdtParams {
            rounds: 12,
            max_depth: 4,
            ..GbdtParams::default()
        })
    }

    #[test]
    fn ue_z_attack_is_nearly_perfect_at_high_epsilon() {
        // The paper's headline finding: RS+FD[SUE-z] leaks the sampled
        // attribute almost completely at ε = 10.
        let ks = [6usize, 8, 4];
        let mut rng = StdRng::seed_from_u64(1);
        let solution = RsFd::new(RsFdProtocol::UeZ(UeMode::Symmetric), &ks, 10.0).unwrap();
        let tuples = skewed_tuples(1200, &ks, &mut rng);
        let observed: Vec<MultidimReport> = tuples
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let out = SampledAttributeAttack::evaluate(
            &solution,
            &observed,
            &AttackModel::NoKnowledge { synth_factor: 1.0 },
            &fast_gbdt(),
            &mut rng,
        );
        assert!(
            out.aif_acc > 80.0,
            "SUE-z at eps=10 should be near-perfect, got {}",
            out.aif_acc
        );
    }

    #[test]
    fn grr_attack_beats_baseline_on_skewed_data() {
        let ks = [6usize, 8, 4];
        let mut rng = StdRng::seed_from_u64(2);
        let solution = RsFd::new(RsFdProtocol::Grr, &ks, 6.0).unwrap();
        let tuples = skewed_tuples(1500, &ks, &mut rng);
        let observed: Vec<MultidimReport> = tuples
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let out = SampledAttributeAttack::evaluate(
            &solution,
            &observed,
            &AttackModel::NoKnowledge { synth_factor: 1.0 },
            &fast_gbdt(),
            &mut rng,
        );
        assert!(
            out.aif_acc > 1.5 * out.baseline,
            "AIF {} vs baseline {}",
            out.aif_acc,
            out.baseline
        );
    }

    #[test]
    fn pk_model_trains_on_compromised_and_tests_on_rest() {
        let ks = [4usize, 4];
        let mut rng = StdRng::seed_from_u64(3);
        let solution = RsFd::new(RsFdProtocol::Grr, &ks, 4.0).unwrap();
        let tuples = skewed_tuples(600, &ks, &mut rng);
        let observed: Vec<MultidimReport> = tuples
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let out = SampledAttributeAttack::evaluate(
            &solution,
            &observed,
            &AttackModel::PartialKnowledge {
                compromised_frac: 0.3,
            },
            &fast_gbdt(),
            &mut rng,
        );
        assert_eq!(out.n_test, 600 - 180);
        assert!(out.aif_acc >= 0.0 && out.aif_acc <= 100.0);
    }

    #[test]
    fn rsrfd_with_true_priors_defeats_the_attack() {
        // The countermeasure's claim: with correct priors the attacker gains
        // little over the baseline even at high ε.
        let ks = [6usize, 8, 4];
        let mut rng = StdRng::seed_from_u64(4);
        let tuples = skewed_tuples(1500, &ks, &mut rng);
        // Exact priors = population marginals.
        let mut priors: Vec<Vec<f64>> = ks.iter().map(|&k| vec![0.0; k]).collect();
        for t in &tuples {
            for (j, &v) in t.iter().enumerate() {
                priors[j][v as usize] += 1.0 / tuples.len() as f64;
            }
        }
        let solution = RsRfd::new(RsRfdProtocol::Grr, &ks, 8.0, priors).unwrap();
        let observed: Vec<MultidimReport> = tuples
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let out = SampledAttributeAttack::evaluate(
            &solution,
            &observed,
            &AttackModel::NoKnowledge { synth_factor: 1.0 },
            &fast_gbdt(),
            &mut rng,
        );
        // GRR fakes drawn from the true marginal are *almost*
        // indistinguishable; allow modest residual signal.
        assert!(
            out.aif_acc < out.baseline + 12.0,
            "RS+RFD should suppress the attack: {} vs baseline {}",
            out.aif_acc,
            out.baseline
        );
    }

    #[test]
    fn logistic_classifier_also_works() {
        let ks = [4usize, 6];
        let mut rng = StdRng::seed_from_u64(5);
        let solution = RsFd::new(RsFdProtocol::UeZ(UeMode::Optimized), &ks, 8.0).unwrap();
        let tuples = skewed_tuples(800, &ks, &mut rng);
        let observed: Vec<MultidimReport> = tuples
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let out = SampledAttributeAttack::evaluate(
            &solution,
            &observed,
            &AttackModel::NoKnowledge { synth_factor: 1.0 },
            &AttackClassifier::Logistic(LogisticParams::default()),
            &mut rng,
        );
        assert!(
            out.aif_acc > out.baseline,
            "logistic AIF {} vs baseline {}",
            out.aif_acc,
            out.baseline
        );
    }

    #[test]
    fn hybrid_model_combines_training_sources() {
        let ks = [4usize, 4];
        let mut rng = StdRng::seed_from_u64(6);
        let solution = RsFd::new(RsFdProtocol::Grr, &ks, 4.0).unwrap();
        let tuples = skewed_tuples(400, &ks, &mut rng);
        let observed: Vec<MultidimReport> = tuples
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let (attack, test_idx) = SampledAttributeAttack::train(
            &solution,
            &observed,
            &AttackModel::Hybrid {
                synth_factor: 1.0,
                compromised_frac: 0.1,
            },
            &fast_gbdt(),
            &mut rng,
        );
        assert_eq!(test_idx.len(), 360);
        let preds = attack.predict(&test_idx.iter().map(|&i| &observed[i]).collect::<Vec<_>>());
        assert_eq!(preds.len(), 360);
        assert!(preds.iter().all(|&p| (p as usize) < 2));
    }

    #[test]
    #[should_panic(expected = "expected unary report")]
    fn encode_features_rejects_shape_mismatch() {
        let r = MultidimReport {
            values: vec![Report::Value(1), Report::Value(0)],
            sampled: 0,
        };
        encode_features(&[&r], &[3, 3], true);
    }
}
