//! Multi-collection profiling math and profile construction (§3.2.2–3.2.3).
//!
//! Over multiple surveys the adversary accumulates a per-user profile of
//! (attribute, predicted value) pairs. The expected probability of profiling
//! a user *completely correctly* after `#surveys = d` collections is
//!
//! * Eq. (4), uniform privacy metric (sampling without replacement):
//!   `ACC_U = Π_j ACC_FO(ε, k_j)`;
//! * Eq. (5), non-uniform metric (with replacement + memoization):
//!   `ACC_NU = Π_j ((d+1−j)/d) · ACC_FO(ε, k_j)`.

/// A per-user inferred profile: predicted value per observed attribute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// (attribute id, predicted value), at most one entry per attribute.
    entries: Vec<(usize, u32)>,
}

impl Profile {
    /// Empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Records a prediction for `attr`, overwriting any previous prediction
    /// for the same attribute (repeated attributes re-send memoized reports,
    /// so predictions coincide in the non-uniform setting anyway).
    pub fn observe(&mut self, attr: usize, predicted: u32) {
        if let Some(e) = self.entries.iter_mut().find(|(a, _)| *a == attr) {
            e.1 = predicted;
        } else {
            self.entries.push((attr, predicted));
        }
    }

    /// The accumulated (attribute, prediction) pairs.
    pub fn entries(&self) -> &[(usize, u32)] {
        &self.entries
    }

    /// Number of distinct attributes profiled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fraction of entries matching the user's true record (diagnostics).
    pub fn correctness(&self, record: &[u32]) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let hits = self
            .entries
            .iter()
            .filter(|&&(a, v)| record.get(a) == Some(&v))
            .count();
        hits as f64 / self.entries.len() as f64
    }
}

/// Eq. (4): expected probability of a fully correct `d`-attribute profile
/// under the uniform privacy metric, given per-survey single-report attack
/// accuracies.
pub fn expected_acc_uniform(per_survey_acc: &[f64]) -> f64 {
    per_survey_acc.iter().product()
}

/// Eq. (5): expected probability of a fully correct profile under the
/// non-uniform metric (with-replacement sampling), where survey `j`
/// (1-based) contributes a fresh attribute only with probability
/// `(d + 1 − j)/d`.
pub fn expected_acc_nonuniform(per_survey_acc: &[f64]) -> f64 {
    let d = per_survey_acc.len() as f64;
    per_survey_acc
        .iter()
        .enumerate()
        .map(|(idx, &acc)| (d - idx as f64) / d * acc)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_observe_overwrites_same_attribute() {
        let mut p = Profile::new();
        p.observe(2, 5);
        p.observe(0, 1);
        p.observe(2, 7);
        assert_eq!(p.len(), 2);
        assert_eq!(p.entries(), &[(2, 7), (0, 1)]);
    }

    #[test]
    fn correctness_counts_matches() {
        let mut p = Profile::new();
        p.observe(0, 1);
        p.observe(1, 9);
        assert_eq!(p.correctness(&[1, 2, 3]), 0.5);
        assert_eq!(Profile::new().correctness(&[1]), 0.0);
    }

    #[test]
    fn eq4_is_plain_product() {
        let acc = [0.9, 0.5, 0.8];
        assert!((expected_acc_uniform(&acc) - 0.36).abs() < 1e-12);
    }

    #[test]
    fn eq5_discounts_by_fresh_attribute_probability() {
        // d = 3: factors 3/3, 2/3, 1/3 → product of accs × 6/27 = d!/d^d.
        let acc = [1.0, 1.0, 1.0];
        let expect = 6.0 / 27.0;
        assert!((expected_acc_nonuniform(&acc) - expect).abs() < 1e-12);
    }

    #[test]
    fn nonuniform_never_exceeds_uniform() {
        let acc = [0.7, 0.6, 0.9, 0.4];
        assert!(expected_acc_nonuniform(&acc) <= expected_acc_uniform(&acc));
    }
}
