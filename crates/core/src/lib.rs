//! # ldp-core
//!
//! The primary contribution of *"On the Risks of Collecting Multidimensional
//! Data Under Local Differential Privacy"* (PVLDB 2023): the multidimensional
//! collection solutions, the privacy attacks against them, and the RS+RFD
//! countermeasure.
//!
//! ## Solutions (§2.3, §5)
//!
//! * [`solutions::Spl`] — split the budget ε/d over all attributes.
//! * [`solutions::Smp`] — sample one attribute, spend the whole ε on it and
//!   disclose which attribute was sampled.
//! * [`solutions::RsFd`] — Random Sampling + (uniform) Fake Data, with the
//!   GRR / UE-z / UE-r variants and their unbiased estimators from \[4\].
//! * [`solutions::RsRfd`] — the paper's countermeasure: Random Sampling +
//!   *Realistic* Fake Data drawn from priors, with the new estimators
//!   (Eqs. 6–7) and closed-form variances (Theorems 2 and 4).
//!
//! ## Attacks
//!
//! * [`attacks`] — the unified adversary layer: every attack behind the
//!   object-safe [`attacks::Attack`] trait, runtime-selected through
//!   [`attacks::AttackKind`] / [`attacks::DynAttack`] and reported through
//!   [`attacks::AttackOutcome`] (the adversary mirror of the
//!   `SolutionKind`/`DynSolution`/`SolutionReport` collection surface).
//! * [`profiling`] — multi-collection profiling math (Eqs. 4–5) and profile
//!   construction under uniform / non-uniform privacy metrics.
//! * [`reident`] — the §3.2.4 re-identification attack: inverted-index
//!   matching `R` plus a tie-aware exact top-k decision `G`.
//! * [`inference`] — the §3.3 sampled-attribute inference attack against
//!   RS+FD/RS+RFD with the NK / PK / HM attacker models.
//! * [`pie`] — the relaxed PIE privacy model of Appendix C.

#![deny(missing_docs)]

pub mod amplification;
pub mod attacks;
pub mod inference;
pub mod metrics;
pub mod numeric;
pub mod pie;
pub mod profiling;
pub mod reident;
pub mod solutions;

pub use amplification::amplify;
pub use attacks::{Attack, AttackKind, AttackOutcome, DynAttack, FittedAttack};
pub use numeric::{DynNumeric, NumericKind, NumericOracle, NumericReport};
pub use solutions::{
    DynSolution, Mixed, MixedEntry, MixedKind, MixedReport, MultidimAggregator, MultidimReport,
    MultidimSolution, RsFd, RsFdProtocol, RsRfd, RsRfdProtocol, Smp, SolutionKind, SolutionReport,
    Spl, NUMERIC_DIM,
};
