//! Privacy amplification by sampling for the RS+FD family (§2.3.2).
//!
//! When each user sanitizes only one uniformly sampled attribute out of `d`
//! and hides the choice behind fake data, the sampled attribute may be
//! reported with the amplified budget `ε′ = ln(d · (e^ε − 1) + 1)` while the
//! whole mechanism still satisfies ε-LDP (Li et al., amplification by
//! sampling).

/// Amplified budget `ε′ = ln(d (e^ε − 1) + 1)`.
///
/// # Panics
/// Panics when `d == 0` or `epsilon` is not finite-positive; these are
/// configuration errors.
pub fn amplify(epsilon: f64, d: usize) -> f64 {
    assert!(d >= 1, "need at least one attribute");
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "epsilon must be finite and positive, got {epsilon}"
    );
    (d as f64 * (epsilon.exp() - 1.0) + 1.0).ln()
}

/// Inverse of [`amplify`]: the per-user budget ε that yields `eps_amp` after
/// amplification over `d` attributes.
pub fn deamplify(eps_amp: f64, d: usize) -> f64 {
    assert!(d >= 1, "need at least one attribute");
    ((eps_amp.exp() - 1.0) / d as f64 + 1.0).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_attribute_is_identity() {
        for eps in [0.5, 1.0, 4.0] {
            assert!((amplify(eps, 1) - eps).abs() < 1e-12);
        }
    }

    #[test]
    fn amplification_grows_with_d_and_is_bounded_by_eps_plus_ln_d() {
        let eps = 1.0;
        let mut prev = eps;
        for d in 2..=20 {
            let a = amplify(eps, d);
            assert!(a > prev, "not monotone at d={d}");
            // ε′ ≤ ε + ln d (equality as ε → ∞).
            assert!(a <= eps + (d as f64).ln() + 1e-12);
            prev = a;
        }
    }

    #[test]
    fn matches_paper_example() {
        // d = 3, ε = ln 2 → ε′ = ln(3·1 + 1) = ln 4 = 2 ln 2.
        let a = amplify(2.0f64.ln(), 3);
        assert!((a - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn deamplify_inverts_amplify() {
        for d in [2usize, 5, 10, 18] {
            for eps in [0.3, 1.0, 6.0] {
                let round = deamplify(amplify(eps, d), d);
                assert!((round - eps).abs() < 1e-9, "d={d} eps={eps}: {round}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nonpositive_epsilon() {
        amplify(0.0, 3);
    }
}
