//! Multidimensional collection solutions: SPL, SMP, RS+FD and the RS+RFD
//! countermeasure (§2.3 and §5 of the paper).
//!
//! The layer is streaming-first: every solution hands out a
//! [`MultidimAggregator`] that absorbs sanitized reports one at a time into
//! `O(Σ_j k_j)` support-count state and can be merged across parallel
//! shards, so server-side memory is independent of the population size.
//! Runtime solution selection goes through [`SolutionKind`] /
//! [`DynSolution`], which mirror `ldp_protocols::{ProtocolKind, Oracle}` and
//! erase the client-side `R: Rng` generic behind `&mut dyn RngCore`.

mod aggregator;
mod compact;
mod kind;
mod mixed;
mod rsfd;
mod rsrfd;
mod smp;
mod spl;

pub use aggregator::MultidimAggregator;
pub use compact::{CompactBatch, CompactDecodeError};
pub use kind::{DynSolution, SolutionKind, SolutionReport};
pub use mixed::{Mixed, MixedEntry, MixedKind, MixedReport, NUMERIC_DIM};
pub use rsfd::{RsFd, RsFdProtocol};
pub use rsrfd::{RsRfd, RsRfdProtocol};
pub use smp::{Smp, SmpReport};
pub use spl::Spl;

pub(crate) use aggregator::EstimatorSpec;

use ldp_protocols::{ProtocolError, Report};
use rand::{Rng, RngCore};

/// A full sanitized tuple `y = [y_1, …, y_d]` as produced by the RS+FD /
/// RS+RFD solutions, together with the (server-hidden) sampled attribute used
/// as attack ground truth in the experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct MultidimReport {
    /// One report per attribute (LDP for the sampled one, fake otherwise).
    pub values: Vec<Report>,
    /// Index of the attribute that was actually sanitized. This is the
    /// *secret* the §3.3 inference attack tries to recover; it is carried
    /// here only as experiment ground truth.
    pub sampled: usize,
}

/// Common interface of the fake-data solutions (RS+FD and RS+RFD), used by
/// the sampled-attribute inference attack to generate attacker-side training
/// data with the exact client mechanism, and by the streaming pipeline to
/// drive any solution behind one object boundary.
///
/// The trait is **object-safe**: randomness enters
/// [`MultidimSolution::report_dyn`] through `&mut dyn RngCore`, and the
/// server side is the streaming [`MultidimSolution::aggregator`]. The
/// generic [`MultidimSolution::report`] convenience (gated on `Self: Sized`)
/// keeps concrete call sites ergonomic.
pub trait MultidimSolution {
    /// Number of attributes `d`.
    fn d(&self) -> usize;

    /// Domain sizes `k_j`.
    fn ks(&self) -> &[usize];

    /// User-level privacy budget ε.
    fn epsilon(&self) -> f64;

    /// Amplified budget ε′ applied to the sampled attribute.
    fn epsilon_amplified(&self) -> f64;

    /// Whether per-attribute reports are unary-encoded bit vectors (true) or
    /// plain categorical values (false) — determines the attack's feature
    /// encoding.
    fn is_unary(&self) -> bool;

    /// Client-side sanitization of one user tuple (object-safe entry point).
    fn report_dyn(&self, tuple: &[u32], rng: &mut dyn RngCore) -> MultidimReport;

    /// A fresh streaming server-side aggregator configured with this
    /// solution's unbiased estimator.
    fn aggregator(&self) -> MultidimAggregator;

    /// Client-side sanitization of one user tuple.
    fn report<R: Rng + ?Sized>(&self, tuple: &[u32], rng: &mut R) -> MultidimReport
    where
        Self: Sized,
    {
        let mut rng = rng;
        self.report_dyn(tuple, &mut rng)
    }

    /// Batch server-side unbiased frequency estimates for every attribute:
    /// one streaming pass of [`MultidimSolution::aggregator`] over the
    /// buffered reports (prefer absorbing incrementally at scale).
    fn estimate(&self, reports: &[MultidimReport]) -> Vec<Vec<f64>> {
        let mut agg = self.aggregator();
        for r in reports {
            agg.absorb_tuple(r);
        }
        agg.estimate()
    }

    /// [`MultidimSolution::estimate`] post-processed onto the probability
    /// simplex per attribute.
    fn estimate_normalized(&self, reports: &[MultidimReport]) -> Vec<Vec<f64>> {
        self.estimate(reports)
            .iter()
            .map(|e| ldp_protocols::oracle::normalize_simplex(e))
            .collect()
    }
}

/// Validates the (ks, epsilon) pair shared by all solutions.
pub(crate) fn validate_config(ks: &[usize], epsilon: f64) -> Result<(), ProtocolError> {
    if ks.len() < 2 {
        return Err(ProtocolError::InvalidPrior {
            reason: format!(
                "multidimensional solutions need d >= 2 attributes, got {}",
                ks.len()
            ),
        });
    }
    for &k in ks {
        ldp_protocols::validate_domain(k)?;
    }
    ldp_protocols::validate_epsilon(epsilon)?;
    Ok(())
}

/// Support counts `C_j(v)` per attribute over full-tuple reports: value
/// reports count their value, unary reports count every set bit.
///
/// Out-of-domain entries (a value ≥ k_j, a bit vector of the wrong width, a
/// foreign report shape) trip a `debug_assert` so malformed reports fail
/// loudly in tests; release builds skip them, as before.
///
/// Production estimation streams through [`MultidimAggregator`] instead;
/// this batch helper remains as the tests' reference implementation.
#[cfg(test)]
pub(crate) fn support_counts(reports: &[MultidimReport], ks: &[usize]) -> Vec<Vec<u64>> {
    let mut counts: Vec<Vec<u64>> = ks.iter().map(|&k| vec![0u64; k]).collect();
    for r in reports {
        debug_assert_eq!(r.values.len(), ks.len(), "tuple width mismatch");
        for (j, rep) in r.values.iter().enumerate() {
            aggregator::count_fake_data_entry(&mut counts[j], j, rep);
        }
    }
    counts
}

/// Draws one index from a cumulative distribution by inverse CDF.
pub(crate) fn sample_cdf<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.random();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Precomputes a sampling CDF from a pmf.
///
/// The pmf must sum to ≈ 1 (checked with a `debug_assert`); numerical drift
/// is then compensated by renormalizing the cumulative sums, so sampling
/// always follows the pmf's *relative* masses. The historical behavior of
/// silently forcing the last entry to 1.0 would instead dump all the missing
/// mass of an unnormalized prior onto the final value, skewing fake-data
/// sampling undetected.
pub(crate) fn to_cdf(pmf: &[f64]) -> Vec<f64> {
    let total: f64 = pmf.iter().sum();
    debug_assert!(
        (total - 1.0).abs() < 1e-3,
        "pmf sums to {total}, expected ~1"
    );
    if total <= 0.0 || total.is_nan() {
        // Degenerate input (all-zero / NaN): fall back to uniform sampling.
        let k = pmf.len().max(1) as f64;
        return (1..=pmf.len()).map(|i| i as f64 / k).collect();
    }
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = pmf
        .iter()
        .map(|&p| {
            acc += p;
            acc / total
        })
        .collect();
    if let Some(last) = cdf.last_mut() {
        // Exactly 1 after renormalization, up to one rounding step.
        *last = 1.0;
    }
    cdf
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_protocols::BitVec;

    #[test]
    fn validate_config_rejects_bad_shapes() {
        assert!(validate_config(&[4], 1.0).is_err());
        assert!(validate_config(&[4, 1], 1.0).is_err());
        assert!(validate_config(&[4, 4], -1.0).is_err());
        assert!(validate_config(&[4, 4], 1.0).is_ok());
    }

    #[test]
    fn support_counts_mixes_values_and_bits() {
        let ks = [3usize, 4];
        let mut bits = BitVec::zeros(4);
        bits.set(1, true);
        bits.set(3, true);
        let reports = vec![
            MultidimReport {
                values: vec![Report::Value(2), Report::Bits(bits.clone())],
                sampled: 0,
            },
            MultidimReport {
                values: vec![Report::Value(2), Report::Bits(BitVec::zeros(4))],
                sampled: 1,
            },
        ];
        let counts = support_counts(&reports, &ks);
        assert_eq!(counts[0], vec![0, 0, 2]);
        assert_eq!(counts[1], vec![0, 1, 0, 1]);
    }

    #[test]
    fn sample_cdf_follows_distribution() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cdf = to_cdf(&[0.25, 0.25, 0.5]);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[2] - 1.0).abs() < 1e-15);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[sample_cdf(&cdf, &mut rng)] += 1;
        }
        assert!((counts[0] as f64 / trials as f64 - 0.25).abs() < 0.01);
        assert!((counts[2] as f64 / trials as f64 - 0.5).abs() < 0.01);
        // Zero-probability entries are never drawn.
        let cdf = to_cdf(&[0.0, 1.0]);
        for _ in 0..1000 {
            assert_eq!(sample_cdf(&cdf, &mut rng), 1);
        }
    }

    #[test]
    fn to_cdf_renormalizes_numerical_drift() {
        // Regression: the old implementation forced the last entry to 1.0,
        // so any missing probability mass was silently dumped onto the final
        // value. Renormalization must preserve the relative masses instead.
        let drift = 5e-4; // within the debug_assert tolerance
        let cdf = to_cdf(&[0.25 + drift, 0.25, 0.5]);
        let total = 1.0 + drift;
        assert!((cdf[0] - (0.25 + drift) / total).abs() < 1e-12);
        assert!((cdf[1] - (0.5 + drift) / total).abs() < 1e-12);
        assert_eq!(cdf[2], 1.0);
        // The tail keeps its proportional share rather than absorbing the
        // drift: P(2) = cdf[2] − cdf[1] ≈ 0.5/total, not 0.5 + drift.
        assert!(((cdf[2] - cdf[1]) - 0.5 / total).abs() < 1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pmf sums to")]
    fn to_cdf_rejects_unnormalized_pmf_in_debug() {
        to_cdf(&[0.2, 0.2]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside domain")]
    fn support_counts_rejects_out_of_domain_value_in_debug() {
        let reports = vec![MultidimReport {
            values: vec![Report::Value(7), Report::Value(0)],
            sampled: 0,
        }];
        support_counts(&reports, &[3, 4]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bit-vector width")]
    fn support_counts_rejects_wrong_width_bits_in_debug() {
        let reports = vec![MultidimReport {
            values: vec![Report::Value(0), Report::Bits(BitVec::zeros(3))],
            sampled: 0,
        }];
        support_counts(&reports, &[3, 4]);
    }
}
