//! Multidimensional collection solutions: SPL, SMP, RS+FD and the RS+RFD
//! countermeasure (§2.3 and §5 of the paper).

mod rsfd;
mod rsrfd;
mod smp;
mod spl;

pub use rsfd::{RsFd, RsFdProtocol};
pub use rsrfd::{RsRfd, RsRfdProtocol};
pub use smp::{Smp, SmpReport};
pub use spl::Spl;

use ldp_protocols::{ProtocolError, Report};
use rand::Rng;

/// A full sanitized tuple `y = [y_1, …, y_d]` as produced by the RS+FD /
/// RS+RFD solutions, together with the (server-hidden) sampled attribute used
/// as attack ground truth in the experiments.
#[derive(Debug, Clone)]
pub struct MultidimReport {
    /// One report per attribute (LDP for the sampled one, fake otherwise).
    pub values: Vec<Report>,
    /// Index of the attribute that was actually sanitized. This is the
    /// *secret* the §3.3 inference attack tries to recover; it is carried
    /// here only as experiment ground truth.
    pub sampled: usize,
}

/// Common interface of the fake-data solutions (RS+FD and RS+RFD), used by
/// the sampled-attribute inference attack to generate attacker-side training
/// data with the exact client mechanism.
pub trait MultidimSolution {
    /// Number of attributes `d`.
    fn d(&self) -> usize;

    /// Domain sizes `k_j`.
    fn ks(&self) -> &[usize];

    /// User-level privacy budget ε.
    fn epsilon(&self) -> f64;

    /// Amplified budget ε′ applied to the sampled attribute.
    fn epsilon_amplified(&self) -> f64;

    /// Whether per-attribute reports are unary-encoded bit vectors (true) or
    /// plain categorical values (false) — determines the attack's feature
    /// encoding.
    fn is_unary(&self) -> bool;

    /// Client-side sanitization of one user tuple.
    fn report<R: Rng + ?Sized>(&self, tuple: &[u32], rng: &mut R) -> MultidimReport;

    /// Server-side unbiased frequency estimates for every attribute.
    fn estimate(&self, reports: &[MultidimReport]) -> Vec<Vec<f64>>;

    /// [`MultidimSolution::estimate`] post-processed onto the probability
    /// simplex per attribute.
    fn estimate_normalized(&self, reports: &[MultidimReport]) -> Vec<Vec<f64>> {
        self.estimate(reports)
            .iter()
            .map(|e| ldp_protocols::oracle::normalize_simplex(e))
            .collect()
    }
}

/// Validates the (ks, epsilon) pair shared by all solutions.
pub(crate) fn validate_config(ks: &[usize], epsilon: f64) -> Result<(), ProtocolError> {
    if ks.len() < 2 {
        return Err(ProtocolError::InvalidPrior {
            reason: format!("multidimensional solutions need d >= 2 attributes, got {}", ks.len()),
        });
    }
    for &k in ks {
        ldp_protocols::validate_domain(k)?;
    }
    ldp_protocols::validate_epsilon(epsilon)?;
    Ok(())
}

/// Support counts `C_j(v)` per attribute over full-tuple reports: value
/// reports count their value, unary reports count every set bit.
pub(crate) fn support_counts(reports: &[MultidimReport], ks: &[usize]) -> Vec<Vec<u64>> {
    let mut counts: Vec<Vec<u64>> = ks.iter().map(|&k| vec![0u64; k]).collect();
    for r in reports {
        debug_assert_eq!(r.values.len(), ks.len(), "tuple width mismatch");
        for (j, rep) in r.values.iter().enumerate() {
            match rep {
                Report::Value(v) => {
                    if let Some(c) = counts[j].get_mut(*v as usize) {
                        *c += 1;
                    }
                }
                Report::Bits(bits) => {
                    for b in bits.ones() {
                        if let Some(c) = counts[j].get_mut(b) {
                            *c += 1;
                        }
                    }
                }
                // RS+FD tuples never carry hashed/subset entries.
                _ => {}
            }
        }
    }
    counts
}

/// Draws one index from a cumulative distribution by inverse CDF.
pub(crate) fn sample_cdf<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.random();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Precomputes a sampling CDF from a pmf (last entry forced to 1).
pub(crate) fn to_cdf(pmf: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = pmf
        .iter()
        .map(|&p| {
            acc += p;
            acc
        })
        .collect();
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_protocols::BitVec;

    #[test]
    fn validate_config_rejects_bad_shapes() {
        assert!(validate_config(&[4], 1.0).is_err());
        assert!(validate_config(&[4, 1], 1.0).is_err());
        assert!(validate_config(&[4, 4], -1.0).is_err());
        assert!(validate_config(&[4, 4], 1.0).is_ok());
    }

    #[test]
    fn support_counts_mixes_values_and_bits() {
        let ks = [3usize, 4];
        let mut bits = BitVec::zeros(4);
        bits.set(1, true);
        bits.set(3, true);
        let reports = vec![
            MultidimReport {
                values: vec![Report::Value(2), Report::Bits(bits.clone())],
                sampled: 0,
            },
            MultidimReport {
                values: vec![Report::Value(2), Report::Bits(BitVec::zeros(4))],
                sampled: 1,
            },
        ];
        let counts = support_counts(&reports, &ks);
        assert_eq!(counts[0], vec![0, 0, 2]);
        assert_eq!(counts[1], vec![0, 1, 0, 1]);
    }

    #[test]
    fn sample_cdf_follows_distribution() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cdf = to_cdf(&[0.25, 0.25, 0.5]);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[2] - 1.0).abs() < 1e-15);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[sample_cdf(&cdf, &mut rng)] += 1;
        }
        assert!((counts[0] as f64 / trials as f64 - 0.25).abs() < 0.01);
        assert!((counts[2] as f64 / trials as f64 - 0.5).abs() < 0.01);
        // Zero-probability entries are never drawn.
        let cdf = to_cdf(&[0.0, 1.0]);
        for _ in 0..1000 {
            assert_eq!(sample_cdf(&cdf, &mut rng), 1);
        }
    }
}
