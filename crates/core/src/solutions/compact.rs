//! A compact, reusable wire encoding for batches of [`SolutionReport`]s.
//!
//! The ingestion hot path moves millions of reports per second across
//! channels. The natural representation — `Vec<Envelope>` with every
//! `Report::Subset(Vec<u32>)`, `Report::Bits(BitVec)` and
//! `SolutionReport::Full(Vec<Report>)` owning its own heap block — makes a
//! steady-state report cost several allocations that are freed on a
//! *different* thread (allocator churn). [`CompactBatch`] instead flattens a
//! whole batch into two growable buffers (`uids`, `words`) that are
//! **reused**: the serving layer recycles drained batches back to the
//! producers through a pool, so steady-state ingestion crosses the channel
//! without any fresh heap allocation.
//!
//! The aggregation side never rematerializes reports: the cursor-based
//! [`count_entry`] counts support directly from the encoded words (see
//! [`MultidimAggregator::absorb_compact`]), dispatching on the oracle once
//! per report. Decoding ([`CompactBatch::iter`]) exists for round-trip tests
//! and diagnostics.
//!
//! ## Wire format (per report, in 64-bit words)
//!
//! ```text
//! solution header: kind(2 bits) | a(bits 2..33) | b(bits 33..64)
//!     kind 0 = Full  (a = d)           → d entries follow
//!     kind 1 = Smp   (a = attr)        → 1 entry follows
//!     kind 2 = Tuple (a = d, b = sampled) → d entries follow
//!     kind 3 = Mixed (a = entries)     → a dimension-tagged entries follow
//! entry header:   tag(2 bits) | payload(bits 2..)
//!     tag 0 = Value  (payload = v)     → no extra words
//!     tag 1 = Hashed                   → words: seed, g | value << 32
//!     tag 2 = Subset (payload = len)   → ⌈len/2⌉ words, two u32 each
//!     tag 3 = Bits   (payload = nbits) → ⌈nbits/64⌉ BitVec blocks, verbatim
//! mixed entry:    subtag(2 bits) | dim(bits 2..), then:
//!     subtag 0 = categorical           → one standard entry follows
//!     subtag 1 = numeric               → one word: fixed-point i64 as u64
//!     subtags 2/3 are invalid (BadSolutionKind)
//! ```
//!
//! [`MultidimAggregator::absorb_compact`]: super::MultidimAggregator::absorb_compact

use ldp_protocols::{BitVec, FrequencyOracle, Oracle, Report};

use crate::numeric::{NumericOracle, NumericReport, NUMERIC_SCALE};

use super::kind::{DynSolution, SolutionKind};
use super::mixed::{MixedEntry, MixedReport, NUMERIC_DIM};
use super::smp::SmpReport;
use super::{MultidimReport, SolutionReport};

const KIND_FULL: u64 = 0;
const KIND_SMP: u64 = 1;
const KIND_TUPLE: u64 = 2;
const KIND_MIXED: u64 = 3;

const SUBTAG_CAT: u64 = 0;
const SUBTAG_NUM: u64 = 1;

const TAG_VALUE: u64 = 0;
const TAG_HASHED: u64 = 1;
const TAG_SUBSET: u64 = 2;
const TAG_BITS: u64 = 3;

/// A batch of `(uid, SolutionReport)` pairs flattened into two reusable
/// buffers. Build with [`CompactBatch::push`], hand it across a channel,
/// absorb it with
/// [`MultidimAggregator::absorb_compact`](super::MultidimAggregator::absorb_compact),
/// then [`CompactBatch::clear`] and reuse — steady state allocates nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactBatch {
    uids: Vec<u64>,
    words: Vec<u64>,
}

/// Why a byte buffer failed to decode as a [`CompactBatch`] — the typed
/// rejection surface of [`CompactBatch::decode_from`] and
/// [`CompactBatch::validate_for`]. Untrusted (network) input is funneled
/// through these two checks before any panicky fast path
/// ([`CompactBatch::iter`], `absorb_compact`) ever touches the words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactDecodeError {
    /// Fewer bytes than the fixed 16-byte batch header.
    Truncated,
    /// Total byte length inconsistent with the header's uid/word counts.
    LengthMismatch {
        /// Byte length implied by the header counts.
        expected: usize,
        /// Byte length actually supplied.
        got: usize,
    },
    /// The encoded words end in the middle of a report.
    TruncatedWords,
    /// Words left over after the last report's entries.
    TrailingWords,
    /// A solution header carries an unknown kind bit pattern.
    BadSolutionKind(u64),
    /// A bit-vector entry has a padding bit set past its declared width.
    DirtyBitPadding,
    /// Structurally sound, but the report shape or a value is out of domain
    /// for the target solution (see [`CompactBatch::validate_for`]).
    Domain(String),
}

impl std::fmt::Display for CompactDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactDecodeError::Truncated => write!(f, "batch shorter than its 16-byte header"),
            CompactDecodeError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "batch length {got} B does not match header ({expected} B)"
                )
            }
            CompactDecodeError::TruncatedWords => write!(f, "encoded words end mid-report"),
            CompactDecodeError::TrailingWords => write!(f, "trailing words after the last report"),
            CompactDecodeError::BadSolutionKind(kind) => {
                write!(f, "unknown solution header kind {kind}")
            }
            CompactDecodeError::DirtyBitPadding => {
                write!(f, "bit-vector entry with padding bits set past its width")
            }
            CompactDecodeError::Domain(reason) => write!(f, "out-of-domain report: {reason}"),
        }
    }
}

impl std::error::Error for CompactDecodeError {}

impl CompactBatch {
    /// An empty batch.
    pub fn new() -> Self {
        CompactBatch::default()
    }

    /// Number of encoded reports.
    pub fn len(&self) -> usize {
        self.uids.len()
    }

    /// True when no report is encoded.
    pub fn is_empty(&self) -> bool {
        self.uids.is_empty()
    }

    /// Empties the batch, keeping both buffers' capacity for reuse.
    pub fn clear(&mut self) {
        self.uids.clear();
        self.words.clear();
    }

    /// Appends one report. Amortized allocation-free once the buffers have
    /// grown to the batch's steady-state size.
    pub fn push(&mut self, uid: u64, report: &SolutionReport) {
        self.uids.push(uid);
        match report {
            SolutionReport::Full(reports) => {
                self.words.push(KIND_FULL | ((reports.len() as u64) << 2));
                for rep in reports {
                    self.push_entry(rep);
                }
            }
            SolutionReport::Smp(SmpReport { attr, report }) => {
                self.words.push(KIND_SMP | ((*attr as u64) << 2));
                self.push_entry(report);
            }
            SolutionReport::Tuple(MultidimReport { values, sampled }) => {
                self.words
                    .push(KIND_TUPLE | ((values.len() as u64) << 2) | ((*sampled as u64) << 33));
                for rep in values {
                    self.push_entry(rep);
                }
            }
            SolutionReport::Mixed(MixedReport { entries }) => {
                self.words.push(KIND_MIXED | ((entries.len() as u64) << 2));
                for (j, entry) in entries {
                    match entry {
                        MixedEntry::Cat(rep) => {
                            self.words.push(SUBTAG_CAT | ((*j as u64) << 2));
                            self.push_entry(rep);
                        }
                        MixedEntry::Num(y) => {
                            self.words.push(SUBTAG_NUM | ((*j as u64) << 2));
                            self.words.push(y.raw() as u64);
                        }
                    }
                }
            }
        }
    }

    fn push_entry(&mut self, report: &Report) {
        match report {
            Report::Value(v) => self.words.push(TAG_VALUE | (u64::from(*v) << 2)),
            Report::Hashed { seed, g, value } => {
                self.words.push(TAG_HASHED);
                self.words.push(*seed);
                self.words.push(u64::from(*g) | (u64::from(*value) << 32));
            }
            Report::Subset(subset) => {
                self.words.push(TAG_SUBSET | ((subset.len() as u64) << 2));
                for pair in subset.chunks(2) {
                    let hi = pair.get(1).copied().unwrap_or(0);
                    self.words.push(u64::from(pair[0]) | (u64::from(hi) << 32));
                }
            }
            Report::Bits(bits) => {
                self.words.push(TAG_BITS | ((bits.len() as u64) << 2));
                self.words.extend_from_slice(bits.blocks());
            }
        }
    }

    /// Decodes every `(uid, report)` pair, materializing owned reports — the
    /// round-trip inverse of [`CompactBatch::push`], for tests and
    /// diagnostics (the aggregation path counts from the encoded words
    /// directly and never calls this).
    pub fn iter(&self) -> impl Iterator<Item = (u64, SolutionReport)> + '_ {
        let mut cursor = Cursor {
            words: &self.words,
            pos: 0,
        };
        self.uids.iter().map(move |&uid| {
            let header = cursor.next();
            let kind = header & 0b11;
            let a = ((header >> 2) & 0x7FFF_FFFF) as usize;
            let b = (header >> 33) as usize;
            let report = match kind {
                KIND_FULL => SolutionReport::Full((0..a).map(|_| cursor.decode_entry()).collect()),
                KIND_SMP => SolutionReport::Smp(SmpReport {
                    attr: a,
                    report: cursor.decode_entry(),
                }),
                KIND_TUPLE => SolutionReport::Tuple(MultidimReport {
                    values: (0..a).map(|_| cursor.decode_entry()).collect(),
                    sampled: b,
                }),
                KIND_MIXED => SolutionReport::Mixed(MixedReport {
                    entries: (0..a)
                        .map(|_| {
                            let dim_word = cursor.next();
                            let j = (dim_word >> 2) as usize;
                            match dim_word & 0b11 {
                                SUBTAG_CAT => (j, MixedEntry::Cat(cursor.decode_entry())),
                                SUBTAG_NUM => (
                                    j,
                                    MixedEntry::Num(NumericReport::from_raw(cursor.next() as i64)),
                                ),
                                other => unreachable!("corrupt mixed subtag {other}"),
                            }
                        })
                        .collect(),
                }),
                other => unreachable!("corrupt solution header kind {other}"),
            };
            (uid, report)
        })
    }

    /// The encoded solution headers + entries, for the crate-internal
    /// counting walk.
    pub(crate) fn cursor(&self) -> Cursor<'_> {
        Cursor {
            words: &self.words,
            pos: 0,
        }
    }

    /// Exact byte length of [`CompactBatch::encode_into`]'s output: a
    /// 16-byte count header plus the two word buffers verbatim.
    pub fn encoded_len(&self) -> usize {
        16 + 8 * (self.uids.len() + self.words.len())
    }

    /// Appends the batch's byte encoding to `out`: `uids.len()` and
    /// `words.len()` as little-endian `u64`, then both buffers verbatim
    /// (little-endian words). Exactly [`CompactBatch::encoded_len`] bytes;
    /// the inverse of [`CompactBatch::decode_from`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.extend_from_slice(&(self.uids.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u64).to_le_bytes());
        for &uid in &self.uids {
            out.extend_from_slice(&uid.to_le_bytes());
        }
        for &word in &self.words {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }

    /// Decodes an [`CompactBatch::encode_into`] buffer, rejecting anything
    /// malformed with a typed error instead of panicking: the byte length
    /// must match the header counts exactly, and the words must pass a full
    /// structural walk (report headers well-kinded, every entry's payload
    /// words present, no trailing garbage, bit-vector padding clean). A
    /// decoded batch is therefore always safe to hand to the panicky fast
    /// paths ([`CompactBatch::iter`], `absorb_compact`) — though untrusted
    /// input should additionally pass [`CompactBatch::validate_for`] before
    /// being aggregated.
    pub fn decode_from(bytes: &[u8]) -> Result<CompactBatch, CompactDecodeError> {
        if bytes.len() < 16 {
            return Err(CompactDecodeError::Truncated);
        }
        let n_uids = u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte slice"));
        let n_words = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        // Bound the counts by the buffer itself before the usize multiply
        // below — a forged header must not trigger overflow or a giant
        // allocation.
        let avail_words = ((bytes.len() - 16) / 8) as u64;
        if n_uids > avail_words || n_words > avail_words {
            return Err(CompactDecodeError::LengthMismatch {
                expected: 16usize.saturating_add(
                    8usize
                        .saturating_mul(n_uids.saturating_add(n_words).min(u64::MAX / 8) as usize),
                ),
                got: bytes.len(),
            });
        }
        let (n_uids, n_words) = (n_uids as usize, n_words as usize);
        let expected = 16 + 8 * (n_uids + n_words);
        if bytes.len() != expected {
            return Err(CompactDecodeError::LengthMismatch {
                expected,
                got: bytes.len(),
            });
        }
        let word_at = |i: usize| {
            u64::from_le_bytes(
                bytes[16 + 8 * i..24 + 8 * i]
                    .try_into()
                    .expect("8-byte slice"),
            )
        };
        let uids: Vec<u64> = (0..n_uids).map(word_at).collect();
        let words: Vec<u64> = (n_uids..n_uids + n_words).map(word_at).collect();
        walk_words(&words, n_uids, None)?;
        Ok(CompactBatch { uids, words })
    }

    /// Checks every encoded report against the target solution's shape and
    /// domains: the report kind must match the solution family (SPL ⇒ full,
    /// SMP ⇒ sampled, RS+FD/RS+RFD ⇒ tuple), entry counts must equal `d`,
    /// sampled-attribute indexes must be `< d`, and every entry must fit its
    /// attribute's domain (`Value < k_j`, subset members `< k_j`, bit-vector
    /// width `== k_j`, hashed reports with `value < g`). This is the gate
    /// that keeps a malformed network batch from ever reaching an
    /// aggregator shard, whose counting path only debug-asserts.
    pub fn validate_for(&self, kind: SolutionKind, ks: &[usize]) -> Result<(), CompactDecodeError> {
        walk_words(&self.words, self.uids.len(), Some((kind, ks)))
    }

    /// [`CompactBatch::validate_for`] plus the solution-instance checks only
    /// a built solution can supply. For mixed solutions this bounds every
    /// numeric entry's magnitude by the mechanism's output bound (Duchi/PM/HM
    /// reports all lie in `[-C, C]`), so a forged fixed-point payload cannot
    /// drag a mean estimate arbitrarily far — the numeric analogue of the
    /// categorical `Value < k_j` domain rule.
    pub fn validate_for_solution(&self, solution: &DynSolution) -> Result<(), CompactDecodeError> {
        self.validate_for(solution.kind(), solution.ks())?;
        let DynSolution::Mixed(mixed) = solution else {
            return Ok(());
        };
        // One rounding step of slack: a legitimate boundary report quantizes
        // to at most round(C · 2^40). Held as u64 so the comparison below
        // never needs i64::abs, which i64::MIN (a forgeable wire value)
        // would overflow; the `as u64` cast saturates if C is enormous.
        let bound_raw = ((mixed.numeric_oracle().bound() * NUMERIC_SCALE as f64).round() as u64)
            .saturating_add(1);
        let mut cursor = self.cursor();
        while !cursor.done() {
            // Structure already validated above: every header is kind 3 with
            // `a` well-formed dimension-tagged entries.
            let (_, a, _) = cursor.solution_header();
            for _ in 0..a {
                let dim_word = cursor.next();
                let j = (dim_word >> 2) as usize;
                if dim_word & 0b11 == SUBTAG_NUM {
                    let raw = cursor.next() as i64;
                    if raw.unsigned_abs() > bound_raw {
                        return Err(CompactDecodeError::Domain(format!(
                            "dim {j}: numeric report {raw} exceeds the mechanism bound \
                             {bound_raw}"
                        )));
                    }
                } else {
                    cursor.skip_entry();
                }
            }
        }
        Ok(())
    }
}

/// Shared structural (and optionally domain) validation walk over a batch's
/// encoded words: `n_reports` well-formed reports, nothing more, nothing
/// less. With `check = Some((kind, ks))` it additionally enforces the
/// solution-shape and domain rules of [`CompactBatch::validate_for`].
fn walk_words(
    words: &[u64],
    n_reports: usize,
    check: Option<(SolutionKind, &[usize])>,
) -> Result<(), CompactDecodeError> {
    let mut pos = 0usize;
    for _ in 0..n_reports {
        let header = *words.get(pos).ok_or(CompactDecodeError::TruncatedWords)?;
        pos += 1;
        let kind = header & 0b11;
        let a = ((header >> 2) & 0x7FFF_FFFF) as usize;
        let b = (header >> 33) as usize;
        let entries = match kind {
            KIND_FULL | KIND_TUPLE | KIND_MIXED => a,
            KIND_SMP => 1,
            other => return Err(CompactDecodeError::BadSolutionKind(other)),
        };
        if let Some((solution, ks)) = check {
            let d = ks.len();
            match (solution, kind) {
                (SolutionKind::Spl(_), KIND_FULL) if a == d => {}
                (SolutionKind::Smp(_), KIND_SMP) if a < d => {}
                (SolutionKind::RsFd(_) | SolutionKind::RsRfd(_), KIND_TUPLE) if a == d && b < d => {
                }
                (SolutionKind::Mixed(m), KIND_MIXED) if a == m.sample_k && a <= d && b == 0 => {}
                _ => {
                    return Err(CompactDecodeError::Domain(format!(
                        "report header (kind {kind}, a {a}, b {b}) does not fit {} over d = {d}",
                        solution.name()
                    )))
                }
            }
        }
        if kind == KIND_MIXED {
            // Dimension-tagged entries: each is a dim word (subtag | j << 2)
            // followed by a standard categorical entry or one numeric word.
            let mut prev_dim: Option<usize> = None;
            for _ in 0..entries {
                let dim_word = *words.get(pos).ok_or(CompactDecodeError::TruncatedWords)?;
                pos += 1;
                let subtag = dim_word & 0b11;
                let j = (dim_word >> 2) as usize;
                if let Some((_, ks)) = check {
                    if j >= ks.len() {
                        return Err(CompactDecodeError::Domain(format!(
                            "mixed entry dimension {j} outside d = {}",
                            ks.len()
                        )));
                    }
                    if prev_dim.is_some_and(|p| j <= p) {
                        return Err(CompactDecodeError::Domain(format!(
                            "mixed entry dimensions must be strictly ascending, got {j} after \
                             {prev_dim:?}"
                        )));
                    }
                    prev_dim = Some(j);
                    let is_numeric = ks[j] == NUMERIC_DIM;
                    if (subtag == SUBTAG_NUM) != is_numeric {
                        return Err(CompactDecodeError::Domain(format!(
                            "mixed entry subtag {subtag} does not match dimension {j} \
                             (k_j = {})",
                            ks[j]
                        )));
                    }
                }
                match subtag {
                    SUBTAG_CAT => {
                        pos = walk_entry(words, pos, check.map(|(s, ks)| (s, ks[j], j)))?;
                    }
                    SUBTAG_NUM => {
                        if pos >= words.len() {
                            return Err(CompactDecodeError::TruncatedWords);
                        }
                        pos += 1;
                    }
                    other => return Err(CompactDecodeError::BadSolutionKind(other)),
                }
            }
            continue;
        }
        for entry in 0..entries {
            // The attribute this entry estimates for: position for
            // full/tuple reports, the disclosed sampled index for SMP.
            let j = if kind == KIND_SMP { a } else { entry };
            pos = walk_entry(words, pos, check.map(|(solution, ks)| (solution, ks[j], j)))?;
        }
    }
    if pos == words.len() {
        Ok(())
    } else {
        Err(CompactDecodeError::TrailingWords)
    }
}

/// Validates one encoded entry starting at `words[pos]`, returning the
/// position just past it. `check = Some((solution, k, j))` adds the domain
/// rules for attribute `j` of size `k`.
fn walk_entry(
    words: &[u64],
    mut pos: usize,
    check: Option<(SolutionKind, usize, usize)>,
) -> Result<usize, CompactDecodeError> {
    let header = *words.get(pos).ok_or(CompactDecodeError::TruncatedWords)?;
    pos += 1;
    let payload = header >> 2;
    let tag = header & 0b11;
    match tag {
        TAG_VALUE => {
            if let Some((_, k, j)) = check {
                if payload >= k as u64 {
                    return Err(CompactDecodeError::Domain(format!(
                        "attr {j}: value {payload} outside domain of size {k}"
                    )));
                }
            }
        }
        TAG_HASHED => {
            // seed + packed(g | value << 32).
            let packed = *words
                .get(pos + 1)
                .ok_or(CompactDecodeError::TruncatedWords)?;
            pos += 2;
            if let Some((solution, _, j)) = check {
                let tuple_entry =
                    matches!(solution, SolutionKind::RsFd(_) | SolutionKind::RsRfd(_));
                let (g, value) = (packed as u32, (packed >> 32) as u32);
                if tuple_entry {
                    return Err(CompactDecodeError::Domain(format!(
                        "attr {j}: hashed entry inside a fake-data tuple"
                    )));
                }
                if g < 2 || value >= g {
                    return Err(CompactDecodeError::Domain(format!(
                        "attr {j}: hashed report value {value} outside hash range g = {g}"
                    )));
                }
            }
        }
        TAG_SUBSET => {
            let len = payload as usize;
            let packed_words = len.div_ceil(2);
            if packed_words > words.len() - pos {
                return Err(CompactDecodeError::TruncatedWords);
            }
            if let Some((solution, k, j)) = check {
                if matches!(solution, SolutionKind::RsFd(_) | SolutionKind::RsRfd(_)) {
                    return Err(CompactDecodeError::Domain(format!(
                        "attr {j}: subset entry inside a fake-data tuple"
                    )));
                }
                for i in 0..len {
                    let packed = words[pos + i / 2];
                    let member = if i % 2 == 0 {
                        packed as u32
                    } else {
                        (packed >> 32) as u32
                    };
                    if member as usize >= k {
                        return Err(CompactDecodeError::Domain(format!(
                            "attr {j}: subset member {member} outside domain of size {k}"
                        )));
                    }
                }
            }
            pos += packed_words;
        }
        TAG_BITS => {
            let nbits = payload as usize;
            let blocks = nbits.div_ceil(64);
            if blocks > words.len() - pos {
                return Err(CompactDecodeError::TruncatedWords);
            }
            // Dirty padding would trip `BitVec::from_blocks`' debug assert
            // on the decode path — reject it structurally.
            if !nbits.is_multiple_of(64)
                && blocks > 0
                && words[pos + blocks - 1] >> (nbits % 64) != 0
            {
                return Err(CompactDecodeError::DirtyBitPadding);
            }
            if let Some((_, k, j)) = check {
                if nbits != k {
                    return Err(CompactDecodeError::Domain(format!(
                        "attr {j}: bit-vector width {nbits} does not match domain size {k}"
                    )));
                }
            }
            pos += blocks;
        }
        _ => unreachable!("2-bit tag"),
    }
    Ok(pos)
}

/// Sequential reader over a batch's encoded words.
pub(crate) struct Cursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn done(&self) -> bool {
        self.pos >= self.words.len()
    }

    pub(crate) fn next(&mut self) -> u64 {
        let w = self.words[self.pos];
        self.pos += 1;
        w
    }

    /// Advances past one standard entry without materializing it.
    fn skip_entry(&mut self) {
        let header = self.next();
        let payload = header >> 2;
        match header & 0b11 {
            TAG_VALUE => {}
            TAG_HASHED => self.pos += 2,
            TAG_SUBSET => self.pos += (payload as usize).div_ceil(2),
            TAG_BITS => self.pos += (payload as usize).div_ceil(64),
            other => unreachable!("corrupt entry tag {other}"),
        }
    }

    /// Reads a solution header, returning `(kind, a, b)` per the wire format.
    pub(crate) fn solution_header(&mut self) -> (u64, usize, usize) {
        let header = self.next();
        (
            header & 0b11,
            ((header >> 2) & 0x7FFF_FFFF) as usize,
            (header >> 33) as usize,
        )
    }

    fn decode_entry(&mut self) -> Report {
        let header = self.next();
        let payload = header >> 2;
        match header & 0b11 {
            TAG_VALUE => Report::Value(payload as u32),
            TAG_HASHED => {
                let seed = self.next();
                let packed = self.next();
                Report::Hashed {
                    seed,
                    g: packed as u32,
                    value: (packed >> 32) as u32,
                }
            }
            TAG_SUBSET => {
                let len = payload as usize;
                let mut subset = Vec::with_capacity(len);
                for i in 0..len.div_ceil(2) {
                    let packed = self.next();
                    subset.push(packed as u32);
                    if 2 * i + 1 < len {
                        subset.push((packed >> 32) as u32);
                    }
                }
                Report::Subset(subset)
            }
            TAG_BITS => {
                let nbits = payload as usize;
                let blocks = self.words[self.pos..self.pos + nbits.div_ceil(64)].to_vec();
                self.pos += blocks.len();
                Report::Bits(BitVec::from_blocks(blocks, nbits))
            }
            other => unreachable!("corrupt entry tag {other}"),
        }
    }
}

/// Counts one encoded entry's support into `counts`, advancing the cursor —
/// the encoded twin of `ldp_protocols::oracle::count_support` (with an
/// oracle, for SPL/SMP entries) and of
/// [`count_fake_data_entry`](super::aggregator::count_fake_data_entry)
/// (`oracle = None`, for fake-data tuple entries, which never carry
/// hashed/subset shapes). Identical counting semantics, including the
/// debug-assert rejection of out-of-domain entries and the release-mode
/// skip of stray ones.
pub(crate) fn count_entry(counts: &mut [u64], oracle: Option<&Oracle>, j: usize, cur: &mut Cursor) {
    let header = cur.next();
    let payload = header >> 2;
    match header & 0b11 {
        TAG_VALUE => {
            debug_assert!(
                (payload as usize) < counts.len(),
                "attr {j}: report value {payload} outside domain of size {}",
                counts.len()
            );
            if let Some(c) = counts.get_mut(payload as usize) {
                *c += 1;
            }
        }
        TAG_HASHED => {
            let seed = cur.next();
            let packed = cur.next();
            let report = Report::Hashed {
                seed,
                g: packed as u32,
                value: (packed >> 32) as u32,
            };
            match oracle {
                // Per-report dispatch into the oracle's tightest domain
                // sweep (monomorphized for OLH).
                Some(oracle) => oracle.count_hashed(counts, &report),
                None => debug_assert!(false, "attr {j}: unexpected hashed entry in a tuple"),
            }
        }
        TAG_SUBSET => {
            let len = payload as usize;
            if oracle.is_none() {
                // Mirrors `count_fake_data_entry`: a tuple entry of this
                // shape is malformed — reject loudly in tests, skip the
                // words without counting in release.
                debug_assert!(false, "attr {j}: unexpected subset entry in a tuple");
                cur.pos += len.div_ceil(2);
                return;
            }
            for i in 0..len.div_ceil(2) {
                let packed = cur.next();
                let lo = packed as u32;
                let hi = (packed >> 32) as u32;
                debug_assert!(
                    (lo as usize) < counts.len(),
                    "attr {j}: subset entry {lo} outside domain of size {}",
                    counts.len()
                );
                if let Some(c) = counts.get_mut(lo as usize) {
                    *c += 1;
                }
                if 2 * i + 1 < len {
                    debug_assert!(
                        (hi as usize) < counts.len(),
                        "attr {j}: subset entry {hi} outside domain of size {}",
                        counts.len()
                    );
                    if let Some(c) = counts.get_mut(hi as usize) {
                        *c += 1;
                    }
                }
            }
        }
        TAG_BITS => {
            let nbits = payload as usize;
            debug_assert_eq!(
                nbits,
                counts.len(),
                "attr {j}: bit-vector width does not match the domain"
            );
            for block_idx in 0..nbits.div_ceil(64) {
                let mut block = cur.next();
                while block != 0 {
                    let idx = block_idx * 64 + block.trailing_zeros() as usize;
                    block &= block - 1;
                    if let Some(c) = counts.get_mut(idx) {
                        *c += 1;
                    }
                }
            }
        }
        other => unreachable!("corrupt entry tag {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{RsFdProtocol, RsRfdProtocol, SolutionKind};
    use super::*;
    use ldp_protocols::ProtocolKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_kinds() -> Vec<SolutionKind> {
        let mut kinds = Vec::new();
        for p in ProtocolKind::ALL {
            kinds.push(SolutionKind::Spl(p));
            kinds.push(SolutionKind::Smp(p));
        }
        for p in RsFdProtocol::ALL {
            kinds.push(SolutionKind::RsFd(p));
        }
        kinds.push(SolutionKind::RsRfd(RsRfdProtocol::Grr));
        kinds
    }

    #[test]
    fn roundtrips_every_report_shape() {
        let ks = [7usize, 4, 33];
        let mut rng = StdRng::seed_from_u64(3);
        for kind in all_kinds() {
            let solution = kind.build(&ks, 2.0).unwrap();
            let reports: Vec<(u64, SolutionReport)> = (0..60u64)
                .map(|uid| {
                    let tuple = [uid as u32 % 7, uid as u32 % 4, uid as u32 % 33];
                    (uid, solution.report(&tuple, &mut rng))
                })
                .collect();
            let mut batch = CompactBatch::new();
            for (uid, report) in &reports {
                batch.push(*uid, report);
            }
            assert_eq!(batch.len(), reports.len());
            let decoded: Vec<_> = batch.iter().collect();
            assert_eq!(decoded, reports, "{kind}");
        }
    }

    fn sample_batch(kind: SolutionKind, ks: &[usize], n: u64, seed: u64) -> CompactBatch {
        let solution = kind.build(ks, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = CompactBatch::new();
        for uid in 0..n {
            let tuple: Vec<u32> = ks.iter().map(|&k| (uid as u32) % k as u32).collect();
            batch.push(uid, &solution.report(&tuple, &mut rng));
        }
        batch
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(40))]

        /// Byte round trip is the identity on the in-memory representation
        /// for every solution × protocol, any batch size (incl. empty).
        #[test]
        fn bytes_roundtrip_for_all_kinds(
            kind_idx in 0usize..12,
            n in 0u64..40,
            seed in 0u64..1_000,
        ) {
            let kinds = all_kinds();
            let kind = kinds[kind_idx % kinds.len()];
            let ks = [6usize, 3, 65];
            let batch = sample_batch(kind, &ks, n, seed);
            let mut bytes = Vec::new();
            batch.encode_into(&mut bytes);
            proptest::prop_assert_eq!(bytes.len(), batch.encoded_len());
            let decoded = CompactBatch::decode_from(&bytes).unwrap();
            proptest::prop_assert_eq!(&decoded, &batch);
            proptest::prop_assert!(decoded.validate_for(kind, &ks).is_ok());
        }

        /// Every strict prefix of an encoding is rejected with a typed
        /// error, never a panic — the wire layer's truncation guarantee.
        #[test]
        fn truncated_bytes_are_rejected(
            kind_idx in 0usize..12,
            n in 1u64..20,
            cut in 0usize..10_000,
        ) {
            let kinds = all_kinds();
            let kind = kinds[kind_idx % kinds.len()];
            let batch = sample_batch(kind, &[5, 4, 33], n, 7);
            let mut bytes = Vec::new();
            batch.encode_into(&mut bytes);
            let cut = cut % bytes.len();
            proptest::prop_assert!(CompactBatch::decode_from(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn decode_rejects_trailing_and_mismatched_lengths() {
        let batch = sample_batch(SolutionKind::RsFd(RsFdProtocol::Grr), &[4, 3], 10, 1);
        let mut bytes = Vec::new();
        batch.encode_into(&mut bytes);
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            CompactBatch::decode_from(&trailing),
            Err(CompactDecodeError::LengthMismatch { .. })
        ));
        assert_eq!(
            CompactBatch::decode_from(&bytes[..12]),
            Err(CompactDecodeError::Truncated)
        );
        // A forged header claiming more words than the buffer holds must be
        // rejected without allocating for the claimed counts.
        let mut forged = bytes.clone();
        forged[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            CompactBatch::decode_from(&forged),
            Err(CompactDecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn validate_for_rejects_foreign_shapes_and_domains() {
        let ks = [4usize, 3];
        let smp = sample_batch(SolutionKind::Smp(ProtocolKind::Grr), &ks, 20, 2);
        // Shape mismatch: an SMP batch is not an SPL or fake-data batch.
        assert!(matches!(
            smp.validate_for(SolutionKind::Spl(ProtocolKind::Grr), &ks),
            Err(CompactDecodeError::Domain(_))
        ));
        assert!(matches!(
            smp.validate_for(SolutionKind::RsFd(RsFdProtocol::Grr), &ks),
            Err(CompactDecodeError::Domain(_))
        ));
        // Domain mismatch: the same family over smaller domains must reject
        // out-of-range values instead of absorbing them.
        let wide = sample_batch(SolutionKind::Spl(ProtocolKind::Grr), &[9, 8], 40, 3);
        assert!(wide
            .validate_for(SolutionKind::Spl(ProtocolKind::Grr), &[2, 2])
            .is_err());
        // SUE/OUE bit widths are pinned to the domain size.
        let bits = sample_batch(SolutionKind::Spl(ProtocolKind::Oue), &ks, 5, 4);
        assert!(bits
            .validate_for(SolutionKind::Spl(ProtocolKind::Oue), &[5, 3])
            .is_err());
    }

    #[test]
    fn corrupt_words_are_structurally_rejected() {
        // A header flipped to the mixed kind no longer fits the SPL solution
        // the receiver built — `validate_for` is the gate.
        let batch = sample_batch(SolutionKind::Spl(ProtocolKind::Olh), &[4, 3], 8, 5);
        let mut corrupt = batch.clone();
        corrupt.words[0] |= 0b11;
        assert!(matches!(
            corrupt.validate_for(SolutionKind::Spl(ProtocolKind::Olh), &[4, 3]),
            Err(CompactDecodeError::Domain(_))
        ));
        // A dirty padding bit past a bit-vector's width is caught before it
        // can trip `BitVec::from_blocks` on the decode path.
        let bits = sample_batch(SolutionKind::Spl(ProtocolKind::Sue), &[4, 3], 1, 6);
        let mut bytes = Vec::new();
        bits.encode_into(&mut bytes);
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        assert!(matches!(
            CompactBatch::decode_from(&bytes),
            Err(CompactDecodeError::DirtyBitPadding)
        ));
    }

    const MIXED_KS: [usize; 4] = [5, 0, 3, 0];

    fn mixed_kind(sample_k: usize) -> SolutionKind {
        SolutionKind::Mixed(super::super::MixedKind {
            protocol: ProtocolKind::Grr,
            numeric: crate::numeric::NumericKind::Piecewise,
            sample_k,
        })
    }

    fn sample_mixed_batch(n: u64, seed: u64, eps: f64, sample_k: usize) -> CompactBatch {
        let solution = mixed_kind(sample_k).build(&MIXED_KS, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = CompactBatch::new();
        for uid in 0..n {
            let cat = [(uid as u32) % 5, (uid as u32) % 3];
            let num = [(uid % 19) as f64 / 9.5 - 1.0, (uid % 7) as f64 / 3.5 - 1.0];
            batch.push(uid, &solution.report_mixed(&cat, &num, &mut rng).unwrap());
        }
        batch
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(40))]

        /// Mixed categorical+numeric reports survive push → bytes → decode →
        /// iter unchanged, and validate against their own solution.
        #[test]
        fn mixed_reports_roundtrip(
            n in 0u64..40,
            seed in 0u64..1_000,
            sample_k in 1usize..5,
        ) {
            let solution = mixed_kind(sample_k).build(&MIXED_KS, 2.0).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let reports: Vec<(u64, SolutionReport)> = (0..n)
                .map(|uid| {
                    let cat = [(uid as u32) % 5, (uid as u32) % 3];
                    let num = [(uid % 19) as f64 / 9.5 - 1.0, (uid % 7) as f64 / 3.5 - 1.0];
                    (uid, solution.report_mixed(&cat, &num, &mut rng).unwrap())
                })
                .collect();
            let mut batch = CompactBatch::new();
            for (uid, report) in &reports {
                batch.push(*uid, report);
            }
            let decoded_reports: Vec<_> = batch.iter().collect();
            proptest::prop_assert_eq!(&decoded_reports, &reports);
            let mut bytes = Vec::new();
            batch.encode_into(&mut bytes);
            proptest::prop_assert_eq!(bytes.len(), batch.encoded_len());
            let decoded = CompactBatch::decode_from(&bytes).unwrap();
            proptest::prop_assert_eq!(&decoded, &batch);
            proptest::prop_assert!(decoded.validate_for(mixed_kind(sample_k), &MIXED_KS).is_ok());
            proptest::prop_assert!(decoded.validate_for_solution(&solution).is_ok());
        }
    }

    #[test]
    fn mixed_batches_reject_foreign_shapes_and_corruption() {
        let batch = sample_mixed_batch(6, 9, 2.0, 4);
        // Shape gates in both directions.
        assert!(matches!(
            batch.validate_for(SolutionKind::Spl(ProtocolKind::Grr), &MIXED_KS),
            Err(CompactDecodeError::Domain(_))
        ));
        let spl = sample_batch(SolutionKind::Spl(ProtocolKind::Grr), &[4, 3], 5, 2);
        assert!(matches!(
            spl.validate_for(mixed_kind(2), &[4, 0]),
            Err(CompactDecodeError::Domain(_))
        ));
        // Wrong sample_k: the entry count must match the solution.
        assert!(batch.validate_for(mixed_kind(2), &MIXED_KS).is_err());
        // An invalid subtag is structurally rejected, with or without a
        // target solution.
        let mut corrupt = batch.clone();
        corrupt.words[1] = (corrupt.words[1] & !0b11) | 0b10;
        let mut bytes = Vec::new();
        corrupt.encode_into(&mut bytes);
        assert!(matches!(
            CompactBatch::decode_from(&bytes),
            Err(CompactDecodeError::BadSolutionKind(2))
        ));
        assert!(corrupt.validate_for(mixed_kind(4), &MIXED_KS).is_err());
        // A subtag that contradicts the schema (numeric entry on a
        // categorical dimension) is a domain error.
        let solution = mixed_kind(4).build(&MIXED_KS, 2.0).unwrap();
        let mut swapped = batch.clone();
        // dim word for dimension 0 (categorical, GRR value entry follows).
        assert_eq!(swapped.words[1] & 0b11, 0);
        swapped.words[1] |= 0b01;
        assert!(matches!(
            swapped.validate_for(mixed_kind(4), &MIXED_KS),
            Err(CompactDecodeError::Domain(_))
        ));
        // A forged numeric payload far past the mechanism bound passes the
        // structural walk but not the solution-instance magnitude gate.
        let mut forged = batch.clone();
        // words: [header, dim0, value0, dim1, raw1, ...] — words[4] is the
        // first numeric fixed-point payload.
        assert_eq!(forged.words[3] & 0b11, 1);
        forged.words[4] = (i64::MAX / 2) as u64;
        assert!(forged.validate_for(mixed_kind(4), &MIXED_KS).is_ok());
        assert!(matches!(
            forged.validate_for_solution(&solution),
            Err(CompactDecodeError::Domain(_))
        ));
        // i64::MIN is the one magnitude i64::abs cannot represent: it must
        // be rejected, not panic (debug) or wrap negative past the gate
        // (release).
        forged.words[4] = i64::MIN as u64;
        assert!(matches!(
            forged.validate_for_solution(&solution),
            Err(CompactDecodeError::Domain(_))
        ));
        // The untampered batch passes both gates.
        assert!(batch.validate_for_solution(&solution).is_ok());
    }

    #[test]
    fn mixed_absorb_compact_matches_decoded_absorb() {
        let solution = mixed_kind(3).build(&MIXED_KS, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut batch = CompactBatch::new();
        for uid in 0..500u64 {
            let cat = [(uid as u32) % 5, (uid as u32) % 3];
            let num = [(uid % 19) as f64 / 9.5 - 1.0, (uid % 7) as f64 / 3.5 - 1.0];
            batch.push(uid, &solution.report_mixed(&cat, &num, &mut rng).unwrap());
        }
        let mut compact_agg = solution.aggregator();
        compact_agg.absorb_compact(&batch);
        let mut decoded_agg = solution.aggregator();
        for (_, report) in batch.iter() {
            decoded_agg.absorb(&report);
        }
        assert_eq!(compact_agg.n(), decoded_agg.n());
        assert_eq!(compact_agg.counts(), decoded_agg.counts());
        for (a, b) in compact_agg
            .estimate()
            .iter()
            .flatten()
            .zip(decoded_agg.estimate().iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn clear_keeps_capacity_and_resets_content() {
        let solution = SolutionKind::Smp(ProtocolKind::Ss)
            .build(&[9, 5], 1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut batch = CompactBatch::new();
        for uid in 0..100u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        let (uid_cap, word_cap) = (batch.uids.capacity(), batch.words.capacity());
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.uids.capacity(), uid_cap);
        assert_eq!(batch.words.capacity(), word_cap);
        // Refilling to the same size allocates nothing new.
        for uid in 0..100u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        assert_eq!(batch.uids.capacity(), uid_cap);
        assert_eq!(batch.words.capacity(), word_cap);
    }
}
