//! A compact, reusable wire encoding for batches of [`SolutionReport`]s.
//!
//! The ingestion hot path moves millions of reports per second across
//! channels. The natural representation — `Vec<Envelope>` with every
//! `Report::Subset(Vec<u32>)`, `Report::Bits(BitVec)` and
//! `SolutionReport::Full(Vec<Report>)` owning its own heap block — makes a
//! steady-state report cost several allocations that are freed on a
//! *different* thread (allocator churn). [`CompactBatch`] instead flattens a
//! whole batch into two growable buffers (`uids`, `words`) that are
//! **reused**: the serving layer recycles drained batches back to the
//! producers through a pool, so steady-state ingestion crosses the channel
//! without any fresh heap allocation.
//!
//! The aggregation side never rematerializes reports: the cursor-based
//! [`count_entry`] counts support directly from the encoded words (see
//! [`MultidimAggregator::absorb_compact`]), dispatching on the oracle once
//! per report. Decoding ([`CompactBatch::iter`]) exists for round-trip tests
//! and diagnostics.
//!
//! ## Wire format (per report, in 64-bit words)
//!
//! ```text
//! solution header: kind(2 bits) | a(bits 2..33) | b(bits 33..64)
//!     kind 0 = Full  (a = d)           → d entries follow
//!     kind 1 = Smp   (a = attr)        → 1 entry follows
//!     kind 2 = Tuple (a = d, b = sampled) → d entries follow
//! entry header:   tag(2 bits) | payload(bits 2..)
//!     tag 0 = Value  (payload = v)     → no extra words
//!     tag 1 = Hashed                   → words: seed, g | value << 32
//!     tag 2 = Subset (payload = len)   → ⌈len/2⌉ words, two u32 each
//!     tag 3 = Bits   (payload = nbits) → ⌈nbits/64⌉ BitVec blocks, verbatim
//! ```
//!
//! [`MultidimAggregator::absorb_compact`]: super::MultidimAggregator::absorb_compact

use ldp_protocols::{BitVec, FrequencyOracle, Oracle, Report};

use super::smp::SmpReport;
use super::{MultidimReport, SolutionReport};

const KIND_FULL: u64 = 0;
const KIND_SMP: u64 = 1;
const KIND_TUPLE: u64 = 2;

const TAG_VALUE: u64 = 0;
const TAG_HASHED: u64 = 1;
const TAG_SUBSET: u64 = 2;
const TAG_BITS: u64 = 3;

/// A batch of `(uid, SolutionReport)` pairs flattened into two reusable
/// buffers. Build with [`CompactBatch::push`], hand it across a channel,
/// absorb it with
/// [`MultidimAggregator::absorb_compact`](super::MultidimAggregator::absorb_compact),
/// then [`CompactBatch::clear`] and reuse — steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct CompactBatch {
    uids: Vec<u64>,
    words: Vec<u64>,
}

impl CompactBatch {
    /// An empty batch.
    pub fn new() -> Self {
        CompactBatch::default()
    }

    /// Number of encoded reports.
    pub fn len(&self) -> usize {
        self.uids.len()
    }

    /// True when no report is encoded.
    pub fn is_empty(&self) -> bool {
        self.uids.is_empty()
    }

    /// Empties the batch, keeping both buffers' capacity for reuse.
    pub fn clear(&mut self) {
        self.uids.clear();
        self.words.clear();
    }

    /// Appends one report. Amortized allocation-free once the buffers have
    /// grown to the batch's steady-state size.
    pub fn push(&mut self, uid: u64, report: &SolutionReport) {
        self.uids.push(uid);
        match report {
            SolutionReport::Full(reports) => {
                self.words.push(KIND_FULL | ((reports.len() as u64) << 2));
                for rep in reports {
                    self.push_entry(rep);
                }
            }
            SolutionReport::Smp(SmpReport { attr, report }) => {
                self.words.push(KIND_SMP | ((*attr as u64) << 2));
                self.push_entry(report);
            }
            SolutionReport::Tuple(MultidimReport { values, sampled }) => {
                self.words
                    .push(KIND_TUPLE | ((values.len() as u64) << 2) | ((*sampled as u64) << 33));
                for rep in values {
                    self.push_entry(rep);
                }
            }
        }
    }

    fn push_entry(&mut self, report: &Report) {
        match report {
            Report::Value(v) => self.words.push(TAG_VALUE | (u64::from(*v) << 2)),
            Report::Hashed { seed, g, value } => {
                self.words.push(TAG_HASHED);
                self.words.push(*seed);
                self.words.push(u64::from(*g) | (u64::from(*value) << 32));
            }
            Report::Subset(subset) => {
                self.words.push(TAG_SUBSET | ((subset.len() as u64) << 2));
                for pair in subset.chunks(2) {
                    let hi = pair.get(1).copied().unwrap_or(0);
                    self.words.push(u64::from(pair[0]) | (u64::from(hi) << 32));
                }
            }
            Report::Bits(bits) => {
                self.words.push(TAG_BITS | ((bits.len() as u64) << 2));
                self.words.extend_from_slice(bits.blocks());
            }
        }
    }

    /// Decodes every `(uid, report)` pair, materializing owned reports — the
    /// round-trip inverse of [`CompactBatch::push`], for tests and
    /// diagnostics (the aggregation path counts from the encoded words
    /// directly and never calls this).
    pub fn iter(&self) -> impl Iterator<Item = (u64, SolutionReport)> + '_ {
        let mut cursor = Cursor {
            words: &self.words,
            pos: 0,
        };
        self.uids.iter().map(move |&uid| {
            let header = cursor.next();
            let kind = header & 0b11;
            let a = ((header >> 2) & 0x7FFF_FFFF) as usize;
            let b = (header >> 33) as usize;
            let report = match kind {
                KIND_FULL => SolutionReport::Full((0..a).map(|_| cursor.decode_entry()).collect()),
                KIND_SMP => SolutionReport::Smp(SmpReport {
                    attr: a,
                    report: cursor.decode_entry(),
                }),
                KIND_TUPLE => SolutionReport::Tuple(MultidimReport {
                    values: (0..a).map(|_| cursor.decode_entry()).collect(),
                    sampled: b,
                }),
                other => unreachable!("corrupt solution header kind {other}"),
            };
            (uid, report)
        })
    }

    /// The encoded solution headers + entries, for the crate-internal
    /// counting walk.
    pub(crate) fn cursor(&self) -> Cursor<'_> {
        Cursor {
            words: &self.words,
            pos: 0,
        }
    }
}

/// Sequential reader over a batch's encoded words.
pub(crate) struct Cursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn done(&self) -> bool {
        self.pos >= self.words.len()
    }

    fn next(&mut self) -> u64 {
        let w = self.words[self.pos];
        self.pos += 1;
        w
    }

    /// Reads a solution header, returning `(kind, a, b)` per the wire format.
    pub(crate) fn solution_header(&mut self) -> (u64, usize, usize) {
        let header = self.next();
        (
            header & 0b11,
            ((header >> 2) & 0x7FFF_FFFF) as usize,
            (header >> 33) as usize,
        )
    }

    fn decode_entry(&mut self) -> Report {
        let header = self.next();
        let payload = header >> 2;
        match header & 0b11 {
            TAG_VALUE => Report::Value(payload as u32),
            TAG_HASHED => {
                let seed = self.next();
                let packed = self.next();
                Report::Hashed {
                    seed,
                    g: packed as u32,
                    value: (packed >> 32) as u32,
                }
            }
            TAG_SUBSET => {
                let len = payload as usize;
                let mut subset = Vec::with_capacity(len);
                for i in 0..len.div_ceil(2) {
                    let packed = self.next();
                    subset.push(packed as u32);
                    if 2 * i + 1 < len {
                        subset.push((packed >> 32) as u32);
                    }
                }
                Report::Subset(subset)
            }
            TAG_BITS => {
                let nbits = payload as usize;
                let blocks = self.words[self.pos..self.pos + nbits.div_ceil(64)].to_vec();
                self.pos += blocks.len();
                Report::Bits(BitVec::from_blocks(blocks, nbits))
            }
            other => unreachable!("corrupt entry tag {other}"),
        }
    }
}

/// Counts one encoded entry's support into `counts`, advancing the cursor —
/// the encoded twin of `ldp_protocols::oracle::count_support` (with an
/// oracle, for SPL/SMP entries) and of
/// [`count_fake_data_entry`](super::aggregator::count_fake_data_entry)
/// (`oracle = None`, for fake-data tuple entries, which never carry
/// hashed/subset shapes). Identical counting semantics, including the
/// debug-assert rejection of out-of-domain entries and the release-mode
/// skip of stray ones.
pub(crate) fn count_entry(counts: &mut [u64], oracle: Option<&Oracle>, j: usize, cur: &mut Cursor) {
    let header = cur.next();
    let payload = header >> 2;
    match header & 0b11 {
        TAG_VALUE => {
            debug_assert!(
                (payload as usize) < counts.len(),
                "attr {j}: report value {payload} outside domain of size {}",
                counts.len()
            );
            if let Some(c) = counts.get_mut(payload as usize) {
                *c += 1;
            }
        }
        TAG_HASHED => {
            let seed = cur.next();
            let packed = cur.next();
            let report = Report::Hashed {
                seed,
                g: packed as u32,
                value: (packed >> 32) as u32,
            };
            match oracle {
                // Per-report dispatch into the oracle's tightest domain
                // sweep (monomorphized for OLH).
                Some(oracle) => oracle.count_hashed(counts, &report),
                None => debug_assert!(false, "attr {j}: unexpected hashed entry in a tuple"),
            }
        }
        TAG_SUBSET => {
            let len = payload as usize;
            if oracle.is_none() {
                // Mirrors `count_fake_data_entry`: a tuple entry of this
                // shape is malformed — reject loudly in tests, skip the
                // words without counting in release.
                debug_assert!(false, "attr {j}: unexpected subset entry in a tuple");
                cur.pos += len.div_ceil(2);
                return;
            }
            for i in 0..len.div_ceil(2) {
                let packed = cur.next();
                let lo = packed as u32;
                let hi = (packed >> 32) as u32;
                debug_assert!(
                    (lo as usize) < counts.len(),
                    "attr {j}: subset entry {lo} outside domain of size {}",
                    counts.len()
                );
                if let Some(c) = counts.get_mut(lo as usize) {
                    *c += 1;
                }
                if 2 * i + 1 < len {
                    debug_assert!(
                        (hi as usize) < counts.len(),
                        "attr {j}: subset entry {hi} outside domain of size {}",
                        counts.len()
                    );
                    if let Some(c) = counts.get_mut(hi as usize) {
                        *c += 1;
                    }
                }
            }
        }
        TAG_BITS => {
            let nbits = payload as usize;
            debug_assert_eq!(
                nbits,
                counts.len(),
                "attr {j}: bit-vector width does not match the domain"
            );
            for block_idx in 0..nbits.div_ceil(64) {
                let mut block = cur.next();
                while block != 0 {
                    let idx = block_idx * 64 + block.trailing_zeros() as usize;
                    block &= block - 1;
                    if let Some(c) = counts.get_mut(idx) {
                        *c += 1;
                    }
                }
            }
        }
        other => unreachable!("corrupt entry tag {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{RsFdProtocol, RsRfdProtocol, SolutionKind};
    use super::*;
    use ldp_protocols::ProtocolKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_kinds() -> Vec<SolutionKind> {
        let mut kinds = Vec::new();
        for p in ProtocolKind::ALL {
            kinds.push(SolutionKind::Spl(p));
            kinds.push(SolutionKind::Smp(p));
        }
        for p in RsFdProtocol::ALL {
            kinds.push(SolutionKind::RsFd(p));
        }
        kinds.push(SolutionKind::RsRfd(RsRfdProtocol::Grr));
        kinds
    }

    #[test]
    fn roundtrips_every_report_shape() {
        let ks = [7usize, 4, 33];
        let mut rng = StdRng::seed_from_u64(3);
        for kind in all_kinds() {
            let solution = kind.build(&ks, 2.0).unwrap();
            let reports: Vec<(u64, SolutionReport)> = (0..60u64)
                .map(|uid| {
                    let tuple = [uid as u32 % 7, uid as u32 % 4, uid as u32 % 33];
                    (uid, solution.report(&tuple, &mut rng))
                })
                .collect();
            let mut batch = CompactBatch::new();
            for (uid, report) in &reports {
                batch.push(*uid, report);
            }
            assert_eq!(batch.len(), reports.len());
            let decoded: Vec<_> = batch.iter().collect();
            assert_eq!(decoded, reports, "{kind}");
        }
    }

    #[test]
    fn clear_keeps_capacity_and_resets_content() {
        let solution = SolutionKind::Smp(ProtocolKind::Ss)
            .build(&[9, 5], 1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut batch = CompactBatch::new();
        for uid in 0..100u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        let (uid_cap, word_cap) = (batch.uids.capacity(), batch.words.capacity());
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.uids.capacity(), uid_cap);
        assert_eq!(batch.words.capacity(), word_cap);
        // Refilling to the same size allocates nothing new.
        for uid in 0..100u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        assert_eq!(batch.uids.capacity(), uid_cap);
        assert_eq!(batch.words.capacity(), word_cap);
    }
}
