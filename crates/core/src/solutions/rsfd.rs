//! Random Sampling + Fake Data (RS+FD, §2.3.2) — Arcolezi et al. [4].
//!
//! Each user samples one attribute, sanitizes it with the amplified budget
//! `ε′ = ln(d(e^ε − 1) + 1)`, and sends **uniform fake data** for every other
//! attribute, hiding the sampled attribute from the aggregator. Three fake
//! generation procedures are supported:
//!
//! * [`RsFdProtocol::Grr`] — fakes are uniform values in the attribute domain;
//! * [`RsFdProtocol::UeZ`] — fakes are UE-perturbed **zero vectors**;
//! * [`RsFdProtocol::UeR`] — fakes are UE-perturbed **random one-hot** vectors.
//!
//! The server-side unbiased estimators are the ones derived in [4] and
//! restated in §2.3.2 of the paper.

use ldp_protocols::{BitVec, FrequencyOracle, Grr, ProtocolError, Report, UeMode, UnaryEncoding};
use rand::{Rng, RngCore};

use super::{validate_config, EstimatorSpec, MultidimAggregator, MultidimReport, MultidimSolution};
use crate::amplification::amplify;

/// Which LDP protocol and fake-data procedure RS+FD runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsFdProtocol {
    /// RS+FD\[GRR\]: GRR reports, uniform fake values.
    Grr,
    /// RS+FD[UE-z]: UE reports, fake = perturbed zero vector.
    UeZ(UeMode),
    /// RS+FD[UE-r]: UE reports, fake = perturbed random one-hot vector.
    UeR(UeMode),
}

impl RsFdProtocol {
    /// Paper-style label, e.g. `"RS+FD[SUE-z]"`.
    pub fn name(self) -> String {
        match self {
            RsFdProtocol::Grr => "RS+FD[GRR]".to_string(),
            RsFdProtocol::UeZ(m) => format!("RS+FD[{}-z]", m.name()),
            RsFdProtocol::UeR(m) => format!("RS+FD[{}-r]", m.name()),
        }
    }

    /// The five variants evaluated in §4.3, in the paper's order.
    pub const ALL: [RsFdProtocol; 5] = [
        RsFdProtocol::Grr,
        RsFdProtocol::UeZ(UeMode::Symmetric),
        RsFdProtocol::UeZ(UeMode::Optimized),
        RsFdProtocol::UeR(UeMode::Symmetric),
        RsFdProtocol::UeR(UeMode::Optimized),
    ];
}

#[derive(Debug, Clone)]
enum Randomizers {
    Grr(Vec<Grr>),
    Ue(Vec<UnaryEncoding>),
}

/// The RS+FD solution over `d` attributes.
#[derive(Debug, Clone)]
pub struct RsFd {
    protocol: RsFdProtocol,
    ks: Vec<usize>,
    epsilon: f64,
    epsilon_amp: f64,
    randomizers: Randomizers,
}

impl RsFd {
    /// Builds the solution; per-attribute randomizers run at ε′.
    pub fn new(protocol: RsFdProtocol, ks: &[usize], epsilon: f64) -> Result<Self, ProtocolError> {
        validate_config(ks, epsilon)?;
        let epsilon_amp = amplify(epsilon, ks.len());
        let randomizers = match protocol {
            RsFdProtocol::Grr => Randomizers::Grr(
                ks.iter()
                    .map(|&k| Grr::new(k, epsilon_amp))
                    .collect::<Result<_, _>>()?,
            ),
            RsFdProtocol::UeZ(mode) | RsFdProtocol::UeR(mode) => Randomizers::Ue(
                ks.iter()
                    .map(|&k| UnaryEncoding::new(k, epsilon_amp, mode))
                    .collect::<Result<_, _>>()?,
            ),
        };
        Ok(RsFd {
            protocol,
            ks: ks.to_vec(),
            epsilon,
            epsilon_amp,
            randomizers,
        })
    }

    /// The variant in use.
    pub fn protocol(&self) -> RsFdProtocol {
        self.protocol
    }

    /// Effective UE parameters `(p, q)` of attribute `j` (GRR variants return
    /// the GRR pair). Exposed for the estimator-variance analysis.
    pub fn pq(&self, j: usize) -> (f64, f64) {
        match &self.randomizers {
            Randomizers::Grr(grrs) => (grrs[j].p(), grrs[j].q()),
            Randomizers::Ue(ues) => (ues[j].p(), ues[j].q()),
        }
    }

    /// Approximate per-value estimator variance (the paper sets `f = 0`) for
    /// attribute `j` from `n` reports: RS+FD is RS+RFD with uniform priors,
    /// so the Theorem 2/4 formulas apply with `f̃ = 1/k`.
    pub fn approx_variance(&self, j: usize, n: usize) -> f64 {
        let d = self.ks.len() as f64;
        let k = self.ks[j] as f64;
        let (p, q) = self.pq(j);
        let gamma = match self.protocol {
            RsFdProtocol::Grr => (q + (d - 1.0) / k) / d,
            // Fake zero vectors set a bit with probability q.
            RsFdProtocol::UeZ(_) => (q + (d - 1.0) * q) / d,
            RsFdProtocol::UeR(_) => (q + (d - 1.0) * ((p - q) / k + q)) / d,
        };
        d * d * gamma * (1.0 - gamma) / (n as f64 * (p - q) * (p - q))
    }

    /// Sanitizes a tuple with a *caller-chosen* sampled attribute (used by
    /// the survey engine to enforce sampling without replacement across
    /// surveys). [`MultidimSolution::report`] delegates here with a uniform
    /// choice.
    ///
    /// # Panics
    /// Panics on tuple width mismatch or `sampled >= d`.
    pub fn report_with_sampled<R: Rng + ?Sized>(
        &self,
        tuple: &[u32],
        sampled: usize,
        rng: &mut R,
    ) -> MultidimReport {
        assert_eq!(tuple.len(), self.d(), "tuple width mismatch");
        assert!(sampled < self.d(), "sampled attribute out of range");
        let values = (0..self.d())
            .map(|i| {
                let k = self.ks[i];
                match (&self.randomizers, i == sampled) {
                    (Randomizers::Grr(grrs), true) => grrs[i].randomize(tuple[i], rng),
                    (Randomizers::Grr(_), false) => Report::Value(rng.random_range(0..k as u32)),
                    (Randomizers::Ue(ues), true) => ues[i].randomize(tuple[i], rng),
                    (Randomizers::Ue(ues), false) => match self.protocol {
                        // UE-z fake: no zero vector is ever materialized — the
                        // word-parallel background sampler writes Bernoulli(q)
                        // words straight into the report, so the only
                        // allocation is the report vector itself.
                        RsFdProtocol::UeZ(_) => Report::Bits(ues[i].perturb_zero_vector(rng)),
                        RsFdProtocol::UeR(_) => {
                            let fake = rng.random_range(0..k as u32);
                            ues[i].randomize(fake, rng)
                        }
                        RsFdProtocol::Grr => unreachable!("GRR variant has UE randomizers"),
                    },
                }
            })
            .collect();
        MultidimReport { values, sampled }
    }
}

impl MultidimSolution for RsFd {
    fn d(&self) -> usize {
        self.ks.len()
    }

    fn ks(&self) -> &[usize] {
        &self.ks
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn epsilon_amplified(&self) -> f64 {
        self.epsilon_amp
    }

    fn is_unary(&self) -> bool {
        matches!(self.protocol, RsFdProtocol::UeZ(_) | RsFdProtocol::UeR(_))
    }

    fn report_dyn(&self, tuple: &[u32], rng: &mut dyn RngCore) -> MultidimReport {
        let sampled = rng.random_range(0..self.d());
        self.report_with_sampled(tuple, sampled, rng)
    }

    // Monomorphized override: keeps the hot client path free of virtual RNG
    // dispatch (the provided method would route through `report_dyn`).
    fn report<R: Rng + ?Sized>(&self, tuple: &[u32], rng: &mut R) -> MultidimReport
    where
        Self: Sized,
    {
        let sampled = rng.random_range(0..self.d());
        self.report_with_sampled(tuple, sampled, rng)
    }

    fn aggregator(&self) -> MultidimAggregator {
        let pqs = (0..self.d()).map(|j| self.pq(j)).collect();
        MultidimAggregator::new(
            self.ks.clone(),
            EstimatorSpec::RsFd {
                protocol: self.protocol,
                pqs,
            },
        )
    }
}

/// Fake one-hot helper shared with tests.
#[allow(dead_code)]
pub(crate) fn one_hot(k: usize, v: u32) -> BitVec {
    BitVec::one_hot(k, v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Skewed two-attribute population with known marginals.
    fn population(n: usize) -> (Vec<Vec<u32>>, Vec<Vec<f64>>) {
        let tuples: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let a = if i % 10 < 7 { 0 } else { 1 }; // 70/30 over k=4 (rest 0)
                let b = (i % 5).min(2) as u32; // 40/20/40-ish over k=3
                vec![a, b]
            })
            .collect();
        let mut m0 = vec![0.0; 4];
        let mut m1 = vec![0.0; 3];
        for t in &tuples {
            m0[t[0] as usize] += 1.0;
            m1[t[1] as usize] += 1.0;
        }
        for f in m0.iter_mut().chain(m1.iter_mut()) {
            *f /= n as f64;
        }
        (tuples, vec![m0, m1])
    }

    #[test]
    fn all_variants_estimate_marginals_unbiasedly() {
        let (tuples, truth) = population(60_000);
        let mut rng = StdRng::seed_from_u64(5);
        for protocol in RsFdProtocol::ALL {
            let rsfd = RsFd::new(protocol, &[4, 3], 2.0).unwrap();
            let reports: Vec<MultidimReport> =
                tuples.iter().map(|t| rsfd.report(t, &mut rng)).collect();
            let est = rsfd.estimate(&reports);
            for j in 0..2 {
                for v in 0..truth[j].len() {
                    assert!(
                        (est[j][v] - truth[j][v]).abs() < 0.06,
                        "{} attr {j} value {v}: est {} truth {}",
                        protocol.name(),
                        est[j][v],
                        truth[j][v]
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_attribute_is_uniform() {
        let rsfd = RsFd::new(RsFdProtocol::Grr, &[4, 3, 5], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            counts[rsfd.report(&[0, 0, 0], &mut rng).sampled] += 1;
        }
        for c in counts {
            assert!((c as f64 / 9000.0 - 1.0 / 3.0).abs() < 0.03);
        }
    }

    #[test]
    fn reports_cover_every_attribute() {
        let rsfd = RsFd::new(RsFdProtocol::UeZ(UeMode::Optimized), &[4, 3], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let r = rsfd.report(&[1, 2], &mut rng);
        assert_eq!(r.values.len(), 2);
        for (j, rep) in r.values.iter().enumerate() {
            match rep {
                Report::Bits(b) => assert_eq!(b.len(), [4, 3][j]),
                other => panic!("unexpected shape {other:?}"),
            }
        }
    }

    #[test]
    fn amplified_budget_matches_formula() {
        let rsfd = RsFd::new(RsFdProtocol::Grr, &[4, 3, 5], 1.5).unwrap();
        assert!((rsfd.epsilon_amplified() - amplify(1.5, 3)).abs() < 1e-12);
        assert!(rsfd.epsilon_amplified() > rsfd.epsilon());
    }

    #[test]
    fn ue_z_fakes_have_fewer_ones_than_ue_r_fakes() {
        // The structural difference the §4.3 attack exploits: zero-vector
        // fakes only set bits at rate q, one-hot fakes at ~(p + (k−1)q)/k.
        let d = 2;
        let k = 20;
        let mut rng = StdRng::seed_from_u64(8);
        let z = RsFd::new(RsFdProtocol::UeZ(UeMode::Optimized), &[k, k], 5.0).unwrap();
        let r = RsFd::new(RsFdProtocol::UeR(UeMode::Optimized), &[k, k], 5.0).unwrap();
        let count_fake_ones = |rsfd: &RsFd, rng: &mut StdRng| -> f64 {
            let mut total = 0usize;
            let mut fakes = 0usize;
            for _ in 0..4000 {
                let rep = rsfd.report(&[0, 0], rng);
                for j in 0..d {
                    if j != rep.sampled {
                        if let Report::Bits(b) = &rep.values[j] {
                            total += b.count_ones();
                            fakes += 1;
                        }
                    }
                }
            }
            total as f64 / fakes as f64
        };
        let z_ones = count_fake_ones(&z, &mut rng);
        let r_ones = count_fake_ones(&r, &mut rng);
        assert!(
            r_ones > z_ones + 0.3,
            "UE-r fakes ({r_ones}) should carry more ones than UE-z fakes ({z_ones})"
        );
    }

    #[test]
    fn approx_variance_is_positive_and_shrinks_with_n() {
        for protocol in RsFdProtocol::ALL {
            let rsfd = RsFd::new(protocol, &[16, 7], 1.0).unwrap();
            let v1 = rsfd.approx_variance(0, 1000);
            let v2 = rsfd.approx_variance(0, 10_000);
            assert!(v1 > 0.0 && v2 > 0.0);
            assert!(
                (v1 / v2 - 10.0).abs() < 1e-6,
                "variance should scale as 1/n"
            );
        }
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(RsFdProtocol::Grr.name(), "RS+FD[GRR]");
        assert_eq!(RsFdProtocol::UeZ(UeMode::Symmetric).name(), "RS+FD[SUE-z]");
        assert_eq!(RsFdProtocol::UeR(UeMode::Optimized).name(), "RS+FD[OUE-r]");
    }
}
