//! Random Sampling + **Realistic** Fake Data (RS+RFD) — the paper's §5
//! countermeasure.
//!
//! RS+RFD replaces RS+FD's uniform fake data with samples from per-attribute
//! prior distributions `f̃` (e.g. last year's Census statistics), making fake
//! reports statistically indistinguishable from sanitized real ones and
//! almost fully defeating the sampled-attribute inference attack while
//! *improving* utility. Implements Algorithm 1, the unbiased estimators of
//! Eq. (6) (GRR) and Eq. (7) (UE-r), and the closed-form variances of
//! Theorems 2 and 4.

use ldp_protocols::{FrequencyOracle, Grr, ProtocolError, Report, UeMode, UnaryEncoding};
use rand::{Rng, RngCore};

use super::{
    sample_cdf, to_cdf, validate_config, EstimatorSpec, MultidimAggregator, MultidimReport,
    MultidimSolution,
};
use crate::amplification::amplify;

/// Which LDP protocol RS+RFD runs on the sampled attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsRfdProtocol {
    /// RS+RFD\[GRR\]: GRR reports; fakes drawn directly from the prior.
    Grr,
    /// RS+RFD[UE-r]: UE reports; fakes are UE-perturbed one-hot encodings of
    /// prior-distributed values.
    UeR(UeMode),
}

impl RsRfdProtocol {
    /// Paper-style label, e.g. `"RS+RFD[OUE-r]"`.
    pub fn name(self) -> String {
        match self {
            RsRfdProtocol::Grr => "RS+RFD[GRR]".to_string(),
            RsRfdProtocol::UeR(m) => format!("RS+RFD[{}-r]", m.name()),
        }
    }

    /// The three variants evaluated in §5.2.
    pub const ALL: [RsRfdProtocol; 3] = [
        RsRfdProtocol::Grr,
        RsRfdProtocol::UeR(UeMode::Symmetric),
        RsRfdProtocol::UeR(UeMode::Optimized),
    ];
}

#[derive(Debug, Clone)]
enum Randomizers {
    Grr(Vec<Grr>),
    Ue(Vec<UnaryEncoding>),
}

/// The RS+RFD countermeasure over `d` attributes.
#[derive(Debug, Clone)]
pub struct RsRfd {
    protocol: RsRfdProtocol,
    ks: Vec<usize>,
    epsilon: f64,
    epsilon_amp: f64,
    priors: Vec<Vec<f64>>,
    prior_cdfs: Vec<Vec<f64>>,
    randomizers: Randomizers,
}

impl RsRfd {
    /// Builds the countermeasure with per-attribute prior distributions
    /// (`priors[j]` must have length `ks[j]`, non-negative entries summing
    /// to ≈1).
    pub fn new(
        protocol: RsRfdProtocol,
        ks: &[usize],
        epsilon: f64,
        priors: Vec<Vec<f64>>,
    ) -> Result<Self, ProtocolError> {
        validate_config(ks, epsilon)?;
        if priors.len() != ks.len() {
            return Err(ProtocolError::InvalidPrior {
                reason: format!("{} priors for {} attributes", priors.len(), ks.len()),
            });
        }
        for (j, prior) in priors.iter().enumerate() {
            if prior.len() != ks[j] {
                return Err(ProtocolError::InvalidPrior {
                    reason: format!(
                        "prior {j} has {} entries, domain has {}",
                        prior.len(),
                        ks[j]
                    ),
                });
            }
            if prior.iter().any(|&p| !(0.0..=1.0 + 1e-9).contains(&p)) {
                return Err(ProtocolError::InvalidPrior {
                    reason: format!("prior {j} has entries outside [0, 1]"),
                });
            }
            let total: f64 = prior.iter().sum();
            if (total - 1.0).abs() > 1e-6 {
                return Err(ProtocolError::InvalidPrior {
                    reason: format!("prior {j} sums to {total}, expected 1"),
                });
            }
        }
        let epsilon_amp = amplify(epsilon, ks.len());
        let randomizers = match protocol {
            RsRfdProtocol::Grr => Randomizers::Grr(
                ks.iter()
                    .map(|&k| Grr::new(k, epsilon_amp))
                    .collect::<Result<_, _>>()?,
            ),
            RsRfdProtocol::UeR(mode) => Randomizers::Ue(
                ks.iter()
                    .map(|&k| UnaryEncoding::new(k, epsilon_amp, mode))
                    .collect::<Result<_, _>>()?,
            ),
        };
        let prior_cdfs = priors.iter().map(|p| to_cdf(p)).collect();
        Ok(RsRfd {
            protocol,
            ks: ks.to_vec(),
            epsilon,
            epsilon_amp,
            priors,
            prior_cdfs,
            randomizers,
        })
    }

    /// The variant in use.
    pub fn protocol(&self) -> RsRfdProtocol {
        self.protocol
    }

    /// The priors used for fake data.
    pub fn priors(&self) -> &[Vec<f64>] {
        &self.priors
    }

    /// Effective `(p, q)` of attribute `j` at the amplified budget.
    pub fn pq(&self, j: usize) -> (f64, f64) {
        match &self.randomizers {
            Randomizers::Grr(grrs) => (grrs[j].p(), grrs[j].q()),
            Randomizers::Ue(ues) => (ues[j].p(), ues[j].q()),
        }
    }

    /// Theorem 2 / Theorem 4 estimator variance for value `v` of attribute
    /// `j` with true frequency `f`, from `n` reports:
    /// `Var = d²γ(1−γ) / (n(p−q)²)` with the protocol-specific γ.
    pub fn variance(&self, j: usize, v: usize, f: f64, n: usize) -> f64 {
        let d = self.ks.len() as f64;
        let (p, q) = self.pq(j);
        let prior = self.priors[j][v];
        let gamma = match self.protocol {
            // Theorem 2: γ = (q + f(p−q) + (d−1)·f̃)/d.
            RsRfdProtocol::Grr => (q + f * (p - q) + (d - 1.0) * prior) / d,
            // Theorem 4: γ = (f(p−q) + q + (d−1)(f̃(p−q) + q))/d.
            RsRfdProtocol::UeR(_) => (f * (p - q) + q + (d - 1.0) * (prior * (p - q) + q)) / d,
        };
        d * d * gamma * (1.0 - gamma) / (n as f64 * (p - q) * (p - q))
    }

    /// Approximate variance with `f = 0` averaged over the attribute's
    /// values, mirroring the paper's Fig. 16 analytic curves.
    pub fn approx_variance_avg(&self, j: usize, n: usize) -> f64 {
        let k = self.ks[j];
        (0..k).map(|v| self.variance(j, v, 0.0, n)).sum::<f64>() / k as f64
    }

    /// Sanitizes a tuple with a caller-chosen sampled attribute (see
    /// [`RsFd::report_with_sampled`](super::RsFd::report_with_sampled)).
    ///
    /// # Panics
    /// Panics on tuple width mismatch or `sampled >= d`.
    pub fn report_with_sampled<R: Rng + ?Sized>(
        &self,
        tuple: &[u32],
        sampled: usize,
        rng: &mut R,
    ) -> MultidimReport {
        assert_eq!(tuple.len(), self.d(), "tuple width mismatch");
        assert!(sampled < self.d(), "sampled attribute out of range");
        let values = (0..self.d())
            .map(|i| match (&self.randomizers, i == sampled) {
                (Randomizers::Grr(grrs), true) => grrs[i].randomize(tuple[i], rng),
                (Randomizers::Grr(_), false) => {
                    // Alg. 1 line 6: a *plain* sample from the prior.
                    Report::Value(sample_cdf(&self.prior_cdfs[i], rng) as u32)
                }
                (Randomizers::Ue(ues), true) => ues[i].randomize(tuple[i], rng),
                (Randomizers::Ue(ues), false) => {
                    let fake = sample_cdf(&self.prior_cdfs[i], rng) as u32;
                    ues[i].randomize(fake, rng)
                }
            })
            .collect();
        MultidimReport { values, sampled }
    }
}

impl MultidimSolution for RsRfd {
    fn d(&self) -> usize {
        self.ks.len()
    }

    fn ks(&self) -> &[usize] {
        &self.ks
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn epsilon_amplified(&self) -> f64 {
        self.epsilon_amp
    }

    fn is_unary(&self) -> bool {
        matches!(self.protocol, RsRfdProtocol::UeR(_))
    }

    fn report_dyn(&self, tuple: &[u32], rng: &mut dyn RngCore) -> MultidimReport {
        let sampled = rng.random_range(0..self.d());
        self.report_with_sampled(tuple, sampled, rng)
    }

    // Monomorphized override: keeps the hot client path free of virtual RNG
    // dispatch (the provided method would route through `report_dyn`).
    fn report<R: Rng + ?Sized>(&self, tuple: &[u32], rng: &mut R) -> MultidimReport
    where
        Self: Sized,
    {
        let sampled = rng.random_range(0..self.d());
        self.report_with_sampled(tuple, sampled, rng)
    }

    fn aggregator(&self) -> MultidimAggregator {
        let pqs = (0..self.d()).map(|j| self.pq(j)).collect();
        MultidimAggregator::new(
            self.ks.clone(),
            EstimatorSpec::RsRfd {
                protocol: self.protocol,
                pqs,
                priors: self.priors.clone(),
            },
        )
    }
}

#[cfg(test)]
mod theorems {
    //! Monte-Carlo validation of Theorems 1–4: unbiasedness of Eqs. (6)–(7)
    //! and the closed-form variances (8)–(9).

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const KS: [usize; 2] = [5, 3];

    fn priors() -> Vec<Vec<f64>> {
        vec![vec![0.4, 0.3, 0.15, 0.1, 0.05], vec![0.2, 0.5, 0.3]]
    }

    /// Population with known marginals distinct from the priors.
    fn population(n: usize) -> (Vec<Vec<u32>>, Vec<Vec<f64>>) {
        let tuples: Vec<Vec<u32>> = (0..n)
            .map(|i| vec![(i % 5).min(2) as u32, (i % 2) as u32])
            .collect();
        let mut m0 = vec![0.0; 5];
        let mut m1 = vec![0.0; 3];
        for t in &tuples {
            m0[t[0] as usize] += 1.0;
            m1[t[1] as usize] += 1.0;
        }
        for f in m0.iter_mut().chain(m1.iter_mut()) {
            *f /= n as f64;
        }
        (tuples, vec![m0, m1])
    }

    #[test]
    fn theorem_1_and_3_estimators_are_unbiased() {
        let (tuples, truth) = population(60_000);
        let mut rng = StdRng::seed_from_u64(11);
        for protocol in RsRfdProtocol::ALL {
            let rsrfd = RsRfd::new(protocol, &KS, 2.0, priors()).unwrap();
            let reports: Vec<MultidimReport> =
                tuples.iter().map(|t| rsrfd.report(t, &mut rng)).collect();
            let est = rsrfd.estimate(&reports);
            for j in 0..2 {
                for v in 0..truth[j].len() {
                    assert!(
                        (est[j][v] - truth[j][v]).abs() < 0.06,
                        "{} attr {j} value {v}: est {} truth {}",
                        protocol.name(),
                        est[j][v],
                        truth[j][v]
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_2_and_4_variances_match_monte_carlo() {
        // Repeatedly estimate from small samples; the sample variance of
        // f̂(v) must match the closed form within Monte-Carlo tolerance.
        let n = 400;
        let reps = 400;
        let (tuples, truth) = population(n);
        for protocol in RsRfdProtocol::ALL {
            let rsrfd = RsRfd::new(protocol, &KS, 1.5, priors()).unwrap();
            let mut rng = StdRng::seed_from_u64(13);
            let (j, v) = (0usize, 1usize);
            let mut estimates = Vec::with_capacity(reps);
            for _ in 0..reps {
                let reports: Vec<MultidimReport> =
                    tuples.iter().map(|t| rsrfd.report(t, &mut rng)).collect();
                estimates.push(rsrfd.estimate(&reports)[j][v]);
            }
            let mean = estimates.iter().sum::<f64>() / reps as f64;
            let var = estimates
                .iter()
                .map(|e| (e - mean) * (e - mean))
                .sum::<f64>()
                / reps as f64;
            let predicted = rsrfd.variance(j, v, truth[j][v], n);
            let rel = (var - predicted).abs() / predicted;
            assert!(
                rel < 0.35,
                "{}: empirical var {var:.6} vs Theorem {predicted:.6} (rel {rel:.2})",
                protocol.name()
            );
            // Unbiasedness re-check at small n.
            assert!((mean - truth[j][v]).abs() < 0.1, "mean {mean}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_malformed_priors() {
        let ks = [4usize, 3];
        // Wrong count.
        assert!(RsRfd::new(RsRfdProtocol::Grr, &ks, 1.0, vec![vec![0.25; 4]]).is_err());
        // Wrong length.
        assert!(RsRfd::new(
            RsRfdProtocol::Grr,
            &ks,
            1.0,
            vec![vec![0.25; 4], vec![0.5; 4]]
        )
        .is_err());
        // Not normalized.
        assert!(RsRfd::new(
            RsRfdProtocol::Grr,
            &ks,
            1.0,
            vec![vec![0.25; 4], vec![0.9, 0.9, 0.9]]
        )
        .is_err());
        // Negative entry.
        assert!(RsRfd::new(
            RsRfdProtocol::Grr,
            &ks,
            1.0,
            vec![vec![0.25; 4], vec![1.2, -0.1, -0.1]]
        )
        .is_err());
    }

    #[test]
    fn grr_fakes_follow_the_prior() {
        let ks = [4usize, 2];
        let priors = vec![vec![0.7, 0.1, 0.1, 0.1], vec![0.5, 0.5]];
        let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, 1.0, priors).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut fake_counts = [0usize; 4];
        let mut fakes = 0usize;
        for _ in 0..20_000 {
            let r = rsrfd.report(&[3, 1], &mut rng);
            if r.sampled != 0 {
                if let Report::Value(v) = r.values[0] {
                    fake_counts[v as usize] += 1;
                    fakes += 1;
                }
            }
        }
        let f0 = fake_counts[0] as f64 / fakes as f64;
        assert!((f0 - 0.7).abs() < 0.03, "fake head rate {f0}");
    }

    #[test]
    fn variance_decreases_with_n_and_matches_shape() {
        let priors = vec![vec![0.25; 4], vec![1.0 / 3.0; 3]];
        for protocol in RsRfdProtocol::ALL {
            let rsrfd = RsRfd::new(protocol, &[4, 3], 1.0, priors.clone()).unwrap();
            let v1 = rsrfd.variance(0, 0, 0.2, 500);
            let v2 = rsrfd.variance(0, 0, 0.2, 5000);
            assert!(v1 > 0.0);
            assert!((v1 / v2 - 10.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_priors_reduce_to_rsfd_estimates() {
        // With f̃ = 1/k, Eq. (6) must coincide with the RS+FD[GRR] estimator.
        use super::super::rsfd::{RsFd, RsFdProtocol};
        let ks = [4usize, 3];
        let uniform = vec![vec![0.25; 4], vec![1.0 / 3.0; 3]];
        let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, 1.0, uniform).unwrap();
        let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let tuples: Vec<Vec<u32>> = (0..5000).map(|i| vec![(i % 4) as u32, 0]).collect();
        let reports: Vec<MultidimReport> =
            tuples.iter().map(|t| rsrfd.report(t, &mut rng)).collect();
        let a = rsrfd.estimate(&reports);
        let b = rsfd.estimate(&reports);
        for j in 0..2 {
            for v in 0..ks[j] {
                assert!(
                    (a[j][v] - b[j][v]).abs() < 1e-9,
                    "attr {j} value {v}: {} vs {}",
                    a[j][v],
                    b[j][v]
                );
            }
        }
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(RsRfdProtocol::Grr.name(), "RS+RFD[GRR]");
        assert_eq!(
            RsRfdProtocol::UeR(UeMode::Optimized).name(),
            "RS+RFD[OUE-r]"
        );
    }
}
