//! The mixed categorical+numeric collection solution: sample-`k`-of-`d`
//! budget split across heterogeneous dimensions (after Wang et al.,
//! *"Collecting and Analyzing Multidimensional Data with LDP"*, ICDE 2019).
//!
//! Each user samples `sample_k` of the `d` dimensions without replacement
//! and sanitizes every sampled dimension with budget `ε / sample_k`:
//! categorical dimensions through a frequency oracle
//! (`ldp_protocols::Oracle`), numeric `[-1, 1]` dimensions through a
//! [`NumericOracle`] mechanism (Duchi / PM / HM). The server scales each
//! dimension's estimate by its own contributing report count `n_j`
//! (`E[n_j] = n · sample_k / d`), so frequency estimates stay unbiased and
//! numeric means are plain averages of unbiased per-report values.
//!
//! Numeric dimensions are marked in the `ks` domain vector with the sentinel
//! cardinality `0` (a categorical domain is always ≥ 2), so one `Vec<usize>`
//! describes the whole heterogeneous schema everywhere a solution's `ks()`
//! already travels — aggregators, the wire fingerprint, the compact batch
//! validator.

use ldp_protocols::{FrequencyOracle, Oracle, ProtocolError, ProtocolKind, Report};
use rand::{Rng, RngCore};

use crate::numeric::{DynNumeric, NumericKind, NumericOracle, NumericReport};

use super::{EstimatorSpec, MultidimAggregator};

/// Sentinel cardinality marking a numeric dimension in a mixed `ks` vector.
pub const NUMERIC_DIM: usize = 0;

/// Configuration of a mixed solution: which oracle family serves the
/// categorical dimensions, which mechanism the numeric ones, and how many
/// dimensions each user reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedKind {
    /// Frequency-oracle family for the categorical dimensions.
    pub protocol: ProtocolKind,
    /// Numeric mechanism for the `[-1, 1]` dimensions.
    pub numeric: NumericKind,
    /// Dimensions sampled (without replacement) per user; each gets
    /// `ε / sample_k`.
    pub sample_k: usize,
}

/// One sanitized entry of a mixed report.
#[derive(Debug, Clone, PartialEq)]
pub enum MixedEntry {
    /// A categorical dimension's frequency-oracle report.
    Cat(Report),
    /// A numeric dimension's fixed-point mechanism output.
    Num(NumericReport),
}

/// One mixed message: the sampled dimensions (disclosed, ascending) with one
/// sanitized entry each.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedReport {
    /// `(dimension index, entry)` pairs, strictly ascending by dimension.
    pub entries: Vec<(usize, MixedEntry)>,
}

/// Mixed categorical+numeric solution over `d` heterogeneous dimensions.
#[derive(Debug, Clone)]
pub struct Mixed {
    kind: MixedKind,
    epsilon: f64,
    ks: Vec<usize>,
    /// Per-dimension oracle at `ε / sample_k` (categorical dims only).
    oracles: Vec<Option<Oracle>>,
    /// The shared numeric mechanism at `ε / sample_k`.
    numeric: DynNumeric,
}

impl Mixed {
    /// Builds the solution over the heterogeneous schema `ks` (categorical
    /// cardinalities ≥ 2, numeric dims as [`NUMERIC_DIM`]) with per-user
    /// budget `epsilon`.
    pub fn new(kind: MixedKind, ks: &[usize], epsilon: f64) -> Result<Self, ProtocolError> {
        ldp_protocols::validate_epsilon(epsilon)?;
        if ks.len() < 2 {
            return Err(ProtocolError::InvalidPrior {
                reason: format!("mixed solutions need d >= 2 dimensions, got {}", ks.len()),
            });
        }
        if kind.sample_k == 0 || kind.sample_k > ks.len() {
            return Err(ProtocolError::InvalidPrior {
                reason: format!(
                    "sample_k must lie in 1..=d = {}, got {}",
                    ks.len(),
                    kind.sample_k
                ),
            });
        }
        if !ks.contains(&NUMERIC_DIM) {
            return Err(ProtocolError::InvalidPrior {
                reason: "mixed solutions need at least one numeric dimension \
                         (cardinality 0 sentinel); use SPL/SMP for purely \
                         categorical schemas"
                    .to_string(),
            });
        }
        let eps_dim = epsilon / kind.sample_k as f64;
        let oracles = ks
            .iter()
            .map(|&k| {
                if k == NUMERIC_DIM {
                    Ok(None)
                } else {
                    kind.protocol.build(k, eps_dim).map(Some)
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let numeric = kind.numeric.build(eps_dim)?;
        Ok(Mixed {
            kind,
            epsilon,
            ks: ks.to_vec(),
            oracles,
            numeric,
        })
    }

    /// The configuration this solution was built with.
    pub fn mixed_kind(&self) -> MixedKind {
        self.kind
    }

    /// Per-user privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Budget applied to each sampled dimension: `ε / sample_k`.
    pub fn epsilon_per_dim(&self) -> f64 {
        self.epsilon / self.kind.sample_k as f64
    }

    /// Number of dimensions `d`.
    pub fn d(&self) -> usize {
        self.ks.len()
    }

    /// The heterogeneous schema (0 marks a numeric dimension).
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// Whether dimension `j` is numeric.
    pub fn is_numeric(&self, j: usize) -> bool {
        self.ks[j] == NUMERIC_DIM
    }

    /// The numeric mechanism (at `ε / sample_k`) shared by every numeric
    /// dimension — exposed for analytic variance bands and the adversary's
    /// likelihood computations.
    pub fn numeric_oracle(&self) -> &DynNumeric {
        &self.numeric
    }

    /// The frequency oracle of categorical dimension `j` (None for numeric
    /// dimensions).
    pub fn oracle(&self, j: usize) -> Option<&Oracle> {
        self.oracles[j].as_ref()
    }

    /// Analytic variance of the dimension-`j` numeric mean estimate at
    /// population size `n`, for a user whose true value is `t`:
    /// `Var_mech(t) / n_j` with `n_j = n · sample_k / d` expected reports.
    pub fn numeric_mean_variance(&self, t: f64, n: usize) -> f64 {
        let n_j = n as f64 * self.kind.sample_k as f64 / self.d() as f64;
        self.numeric.variance(t) / n_j
    }

    /// Client-side sanitization: samples `sample_k` dimensions without
    /// replacement and sanitizes each at `ε / sample_k`.
    ///
    /// `cat` holds the categorical dimensions' values in dimension order
    /// (length = number of categorical dims); `num` the numeric dimensions'
    /// `[-1, 1]` values likewise. NaN, ±∞ or out-of-range numeric inputs are
    /// a typed [`ProtocolError::InvalidNumericInput`] — nothing is sent.
    pub fn report_mixed<R: Rng + ?Sized>(
        &self,
        cat: &[u32],
        num: &[f64],
        rng: &mut R,
    ) -> Result<MixedReport, ProtocolError> {
        let mut rng = rng;
        self.report_mixed_dyn(cat, num, &mut rng)
    }

    /// Object-safe twin of [`Mixed::report_mixed`].
    pub fn report_mixed_dyn(
        &self,
        cat: &[u32],
        num: &[f64],
        rng: &mut dyn RngCore,
    ) -> Result<MixedReport, ProtocolError> {
        let n_cat = self.ks.iter().filter(|&&k| k != NUMERIC_DIM).count();
        assert_eq!(cat.len(), n_cat, "categorical tuple width mismatch");
        assert_eq!(num.len(), self.d() - n_cat, "numeric tuple width mismatch");
        // Validate *every* numeric input before burning any randomness, so a
        // bad value can never half-send a report.
        for &t in num {
            crate::numeric::validate_numeric_input(t)?;
        }
        let mut dims = rand::seq::index::sample(rng, self.d(), self.kind.sample_k).into_vec();
        // Canonical ascending order: the wire encoding, the aggregator and
        // the equivalence tests all rely on one normal form per report.
        dims.sort_unstable();
        let mut entries = Vec::with_capacity(dims.len());
        for j in dims {
            let entry = if self.is_numeric(j) {
                let t = num[self.num_index(j)];
                MixedEntry::Num(self.numeric.sanitize(t, rng)?)
            } else {
                let v = cat[self.cat_index(j)];
                let oracle = self.oracles[j].as_ref().expect("categorical dim");
                if v as usize >= self.ks[j] {
                    return Err(ProtocolError::ValueOutOfRange {
                        value: v,
                        domain: self.ks[j],
                    });
                }
                MixedEntry::Cat(oracle.randomize(v, rng))
            };
            entries.push((j, entry));
        }
        Ok(MixedReport { entries })
    }

    /// Position of categorical dimension `j` within a `cat` slice.
    fn cat_index(&self, j: usize) -> usize {
        self.ks[..j].iter().filter(|&&k| k != NUMERIC_DIM).count()
    }

    /// Position of numeric dimension `j` within a `num` slice.
    fn num_index(&self, j: usize) -> usize {
        self.ks[..j].iter().filter(|&&k| k == NUMERIC_DIM).count()
    }

    /// A fresh streaming aggregator: per-dimension Eq. (2) over each
    /// categorical dimension's own `n_j`, exact fixed-point mean over each
    /// numeric dimension's `n_j`.
    pub fn aggregator(&self) -> MultidimAggregator {
        MultidimAggregator::new(
            self.ks.clone(),
            EstimatorSpec::Mixed {
                oracles: self.oracles.clone(),
                numeric: self.numeric,
                sample_k: self.kind.sample_k,
            },
        )
    }

    /// Batch estimation convenience over buffered reports.
    pub fn estimate(&self, reports: &[MixedReport]) -> Vec<Vec<f64>> {
        let mut agg = self.aggregator();
        for r in reports {
            agg.absorb_mixed(r);
        }
        agg.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const KS: [usize; 4] = [4, NUMERIC_DIM, 3, NUMERIC_DIM];

    fn kind() -> MixedKind {
        MixedKind {
            protocol: ProtocolKind::Grr,
            numeric: NumericKind::Piecewise,
            sample_k: 2,
        }
    }

    #[test]
    fn construction_validates_schema_and_budget() {
        assert!(Mixed::new(kind(), &KS, 1.0).is_ok());
        assert!(Mixed::new(kind(), &KS, 0.0).is_err(), "eps = 0");
        assert!(Mixed::new(kind(), &[NUMERIC_DIM], 1.0).is_err(), "d < 2");
        assert!(
            Mixed::new(kind(), &[4, 3], 1.0).is_err(),
            "no numeric dimension"
        );
        assert!(
            Mixed::new(kind(), &[1, NUMERIC_DIM], 1.0).is_err(),
            "categorical k < 2"
        );
        let bad_k = MixedKind {
            sample_k: 5,
            ..kind()
        };
        assert!(Mixed::new(bad_k, &KS, 1.0).is_err(), "sample_k > d");
    }

    #[test]
    fn reports_sample_k_ascending_dimensions() {
        let mixed = Mixed::new(kind(), &KS, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let r = mixed
                .report_mixed(&[1, 2], &[0.5, -0.25], &mut rng)
                .unwrap();
            assert_eq!(r.entries.len(), 2);
            assert!(r.entries[0].0 < r.entries[1].0, "dims must ascend");
            for (j, entry) in &r.entries {
                match entry {
                    MixedEntry::Num(_) => assert!(mixed.is_numeric(*j)),
                    MixedEntry::Cat(_) => assert!(!mixed.is_numeric(*j)),
                }
            }
        }
    }

    #[test]
    fn bad_numeric_inputs_are_typed_errors() {
        let mixed = Mixed::new(kind(), &KS, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for bad in [f64::NAN, f64::INFINITY, -1.5, 2.0] {
            assert!(matches!(
                mixed.report_mixed(&[0, 0], &[bad, 0.0], &mut rng),
                Err(ProtocolError::InvalidNumericInput(_))
            ));
            // Position independence: the second numeric dim too.
            assert!(mixed.report_mixed(&[0, 0], &[0.0, bad], &mut rng).is_err());
        }
        assert!(matches!(
            mixed.report_mixed(&[9, 0], &[0.0, 0.0], &mut rng),
            Err(ProtocolError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn estimates_recover_marginals_and_means() {
        // Attribute 0 (k=4): everyone holds 1; numeric dims hold fixed
        // values; attribute 2 (k=3): half 0, half 2.
        let mixed = Mixed::new(
            MixedKind {
                protocol: ProtocolKind::Grr,
                numeric: NumericKind::Hybrid,
                sample_k: 2,
            },
            &KS,
            4.0,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60_000;
        let reports: Vec<MixedReport> = (0..n)
            .map(|i| {
                let cat = [1u32, if i % 2 == 0 { 0 } else { 2 }];
                mixed.report_mixed(&cat, &[0.4, -0.6], &mut rng).unwrap()
            })
            .collect();
        let est = mixed.estimate(&reports);
        assert!((est[0][1] - 1.0).abs() < 0.1, "cat marginal: {:?}", est[0]);
        assert!((est[2][0] - 0.5).abs() < 0.1);
        assert!((est[2][2] - 0.5).abs() < 0.1);
        assert_eq!(est[1].len(), 1, "numeric dims estimate a single mean");
        assert!((est[1][0] - 0.4).abs() < 0.05, "mean: {:?}", est[1]);
        assert!((est[3][0] + 0.6).abs() < 0.05, "mean: {:?}", est[3]);
    }

    #[test]
    fn works_with_every_oracle_family_and_mechanism() {
        let mut rng = StdRng::seed_from_u64(6);
        for protocol in ProtocolKind::ALL {
            for numeric in NumericKind::ALL {
                let mixed = Mixed::new(
                    MixedKind {
                        protocol,
                        numeric,
                        sample_k: 3,
                    },
                    &[6, NUMERIC_DIM, 4],
                    3.0,
                )
                .unwrap();
                let mut agg = mixed.aggregator();
                for _ in 0..2000 {
                    agg.absorb_mixed(&mixed.report_mixed(&[3, 1], &[0.2], &mut rng).unwrap());
                }
                let est = agg.estimate();
                assert!(
                    est.iter().flatten().all(|f| f.is_finite()),
                    "{protocol}+{numeric}"
                );
                assert!(
                    (est[1][0] - 0.2).abs() < 0.2,
                    "{protocol}+{numeric}: mean {:?}",
                    est[1]
                );
            }
        }
    }
}
