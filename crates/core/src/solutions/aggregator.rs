//! The streaming server side of the multidimensional solutions.
//!
//! [`MultidimAggregator`] mirrors `ldp_protocols::Aggregator` one layer up:
//! it absorbs sanitized reports **one at a time** into `O(Σ_j k_j)`
//! support-count state — peak memory is independent of the number of users —
//! and applies each solution's unbiased estimator on demand. Shards filled in
//! parallel can be [`MultidimAggregator::merge`]d, which is exact: the state
//! is integer counts, so a merged estimate is bit-identical to a single
//! sequential pass over the same reports.
//!
//! ```
//! use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let rsfd = RsFd::new(RsFdProtocol::Grr, &[12, 8, 3], 1.0).unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // Two collection sites absorb their own reports — no buffering — then
//! // the server merges the integer-count shards exactly.
//! let (mut site_a, mut site_b) = (rsfd.aggregator(), rsfd.aggregator());
//! for uid in 0..1_000u32 {
//!     let tuple = [uid % 12, uid % 8, uid % 3];
//!     let shard = if uid % 2 == 0 { &mut site_a } else { &mut site_b };
//!     shard.absorb_tuple(&rsfd.report(&tuple, &mut rng));
//! }
//! let mut server = rsfd.aggregator();
//! server.merge(&site_a);
//! server.merge(&site_b);
//! assert_eq!(server.n(), 1_000);
//! let estimates = server.estimate(); // unbiased, O(Σ k_j) state throughout
//! assert_eq!(estimates.len(), 3);
//! ```

use ldp_protocols::oracle::count_support;
use ldp_protocols::{FrequencyOracle, Oracle, Report};

use crate::numeric::{DynNumeric, NUMERIC_SCALE};

use super::mixed::{MixedEntry, MixedReport};
use super::rsfd::RsFdProtocol;
use super::rsrfd::RsRfdProtocol;
use super::smp::SmpReport;
use super::{MultidimReport, SolutionReport};

/// Which unbiased estimator [`MultidimAggregator::estimate`] applies, plus
/// the per-attribute parameters it needs. Built by the owning solution.
#[derive(Debug, Clone)]
pub(crate) enum EstimatorSpec {
    /// SPL: every report covers every attribute at ε/d; Eq. (2) per attribute
    /// over the global `n`.
    Spl {
        /// Per-attribute (ε/d)-budget oracles (needed to count OLH reports).
        oracles: Vec<Oracle>,
    },
    /// SMP: reports are grouped by disclosed attribute; Eq. (2) per attribute
    /// over that attribute's own `n_j`.
    Smp {
        /// Per-attribute ε-budget oracles.
        oracles: Vec<Oracle>,
    },
    /// RS+FD: the §2.3.2 estimators of the chosen fake-data procedure.
    RsFd {
        /// Fake-data variant.
        protocol: RsFdProtocol,
        /// Per-attribute effective `(p, q)` at the amplified budget.
        pqs: Vec<(f64, f64)>,
    },
    /// RS+RFD: the Eq. (6)/(7) estimators with the configured priors.
    RsRfd {
        /// Protocol variant.
        protocol: RsRfdProtocol,
        /// Per-attribute effective `(p, q)` at the amplified budget.
        pqs: Vec<(f64, f64)>,
        /// Per-attribute fake-data priors `f̃`.
        priors: Vec<Vec<f64>>,
    },
    /// Mixed categorical+numeric: per-dimension Eq. (2) for categorical
    /// dims over their own `n_j`, exact fixed-point means for numeric dims.
    Mixed {
        /// Per-dimension `(ε / sample_k)`-budget oracles (None for numeric
        /// dims).
        oracles: Vec<Option<Oracle>>,
        /// The numeric mechanism (at `ε / sample_k`).
        numeric: DynNumeric,
        /// Dimensions sampled per user.
        sample_k: usize,
    },
}

impl EstimatorSpec {
    /// Whether two specs describe the same estimator configuration (merge
    /// compatibility).
    fn same_config(&self, other: &EstimatorSpec) -> bool {
        fn same_oracles(a: &[Oracle], b: &[Oracle]) -> bool {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| {
                    x.kind() == y.kind()
                        && x.domain_size() == y.domain_size()
                        && x.epsilon() == y.epsilon()
                })
        }
        match (self, other) {
            (EstimatorSpec::Spl { oracles: a }, EstimatorSpec::Spl { oracles: b }) => {
                same_oracles(a, b)
            }
            (EstimatorSpec::Smp { oracles: a }, EstimatorSpec::Smp { oracles: b }) => {
                same_oracles(a, b)
            }
            (
                EstimatorSpec::RsFd {
                    protocol: pa,
                    pqs: qa,
                },
                EstimatorSpec::RsFd {
                    protocol: pb,
                    pqs: qb,
                },
            ) => pa == pb && qa == qb,
            (
                EstimatorSpec::RsRfd {
                    protocol: pa,
                    pqs: qa,
                    priors: ra,
                },
                EstimatorSpec::RsRfd {
                    protocol: pb,
                    pqs: qb,
                    priors: rb,
                },
            ) => pa == pb && qa == qb && ra == rb,
            (
                EstimatorSpec::Mixed {
                    oracles: oa,
                    numeric: na,
                    sample_k: ka,
                },
                EstimatorSpec::Mixed {
                    oracles: ob,
                    numeric: nb,
                    sample_k: kb,
                },
            ) => {
                na == nb
                    && ka == kb
                    && oa.len() == ob.len()
                    && oa.iter().zip(ob).all(|(x, y)| match (x, y) {
                        (None, None) => true,
                        (Some(x), Some(y)) => {
                            x.kind() == y.kind()
                                && x.domain_size() == y.domain_size()
                                && x.epsilon() == y.epsilon()
                        }
                        _ => false,
                    })
            }
            _ => false,
        }
    }
}

/// Adds one fake-data report entry (attribute `j`, for diagnostics) to its
/// attribute's counts: a `Value` counts itself, `Bits` counts every set bit.
/// The counting path shared by [`MultidimAggregator::absorb_tuple`] and the
/// tests' batch reference `support_counts`; the oracle-aware sibling for
/// SPL/SMP reports is `ldp_protocols::oracle::count_support`.
///
/// Out-of-domain entries trip a `debug_assert` so malformed reports fail
/// loudly in tests; release builds skip them.
pub(crate) fn count_fake_data_entry(counts: &mut [u64], j: usize, rep: &Report) {
    match rep {
        Report::Value(v) => {
            debug_assert!(
                (*v as usize) < counts.len(),
                "attr {j}: report value {v} outside domain of size {}",
                counts.len()
            );
            if let Some(c) = counts.get_mut(*v as usize) {
                *c += 1;
            }
        }
        Report::Bits(bits) => {
            debug_assert_eq!(
                bits.len(),
                counts.len(),
                "attr {j}: bit-vector width does not match the domain"
            );
            for b in bits.ones() {
                if let Some(c) = counts.get_mut(b) {
                    *c += 1;
                }
            }
        }
        // RS+FD tuples never carry hashed/subset entries.
        other => {
            debug_assert!(false, "attr {j}: unexpected report shape {other:?}");
        }
    }
}

/// Streaming, mergeable server-side aggregator for all four collection
/// solutions.
///
/// Obtain one from the owning solution —
/// [`MultidimSolution::aggregator`](super::MultidimSolution::aggregator),
/// [`Spl::aggregator`](super::Spl::aggregator),
/// [`Smp::aggregator`](super::Smp::aggregator) or
/// [`DynSolution::aggregator`](super::DynSolution::aggregator) — absorb each
/// sanitized report as it arrives, and call
/// [`estimate`](MultidimAggregator::estimate) at any point:
///
/// ```
/// use ldp_core::solutions::{RsFd, RsFdProtocol, MultidimSolution};
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let rsfd = RsFd::new(RsFdProtocol::Grr, &[4, 3], 1.0).unwrap();
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut agg = rsfd.aggregator();
/// for _ in 0..10_000 {
///     agg.absorb_tuple(&rsfd.report(&[2, 1], &mut rng));
/// }
/// let est = agg.estimate();
/// assert!((est[0][2] - 1.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct MultidimAggregator {
    ks: Vec<usize>,
    /// Support counts `C_j(v)`, one vector per attribute.
    counts: Vec<Vec<u64>>,
    /// Reports contributing to each attribute. Maintained under SMP and the
    /// mixed solution, where each report covers a subset of the dimensions;
    /// every other solution's reports cover all attributes, so their
    /// per-attribute count is just `n`.
    n_attr: Vec<u64>,
    /// Exact fixed-point sums of numeric-dimension reports (mixed solution
    /// only; always zero for categorical dims). `i128` cannot overflow:
    /// |report| ≤ C·2^40 ≲ 2^50 even at tiny ε, so ~2^77 reports fit.
    num_sums: Vec<i128>,
    /// Total reports absorbed.
    n: u64,
    spec: EstimatorSpec,
}

impl MultidimAggregator {
    pub(crate) fn new(ks: Vec<usize>, spec: EstimatorSpec) -> Self {
        let counts = ks.iter().map(|&k| vec![0u64; k]).collect();
        let n_attr = vec![0; ks.len()];
        let num_sums = vec![0; ks.len()];
        MultidimAggregator {
            ks,
            counts,
            n_attr,
            num_sums,
            n: 0,
            spec,
        }
    }

    /// Whether dimension `j` is a numeric `[-1, 1]` dimension (mixed
    /// solution only; always false elsewhere). Numeric dimensions estimate a
    /// single mean instead of a frequency vector and must not be projected
    /// onto the probability simplex.
    pub fn is_numeric_dim(&self, j: usize) -> bool {
        matches!(&self.spec, EstimatorSpec::Mixed { oracles, .. } if oracles[j].is_none())
    }

    /// Domain sizes `k_j`.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// Total number of absorbed reports.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Raw support counts per attribute.
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Exact fixed-point report sums per dimension (non-zero only on the
    /// numeric dimensions of a mixed solution). Exposed so equivalence tests
    /// can assert bit-exact numeric aggregation, not just estimates.
    pub fn num_sums(&self) -> &[i128] {
        &self.num_sums
    }

    /// Absorbs any solution's report, dispatching on its shape.
    ///
    /// # Panics
    /// Panics when the report shape does not belong to the solution this
    /// aggregator was built for (e.g. an SMP report fed to an RS+FD
    /// aggregator).
    pub fn absorb(&mut self, report: &SolutionReport) {
        match report {
            SolutionReport::Full(reports) => self.absorb_full(reports),
            SolutionReport::Smp(report) => self.absorb_smp(report),
            SolutionReport::Tuple(report) => self.absorb_tuple(report),
            SolutionReport::Mixed(report) => self.absorb_mixed(report),
        }
    }

    /// Absorbs one mixed categorical+numeric report: each disclosed
    /// dimension's entry is counted (categorical) or summed exactly in fixed
    /// point (numeric).
    pub fn absorb_mixed(&mut self, report: &MixedReport) {
        let EstimatorSpec::Mixed {
            oracles, sample_k, ..
        } = &self.spec
        else {
            panic!("absorb_mixed: this aggregator does not serve mixed reports");
        };
        assert_eq!(
            report.entries.len(),
            *sample_k,
            "mixed report must carry exactly sample_k entries"
        );
        self.n += 1;
        for (j, entry) in &report.entries {
            assert!(*j < self.ks.len(), "dimension index out of range");
            self.n_attr[*j] += 1;
            match entry {
                MixedEntry::Cat(rep) => {
                    let oracle = oracles[*j]
                        .as_ref()
                        .expect("categorical entry on a numeric dimension");
                    count_support(oracle, &mut self.counts[*j], rep);
                }
                MixedEntry::Num(y) => {
                    assert!(
                        oracles[*j].is_none(),
                        "numeric entry on a categorical dimension"
                    );
                    self.num_sums[*j] += y.raw() as i128;
                }
            }
        }
    }

    /// Absorbs one SPL report: one sanitized value per attribute.
    pub fn absorb_full(&mut self, reports: &[Report]) {
        let EstimatorSpec::Spl { oracles } = &self.spec else {
            panic!("absorb_full: this aggregator does not serve SPL reports");
        };
        debug_assert_eq!(reports.len(), self.ks.len(), "tuple width mismatch");
        self.n += 1;
        for ((counts, oracle), report) in self.counts.iter_mut().zip(oracles).zip(reports) {
            count_support(oracle, counts, report);
        }
    }

    /// Absorbs one SMP report: a disclosed attribute plus its ε-LDP report.
    pub fn absorb_smp(&mut self, report: &SmpReport) {
        let EstimatorSpec::Smp { oracles } = &self.spec else {
            panic!("absorb_smp: this aggregator does not serve SMP reports");
        };
        assert!(report.attr < self.ks.len(), "attribute index out of range");
        self.n += 1;
        self.n_attr[report.attr] += 1;
        count_support(
            &oracles[report.attr],
            &mut self.counts[report.attr],
            &report.report,
        );
    }

    /// Absorbs a whole [`CompactBatch`](super::CompactBatch) by counting
    /// support directly from the encoded words — no report is ever
    /// rematerialized and nothing is allocated. Bit-identical to absorbing
    /// each decoded report through [`MultidimAggregator::absorb`]; this is
    /// the ingestion service's per-message hot path, amortizing the shape
    /// dispatch across the batch.
    ///
    /// # Panics
    /// Panics when a batch entry's shape does not belong to the solution
    /// this aggregator was built for, mirroring
    /// [`MultidimAggregator::absorb`].
    pub fn absorb_compact(&mut self, batch: &super::CompactBatch) {
        let mut cursor = batch.cursor();
        while !cursor.done() {
            let (kind, a, _sampled) = cursor.solution_header();
            match (kind, &self.spec) {
                (0, EstimatorSpec::Spl { oracles }) => {
                    // Hard assert: a width mismatch would desync the cursor.
                    assert_eq!(a, self.ks.len(), "tuple width mismatch");
                    self.n += 1;
                    for (j, (counts, oracle)) in
                        self.counts.iter_mut().zip(oracles).enumerate().take(a)
                    {
                        super::compact::count_entry(counts, Some(oracle), j, &mut cursor);
                    }
                }
                (1, EstimatorSpec::Smp { oracles }) => {
                    assert!(a < self.ks.len(), "attribute index out of range");
                    self.n += 1;
                    self.n_attr[a] += 1;
                    super::compact::count_entry(
                        &mut self.counts[a],
                        Some(&oracles[a]),
                        a,
                        &mut cursor,
                    );
                }
                (2, EstimatorSpec::RsFd { .. } | EstimatorSpec::RsRfd { .. }) => {
                    // Hard assert: a width mismatch would desync the cursor.
                    assert_eq!(a, self.ks.len(), "tuple width mismatch");
                    self.n += 1;
                    for (j, counts) in self.counts.iter_mut().enumerate() {
                        super::compact::count_entry(counts, None, j, &mut cursor);
                    }
                }
                (3, EstimatorSpec::Mixed { oracles, .. }) => {
                    // `a` = number of entries; validated against sample_k by
                    // `CompactBatch::validate_for`.
                    self.n += 1;
                    for _ in 0..a {
                        let dim_word = cursor.next();
                        let subtag = dim_word & 0b11;
                        let j = (dim_word >> 2) as usize;
                        assert!(j < self.ks.len(), "dimension index out of range");
                        self.n_attr[j] += 1;
                        match subtag {
                            0 => {
                                let oracle = oracles[j]
                                    .as_ref()
                                    .expect("categorical entry on a numeric dimension");
                                super::compact::count_entry(
                                    &mut self.counts[j],
                                    Some(oracle),
                                    j,
                                    &mut cursor,
                                );
                            }
                            1 => {
                                assert!(
                                    oracles[j].is_none(),
                                    "numeric entry on a categorical dimension"
                                );
                                self.num_sums[j] += (cursor.next() as i64) as i128;
                            }
                            other => panic!("absorb_compact: invalid mixed subtag {other}"),
                        }
                    }
                }
                (kind, _) => panic!(
                    "absorb_compact: batch entry kind {kind} does not match this \
                     aggregator's solution"
                ),
            }
        }
    }

    /// Absorbs one RS+FD / RS+RFD full-tuple report.
    pub fn absorb_tuple(&mut self, report: &MultidimReport) {
        match &self.spec {
            EstimatorSpec::RsFd { .. } | EstimatorSpec::RsRfd { .. } => {}
            _ => panic!("absorb_tuple: this aggregator does not serve fake-data tuples"),
        }
        debug_assert_eq!(report.values.len(), self.ks.len(), "tuple width mismatch");
        self.n += 1;
        for (j, rep) in report.values.iter().enumerate() {
            count_fake_data_entry(&mut self.counts[j], j, rep);
        }
    }

    /// Folds another shard's counts into this one. Exact: merging and then
    /// estimating is bit-identical to absorbing every report sequentially.
    ///
    /// # Panics
    /// Panics when the shards were built for different solutions or
    /// configurations.
    pub fn merge(&mut self, other: &MultidimAggregator) {
        assert!(
            self.ks == other.ks && self.spec.same_config(&other.spec),
            "cannot merge aggregators with different solution configurations"
        );
        self.n += other.n;
        for (a, b) in self.n_attr.iter_mut().zip(&other.n_attr) {
            *a += b;
        }
        for (a, b) in self.num_sums.iter_mut().zip(&other.num_sums) {
            *a += b;
        }
        for (ca, cb) in self.counts.iter_mut().zip(&other.counts) {
            for (a, b) in ca.iter_mut().zip(cb) {
                *a += b;
            }
        }
    }

    /// Unbiased frequency estimates for every attribute, using the owning
    /// solution's estimator. Attributes without any contributing report
    /// estimate all-zeros.
    pub fn estimate(&self) -> Vec<Vec<f64>> {
        // Per-attribute Eq. (2) shared by SPL (n = every report) and SMP
        // (n = the attribute's own n_j).
        let eq2 = |oracles: &[Oracle], n_of: &dyn Fn(usize) -> u64| -> Vec<Vec<f64>> {
            self.counts
                .iter()
                .enumerate()
                .map(|(j, cj)| {
                    let nj = n_of(j);
                    if nj == 0 {
                        return vec![0.0; cj.len()];
                    }
                    let n = nj as f64;
                    let p = oracles[j].est_p();
                    let q = oracles[j].est_q();
                    let denom = p - q;
                    cj.iter().map(|&c| (c as f64 / n - q) / denom).collect()
                })
                .collect()
        };
        match &self.spec {
            EstimatorSpec::Spl { oracles } => eq2(oracles, &|_| self.n),
            EstimatorSpec::Smp { oracles } => eq2(oracles, &|j| self.n_attr[j]),
            EstimatorSpec::Mixed { oracles, .. } => self
                .counts
                .iter()
                .enumerate()
                .map(|(j, cj)| {
                    let nj = self.n_attr[j];
                    match &oracles[j] {
                        // Numeric dimension: the mean of unbiased per-report
                        // values, computed from the exact fixed-point sum.
                        // Length-1 row = a single mean, not a frequency
                        // vector.
                        None => {
                            if nj == 0 {
                                return vec![0.0];
                            }
                            vec![self.num_sums[j] as f64 / NUMERIC_SCALE as f64 / nj as f64]
                        }
                        // Categorical dimension: Eq. (2) over its own n_j.
                        Some(oracle) => {
                            if nj == 0 {
                                return vec![0.0; cj.len()];
                            }
                            let n = nj as f64;
                            let p = oracle.est_p();
                            let q = oracle.est_q();
                            let denom = p - q;
                            cj.iter().map(|&c| (c as f64 / n - q) / denom).collect()
                        }
                    }
                })
                .collect(),
            EstimatorSpec::RsFd { protocol, pqs } => {
                let n = self.n as f64;
                let d = self.ks.len() as f64;
                self.counts
                    .iter()
                    .enumerate()
                    .map(|(j, cj)| {
                        let k = self.ks[j] as f64;
                        let (p, q) = pqs[j];
                        cj.iter()
                            .map(|&c| {
                                let c = c as f64;
                                if n == 0.0 {
                                    return 0.0;
                                }
                                match protocol {
                                    // f̂ = (C·d·k − n(qk + d − 1)) / (n·k·(p − q))
                                    RsFdProtocol::Grr => {
                                        (c * d * k - n * (q * k + d - 1.0)) / (n * k * (p - q))
                                    }
                                    // f̂ = d(C − nq) / (n(p − q))
                                    RsFdProtocol::UeZ(_) => d * (c - n * q) / (n * (p - q)),
                                    // f̂ = (C·d·k − n(qk + (p−q)(d−1) + qk(d−1)))
                                    //     / (n·k·(p−q))
                                    RsFdProtocol::UeR(_) => {
                                        (c * d * k
                                            - n * (q * k + (p - q) * (d - 1.0) + q * k * (d - 1.0)))
                                            / (n * k * (p - q))
                                    }
                                }
                            })
                            .collect()
                    })
                    .collect()
            }
            EstimatorSpec::RsRfd {
                protocol,
                pqs,
                priors,
            } => {
                let n = self.n as f64;
                let d = self.ks.len() as f64;
                self.counts
                    .iter()
                    .enumerate()
                    .map(|(j, cj)| {
                        let (p, q) = pqs[j];
                        cj.iter()
                            .enumerate()
                            .map(|(v, &c)| {
                                if n == 0.0 {
                                    return 0.0;
                                }
                                let c = c as f64;
                                let prior = priors[j][v];
                                match protocol {
                                    // Eq. (6): f̂ = (dC − n(q + (d−1)f̃)) / (n(p−q)).
                                    RsRfdProtocol::Grr => {
                                        (d * c - n * (q + (d - 1.0) * prior)) / (n * (p - q))
                                    }
                                    // Eq. (7): f̂ = (dC − n(q + (p−q)(d−1)f̃ + q(d−1)))
                                    //              / (n(p−q)).
                                    RsRfdProtocol::UeR(_) => {
                                        (d * c
                                            - n * (q + (p - q) * (d - 1.0) * prior + q * (d - 1.0)))
                                            / (n * (p - q))
                                    }
                                }
                            })
                            .collect()
                    })
                    .collect()
            }
        }
    }

    /// [`MultidimAggregator::estimate`] projected onto the probability
    /// simplex per attribute. Numeric dimensions of a mixed solution are a
    /// mean in `[-1, 1]`, not a frequency vector, and pass through clamped
    /// instead of being projected.
    pub fn estimate_normalized(&self) -> Vec<Vec<f64>> {
        self.estimate()
            .iter()
            .enumerate()
            .map(|(j, e)| {
                if self.is_numeric_dim(j) {
                    e.iter().map(|&m| m.clamp(-1.0, 1.0)).collect()
                } else {
                    ldp_protocols::oracle::normalize_simplex(e)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DynSolution, MultidimSolution, RsFd, RsFdProtocol, Smp, SolutionKind, Spl};
    use ldp_protocols::ProtocolKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sharded_merge_is_bit_identical_to_sequential() {
        let ks = [5usize, 3, 4];
        let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let reports: Vec<_> = (0..900)
            .map(|i| rsfd.report(&[i % 5, i % 3, i % 4].map(|v| v as u32), &mut rng))
            .collect();

        let mut sequential = rsfd.aggregator();
        for r in &reports {
            sequential.absorb_tuple(r);
        }
        let mut shards: Vec<_> = (0..4).map(|_| rsfd.aggregator()).collect();
        for (i, r) in reports.iter().enumerate() {
            shards[i % 4].absorb_tuple(r);
        }
        let mut merged = rsfd.aggregator();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(sequential.n(), merged.n());
        assert_eq!(sequential.counts(), merged.counts());
        let a = sequential.estimate();
        let b = merged.estimate();
        for (ea, eb) in a.iter().flatten().zip(b.iter().flatten()) {
            assert_eq!(
                ea.to_bits(),
                eb.to_bits(),
                "estimates must be bit-identical"
            );
        }
    }

    #[test]
    fn smp_aggregator_tracks_per_attribute_n() {
        let smp = Smp::new(ProtocolKind::Grr, &[3, 4], 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut agg = smp.aggregator();
        for _ in 0..100 {
            agg.absorb_smp(&smp.report_attr(&[1, 2], 0, &mut rng));
        }
        assert_eq!(agg.n(), 100);
        // Attribute 1 never sampled → all-zero estimate, no NaN.
        let est = agg.estimate();
        assert!(est[0].iter().all(|f| f.is_finite()));
        assert_eq!(est[1], vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "different solution configurations")]
    fn merge_rejects_mismatched_solutions() {
        let rsfd = RsFd::new(RsFdProtocol::Grr, &[4, 3], 1.0).unwrap();
        let other = RsFd::new(RsFdProtocol::Grr, &[4, 3], 2.0).unwrap();
        let mut a = rsfd.aggregator();
        a.merge(&other.aggregator());
    }

    #[test]
    #[should_panic(expected = "does not serve SPL")]
    fn absorb_full_rejects_non_spl_aggregator() {
        let smp = Smp::new(ProtocolKind::Grr, &[3, 4], 2.0).unwrap();
        let mut agg = smp.aggregator();
        agg.absorb_full(&[]);
    }

    #[test]
    fn dyn_solution_report_feeds_its_own_aggregator() {
        let ks = vec![4usize, 3];
        let mut rng = StdRng::seed_from_u64(9);
        for kind in [
            SolutionKind::Spl(ProtocolKind::Grr),
            SolutionKind::Smp(ProtocolKind::Oue),
            SolutionKind::RsFd(RsFdProtocol::Grr),
            SolutionKind::RsRfd(super::super::RsRfdProtocol::Grr),
        ] {
            let solution = kind.build(&ks, 2.0).unwrap();
            let mut agg = solution.aggregator();
            for _ in 0..200 {
                agg.absorb(&solution.report(&[1, 2], &mut rng));
            }
            assert_eq!(agg.n(), 200, "{}", solution.name());
            let est = agg.estimate();
            assert_eq!(est.len(), 2);
            assert!(est.iter().flatten().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn spl_aggregator_matches_batch_estimate() {
        let ks = [4usize, 3];
        let spl = Spl::new(ProtocolKind::Olh, &ks, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let reports: Vec<_> = (0..500).map(|_| spl.report(&[2, 1], &mut rng)).collect();
        let batch = spl.estimate(&reports);
        let mut agg = spl.aggregator();
        for r in &reports {
            agg.absorb_full(r);
        }
        let streamed = agg.estimate();
        for (a, b) in batch.iter().flatten().zip(streamed.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dyn_solution_clone_preserves_config() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let clone: DynSolution = solution.clone();
        let mut a = solution.aggregator();
        a.merge(&clone.aggregator());
        assert_eq!(a.n(), 0);
    }
}
