//! The SMP solution (§2.3.1): each user samples one attribute uniformly at
//! random, sanitizes it with the **whole** budget ε, and sends
//! `⟨sampled attribute, ε-LDP report⟩` — disclosing the sampled attribute,
//! which is precisely what the paper's re-identification attack exploits.

use ldp_protocols::{FrequencyOracle, Oracle, ProtocolError, ProtocolKind, Report};
use rand::Rng;

use super::{validate_config, EstimatorSpec, MultidimAggregator};

/// One SMP message: the disclosed attribute index plus its ε-LDP report.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpReport {
    /// The sampled (and disclosed) attribute.
    pub attr: usize,
    /// The ε-LDP report for that attribute.
    pub report: Report,
}

/// SMP solution over `d` attributes with a single frequency-oracle family.
#[derive(Debug, Clone)]
pub struct Smp {
    kind: ProtocolKind,
    epsilon: f64,
    ks: Vec<usize>,
    oracles: Vec<Oracle>,
}

impl Smp {
    /// Builds one ε-budget oracle per attribute.
    pub fn new(kind: ProtocolKind, ks: &[usize], epsilon: f64) -> Result<Self, ProtocolError> {
        validate_config(ks, epsilon)?;
        let oracles = ks
            .iter()
            .map(|&k| kind.build(k, epsilon))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Smp {
            kind,
            epsilon,
            ks: ks.to_vec(),
            oracles,
        })
    }

    /// The frequency-oracle family in use.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// Privacy budget ε (whole budget per report).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of attributes.
    pub fn d(&self) -> usize {
        self.ks.len()
    }

    /// Domain sizes.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// The per-attribute oracle (used by attack code needing protocol
    /// internals, e.g. OLH preimages).
    pub fn oracle(&self, j: usize) -> &Oracle {
        &self.oracles[j]
    }

    /// Samples an attribute uniformly and reports it with the whole budget.
    pub fn report<R: Rng + ?Sized>(&self, tuple: &[u32], rng: &mut R) -> SmpReport {
        let attr = rng.random_range(0..self.d());
        self.report_attr(tuple, attr, rng)
    }

    /// Reports a *fixed* attribute (used by the survey engine to implement
    /// sampling without replacement across surveys).
    ///
    /// # Panics
    /// Panics when `attr >= d` or the tuple width mismatches.
    pub fn report_attr<R: Rng + ?Sized>(
        &self,
        tuple: &[u32],
        attr: usize,
        rng: &mut R,
    ) -> SmpReport {
        assert_eq!(tuple.len(), self.d(), "tuple width mismatch");
        assert!(attr < self.d(), "attribute index out of range");
        SmpReport {
            attr,
            report: self.oracles[attr].randomize(tuple[attr], rng),
        }
    }

    /// A fresh streaming aggregator configured with the per-attribute
    /// full-budget Eq. (2) estimators over each attribute's own `n_j`.
    pub fn aggregator(&self) -> MultidimAggregator {
        MultidimAggregator::new(
            self.ks.clone(),
            EstimatorSpec::Smp {
                oracles: self.oracles.clone(),
            },
        )
    }

    /// Batch server-side estimation: one streaming pass over the buffered
    /// reports, grouped by disclosed attribute with its own `n_j`.
    pub fn estimate(&self, reports: &[SmpReport]) -> Vec<Vec<f64>> {
        let mut agg = self.aggregator();
        for r in reports {
            agg.absorb_smp(r);
        }
        agg.estimate()
    }

    /// [`Smp::estimate`] projected onto the probability simplex.
    pub fn estimate_normalized(&self, reports: &[SmpReport]) -> Vec<Vec<f64>> {
        self.estimate(reports)
            .iter()
            .map(|e| ldp_protocols::oracle::normalize_simplex(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_population(n: usize) -> Vec<Vec<u32>> {
        // Attribute 0 (k=4): everyone holds 1. Attribute 1 (k=3): half 0, half 2.
        (0..n)
            .map(|i| vec![1u32, if i % 2 == 0 { 0 } else { 2 }])
            .collect()
    }

    #[test]
    fn estimates_recover_marginals() {
        let smp = Smp::new(ProtocolKind::Grr, &[4, 3], 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let reports: Vec<SmpReport> = toy_population(40_000)
            .iter()
            .map(|t| smp.report(t, &mut rng))
            .collect();
        let est = smp.estimate(&reports);
        assert!((est[0][1] - 1.0).abs() < 0.05, "est {est:?}");
        assert!((est[1][0] - 0.5).abs() < 0.05);
        assert!((est[1][2] - 0.5).abs() < 0.05);
        assert!(est[1][1].abs() < 0.05);
    }

    #[test]
    fn sampling_is_roughly_uniform_over_attributes() {
        let smp = Smp::new(ProtocolKind::Oue, &[4, 3, 5], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            let r = smp.report(&[0, 0, 0], &mut rng);
            counts[r.attr] += 1;
        }
        for c in counts {
            assert!((c as f64 / 9000.0 - 1.0 / 3.0).abs() < 0.03, "{counts:?}");
        }
    }

    #[test]
    fn report_attr_reports_requested_attribute() {
        let smp = Smp::new(ProtocolKind::Sue, &[4, 3], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let r = smp.report_attr(&[2, 1], 1, &mut rng);
        assert_eq!(r.attr, 1);
        match r.report {
            Report::Bits(b) => assert_eq!(b.len(), 3),
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn works_with_every_protocol_kind() {
        let mut rng = StdRng::seed_from_u64(4);
        for kind in ProtocolKind::ALL {
            let smp = Smp::new(kind, &[6, 4], 2.0).unwrap();
            let reports: Vec<SmpReport> =
                (0..4000).map(|_| smp.report(&[3, 1], &mut rng)).collect();
            let est = smp.estimate(&reports);
            assert!(
                (est[0][3] - 1.0).abs() < 0.15,
                "{kind}: est[0] = {:?}",
                est[0]
            );
            assert!(
                (est[1][1] - 1.0).abs() < 0.15,
                "{kind}: est[1] = {:?}",
                est[1]
            );
        }
    }

    #[test]
    #[should_panic(expected = "attribute index")]
    fn report_attr_rejects_out_of_range() {
        let smp = Smp::new(ProtocolKind::Grr, &[4, 3], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        smp.report_attr(&[0, 0], 2, &mut rng);
    }
}
