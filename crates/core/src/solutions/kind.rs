//! Runtime solution selection: [`SolutionKind`] + [`DynSolution`], mirroring
//! `ldp_protocols::{ProtocolKind, Oracle}` one layer up.
//!
//! `DynSolution` erases both the concrete solution type and the `R: Rng`
//! generic of the client side (randomness enters through `&mut dyn RngCore`),
//! so sweeps, pipelines and services can pick the collection solution at
//! runtime and drive it through one object-safe surface.

use ldp_protocols::{ProtocolError, ProtocolKind, Report};
use rand::RngCore;

use super::mixed::{Mixed, MixedKind, MixedReport};
use super::rsfd::{RsFd, RsFdProtocol};
use super::rsrfd::{RsRfd, RsRfdProtocol};
use super::smp::{Smp, SmpReport};
use super::spl::Spl;
use super::{MultidimAggregator, MultidimReport, MultidimSolution};

/// One sanitized client message, covering every solution's report shape.
#[derive(Debug, Clone, PartialEq)]
pub enum SolutionReport {
    /// SPL: one (ε/d)-LDP report per attribute; nothing is hidden.
    Full(Vec<Report>),
    /// SMP: the disclosed sampled attribute plus its ε-LDP report.
    Smp(SmpReport),
    /// RS+FD / RS+RFD: a full fake-data tuple with a hidden sampled
    /// attribute.
    Tuple(MultidimReport),
    /// Mixed categorical+numeric: `sample_k` disclosed dimensions, each with
    /// a frequency-oracle or fixed-point numeric entry.
    Mixed(MixedReport),
}

/// The four collection solutions of the paper, as a plain enum for sweeps
/// and runtime configuration (the counterpart of [`ProtocolKind`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolutionKind {
    /// SPL over one frequency-oracle family at ε/d per attribute.
    Spl(ProtocolKind),
    /// SMP over one frequency-oracle family at the full ε.
    Smp(ProtocolKind),
    /// RS+FD with the given fake-data procedure.
    RsFd(RsFdProtocol),
    /// RS+RFD with the given protocol (priors via
    /// [`SolutionKind::build_with_priors`], uniform otherwise).
    RsRfd(RsRfdProtocol),
    /// Mixed categorical+numeric sample-`k`-of-`d` collection (numeric
    /// dimensions marked with cardinality 0 in `ks`).
    Mixed(MixedKind),
}

impl SolutionKind {
    /// Paper-style display name, e.g. `"SPL[GRR]"` or `"RS+FD[OUE-z]"`.
    pub fn name(self) -> String {
        match self {
            SolutionKind::Spl(kind) => format!("SPL[{}]", kind.name()),
            SolutionKind::Smp(kind) => format!("SMP[{}]", kind.name()),
            SolutionKind::RsFd(protocol) => protocol.name(),
            SolutionKind::RsRfd(protocol) => protocol.name(),
            SolutionKind::Mixed(m) => format!(
                "MIXED[{}+{},k={}]",
                m.protocol.name(),
                m.numeric.name(),
                m.sample_k
            ),
        }
    }

    /// Builds the solution for domain sizes `ks` and per-user budget
    /// `epsilon` — the single construction path for every solution. RS+RFD
    /// defaults to uniform priors (making it estimator-equivalent to RS+FD);
    /// use [`SolutionKind::build_with_priors`] to supply real ones.
    pub fn build(self, ks: &[usize], epsilon: f64) -> Result<DynSolution, ProtocolError> {
        Ok(match self {
            SolutionKind::Spl(kind) => DynSolution::Spl(Spl::new(kind, ks, epsilon)?),
            SolutionKind::Smp(kind) => DynSolution::Smp(Smp::new(kind, ks, epsilon)?),
            SolutionKind::RsFd(protocol) => DynSolution::RsFd(RsFd::new(protocol, ks, epsilon)?),
            SolutionKind::RsRfd(protocol) => {
                let uniform: Vec<Vec<f64>> = ks.iter().map(|&k| vec![1.0 / k as f64; k]).collect();
                DynSolution::RsRfd(RsRfd::new(protocol, ks, epsilon, uniform)?)
            }
            SolutionKind::Mixed(m) => DynSolution::Mixed(Mixed::new(m, ks, epsilon)?),
        })
    }

    /// [`SolutionKind::build`] with explicit per-attribute fake-data priors.
    /// Only RS+RFD consumes priors; passing them to any other solution is
    /// rejected so a misconfigured sweep fails loudly.
    pub fn build_with_priors(
        self,
        ks: &[usize],
        epsilon: f64,
        priors: Vec<Vec<f64>>,
    ) -> Result<DynSolution, ProtocolError> {
        match self {
            SolutionKind::RsRfd(protocol) => Ok(DynSolution::RsRfd(RsRfd::new(
                protocol, ks, epsilon, priors,
            )?)),
            other => Err(ProtocolError::InvalidPrior {
                reason: format!("{} does not take fake-data priors", other.name()),
            }),
        }
    }
}

impl std::fmt::Display for SolutionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Enum dispatcher over the concrete solutions (the counterpart of
/// `ldp_protocols::Oracle`): one object-safe client/server surface with the
/// solution chosen at runtime.
#[derive(Debug, Clone)]
pub enum DynSolution {
    /// See [`Spl`].
    Spl(Spl),
    /// See [`Smp`].
    Smp(Smp),
    /// See [`RsFd`].
    RsFd(RsFd),
    /// See [`RsRfd`].
    RsRfd(RsRfd),
    /// See [`Mixed`].
    Mixed(Mixed),
}

impl DynSolution {
    /// The solution family of this instance.
    pub fn kind(&self) -> SolutionKind {
        match self {
            DynSolution::Spl(s) => SolutionKind::Spl(s.kind()),
            DynSolution::Smp(s) => SolutionKind::Smp(s.kind()),
            DynSolution::RsFd(s) => SolutionKind::RsFd(s.protocol()),
            DynSolution::RsRfd(s) => SolutionKind::RsRfd(s.protocol()),
            DynSolution::Mixed(s) => SolutionKind::Mixed(s.mixed_kind()),
        }
    }

    /// Paper-style display name.
    pub fn name(&self) -> String {
        self.kind().name()
    }

    /// Number of attributes `d`.
    pub fn d(&self) -> usize {
        self.ks().len()
    }

    /// Domain sizes `k_j`.
    pub fn ks(&self) -> &[usize] {
        match self {
            DynSolution::Spl(s) => s.ks(),
            DynSolution::Smp(s) => s.ks(),
            DynSolution::RsFd(s) => s.ks(),
            DynSolution::RsRfd(s) => s.ks(),
            DynSolution::Mixed(s) => s.ks(),
        }
    }

    /// User-level privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        match self {
            DynSolution::Spl(s) => s.epsilon(),
            DynSolution::Smp(s) => s.epsilon(),
            DynSolution::RsFd(s) => s.epsilon(),
            DynSolution::RsRfd(s) => s.epsilon(),
            DynSolution::Mixed(s) => s.epsilon(),
        }
    }

    /// Budget actually applied to each sanitized attribute report: ε/d for
    /// SPL, ε for SMP, the amplified ε′ for the fake-data solutions.
    pub fn epsilon_per_report(&self) -> f64 {
        match self {
            DynSolution::Spl(s) => s.epsilon() / s.d() as f64,
            DynSolution::Smp(s) => s.epsilon(),
            DynSolution::RsFd(s) => s.epsilon_amplified(),
            DynSolution::RsRfd(s) => s.epsilon_amplified(),
            DynSolution::Mixed(s) => s.epsilon_per_dim(),
        }
    }

    /// Client-side sanitization of one user tuple. Randomness enters through
    /// `&mut dyn RngCore`, keeping this callable behind any object boundary.
    ///
    /// # Panics
    ///
    /// Panics for [`DynSolution::Mixed`], whose user tuples carry numeric
    /// values a `&[u32]` cannot express — mixed producers must call
    /// [`DynSolution::report_mixed`] instead.
    pub fn report(&self, tuple: &[u32], rng: &mut dyn RngCore) -> SolutionReport {
        match self {
            DynSolution::Spl(s) => SolutionReport::Full(s.report(tuple, rng)),
            DynSolution::Smp(s) => SolutionReport::Smp(s.report(tuple, rng)),
            DynSolution::RsFd(s) => SolutionReport::Tuple(s.report_dyn(tuple, rng)),
            DynSolution::RsRfd(s) => SolutionReport::Tuple(s.report_dyn(tuple, rng)),
            DynSolution::Mixed(_) => {
                panic!("mixed solutions sanitize via DynSolution::report_mixed")
            }
        }
    }

    /// Client-side sanitization of one heterogeneous user tuple: categorical
    /// values in `cat` (dimension order), normalized `[-1, 1]` numeric values
    /// in `num` (dimension order). The purely categorical solutions require
    /// `num` to be empty and delegate to [`DynSolution::report`].
    pub fn report_mixed(
        &self,
        cat: &[u32],
        num: &[f64],
        rng: &mut dyn RngCore,
    ) -> Result<SolutionReport, ProtocolError> {
        match self {
            DynSolution::Mixed(s) => Ok(SolutionReport::Mixed(s.report_mixed_dyn(cat, num, rng)?)),
            _ if !num.is_empty() => Err(ProtocolError::ReportMismatch {
                expected: "categorical solution given numeric values",
            }),
            _ => Ok(self.report(cat, rng)),
        }
    }

    /// A fresh streaming aggregator configured with this solution's
    /// estimator.
    pub fn aggregator(&self) -> MultidimAggregator {
        match self {
            DynSolution::Spl(s) => s.aggregator(),
            DynSolution::Smp(s) => s.aggregator(),
            DynSolution::RsFd(s) => s.aggregator(),
            DynSolution::RsRfd(s) => s.aggregator(),
            DynSolution::Mixed(s) => s.aggregator(),
        }
    }

    /// Batch estimation convenience over buffered reports (prefer streaming
    /// absorption into [`DynSolution::aggregator`] at scale).
    pub fn estimate(&self, reports: &[SolutionReport]) -> Vec<Vec<f64>> {
        let mut agg = self.aggregator();
        for r in reports {
            agg.absorb(r);
        }
        agg.estimate()
    }
}

impl From<Spl> for DynSolution {
    fn from(s: Spl) -> Self {
        DynSolution::Spl(s)
    }
}

impl From<Smp> for DynSolution {
    fn from(s: Smp) -> Self {
        DynSolution::Smp(s)
    }
}

impl From<RsFd> for DynSolution {
    fn from(s: RsFd) -> Self {
        DynSolution::RsFd(s)
    }
}

impl From<RsRfd> for DynSolution {
    fn from(s: RsRfd) -> Self {
        DynSolution::RsRfd(s)
    }
}

impl From<Mixed> for DynSolution {
    fn from(s: Mixed) -> Self {
        DynSolution::Mixed(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kind_roundtrips_through_build() {
        let ks = vec![4usize, 3, 5];
        for kind in [
            SolutionKind::Spl(ProtocolKind::Grr),
            SolutionKind::Smp(ProtocolKind::Sue),
            SolutionKind::RsFd(RsFdProtocol::UeZ(ldp_protocols::UeMode::Optimized)),
            SolutionKind::RsRfd(RsRfdProtocol::Grr),
        ] {
            let solution = kind.build(&ks, 1.5).unwrap();
            assert_eq!(solution.kind(), kind);
            assert_eq!(solution.d(), 3);
            assert_eq!(solution.ks(), &ks[..]);
            assert!((solution.epsilon() - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn build_rejects_bad_parameters() {
        for kind in [
            SolutionKind::Spl(ProtocolKind::Grr),
            SolutionKind::Smp(ProtocolKind::Grr),
            SolutionKind::RsFd(RsFdProtocol::Grr),
            SolutionKind::RsRfd(RsRfdProtocol::Grr),
        ] {
            assert!(kind.build(&[4], 1.0).is_err(), "{kind}: d < 2");
            assert!(kind.build(&[4, 3], 0.0).is_err(), "{kind}: eps = 0");
        }
    }

    #[test]
    fn priors_only_accepted_by_rsrfd() {
        let ks = [4usize, 3];
        let priors: Vec<Vec<f64>> = ks.iter().map(|&k| vec![1.0 / k as f64; k]).collect();
        assert!(SolutionKind::RsRfd(RsRfdProtocol::Grr)
            .build_with_priors(&ks, 1.0, priors.clone())
            .is_ok());
        assert!(SolutionKind::RsFd(RsFdProtocol::Grr)
            .build_with_priors(&ks, 1.0, priors.clone())
            .is_err());
        assert!(SolutionKind::Spl(ProtocolKind::Grr)
            .build_with_priors(&ks, 1.0, priors)
            .is_err());
    }

    #[test]
    fn report_shapes_match_solution_family() {
        let ks = vec![4usize, 3];
        let mut rng = StdRng::seed_from_u64(2);
        let spl = SolutionKind::Spl(ProtocolKind::Grr)
            .build(&ks, 1.0)
            .unwrap();
        assert!(matches!(
            spl.report(&[1, 2], &mut rng),
            SolutionReport::Full(v) if v.len() == 2
        ));
        let smp = SolutionKind::Smp(ProtocolKind::Grr)
            .build(&ks, 1.0)
            .unwrap();
        assert!(matches!(
            smp.report(&[1, 2], &mut rng),
            SolutionReport::Smp(_)
        ));
        let rsfd = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&ks, 1.0)
            .unwrap();
        assert!(matches!(
            rsfd.report(&[1, 2], &mut rng),
            SolutionReport::Tuple(t) if t.values.len() == 2
        ));
    }

    #[test]
    fn works_behind_dyn_rng_core() {
        // The whole point of the redesign: a boxed RNG (e.g. handed across an
        // object boundary) can drive any solution.
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let mut rng: Box<dyn RngCore> = Box::new(StdRng::seed_from_u64(5));
        let report = solution.report(&[0, 1], rng.as_mut());
        assert!(matches!(report, SolutionReport::Tuple(_)));
    }

    #[test]
    fn display_names_follow_paper_convention() {
        assert_eq!(SolutionKind::Spl(ProtocolKind::Grr).name(), "SPL[GRR]");
        assert_eq!(SolutionKind::Smp(ProtocolKind::Oue).name(), "SMP[OUE]");
        assert_eq!(SolutionKind::RsFd(RsFdProtocol::Grr).name(), "RS+FD[GRR]");
        assert_eq!(
            SolutionKind::RsRfd(RsRfdProtocol::Grr).name(),
            "RS+RFD[GRR]"
        );
        assert_eq!(
            SolutionKind::Mixed(MixedKind {
                protocol: ProtocolKind::Grr,
                numeric: crate::numeric::NumericKind::Piecewise,
                sample_k: 2,
            })
            .name(),
            "MIXED[GRR+PM,k=2]"
        );
    }

    #[test]
    fn mixed_kind_builds_and_reports_through_dyn_surface() {
        let kind = SolutionKind::Mixed(MixedKind {
            protocol: ProtocolKind::Grr,
            numeric: crate::numeric::NumericKind::Hybrid,
            sample_k: 2,
        });
        let ks = [4usize, 0, 3];
        let solution = kind.build(&ks, 1.5).unwrap();
        assert_eq!(solution.kind(), kind);
        assert_eq!(solution.ks(), &ks[..]);
        assert!((solution.epsilon_per_report() - 0.75).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(7);
        let report = solution.report_mixed(&[1, 2], &[0.5], &mut rng).unwrap();
        assert!(matches!(report, SolutionReport::Mixed(r) if r.entries.len() == 2));
        // Categorical solutions still flow through report_mixed, but reject
        // numeric values.
        let spl = SolutionKind::Spl(ProtocolKind::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        assert!(matches!(
            spl.report_mixed(&[1, 2], &[], &mut rng),
            Ok(SolutionReport::Full(_))
        ));
        assert!(spl.report_mixed(&[1, 2], &[0.5], &mut rng).is_err());
    }

    #[test]
    #[should_panic(expected = "report_mixed")]
    fn plain_report_panics_for_mixed() {
        let solution = SolutionKind::Mixed(MixedKind {
            protocol: ProtocolKind::Grr,
            numeric: crate::numeric::NumericKind::Duchi,
            sample_k: 1,
        })
        .build(&[4, 0], 1.0)
        .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        solution.report(&[1], &mut rng);
    }
}
