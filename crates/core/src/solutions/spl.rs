//! The naïve SPL solution (§2.3.1): sequential composition — split the budget
//! ε over the `d` attributes and report all of them with ε/d-LDP each. Kept
//! as the utility baseline the paper dismisses for its high estimation error.

use ldp_protocols::{FrequencyOracle, FusedUeGroup, Oracle, ProtocolError, ProtocolKind, Report};
use rand::Rng;

use super::{validate_config, EstimatorSpec, MultidimAggregator};

/// SPL solution over `d` attributes with a single frequency-oracle family.
#[derive(Debug, Clone)]
pub struct Spl {
    kind: ProtocolKind,
    epsilon: f64,
    ks: Vec<usize>,
    oracles: Vec<Oracle>,
    /// Word-fused tuple sanitizer for UE families whose domains pack into one
    /// 64-bit word — every SPL attribute runs at the same ε/d, so UE's
    /// `(p, q)` match across attributes by construction and the whole tuple's
    /// background is one Bernoulli-mask scan (see [`FusedUeGroup`]).
    fused: Option<FusedUeGroup>,
}

impl Spl {
    /// Builds one (ε/d)-budget oracle per attribute.
    pub fn new(kind: ProtocolKind, ks: &[usize], epsilon: f64) -> Result<Self, ProtocolError> {
        validate_config(ks, epsilon)?;
        let per_attr = epsilon / ks.len() as f64;
        let oracles = ks
            .iter()
            .map(|&k| kind.build(k, per_attr))
            .collect::<Result<Vec<_>, _>>()?;
        let fused = oracles
            .iter()
            .map(|o| match o {
                Oracle::Ue(ue) => Some(ue),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .and_then(FusedUeGroup::build);
        Ok(Spl {
            kind,
            epsilon,
            ks: ks.to_vec(),
            oracles,
            fused,
        })
    }

    /// The frequency-oracle family in use.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// Total privacy budget ε (ε/d per attribute).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of attributes.
    pub fn d(&self) -> usize {
        self.ks.len()
    }

    /// Domain sizes.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// The per-attribute (ε/d)-budget oracle (used by attack code needing
    /// protocol internals, e.g. OLH preimages).
    pub fn oracle(&self, j: usize) -> &Oracle {
        &self.oracles[j]
    }

    /// Whether tuple sanitization runs through the word-fused UE path
    /// (exposed so benches and conformance tests can assert which path a
    /// configuration exercises).
    pub fn fused_sanitize(&self) -> bool {
        self.fused.is_some()
    }

    /// Sanitizes the full tuple, one (ε/d)-LDP report per attribute.
    ///
    /// UE families whose domains pack into one 64-bit word fuse the whole
    /// tuple into a single word draw ([`FusedUeGroup`]); everything else
    /// randomizes attribute by attribute. Both paths produce identical
    /// per-report marginals.
    ///
    /// # Panics
    /// Panics on tuple width mismatch.
    pub fn report<R: Rng + ?Sized>(&self, tuple: &[u32], rng: &mut R) -> Vec<Report> {
        assert_eq!(tuple.len(), self.d(), "tuple width mismatch");
        if let Some(fused) = &self.fused {
            let mut out = Vec::with_capacity(self.d());
            fused.randomize_tuple_into(tuple, &mut out, rng);
            return out;
        }
        tuple
            .iter()
            .zip(&self.oracles)
            .map(|(&v, o)| o.randomize(v, rng))
            .collect()
    }

    /// A fresh streaming aggregator configured with the per-attribute
    /// (ε/d)-budget Eq. (2) estimators.
    pub fn aggregator(&self) -> MultidimAggregator {
        MultidimAggregator::new(
            self.ks.clone(),
            EstimatorSpec::Spl {
                oracles: self.oracles.clone(),
            },
        )
    }

    /// Batch server-side estimation: one streaming pass over the buffered
    /// reports (every user contributes to every attribute).
    pub fn estimate(&self, reports: &[Vec<Report>]) -> Vec<Vec<f64>> {
        let mut agg = self.aggregator();
        for tuple in reports {
            agg.absorb_full(tuple);
        }
        agg.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimates_recover_marginals_with_more_noise_than_smp() {
        let ks = [4usize, 3];
        let spl = Spl::new(ProtocolKind::Grr, &ks, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let tuples: Vec<Vec<u32>> = (0..30_000).map(|i| vec![1u32, (i % 3) as u32]).collect();
        let reports: Vec<Vec<Report>> = tuples.iter().map(|t| spl.report(t, &mut rng)).collect();
        let est = spl.estimate(&reports);
        assert!((est[0][1] - 1.0).abs() < 0.1, "est {est:?}");
        assert!((est[1][0] - 1.0 / 3.0).abs() < 0.1);
    }

    #[test]
    fn splits_budget_evenly() {
        let spl = Spl::new(ProtocolKind::Grr, &[4, 3, 5, 2], 2.0).unwrap();
        assert_eq!(spl.d(), 4);
        assert!((spl.epsilon() - 2.0).abs() < 1e-12);
        // Each oracle runs at ε/d = 0.5.
        for o in &spl.oracles {
            assert!((o.epsilon() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn spl_is_noisier_than_smp_at_equal_budget() {
        // The paper's core motivation for SMP: splitting the budget hurts.
        // Compare squared error on a point-mass attribute at equal ε and n.
        let ks = [8usize, 8, 8, 8];
        let eps = 2.0;
        let n = 20_000;
        let mut rng = StdRng::seed_from_u64(7);
        let tuples: Vec<Vec<u32>> = (0..n).map(|_| vec![2u32, 2, 2, 2]).collect();

        let spl = Spl::new(ProtocolKind::Grr, &ks, eps).unwrap();
        let spl_reports: Vec<Vec<Report>> =
            tuples.iter().map(|t| spl.report(t, &mut rng)).collect();
        let spl_est = spl.estimate(&spl_reports);

        let smp = super::super::Smp::new(ProtocolKind::Grr, &ks, eps).unwrap();
        let smp_reports: Vec<_> = tuples.iter().map(|t| smp.report(t, &mut rng)).collect();
        let smp_est = smp.estimate(&smp_reports);

        let err = |est: &[Vec<f64>]| -> f64 {
            est.iter()
                .map(|attr| {
                    attr.iter()
                        .enumerate()
                        .map(|(v, &f)| {
                            let truth = if v == 2 { 1.0 } else { 0.0 };
                            (f - truth) * (f - truth)
                        })
                        .sum::<f64>()
                })
                .sum()
        };
        assert!(
            err(&spl_est) > err(&smp_est),
            "SPL {} should exceed SMP {}",
            err(&spl_est),
            err(&smp_est)
        );
    }

    #[test]
    fn ue_tuples_fuse_only_when_they_pack_into_one_word() {
        // The ingest-bench shape (Σk = 33 ≤ 64) fuses; GRR never does; UE
        // tuples wider than a word fall back to per-oracle randomize.
        let fused = Spl::new(ProtocolKind::Oue, &[16, 8, 5, 4], 1.0).unwrap();
        assert!(fused.fused_sanitize());
        assert!(!Spl::new(ProtocolKind::Grr, &[16, 8, 5, 4], 1.0)
            .unwrap()
            .fused_sanitize());
        let wide = Spl::new(ProtocolKind::Oue, &[40, 40], 1.0).unwrap();
        assert!(!wide.fused_sanitize());
        // Both UE paths still recover a point-mass marginal end to end.
        for spl in [&fused, &wide] {
            let mut rng = StdRng::seed_from_u64(0xF5ED);
            let tuple: Vec<u32> = spl.ks().iter().map(|_| 1u32).collect();
            let reports: Vec<Vec<Report>> =
                (0..40_000).map(|_| spl.report(&tuple, &mut rng)).collect();
            let est = spl.estimate(&reports);
            for (j, attr) in est.iter().enumerate() {
                assert!(
                    (attr[1] - 1.0).abs() < 0.15,
                    "attr {j} (fused={}): est {attr:?}",
                    spl.fused_sanitize()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "tuple width")]
    fn report_rejects_wrong_width() {
        let spl = Spl::new(ProtocolKind::Grr, &[4, 3], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        spl.report(&[0], &mut rng);
    }
}
