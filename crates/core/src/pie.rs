//! The PIE (Personal Information Entropy) relaxed privacy model of
//! Appendix C (Murakami & Takahashi).
//!
//! PIE upper-bounds the mutual information `I(U; Y)` between users and
//! perturbed reports by a parameter α. The experiments select α by fixing a
//! Bayes error probability `β_{U|S}` via Corollary 1
//! (`β ≥ 1 − (α+1)/log2 n` ⇒ `α = (1−β)·log2 n − 1`), then either
//!
//! * **pass through** the value unrandomized when `log2(k_j) ≤ α`
//!   ([35, Proposition 9] — the attribute alone cannot exceed the PIE
//!   budget), or
//! * run an ε-LDP protocol with the largest ε allowed by Proposition 1:
//!   `min(ε, ε²)·log2 e ≤ α`.

/// Per-attribute decision under `(U, α)`-PIE privacy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PieDecision {
    /// `log2(k_j) ≤ α`: report the true value without a local randomizer.
    PassThrough,
    /// Run an ε-LDP frequency oracle with this budget.
    Randomize {
        /// Largest ε satisfying the α bound.
        epsilon: f64,
    },
}

/// α implied by a target Bayes error probability `β_{U|S}` over `n` users:
/// `α = (1 − β)·log2(n) − 1`, clamped to be non-negative.
///
/// # Panics
/// Panics when `β ∉ [0, 1]` or `n < 2`.
pub fn alpha_from_bayes_error(beta: f64, n: usize) -> f64 {
    assert!((0.0..=1.0).contains(&beta), "beta must lie in [0, 1]");
    assert!(n >= 2, "need at least two users");
    ((1.0 - beta) * (n as f64).log2() - 1.0).max(0.0)
}

/// α guaranteed by an ε-LDP mechanism over `n` users and domain size `k`
/// (Proposition 1): `α = min(ε·log2 e, ε²·log2 e, log2 n, log2 k)`.
pub fn alpha_of_ldp(epsilon: f64, n: usize, k: usize) -> f64 {
    let log2e = std::f64::consts::LOG2_E;
    (epsilon * log2e)
        .min(epsilon * epsilon * log2e)
        .min((n as f64).log2())
        .min((k as f64).log2())
}

/// Largest ε such that `min(ε, ε²)·log2(e) ≤ α`.
///
/// For `c = α·ln 2`: when `c ≥ 1` the binding term is ε itself (ε ≥ 1), so
/// ε = c; when `c < 1` the binding term is ε² (ε < 1), so ε = √c. A small
/// floor keeps the budget usable when α ≈ 0.
pub fn epsilon_from_alpha(alpha: f64) -> f64 {
    let c = alpha * std::f64::consts::LN_2;
    let eps = if c >= 1.0 { c } else { c.sqrt() };
    eps.max(1e-3)
}

/// The per-attribute decision for a target Bayes error `β` over `n` users
/// and an attribute with domain size `k`.
pub fn decide(beta: f64, n: usize, k: usize) -> PieDecision {
    let alpha = alpha_from_bayes_error(beta, n);
    if (k as f64).log2() <= alpha {
        PieDecision::PassThrough
    } else {
        PieDecision::Randomize {
            epsilon: epsilon_from_alpha(alpha),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_grows_as_beta_shrinks() {
        let n = 45_222;
        let tight = alpha_from_bayes_error(0.95, n);
        let loose = alpha_from_bayes_error(0.5, n);
        assert!(loose > tight);
        assert!(tight >= 0.0);
    }

    #[test]
    fn alpha_matches_corollary_algebra() {
        // β = 1 − (α+1)/log2(n) round-trips.
        let n = 10_000usize;
        let alpha = 3.0;
        let beta = 1.0 - (alpha + 1.0) / (n as f64).log2();
        assert!((alpha_from_bayes_error(beta, n) - alpha).abs() < 1e-9);
    }

    #[test]
    fn epsilon_from_alpha_branches() {
        // c >= 1: ε = α ln 2.
        let alpha = 5.0;
        let c = alpha * std::f64::consts::LN_2;
        assert!(c >= 1.0);
        assert!((epsilon_from_alpha(alpha) - c).abs() < 1e-12);
        // c < 1: ε = sqrt(c) < 1.
        let alpha = 0.5;
        let c = alpha * std::f64::consts::LN_2;
        assert!((epsilon_from_alpha(alpha) - c.sqrt()).abs() < 1e-12);
        assert!(epsilon_from_alpha(alpha) < 1.0);
    }

    #[test]
    fn epsilon_respects_proposition_bound() {
        for alpha in [0.2, 1.0, 4.0, 9.0] {
            let eps = epsilon_from_alpha(alpha);
            let implied = alpha_of_ldp(eps, usize::MAX >> 1, usize::MAX >> 1);
            assert!(implied <= alpha + 1e-9, "alpha={alpha}: implied {implied}");
        }
    }

    #[test]
    fn small_domains_pass_through() {
        // Adult, β = 0.95: α = 0.05·log2(45222) − 1 ≈ −0.23 → 0 → nothing
        // passes. β = 0.5: α ≈ 6.73 → k ≤ 106 passes.
        let n = 45_222;
        assert!(matches!(decide(0.5, n, 74), PieDecision::PassThrough));
        assert!(matches!(decide(0.5, n, 2), PieDecision::PassThrough));
        // Tight β keeps randomizing even binary attributes.
        assert!(matches!(decide(0.95, n, 2), PieDecision::Randomize { .. }));
    }

    #[test]
    fn decide_randomize_epsilon_is_positive() {
        match decide(0.9, 45_222, 74) {
            PieDecision::Randomize { epsilon } => assert!(epsilon > 0.0),
            other => panic!("expected Randomize, got {other:?}"),
        }
    }
}
