//! The §3.2.4 re-identification attack: matching algorithm `R` and decision
//! algorithm `G`.
//!
//! `R` scores every background record by the number of profile entries it
//! matches (distance = number of mismatches, as the LDP protocols induce no
//! value metric). `G` returns the top-k closest records with random
//! tie-breaking; the attack succeeds when the target's true identity falls in
//! that set.
//!
//! Instead of materializing top-k lists, [`ReidentAttack::hit_in_top_k`]
//! computes the *exact* hit probability of the true record under random
//! tie-breaking and flips a Bernoulli coin: with `B` records strictly better
//! than the true record and `T` records tied with it, the true record enters
//! the top-k iff `B < k`, with probability `min(1, (k − B)/T)`. This is
//! distributionally identical to sorting with random tie-breaks and costs
//! `O(Σ posting-list sizes)` per user via an inverted index.

use std::collections::HashMap;

use ldp_datasets::Dataset;
use rand::Rng;

use crate::profiling::Profile;

/// Inverted index over the adversary's background knowledge `D_BK` (or the
/// partial `D_PK`): posting lists of record ids per (attribute, value).
#[derive(Debug, Clone)]
pub struct ReidentAttack {
    n: usize,
    /// Global attribute id → per-value posting lists.
    postings: HashMap<usize, Vec<Vec<u32>>>,
}

/// Reusable per-thread scratch buffers for the matcher.
#[derive(Debug, Default)]
pub struct MatchScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl ReidentAttack {
    /// Builds the index from `background` over the attribute subset `attrs`
    /// (global attribute ids). Pass all attributes for the FK-RI model and a
    /// random subset for PK-RI.
    ///
    /// # Panics
    /// Panics when `attrs` contains an out-of-range attribute.
    pub fn build(background: &Dataset, attrs: &[usize]) -> Self {
        let n = background.n();
        let mut postings: HashMap<usize, Vec<Vec<u32>>> = HashMap::with_capacity(attrs.len());
        for &j in attrs {
            assert!(j < background.d(), "attribute {j} out of range");
            let mut lists = vec![Vec::new(); background.schema().k(j)];
            for i in 0..n {
                lists[background.value(i, j) as usize].push(i as u32);
            }
            postings.insert(j, lists);
        }
        ReidentAttack { n, postings }
    }

    /// Number of background records.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Attributes available to the matcher.
    pub fn known_attrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.postings.keys().copied()
    }

    /// Whether the true record `true_id` lands in the top-k candidate set for
    /// `profile`, under random tie-breaking (exact in distribution).
    pub fn hit_in_top_k<R: Rng + ?Sized>(
        &self,
        profile: &Profile,
        true_id: u32,
        k: usize,
        scratch: &mut MatchScratch,
        rng: &mut R,
    ) -> bool {
        self.hits_in_top_ks(profile, true_id, &[k], scratch, rng)[0]
    }

    /// [`ReidentAttack::hit_in_top_k`] for several `k` values sharing one
    /// matching pass (the experiments evaluate top-1 and top-10 together).
    ///
    /// Allocating convenience over [`ReidentAttack::hits_into`].
    ///
    /// # Panics
    /// Panics when `ks` is empty or contains 0.
    pub fn hits_in_top_ks<R: Rng + ?Sized>(
        &self,
        profile: &Profile,
        true_id: u32,
        ks: &[usize],
        scratch: &mut MatchScratch,
        rng: &mut R,
    ) -> Vec<bool> {
        let mut hits = vec![false; ks.len()];
        self.hits_into(profile, true_id, ks, scratch, &mut hits, rng);
        hits
    }

    /// Whether the true record lands in the top-k candidate set for each `k`
    /// of `ks`, written into the caller-provided `hits` buffer — the
    /// allocation-free kernel behind [`ReidentAttack::hits_in_top_ks`],
    /// letting sharded evaluators reuse one buffer per worker.
    ///
    /// # Panics
    /// Panics when `ks` is empty, contains 0, or `hits.len() != ks.len()`.
    pub fn hits_into<R: Rng + ?Sized>(
        &self,
        profile: &Profile,
        true_id: u32,
        ks: &[usize],
        scratch: &mut MatchScratch,
        hits: &mut [bool],
        rng: &mut R,
    ) {
        assert!(!ks.is_empty(), "need at least one k");
        assert!(ks.iter().all(|&k| k >= 1), "top-k needs k >= 1");
        assert_eq!(hits.len(), ks.len(), "hits buffer width mismatch");
        if self.n == 0 {
            hits.fill(false);
            return;
        }
        scratch.counts.resize(self.n, 0);

        // Count matches for every record appearing in a relevant posting list.
        let mut usable_entries = 0usize;
        for &(attr, value) in profile.entries() {
            let Some(lists) = self.postings.get(&attr) else {
                continue; // attribute absent from D_PK
            };
            let Some(list) = lists.get(value as usize) else {
                continue;
            };
            usable_entries += 1;
            for &id in list {
                let c = &mut scratch.counts[id as usize];
                if *c == 0 {
                    scratch.touched.push(id);
                }
                *c += 1;
            }
        }

        if usable_entries == 0 {
            // Nothing to match on: the decision is a uniform top-k guess.
            for (slot, &k) in ks.iter().enumerate() {
                hits[slot] = rng.random::<f64>() < k as f64 / self.n as f64;
            }
        } else {
            let c_true = scratch.counts[true_id as usize];
            // Match-count comparison over touched records (counts >= 1).
            let mut better = 0usize;
            let mut tied = 0usize;
            for &id in &scratch.touched {
                let c = scratch.counts[id as usize];
                if c > c_true {
                    better += 1;
                } else if c == c_true {
                    tied += 1;
                }
            }
            if c_true == 0 {
                // All touched records are strictly better; the true record is
                // tied with every untouched one.
                better = scratch.touched.len();
                tied = self.n - better;
            }
            debug_assert!(tied >= 1, "the tie group always contains the true record");
            for (slot, &k) in ks.iter().enumerate() {
                hits[slot] = if better >= k {
                    false
                } else {
                    let slots = (k - better) as f64;
                    slots >= tied as f64 || rng.random::<f64>() < slots / tied as f64
                };
            }
        }

        // Reset scratch for the next user.
        for &id in &scratch.touched {
            scratch.counts[id as usize] = 0;
        }
        scratch.touched.clear();
    }

    /// RID-ACC (%) over per-user profiles, where `profiles[i]` targets the
    /// background record with id `i` (the paper's setting: the collected
    /// population is the background population).
    pub fn rid_acc<R: Rng + ?Sized>(&self, profiles: &[Profile], k: usize, rng: &mut R) -> f64 {
        if profiles.is_empty() {
            return 0.0;
        }
        let mut scratch = MatchScratch::default();
        let hits = profiles
            .iter()
            .enumerate()
            .filter(|(i, p)| self.hit_in_top_k(p, *i as u32, k, &mut scratch, rng))
            .count();
        100.0 * hits as f64 / profiles.len() as f64
    }

    /// Expected RID-ACC (%) of the random-guess baseline: `100·k/n`, or 0
    /// when the background is empty (no record to guess — the former
    /// `100·k/0` returned NaN and poisoned downstream aggregation).
    pub fn baseline(&self, k: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        100.0 * k as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Four-record dataset with distinctive combinations.
    fn background() -> Dataset {
        let schema = Schema::from_cardinalities(&[3, 3]);
        Dataset::new(
            schema,
            vec![
                0, 0, // record 0
                0, 1, // record 1
                1, 2, // record 2
                2, 2, // record 3
            ],
        )
    }

    fn profile(entries: &[(usize, u32)]) -> Profile {
        let mut p = Profile::new();
        for &(a, v) in entries {
            p.observe(a, v);
        }
        p
    }

    #[test]
    fn exact_profile_is_always_top1_when_unique() {
        let ds = background();
        let attack = ReidentAttack::build(&ds, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = MatchScratch::default();
        // Record 3 = (2, 2) is uniquely matched by its own profile.
        let p = profile(&[(0, 2), (1, 2)]);
        for _ in 0..20 {
            assert!(attack.hit_in_top_k(&p, 3, 1, &mut scratch, &mut rng));
        }
        // And never matches record 0 at top-1 (0 matches vs 2).
        for _ in 0..20 {
            assert!(!attack.hit_in_top_k(&p, 0, 1, &mut scratch, &mut rng));
        }
    }

    #[test]
    fn ties_split_probability_evenly() {
        let ds = background();
        let attack = ReidentAttack::build(&ds, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut scratch = MatchScratch::default();
        // Profile (1, 2) on attribute 1 matches records 2 and 3 equally.
        let p = profile(&[(1, 2)]);
        let trials = 4000;
        let hits = (0..trials)
            .filter(|_| attack.hit_in_top_k(&p, 2, 1, &mut scratch, &mut rng))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "tie hit rate {rate}");
    }

    #[test]
    fn empty_profile_falls_back_to_uniform_guess() {
        let ds = background();
        let attack = ReidentAttack::build(&ds, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut scratch = MatchScratch::default();
        let p = Profile::new();
        let trials = 8000;
        let hits = (0..trials)
            .filter(|_| attack.hit_in_top_k(&p, 1, 1, &mut scratch, &mut rng))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.03, "uniform guess rate {rate}");
    }

    #[test]
    fn pk_model_ignores_unknown_attributes() {
        let ds = background();
        // Background only knows attribute 0.
        let attack = ReidentAttack::build(&ds, &[0]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut scratch = MatchScratch::default();
        // Profile only carries attribute 1 → unusable → uniform guess.
        let p = profile(&[(1, 2)]);
        let trials = 8000;
        let hits = (0..trials)
            .filter(|_| attack.hit_in_top_k(&p, 2, 2, &mut scratch, &mut rng))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.03, "k/n = 2/4 expected, got {rate}");
    }

    #[test]
    fn zero_match_profile_ties_with_untouched_records() {
        let ds = background();
        let attack = ReidentAttack::build(&ds, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut scratch = MatchScratch::default();
        // Profile (0→1, 1→0) matches record 2 once (attr 0), record 0 once
        // (attr 1)... records 1 and 3 have 1 and 0 matches respectively:
        // record 0: attr0 0≠1, attr1 0=0 → 1 match
        // record 1: attr0 0≠1, attr1 1≠0 → 0 matches
        // record 2: attr0 1=1, attr1 2≠0 → 1 match
        // record 3: 0 matches.
        // For true record 1 (0 matches): B = 2, T = 2 → top-3 gives
        // probability (3−2)/2 = 0.5.
        let p = profile(&[(0, 1), (1, 0)]);
        let trials = 4000;
        let hits = (0..trials)
            .filter(|_| attack.hit_in_top_k(&p, 1, 3, &mut scratch, &mut rng))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn rid_acc_and_baseline() {
        let ds = background();
        let attack = ReidentAttack::build(&ds, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(6);
        // Perfect profiles re-identify everyone (all records are unique).
        let profiles: Vec<Profile> = (0..4)
            .map(|i| profile(&[(0, ds.value(i, 0)), (1, ds.value(i, 1))]))
            .collect();
        let acc = attack.rid_acc(&profiles, 1, &mut rng);
        assert!((acc - 100.0).abs() < 1e-9);
        assert!((attack.baseline(1) - 25.0).abs() < 1e-12);
        assert!((attack.baseline(2) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_background_baseline_is_zero_not_nan() {
        let ds = Dataset::new(Schema::from_cardinalities(&[3, 3]), vec![]);
        let attack = ReidentAttack::build(&ds, &[0, 1]);
        assert_eq!(attack.n(), 0);
        assert_eq!(attack.baseline(1), 0.0);
        assert_eq!(attack.baseline(10), 0.0);
        // Matching against nothing never hits either.
        let mut rng = StdRng::seed_from_u64(8);
        let mut scratch = MatchScratch::default();
        let p = profile(&[(0, 1)]);
        assert!(!attack.hit_in_top_k(&p, 0, 1, &mut scratch, &mut rng));
    }

    #[test]
    fn hits_into_matches_allocating_wrapper() {
        let ds = background();
        let attack = ReidentAttack::build(&ds, &[0, 1]);
        let mut scratch = MatchScratch::default();
        let p = profile(&[(1, 2)]);
        for seed in 0..50 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let alloc = attack.hits_in_top_ks(&p, 2, &[1, 2, 4], &mut scratch, &mut rng_a);
            let mut buf = [true; 3];
            attack.hits_into(&p, 2, &[1, 2, 4], &mut scratch, &mut buf, &mut rng_b);
            assert_eq!(alloc, buf.to_vec());
        }
    }

    #[test]
    fn scratch_resets_between_users() {
        let ds = background();
        let attack = ReidentAttack::build(&ds, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = MatchScratch::default();
        let p1 = profile(&[(0, 2), (1, 2)]);
        assert!(attack.hit_in_top_k(&p1, 3, 1, &mut scratch, &mut rng));
        // If counts leaked, this second call would see stale matches.
        let p2 = profile(&[(0, 0), (1, 1)]);
        assert!(attack.hit_in_top_k(&p2, 1, 1, &mut scratch, &mut rng));
        assert!(scratch.touched.is_empty());
        assert!(scratch.counts.iter().all(|&c| c == 0));
    }
}
