//! Numeric-dimension mechanisms: ε-LDP mean estimation over `[-1, 1]`.
//!
//! The numeric counterpart of `ldp_protocols`' frequency oracles, after
//! Wang et al., *"Collecting and Analyzing Multidimensional Data with Local
//! Differential Privacy"* (ICDE 2019): each mechanism perturbs one
//! `[-1, 1]`-normalized continuous value `t` into an **unbiased** sanitized
//! value `y` (`E[y | t] = t`), so the population mean is estimated by
//! averaging reports, with a closed-form per-report variance for analytic
//! error bands.
//!
//! * [`Duchi`] — two-point mechanism: `y ∈ {±C_D}` with
//!   `C_D = (e^ε + 1)/(e^ε − 1)`; `Var[y|t] = C_D² − t²`.
//! * [`Piecewise`] — the Piecewise Mechanism (PM): `y ∈ [−C, C]` with
//!   `C = (e^{ε/2} + 1)/(e^{ε/2} − 1)`, density `e^ε`-fold higher on a
//!   length-`(C−1)` window centered so the mechanism stays unbiased;
//!   `Var[y|t] = t²/(e^{ε/2} − 1) + (e^{ε/2} + 3)/(3 (e^{ε/2} − 1)²)`.
//! * [`Hybrid`] — mixes PM (probability `α = 1 − e^{−ε/2}`) and Duchi when
//!   `ε > 0.61`, pure Duchi otherwise; `Var = α·Var_PM + (1−α)·Var_Duchi`.
//!
//! ## Fixed-point reports and determinism
//!
//! Sanitized values are quantized to a signed 40-bit fixed point
//! ([`NumericReport`], scale [`NUMERIC_SCALE`]). Aggregation then sums exact
//! `i128` integers, so sharded and serial aggregation are **bit-identical**
//! for every thread count — the same merge-determinism contract the
//! categorical support counts obey. The quantization step (2⁻⁴⁰ ≈ 9·10⁻¹³)
//! is orders of magnitude below the statistical noise at any population.
//!
//! Inputs are validated at the boundary: NaN, ±∞ or out-of-range values are
//! a typed [`ProtocolError::InvalidNumericInput`], never a silently
//! corrupted encoding.

use ldp_protocols::{validate_epsilon, ProtocolError};
use rand::{Rng, RngCore};

/// Fixed-point scale of a [`NumericReport`]: values are stored as
/// `round(y · 2⁴⁰)`.
pub const NUMERIC_SCALE: i64 = 1 << 40;

/// Budget threshold below which the Hybrid Mechanism degenerates to pure
/// Duchi (Wang et al. §3.3: for ε ≤ 0.61 Duchi's variance is never worse).
pub const HYBRID_SWITCH_EPS: f64 = 0.61;

/// One sanitized numeric report: a `[-C, C]` value quantized to fixed point
/// so server-side aggregation is exact integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NumericReport(i64);

impl NumericReport {
    /// Quantizes a sanitized value.
    pub fn from_f64(y: f64) -> Self {
        NumericReport((y * NUMERIC_SCALE as f64).round() as i64)
    }

    /// The sanitized value this report encodes.
    pub fn value(self) -> f64 {
        self.0 as f64 / NUMERIC_SCALE as f64
    }

    /// Raw fixed-point payload (what crosses the wire).
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Rebuilds a report from its raw fixed-point payload.
    pub fn from_raw(raw: i64) -> Self {
        NumericReport(raw)
    }
}

/// Validates a numeric input at the solution boundary.
pub fn validate_numeric_input(t: f64) -> Result<(), ProtocolError> {
    if !t.is_finite() || !(-1.0..=1.0).contains(&t) {
        return Err(ProtocolError::InvalidNumericInput(t));
    }
    Ok(())
}

/// Common surface of the numeric mechanisms — the numeric counterpart of
/// `ldp_protocols::FrequencyOracle`. Object-safe: randomness enters
/// [`NumericOracle::sanitize`] through `&mut dyn RngCore`.
pub trait NumericOracle {
    /// Privacy budget ε this mechanism was built with.
    fn epsilon(&self) -> f64;

    /// Short display name (`"Duchi"`, `"PM"`, `"HM"`).
    fn name(&self) -> &'static str;

    /// Sanitizes one `[-1, 1]` input into an unbiased fixed-point report.
    ///
    /// NaN, ±∞ and out-of-range inputs are a typed
    /// [`ProtocolError::InvalidNumericInput`].
    fn sanitize(&self, t: f64, rng: &mut dyn RngCore) -> Result<NumericReport, ProtocolError>;

    /// Closed-form per-report variance `Var[y | t]`.
    fn variance(&self, t: f64) -> f64;

    /// Largest magnitude the mechanism can output (`C`); every valid report
    /// satisfies `|y| ≤ bound()` and the wire layer rejects anything beyond.
    fn bound(&self) -> f64;

    /// Likelihood of observing sanitized value `y` given true value `t`
    /// (probability mass for Duchi's two-point output, density for PM's
    /// continuum, the natural mixture for HM). The adversary's Bayes update
    /// only ever uses ratios across `t`, for which the dominating measure
    /// cancels.
    fn likelihood(&self, y: f64, t: f64) -> f64;
}

/// Duchi et al.'s two-point mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duchi {
    epsilon: f64,
    /// Output magnitude `C_D = (e^ε + 1)/(e^ε − 1)`.
    c: f64,
}

impl Duchi {
    /// Builds the mechanism for budget `epsilon`.
    pub fn new(epsilon: f64) -> Result<Self, ProtocolError> {
        validate_epsilon(epsilon)?;
        // (e^ε + 1)/(e^ε − 1) = 1 + 2/(e^ε − 1): exp_m1 keeps precision for
        // small ε, and when e^ε overflows to ∞ the quotient is 0 rather
        // than the NaN the naive ∞/∞ form produces, so C → 1.
        Ok(Duchi {
            epsilon,
            c: 1.0 + 2.0 / epsilon.exp_m1(),
        })
    }

    /// Probability of the positive pole `+C_D` given input `t`.
    fn p_plus(&self, t: f64) -> f64 {
        // (e^ε − 1)/(e^ε + 1) = 1 − 2/(e^ε + 1), finite even when exp
        // overflows (→ 1, i.e. p = (1 + t)/2).
        0.5 + 0.5 * t * (1.0 - 2.0 / (self.epsilon.exp() + 1.0))
    }
}

impl NumericOracle for Duchi {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "Duchi"
    }

    fn sanitize(&self, t: f64, rng: &mut dyn RngCore) -> Result<NumericReport, ProtocolError> {
        validate_numeric_input(t)?;
        let y = if rng.random::<f64>() < self.p_plus(t) {
            self.c
        } else {
            -self.c
        };
        Ok(NumericReport::from_f64(y))
    }

    fn variance(&self, t: f64) -> f64 {
        self.c * self.c - t * t
    }

    fn bound(&self) -> f64 {
        self.c
    }

    fn likelihood(&self, y: f64, t: f64) -> f64 {
        if y > 0.0 {
            self.p_plus(t)
        } else {
            1.0 - self.p_plus(t)
        }
    }
}

/// The Piecewise Mechanism (Wang et al. §3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Piecewise {
    epsilon: f64,
    /// `e^{ε/2}`.
    s: f64,
    /// Output magnitude `C = (e^{ε/2} + 1)/(e^{ε/2} − 1)`.
    c: f64,
}

impl Piecewise {
    /// Builds the mechanism for budget `epsilon`.
    pub fn new(epsilon: f64) -> Result<Self, ProtocolError> {
        validate_epsilon(epsilon)?;
        // `s` may overflow to ∞ for enormous ε; every place it is used is
        // written so that limit stays finite and correct (C → 1, window
        // probability → 1, variance → 0). exp_m1 keeps C precise for
        // small ε.
        Ok(Piecewise {
            epsilon,
            s: (epsilon / 2.0).exp(),
            c: 1.0 + 2.0 / (epsilon / 2.0).exp_m1(),
        })
    }

    /// The high-density window `[ℓ(t), r(t)]` (length `C − 1`).
    fn window(&self, t: f64) -> (f64, f64) {
        let ell = (self.c + 1.0) / 2.0 * t - (self.c - 1.0) / 2.0;
        (ell, ell + self.c - 1.0)
    }
}

impl NumericOracle for Piecewise {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "PM"
    }

    fn sanitize(&self, t: f64, rng: &mut dyn RngCore) -> Result<NumericReport, ProtocolError> {
        validate_numeric_input(t)?;
        let (ell, r) = self.window(t);
        // With probability e^{ε/2}/(e^{ε/2}+1) = 1 − 1/(e^{ε/2}+1) draw
        // from the window, else uniformly from the complement
        // [−C, ℓ) ∪ (r, C] (total length C+1).
        let y = if rng.random::<f64>() < 1.0 - 1.0 / (self.s + 1.0) {
            ell + rng.random::<f64>() * (r - ell)
        } else {
            let v = rng.random::<f64>() * (self.c + 1.0);
            let left = ell + self.c;
            if v < left {
                -self.c + v
            } else {
                r + (v - left)
            }
        };
        Ok(NumericReport::from_f64(y))
    }

    fn variance(&self, t: f64) -> f64 {
        // t²/(s−1) + (s+3)/(3(s−1)²) rewritten in m = 1 − e^{−ε/2} (always
        // in (0, 1]) so an overflowed s never reaches the arithmetic:
        // substituting s = 1/(1−m) gives t²(1−m)/m + (1−m)(4−3m)/(3m²).
        let m = -(-self.epsilon / 2.0).exp_m1();
        t * t * (1.0 - m) / m + (1.0 - m) * (4.0 - 3.0 * m) / (3.0 * m * m)
    }

    fn bound(&self) -> f64 {
        self.c
    }

    fn likelihood(&self, y: f64, t: f64) -> f64 {
        if y.abs() > self.c {
            return 0.0;
        }
        let (ell, r) = self.window(t);
        if (ell..=r).contains(&y) {
            // Window mass s/(s+1) spread over length C−1; the probability
            // factor stays finite when s overflows (density → ∞ only in the
            // genuine ε → ∞ Dirac limit, where C−1 → 0).
            (1.0 - 1.0 / (self.s + 1.0)) / (self.c - 1.0)
        } else {
            1.0 / ((self.s + 1.0) * (self.c + 1.0))
        }
    }
}

/// The Hybrid Mechanism (Wang et al. §3.3): a per-report coin between PM and
/// Duchi, tuned so the worst-case variance beats both components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hybrid {
    epsilon: f64,
    /// Probability of taking the PM branch (0 for ε ≤ 0.61).
    alpha: f64,
    duchi: Duchi,
    pm: Piecewise,
}

impl Hybrid {
    /// Builds the mechanism for budget `epsilon`.
    pub fn new(epsilon: f64) -> Result<Self, ProtocolError> {
        validate_epsilon(epsilon)?;
        let alpha = if epsilon > HYBRID_SWITCH_EPS {
            1.0 - (-epsilon / 2.0).exp()
        } else {
            0.0
        };
        Ok(Hybrid {
            epsilon,
            alpha,
            duchi: Duchi::new(epsilon)?,
            pm: Piecewise::new(epsilon)?,
        })
    }

    /// The PM-branch probability `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl NumericOracle for Hybrid {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "HM"
    }

    fn sanitize(&self, t: f64, rng: &mut dyn RngCore) -> Result<NumericReport, ProtocolError> {
        validate_numeric_input(t)?;
        if rng.random::<f64>() < self.alpha {
            self.pm.sanitize(t, rng)
        } else {
            self.duchi.sanitize(t, rng)
        }
    }

    fn variance(&self, t: f64) -> f64 {
        self.alpha * self.pm.variance(t) + (1.0 - self.alpha) * self.duchi.variance(t)
    }

    fn bound(&self) -> f64 {
        if self.alpha > 0.0 {
            // C_PM > C_Duchi for every ε (the PM window is priced at ε/2).
            self.pm.bound()
        } else {
            self.duchi.bound()
        }
    }

    fn likelihood(&self, y: f64, t: f64) -> f64 {
        // Duchi's atoms ±C_D carry the (1−α) mass; PM's continuum carries
        // the rest. A quantized PM draw landing exactly on ±C_D has
        // probability ~2⁻⁴⁰ and is ignored.
        if (y.abs() - self.duchi.bound()).abs() < 1e-9 {
            (1.0 - self.alpha) * self.duchi.likelihood(y, t)
        } else {
            self.alpha * self.pm.likelihood(y, t)
        }
    }
}

/// The numeric mechanism families, as a plain enum for sweeps and runtime
/// configuration (the numeric counterpart of `ProtocolKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumericKind {
    /// Duchi et al.'s two-point mechanism.
    Duchi,
    /// The Piecewise Mechanism.
    Piecewise,
    /// The Hybrid Mechanism (PM/Duchi mixture).
    Hybrid,
}

impl NumericKind {
    /// Every numeric mechanism, for sweeps.
    pub const ALL: [NumericKind; 3] = [
        NumericKind::Duchi,
        NumericKind::Piecewise,
        NumericKind::Hybrid,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            NumericKind::Duchi => "Duchi",
            NumericKind::Piecewise => "PM",
            NumericKind::Hybrid => "HM",
        }
    }

    /// Stable per-mechanism tag mixed into the wire fingerprint.
    pub fn tag(self) -> u64 {
        match self {
            NumericKind::Duchi => 1,
            NumericKind::Piecewise => 2,
            NumericKind::Hybrid => 3,
        }
    }

    /// Builds the mechanism for budget `epsilon`.
    pub fn build(self, epsilon: f64) -> Result<DynNumeric, ProtocolError> {
        Ok(match self {
            NumericKind::Duchi => DynNumeric::Duchi(Duchi::new(epsilon)?),
            NumericKind::Piecewise => DynNumeric::Piecewise(Piecewise::new(epsilon)?),
            NumericKind::Hybrid => DynNumeric::Hybrid(Hybrid::new(epsilon)?),
        })
    }
}

impl std::fmt::Display for NumericKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Enum dispatcher over the concrete numeric mechanisms (the counterpart of
/// `ldp_protocols::Oracle`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynNumeric {
    /// See [`Duchi`].
    Duchi(Duchi),
    /// See [`Piecewise`].
    Piecewise(Piecewise),
    /// See [`Hybrid`].
    Hybrid(Hybrid),
}

impl DynNumeric {
    /// The mechanism family of this instance.
    pub fn kind(&self) -> NumericKind {
        match self {
            DynNumeric::Duchi(_) => NumericKind::Duchi,
            DynNumeric::Piecewise(_) => NumericKind::Piecewise,
            DynNumeric::Hybrid(_) => NumericKind::Hybrid,
        }
    }
}

impl NumericOracle for DynNumeric {
    fn epsilon(&self) -> f64 {
        match self {
            DynNumeric::Duchi(m) => m.epsilon(),
            DynNumeric::Piecewise(m) => m.epsilon(),
            DynNumeric::Hybrid(m) => m.epsilon(),
        }
    }

    fn name(&self) -> &'static str {
        self.kind().name()
    }

    fn sanitize(&self, t: f64, rng: &mut dyn RngCore) -> Result<NumericReport, ProtocolError> {
        match self {
            DynNumeric::Duchi(m) => m.sanitize(t, rng),
            DynNumeric::Piecewise(m) => m.sanitize(t, rng),
            DynNumeric::Hybrid(m) => m.sanitize(t, rng),
        }
    }

    fn variance(&self, t: f64) -> f64 {
        match self {
            DynNumeric::Duchi(m) => m.variance(t),
            DynNumeric::Piecewise(m) => m.variance(t),
            DynNumeric::Hybrid(m) => m.variance(t),
        }
    }

    fn bound(&self) -> f64 {
        match self {
            DynNumeric::Duchi(m) => m.bound(),
            DynNumeric::Piecewise(m) => m.bound(),
            DynNumeric::Hybrid(m) => m.bound(),
        }
    }

    fn likelihood(&self, y: f64, t: f64) -> f64 {
        match self {
            DynNumeric::Duchi(m) => m.likelihood(y, t),
            DynNumeric::Piecewise(m) => m.likelihood(y, t),
            DynNumeric::Hybrid(m) => m.likelihood(y, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mechanisms(eps: f64) -> Vec<DynNumeric> {
        NumericKind::ALL
            .iter()
            .map(|k| k.build(eps).unwrap())
            .collect()
    }

    #[test]
    fn construction_rejects_bad_epsilon() {
        for kind in NumericKind::ALL {
            assert!(kind.build(0.0).is_err(), "{kind}: eps = 0");
            assert!(kind.build(-1.0).is_err(), "{kind}: eps < 0");
            assert!(kind.build(f64::NAN).is_err(), "{kind}: eps NaN");
        }
    }

    #[test]
    fn sanitize_rejects_non_finite_and_out_of_range_inputs() {
        let mut rng = StdRng::seed_from_u64(7);
        for mech in mechanisms(1.0) {
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.0001, -1.5] {
                assert!(
                    matches!(
                        mech.sanitize(bad, &mut rng),
                        Err(ProtocolError::InvalidNumericInput(_))
                    ),
                    "{} accepted {bad}",
                    mech.name()
                );
            }
        }
    }

    #[test]
    fn reports_respect_the_output_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        for eps in [0.3, 0.61, 1.0, 4.0] {
            for mech in mechanisms(eps) {
                for i in 0..2000 {
                    let t = -1.0 + 2.0 * (i as f64 / 1999.0);
                    let y = mech.sanitize(t, &mut rng).unwrap().value();
                    assert!(
                        y.abs() <= mech.bound() + 1e-9,
                        "{} eps={eps}: |{y}| > {}",
                        mech.name(),
                        mech.bound()
                    );
                }
            }
        }
    }

    #[test]
    fn mechanisms_are_unbiased_within_5_sigma() {
        // E[y | t] = t for each mechanism; at n draws the empirical mean
        // must land within 5·sqrt(Var(t)/n) of t.
        let n = 200_000;
        for eps in [0.5, 1.0, 2.0] {
            for mech in mechanisms(eps) {
                for t in [-0.8f64, -0.2, 0.0, 0.4, 0.9] {
                    let mut rng = StdRng::seed_from_u64(0x5EED ^ eps.to_bits() ^ t.to_bits());
                    let mut sum = 0i128;
                    for _ in 0..n {
                        sum += i128::from(mech.sanitize(t, &mut rng).unwrap().raw());
                    }
                    let mean = sum as f64 / NUMERIC_SCALE as f64 / n as f64;
                    let tol = 5.0 * (mech.variance(t) / n as f64).sqrt();
                    assert!(
                        (mean - t).abs() <= tol,
                        "{} eps={eps} t={t}: mean {mean:.5} off by {:.5} > {tol:.5}",
                        mech.name(),
                        (mean - t).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn empirical_variance_matches_analytic_variance() {
        let n = 200_000usize;
        for mech in mechanisms(1.5) {
            let t = 0.3;
            let mut rng = StdRng::seed_from_u64(0x7A12_5EED);
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..n {
                let y = mech.sanitize(t, &mut rng).unwrap().value();
                sum += y;
                sumsq += y * y;
            }
            let mean = sum / n as f64;
            let var = sumsq / n as f64 - mean * mean;
            let analytic = mech.variance(t);
            // The sample variance of n iid draws concentrates tightly; 5%
            // relative slack is far beyond 5σ at n = 200k.
            assert!(
                (var - analytic).abs() / analytic < 0.05,
                "{}: empirical {var:.4} vs analytic {analytic:.4}",
                mech.name()
            );
        }
    }

    #[test]
    fn huge_epsilon_overflows_exp_but_not_the_mechanisms() {
        // ε = 2000 overflows both e^ε and e^{ε/2} to ∞; the rewritten
        // constant forms must keep C finite (→ 1) and the reports sane
        // instead of quantizing NaN to raw 0.
        let mut rng = StdRng::seed_from_u64(99);
        for mech in mechanisms(2000.0) {
            let c = mech.bound();
            assert!(
                c.is_finite() && (c - 1.0).abs() < 1e-9,
                "{}: C = {c}",
                mech.name()
            );
            for t in [-1.0f64, -0.25, 0.0, 0.5, 1.0] {
                let y = mech.sanitize(t, &mut rng).unwrap().value();
                assert!(
                    y.is_finite() && y.abs() <= c + 1e-9,
                    "{}: t = {t}, y = {y}",
                    mech.name()
                );
                let v = mech.variance(t);
                assert!(v.is_finite() && v >= -1e-12, "{}: var = {v}", mech.name());
            }
        }
        // In the ε → ∞ limit PM degenerates to the identity mechanism and
        // HM always takes the PM branch.
        let pm = Piecewise::new(2000.0).unwrap();
        let hm = Hybrid::new(2000.0).unwrap();
        assert_eq!(hm.alpha(), 1.0);
        for t in [-0.6, 0.0, 0.8] {
            assert!((pm.sanitize(t, &mut rng).unwrap().value() - t).abs() < 1e-9);
            assert!(pm.variance(t).abs() < 1e-9);
            assert!((hm.sanitize(t, &mut rng).unwrap().value() - t).abs() < 1e-9);
        }
    }

    #[test]
    fn hybrid_interpolates_between_pm_and_duchi() {
        let hm = Hybrid::new(2.0).unwrap();
        let pm = Piecewise::new(2.0).unwrap();
        let duchi = Duchi::new(2.0).unwrap();
        for t in [-0.7, 0.0, 0.5] {
            let v = hm.variance(t);
            let lo = pm.variance(t).min(duchi.variance(t));
            let hi = pm.variance(t).max(duchi.variance(t));
            assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
        // Below the switch threshold HM is exactly Duchi.
        let hm_low = Hybrid::new(0.5).unwrap();
        assert_eq!(hm_low.alpha(), 0.0);
        assert_eq!(hm_low.variance(0.3), Duchi::new(0.5).unwrap().variance(0.3));
        assert_eq!(hm_low.bound(), Duchi::new(0.5).unwrap().bound());
    }

    #[test]
    fn pm_likelihood_integrates_to_one() {
        let pm = Piecewise::new(1.2).unwrap();
        for t in [-0.9, 0.0, 0.6] {
            let steps = 200_000;
            let h = 2.0 * pm.bound() / steps as f64;
            let total: f64 = (0..steps)
                .map(|i| pm.likelihood(-pm.bound() + (i as f64 + 0.5) * h, t) * h)
                .sum();
            assert!((total - 1.0).abs() < 1e-3, "t={t}: integral {total}");
        }
    }

    #[test]
    fn duchi_probabilities_are_valid_and_monotone_in_t() {
        let duchi = Duchi::new(1.0).unwrap();
        let mut prev = -1.0;
        for i in 0..=20 {
            let t = -1.0 + 0.1 * i as f64;
            let p = duchi.p_plus(t);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn fixed_point_roundtrip_is_exact_on_raw_values() {
        for raw in [0i64, 1, -1, 77_777, -NUMERIC_SCALE * 3, NUMERIC_SCALE] {
            assert_eq!(NumericReport::from_raw(raw).raw(), raw);
        }
        let y = 0.123456789;
        assert!((NumericReport::from_f64(y).value() - y).abs() < 2.0 / NUMERIC_SCALE as f64);
    }
}
