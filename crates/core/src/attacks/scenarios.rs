//! Concrete attack scenarios behind the object-safe [`Attack`] trait, and
//! their fitted, shardable evaluators.

use ldp_protocols::deniability::{best_guess_report, best_guess_with};
use rand::RngCore;

use super::kind::{
    AttackKind, AttackOutcome, AveragingConfig, BackgroundKnowledge, InferenceConfig, PieOutcome,
    ReidentConfig, ReidentOutcome,
};
use super::{AdversaryView, Attack, FittedAttack};
use crate::inference::{AttackModel, InferenceOutcome, SampledAttributeAttack};
use crate::pie;
use crate::profiling::Profile;
use crate::reident::{MatchScratch, ReidentAttack};
use crate::solutions::{DynSolution, MultidimReport, MultidimSolution, SolutionReport};

// ---------------------------------------------------------------------------
// Re-identification
// ---------------------------------------------------------------------------

/// The §3.2.4 re-identification scenario: profile every user from the
/// observed round via plausible deniability (chaining through the §3.3
/// classifier for fake-data solutions), index the background knowledge, and
/// score per-target top-`k` membership.
#[derive(Debug, Clone)]
pub struct ReidentScenario {
    config: ReidentConfig,
}

impl ReidentScenario {
    /// Wraps a validated configuration (see `AttackKind::build`).
    pub fn new(config: ReidentConfig) -> Self {
        ReidentScenario { config }
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ReidentConfig {
        &self.config
    }

    /// Builds the background-knowledge index this scenario's configuration
    /// prescribes over `dataset` (all attributes for FK-RI, the configured
    /// subset for PK-RI).
    pub fn build_index(&self, dataset: &ldp_datasets::Dataset) -> ReidentAttack {
        let bk_attrs: Vec<usize> = match &self.config.background {
            BackgroundKnowledge::Full => (0..dataset.d()).collect(),
            BackgroundKnowledge::Partial(attrs) => attrs.clone(),
        };
        ReidentAttack::build(dataset, &bk_attrs)
    }

    /// Builds one per-user [`Profile`] from the round's sanitized messages,
    /// following the per-solution adversary rules: SMP disclosed attribute →
    /// deniability guess; SPL → deniability guess on every attribute;
    /// RS+FD / RS+RFD → infer the sampled attribute with the NK classifier,
    /// then deniability-guess its report (the Fig. 4 "chained errors").
    pub fn profile_round(&self, view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> Vec<Profile> {
        // One candidate buffer reused across the whole round (OLH preimages
        // are the only allocating guess path; see `best_guess_with`).
        let mut scratch = Vec::new();
        match view.solution {
            DynSolution::Smp(s) => view
                .observed
                .iter()
                .map(|r| match r {
                    SolutionReport::Smp(m) => {
                        let mut p = Profile::new();
                        p.observe(
                            m.attr,
                            best_guess_with(s.oracle(m.attr), &m.report, &mut scratch, rng),
                        );
                        p
                    }
                    _ => panic!("observed report shape does not match the SMP solution"),
                })
                .collect(),
            DynSolution::Spl(s) => view
                .observed
                .iter()
                .map(|r| match r {
                    SolutionReport::Full(reports) => {
                        let mut p = Profile::new();
                        for (j, rep) in reports.iter().enumerate() {
                            p.observe(j, best_guess_with(s.oracle(j), rep, &mut scratch, rng));
                        }
                        p
                    }
                    _ => panic!("observed report shape does not match the SPL solution"),
                })
                .collect(),
            DynSolution::RsFd(s) => self.profile_fake_data(s, &extract_tuples(view.observed), rng),
            DynSolution::RsRfd(s) => self.profile_fake_data(s, &extract_tuples(view.observed), rng),
            DynSolution::Mixed(_) => panic!(
                "re-identification does not profile mixed numeric rounds; use \
                 AttackKind::NumericValueRange against mixed solutions"
            ),
        }
    }

    /// The chained fake-data profiling step shared by RS+FD and RS+RFD.
    fn profile_fake_data<S: MultidimSolution>(
        &self,
        solution: &S,
        observed: &[MultidimReport],
        rng: &mut dyn RngCore,
    ) -> Vec<Profile> {
        let (attack, _) = SampledAttributeAttack::train(
            solution,
            observed,
            &AttackModel::NoKnowledge {
                synth_factor: self.config.synth_factor,
            },
            &self.config.classifier,
            rng,
        );
        let predicted = attack.predict(&observed.iter().collect::<Vec<_>>());
        predicted
            .iter()
            .zip(observed)
            .map(|(&pred, r)| {
                let attr = pred as usize;
                let mut p = Profile::new();
                p.observe(
                    attr,
                    best_guess_report(&r.values[attr], solution.ks()[attr], rng),
                );
                p
            })
            .collect()
    }
}

impl Attack for ReidentScenario {
    fn name(&self) -> String {
        AttackKind::Reident(self.config.clone()).name()
    }

    fn fit(&self, view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> Box<dyn FittedAttack> {
        assert_eq!(
            view.observed.len(),
            view.dataset.n(),
            "need one observed message per user"
        );
        let index = self.build_index(view.dataset);
        let profiles = self.profile_round(view, rng);
        Box::new(FittedReident {
            index,
            profiles,
            top_ks: self.config.top_ks.clone(),
        })
    }
}

/// A fitted re-identification attack: background index plus one adversary
/// profile per target.
#[derive(Debug, Clone)]
pub struct FittedReident {
    index: ReidentAttack,
    profiles: Vec<Profile>,
    top_ks: Vec<usize>,
}

impl FittedReident {
    /// The per-target profiles the adversary accumulated.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// The background-knowledge index.
    pub fn index(&self) -> &ReidentAttack {
        &self.index
    }
}

impl FittedAttack for FittedReident {
    fn n_targets(&self) -> usize {
        self.profiles.len()
    }

    fn n_slots(&self) -> usize {
        self.top_ks.len()
    }

    fn evaluate_target(
        &self,
        target: usize,
        scratch: &mut MatchScratch,
        hits: &mut [bool],
        rng: &mut dyn RngCore,
    ) {
        ReidentEval {
            index: &self.index,
            profiles: &self.profiles,
            top_ks: &self.top_ks,
        }
        .evaluate_target(target, scratch, hits, rng);
    }

    fn outcome(&self, hit_counts: &[u64]) -> AttackOutcome {
        reident_outcome(&self.index, &self.top_ks, hit_counts, self.profiles.len())
    }
}

/// Borrowed re-identification evaluator over externally built profiles —
/// e.g. multi-survey campaign snapshots — so RID-ACC over a snapshot can run
/// through the same sharded machinery without cloning the profile set.
/// `profiles[i]` targets background record `i` (the paper's setting).
#[derive(Debug, Clone, Copy)]
pub struct ReidentEval<'a> {
    /// Background-knowledge index.
    pub index: &'a ReidentAttack,
    /// Per-target adversary profiles.
    pub profiles: &'a [Profile],
    /// Top-`k` values, one metric slot each.
    pub top_ks: &'a [usize],
}

impl FittedAttack for ReidentEval<'_> {
    fn n_targets(&self) -> usize {
        self.profiles.len()
    }

    fn n_slots(&self) -> usize {
        self.top_ks.len()
    }

    fn evaluate_target(
        &self,
        target: usize,
        scratch: &mut MatchScratch,
        hits: &mut [bool],
        rng: &mut dyn RngCore,
    ) {
        self.index.hits_into(
            &self.profiles[target],
            target as u32,
            self.top_ks,
            scratch,
            hits,
            rng,
        );
    }

    fn outcome(&self, hit_counts: &[u64]) -> AttackOutcome {
        reident_outcome(self.index, self.top_ks, hit_counts, self.profiles.len())
    }
}

// ---------------------------------------------------------------------------
// Longitudinal averaging
// ---------------------------------------------------------------------------

/// The longitudinal averaging attack: a re-identification adversary who
/// watches `rounds` collection rounds of the same population and pools each
/// target's per-round deniability guesses **before** matching — per
/// (user, attribute) majority vote, ties broken toward the earliest-observed
/// value so the pooling is deterministic in the observed wire.
///
/// Against ε-splitting this grows along two axes at once: sampling solutions
/// disclose a different attribute each fresh round (profile coverage
/// `≈ d(1−(1−1/d)^R)`), and repeated views of the same attribute vote down
/// the sanitization noise. Against memoization every round replays round 0's
/// report, the vote is unanimous on a single view, and the pooled profile —
/// hence the ASR — is exactly the single-round one.
#[derive(Debug, Clone)]
pub struct AveragingScenario {
    config: AveragingConfig,
}

impl AveragingScenario {
    /// Wraps a validated configuration (see `AttackKind::build`).
    pub fn new(config: AveragingConfig) -> Self {
        AveragingScenario { config }
    }

    /// The scenario configuration.
    pub fn config(&self) -> &AveragingConfig {
        &self.config
    }

    /// Pools per-round profiles into one profile per user: for every
    /// attribute any round observed, the prediction with the most round
    /// votes wins (strict majority comparison → first value to reach the
    /// top count wins ties, which is deterministic in round order).
    fn pool_profiles(rounds: &[Vec<Profile>]) -> Vec<Profile> {
        let n = rounds.first().map_or(0, Vec::len);
        (0..n)
            .map(|user| {
                // (attr, votes per value) in first-observed order; domains
                // and d are small, so linear scans beat hashing here.
                let mut votes: Vec<(usize, Vec<(u32, u32)>)> = Vec::new();
                for round in rounds {
                    for &(attr, value) in round[user].entries() {
                        let slot = match votes.iter_mut().find(|(a, _)| *a == attr) {
                            Some((_, counts)) => counts,
                            None => {
                                votes.push((attr, Vec::new()));
                                &mut votes.last_mut().expect("just pushed").1
                            }
                        };
                        match slot.iter_mut().find(|(v, _)| *v == value) {
                            Some((_, c)) => *c += 1,
                            None => slot.push((value, 1)),
                        }
                    }
                }
                let mut pooled = Profile::new();
                for (attr, counts) in votes {
                    let (winner, _) = counts
                        .into_iter()
                        .reduce(|best, cand| if cand.1 > best.1 { cand } else { best })
                        .expect("an observed attribute has at least one vote");
                    pooled.observe(attr, winner);
                }
                pooled
            })
            .collect()
    }
}

impl Attack for AveragingScenario {
    fn name(&self) -> String {
        AttackKind::Averaging(self.config.clone()).name()
    }

    fn fit(&self, view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> Box<dyn FittedAttack> {
        let n = view.dataset.n();
        let rounds = self.config.rounds.max(1);
        assert_eq!(
            view.observed.len(),
            rounds * n,
            "the averaging attack needs rounds·n observed messages, round-major"
        );
        let inner = ReidentScenario::new(self.config.reident.clone());
        let per_round: Vec<Vec<Profile>> = (0..rounds)
            .map(|r| {
                let sub = AdversaryView {
                    observed: &view.observed[r * n..(r + 1) * n],
                    ..*view
                };
                inner.profile_round(&sub, rng)
            })
            .collect();
        Box::new(FittedReident {
            index: inner.build_index(view.dataset),
            profiles: AveragingScenario::pool_profiles(&per_round),
            top_ks: self.config.reident.top_ks.clone(),
        })
    }
}

fn reident_outcome(
    index: &ReidentAttack,
    top_ks: &[usize],
    hit_counts: &[u64],
    n_targets: usize,
) -> AttackOutcome {
    let denom = n_targets.max(1) as f64;
    AttackOutcome::Reident(ReidentOutcome {
        top_ks: top_ks.to_vec(),
        rid_acc: hit_counts
            .iter()
            .map(|&h| 100.0 * h as f64 / denom)
            .collect(),
        baseline: top_ks.iter().map(|&k| index.baseline(k)).collect(),
        n_targets,
    })
}

// ---------------------------------------------------------------------------
// Sampled-attribute inference
// ---------------------------------------------------------------------------

/// The §3.3 sampled-attribute inference scenario against the fake-data
/// solutions, under any attacker model × classifier combination.
#[derive(Debug, Clone)]
pub struct InferenceScenario {
    config: InferenceConfig,
}

impl InferenceScenario {
    /// Wraps a validated configuration (see `AttackKind::build`).
    pub fn new(config: InferenceConfig) -> Self {
        InferenceScenario { config }
    }

    /// The scenario configuration.
    pub fn config(&self) -> &InferenceConfig {
        &self.config
    }
}

impl Attack for InferenceScenario {
    fn name(&self) -> String {
        AttackKind::SampledAttribute(self.config.clone()).name()
    }

    fn fit(&self, view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> Box<dyn FittedAttack> {
        assert!(
            matches!(view.solution, DynSolution::RsFd(_) | DynSolution::RsRfd(_)),
            "sampled-attribute inference needs a fake-data solution, got {}",
            view.solution.name()
        );
        let tuples = extract_tuples(view.observed);
        let (attack, test_idx) = match view.solution {
            DynSolution::RsFd(s) => SampledAttributeAttack::train(
                s,
                &tuples,
                &self.config.model,
                &self.config.classifier,
                rng,
            ),
            DynSolution::RsRfd(s) => SampledAttributeAttack::train(
                s,
                &tuples,
                &self.config.model,
                &self.config.classifier,
                rng,
            ),
            _ => unreachable!("solution family guarded by the assert above"),
        };
        let n_train = tuples.len() - test_idx.len() + self.config.model.synth_count(tuples.len());
        // Prediction is rng-free, so the per-target success bits are fixed at
        // fit time: one batch encode/predict instead of per-target calls.
        let tests: Vec<&MultidimReport> = test_idx.iter().map(|&i| &tuples[i]).collect();
        let correct: Vec<bool> = attack
            .predict(&tests)
            .iter()
            .zip(&tests)
            .map(|(&pred, t)| pred as usize == t.sampled)
            .collect();
        Box::new(FittedInference {
            attack,
            correct,
            d: view.solution.d(),
            n_train,
        })
    }
}

/// A fitted inference attack: the trained classifier plus the (rng-free,
/// batch-precomputed) per-test-user success bits.
#[derive(Debug, Clone)]
pub struct FittedInference {
    attack: SampledAttributeAttack,
    correct: Vec<bool>,
    d: usize,
    n_train: usize,
}

impl FittedInference {
    /// The trained classifier.
    pub fn attack(&self) -> &SampledAttributeAttack {
        &self.attack
    }
}

impl FittedAttack for FittedInference {
    fn n_targets(&self) -> usize {
        self.correct.len()
    }

    fn n_slots(&self) -> usize {
        1
    }

    fn evaluate_target(
        &self,
        target: usize,
        _scratch: &mut MatchScratch,
        hits: &mut [bool],
        _rng: &mut dyn RngCore,
    ) {
        hits[0] = self.correct[target];
    }

    fn outcome(&self, hit_counts: &[u64]) -> AttackOutcome {
        AttackOutcome::Inference(InferenceOutcome {
            aif_acc: 100.0 * hit_counts[0] as f64 / self.correct.len().max(1) as f64,
            baseline: 100.0 / self.d as f64,
            n_train: self.n_train,
            n_test: self.correct.len(),
        })
    }
}

// ---------------------------------------------------------------------------
// PIE audit
// ---------------------------------------------------------------------------

/// The Appendix C PIE audit: an analytic "attack" reporting which attributes
/// a `(U, α)`-PIE server discloses unrandomized at target Bayes error β.
#[derive(Debug, Clone, Copy)]
pub struct PieScenario {
    beta: f64,
}

impl PieScenario {
    /// Wraps a validated β (see `AttackKind::build`).
    pub fn new(beta: f64) -> Self {
        PieScenario { beta }
    }

    /// Target Bayes error β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Attack for PieScenario {
    fn name(&self) -> String {
        AttackKind::PieAudit { beta: self.beta }.name()
    }

    fn needs_observation(&self) -> bool {
        false // analytic: only n and the domain sizes enter the decision
    }

    fn fit(&self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> Box<dyn FittedAttack> {
        let n = view.dataset.n();
        let decisions = view
            .solution
            .ks()
            .iter()
            .map(|&k| pie::decide(self.beta, n, k))
            .collect();
        Box::new(FittedPie {
            outcome: PieOutcome {
                beta: self.beta,
                alpha: pie::alpha_from_bayes_error(self.beta, n),
                decisions,
            },
        })
    }
}

/// A "fitted" PIE audit — analytic, so it has no targets to score.
#[derive(Debug, Clone)]
pub struct FittedPie {
    outcome: PieOutcome,
}

impl FittedAttack for FittedPie {
    fn n_targets(&self) -> usize {
        0
    }

    fn n_slots(&self) -> usize {
        0
    }

    fn evaluate_target(
        &self,
        _target: usize,
        _scratch: &mut MatchScratch,
        _hits: &mut [bool],
        _rng: &mut dyn RngCore,
    ) {
        unreachable!("the PIE audit has no per-target evaluation");
    }

    fn outcome(&self, _hit_counts: &[u64]) -> AttackOutcome {
        AttackOutcome::Pie(self.outcome.clone())
    }
}

/// Extracts the fake-data tuples from a round of observed messages.
///
/// Clones the wire: `SampledAttributeAttack::train` (and the
/// `MultidimSolution::estimate*` surface underneath) consumes owned
/// `&[MultidimReport]` slices, so the fit phase transiently holds a second
/// copy of the round. Borrowing would require threading `&[&MultidimReport]`
/// through that trait surface.
///
/// # Panics
/// Panics when a message is not a full-tuple report.
fn extract_tuples(observed: &[SolutionReport]) -> Vec<MultidimReport> {
    observed
        .iter()
        .map(|r| match r {
            SolutionReport::Tuple(t) => t.clone(),
            _ => panic!("expected full fake-data tuples in the observed round"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{evaluate_serial, fit_rng};
    use crate::inference::AttackClassifier;
    use crate::solutions::{RsFdProtocol, SolutionKind};
    use ldp_datasets::{Dataset, Schema};
    use ldp_gbdt::LogisticParams;
    use ldp_protocols::ProtocolKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed_dataset(n: usize, ks: &[usize], seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u32> = (0..n)
            .flat_map(|_| {
                ks.iter()
                    .map(|&k| {
                        if rng.random::<f64>() < 0.6 {
                            0
                        } else {
                            rng.random_range(0..k as u32)
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let cards: Vec<u32> = ks.iter().map(|&k| k as u32).collect();
        Dataset::new(Schema::from_cardinalities(&cards), data)
    }

    fn observe(solution: &DynSolution, dataset: &Dataset, seed: u64) -> Vec<SolutionReport> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..dataset.n())
            .map(|i| solution.report(dataset.row(i), &mut rng))
            .collect()
    }

    fn logistic() -> AttackClassifier {
        AttackClassifier::Logistic(LogisticParams::default())
    }

    #[test]
    fn smp_reident_beats_baseline_at_high_epsilon() {
        let ks = [6usize, 8, 5, 4];
        let ds = skewed_dataset(300, &ks, 1);
        let solution = SolutionKind::Smp(ProtocolKind::Grr)
            .build(&ks, 8.0)
            .unwrap();
        let observed = observe(&solution, &ds, 2);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let attack = AttackKind::Reident(ReidentConfig::default())
            .build()
            .unwrap();
        let fitted = Attack::fit(&attack, &view, &mut fit_rng(3));
        let outcome = evaluate_serial(fitted.as_ref(), 3);
        let o = outcome.reident().expect("reident outcome");
        assert_eq!(o.n_targets, 300);
        // A single high-ε GRR report re-identifies well above the 10/300
        // top-10 baseline on a skewed population.
        assert!(
            o.acc_at(10).unwrap() > 2.0 * o.baseline[1],
            "top-10 {} vs baseline {}",
            o.acc_at(10).unwrap(),
            o.baseline[1]
        );
    }

    #[test]
    fn spl_reident_profiles_every_attribute() {
        let ks = [5usize, 4, 3];
        let ds = skewed_dataset(120, &ks, 4);
        let solution = SolutionKind::Spl(ProtocolKind::Grr)
            .build(&ks, 9.0)
            .unwrap();
        let observed = observe(&solution, &ds, 5);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let scenario = ReidentScenario::new(ReidentConfig::default());
        let profiles = scenario.profile_round(&view, &mut fit_rng(6));
        assert_eq!(profiles.len(), 120);
        assert!(profiles.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn chained_fake_data_reident_runs_end_to_end() {
        let ks = [5usize, 4, 6];
        let ds = skewed_dataset(250, &ks, 7);
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&ks, 6.0)
            .unwrap();
        let observed = observe(&solution, &ds, 8);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let attack = AttackKind::Reident(ReidentConfig {
            classifier: logistic(),
            ..ReidentConfig::default()
        })
        .build()
        .unwrap();
        let outcome = evaluate_serial(Attack::fit(&attack, &view, &mut fit_rng(9)).as_ref(), 9);
        let o = outcome.reident().expect("reident outcome");
        // One classifier-predicted attribute per user: weak but valid.
        assert!(o.rid_acc.iter().all(|&a| (0.0..=100.0).contains(&a)));
    }

    #[test]
    fn inference_scenario_matches_direct_evaluate() {
        // The pipeline decomposition (train → per-target predict) must agree
        // with SampledAttributeAttack::evaluate on identical rng streams.
        let ks = [5usize, 4, 6];
        let ds = skewed_dataset(400, &ks, 10);
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&ks, 6.0)
            .unwrap();
        let observed = observe(&solution, &ds, 11);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let model = AttackModel::NoKnowledge { synth_factor: 1.0 };
        let attack = AttackKind::SampledAttribute(InferenceConfig {
            model,
            classifier: logistic(),
        })
        .build()
        .unwrap();
        let fitted = Attack::fit(&attack, &view, &mut fit_rng(12));
        let got = evaluate_serial(fitted.as_ref(), 12);
        let got = got.inference().expect("inference outcome");

        let tuples: Vec<MultidimReport> = observed
            .iter()
            .map(|r| match r {
                SolutionReport::Tuple(t) => t.clone(),
                _ => unreachable!(),
            })
            .collect();
        let reference = match &solution {
            DynSolution::RsFd(s) => {
                SampledAttributeAttack::evaluate(s, &tuples, &model, &logistic(), &mut fit_rng(12))
            }
            _ => unreachable!(),
        };
        assert_eq!(got.aif_acc.to_bits(), reference.aif_acc.to_bits());
        assert_eq!(got.n_test, reference.n_test);
        assert_eq!(got.n_train, reference.n_train);
    }

    #[test]
    #[should_panic(expected = "needs a fake-data solution")]
    fn inference_rejects_smp() {
        let ks = [4usize, 3];
        let ds = skewed_dataset(40, &ks, 13);
        let solution = SolutionKind::Smp(ProtocolKind::Grr)
            .build(&ks, 1.0)
            .unwrap();
        let observed = observe(&solution, &ds, 14);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let attack = AttackKind::SampledAttribute(InferenceConfig {
            model: AttackModel::NoKnowledge { synth_factor: 1.0 },
            classifier: logistic(),
        })
        .build()
        .unwrap();
        Attack::fit(&attack, &view, &mut fit_rng(15));
    }

    #[test]
    fn pie_audit_reports_pass_through_decisions() {
        let ks = [4usize, 3, 5, 2];
        let ds = skewed_dataset(1000, &ks, 16);
        let solution = SolutionKind::Smp(ProtocolKind::Grr)
            .build(&ks, 1.0)
            .unwrap();
        let observed = observe(&solution, &ds, 17);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let attack = AttackKind::PieAudit { beta: 0.5 }.build().unwrap();
        let outcome = evaluate_serial(Attack::fit(&attack, &view, &mut fit_rng(18)).as_ref(), 18);
        let audit = outcome.pie().expect("pie outcome");
        // β = 0.5, n = 1000 → α ≈ 3.98 → every k ∈ {2,3,4,5} passes through.
        assert_eq!(audit.pass_through_count(), 4);
        assert!(audit.alpha > 3.9 && audit.alpha < 4.0);
    }

    #[test]
    fn averaging_over_one_round_matches_plain_reident() {
        let ks = [6usize, 8, 5, 4];
        let ds = skewed_dataset(200, &ks, 22);
        let solution = SolutionKind::Smp(ProtocolKind::Grr)
            .build(&ks, 8.0)
            .unwrap();
        let observed = observe(&solution, &ds, 23);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let plain = AttackKind::Reident(ReidentConfig::default())
            .build()
            .unwrap();
        let pooled = AttackKind::Averaging(AveragingConfig {
            rounds: 1,
            reident: ReidentConfig::default(),
        })
        .build()
        .unwrap();
        let a = evaluate_serial(Attack::fit(&plain, &view, &mut fit_rng(24)).as_ref(), 24);
        let b = evaluate_serial(Attack::fit(&pooled, &view, &mut fit_rng(24)).as_ref(), 24);
        let (a, b) = (a.reident().unwrap(), b.reident().unwrap());
        assert_eq!(a.rid_acc, b.rid_acc, "R=1 pooling must be a no-op");
    }

    #[test]
    fn averaging_pools_identical_rounds_into_the_single_round_profile() {
        // A memoized campaign replays round 0 on every round: pooling R
        // identical copies must reproduce the single-round ASR exactly.
        let ks = [6usize, 8, 5, 4];
        let ds = skewed_dataset(200, &ks, 25);
        let solution = SolutionKind::Smp(ProtocolKind::Grr)
            .build(&ks, 8.0)
            .unwrap();
        let one_round = observe(&solution, &ds, 26);
        let replayed: Vec<SolutionReport> = (0..4).flat_map(|_| one_round.clone()).collect();
        let single = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &one_round,
            numeric_truth: None,
        };
        let longitudinal = AdversaryView {
            observed: &replayed,
            ..single
        };
        // GRR's deniability guess is deterministic (the reported value), so
        // identical rounds yield identical per-round profiles even though
        // profiling consumes rng.
        let plain = AttackKind::Reident(ReidentConfig::default())
            .build()
            .unwrap();
        let pooled = AttackKind::Averaging(AveragingConfig {
            rounds: 4,
            reident: ReidentConfig::default(),
        })
        .build()
        .unwrap();
        let a = evaluate_serial(Attack::fit(&plain, &single, &mut fit_rng(27)).as_ref(), 27);
        let b = evaluate_serial(
            Attack::fit(&pooled, &longitudinal, &mut fit_rng(27)).as_ref(),
            27,
        );
        assert_eq!(
            a.reident().unwrap().rid_acc,
            b.reident().unwrap().rid_acc,
            "memoized replay must leave the averaging adversary exactly where one round does"
        );
    }

    #[test]
    #[should_panic(expected = "rounds·n observed messages")]
    fn averaging_rejects_a_short_wire() {
        let ks = [4usize, 3];
        let ds = skewed_dataset(50, &ks, 28);
        let solution = SolutionKind::Smp(ProtocolKind::Grr)
            .build(&ks, 2.0)
            .unwrap();
        let observed = observe(&solution, &ds, 29);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let pooled = AttackKind::Averaging(AveragingConfig {
            rounds: 3,
            reident: ReidentConfig::default(),
        })
        .build()
        .unwrap();
        Attack::fit(&pooled, &view, &mut fit_rng(30));
    }

    #[test]
    fn attack_kind_build_validates() {
        assert!(AttackKind::Reident(ReidentConfig {
            top_ks: vec![],
            ..ReidentConfig::default()
        })
        .build()
        .is_err());
        assert!(AttackKind::Reident(ReidentConfig {
            top_ks: vec![0],
            ..ReidentConfig::default()
        })
        .build()
        .is_err());
        assert!(AttackKind::Reident(ReidentConfig {
            background: BackgroundKnowledge::Partial(vec![]),
            ..ReidentConfig::default()
        })
        .build()
        .is_err());
        assert!(AttackKind::SampledAttribute(InferenceConfig {
            model: AttackModel::NoKnowledge { synth_factor: 0.0 },
            classifier: logistic(),
        })
        .build()
        .is_err());
        assert!(AttackKind::SampledAttribute(InferenceConfig {
            model: AttackModel::PartialKnowledge {
                compromised_frac: 1.0
            },
            classifier: logistic(),
        })
        .build()
        .is_err());
        // Degenerate configurations that would train on nothing are rejected
        // at build time rather than panicking inside fit.
        assert!(AttackKind::Reident(ReidentConfig {
            synth_factor: 0.0,
            ..ReidentConfig::default()
        })
        .build()
        .is_err());
        assert!(AttackKind::SampledAttribute(InferenceConfig {
            model: AttackModel::PartialKnowledge {
                compromised_frac: 0.0
            },
            classifier: logistic(),
        })
        .build()
        .is_err());
        // Hybrid may round its PK share to zero users; frac = 0 stays legal.
        assert!(AttackKind::SampledAttribute(InferenceConfig {
            model: AttackModel::Hybrid {
                synth_factor: 1.0,
                compromised_frac: 0.0
            },
            classifier: logistic(),
        })
        .build()
        .is_ok());
        // The u64 hit-mask bounds the metric-slot count.
        assert!(AttackKind::Reident(ReidentConfig {
            top_ks: (1..=65).collect(),
            ..ReidentConfig::default()
        })
        .build()
        .is_err());
        assert!(AttackKind::PieAudit { beta: 1.5 }.build().is_err());
        assert!(AttackKind::PieAudit { beta: 0.9 }.build().is_ok());
        // Averaging validates its round count and its inner reident config.
        assert!(AttackKind::Averaging(AveragingConfig {
            rounds: 0,
            reident: ReidentConfig::default(),
        })
        .build()
        .is_err());
        assert!(AttackKind::Averaging(AveragingConfig {
            rounds: 2,
            reident: ReidentConfig {
                top_ks: vec![],
                ..ReidentConfig::default()
            },
        })
        .build()
        .is_err());
    }

    #[test]
    fn display_names_follow_convention() {
        assert_eq!(
            AttackKind::Reident(ReidentConfig::default()).name(),
            "RID(FK-RI)[1,10]"
        );
        assert_eq!(
            AttackKind::SampledAttribute(InferenceConfig {
                model: AttackModel::NoKnowledge { synth_factor: 1.0 },
                classifier: logistic(),
            })
            .name(),
            "AIF[NK]"
        );
        assert_eq!(AttackKind::PieAudit { beta: 0.5 }.name(), "PIE[beta=0.5]");
        assert_eq!(
            AttackKind::Averaging(AveragingConfig {
                rounds: 4,
                reident: ReidentConfig::default(),
            })
            .name(),
            "AVG[R=4](FK-RI)[1,10]"
        );
    }

    #[test]
    fn works_behind_dyn_attack_object() {
        // The whole point of the redesign: a boxed attack behind the
        // object-safe trait, driven with a boxed rng.
        let ks = [4usize, 3];
        let ds = skewed_dataset(60, &ks, 19);
        let solution = SolutionKind::Smp(ProtocolKind::Grr)
            .build(&ks, 2.0)
            .unwrap();
        let observed = observe(&solution, &ds, 20);
        let view = AdversaryView {
            dataset: &ds,
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        let attack: Box<dyn Attack> = Box::new(
            AttackKind::Reident(ReidentConfig::default())
                .build()
                .unwrap(),
        );
        let mut rng: Box<dyn RngCore> = Box::new(StdRng::seed_from_u64(21));
        let fitted = attack.fit(&view, rng.as_mut());
        assert_eq!(fitted.n_targets(), 60);
        assert_eq!(fitted.n_slots(), 2);
    }
}
