//! Runtime attack selection: [`AttackKind`] + [`DynAttack`] +
//! [`AttackOutcome`], mirroring `SolutionKind`/`DynSolution`/`SolutionReport`
//! on the adversary side.

use ldp_protocols::ProtocolError;

use super::numeric::NumericScenario;
use super::scenarios::{AveragingScenario, InferenceScenario, PieScenario, ReidentScenario};
use super::MAX_METRIC_SLOTS;
use crate::inference::{AttackClassifier, AttackModel, InferenceOutcome};
use crate::pie::PieDecision;

/// Which attributes of the population the re-identification adversary holds
/// as background knowledge (§4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackgroundKnowledge {
    /// FK-RI: the full `d`-dimensional dataset.
    Full,
    /// PK-RI: an explicit subset of global attribute ids.
    Partial(Vec<usize>),
}

impl BackgroundKnowledge {
    /// Paper-style label.
    pub fn name(&self) -> &'static str {
        match self {
            BackgroundKnowledge::Full => "FK-RI",
            BackgroundKnowledge::Partial(_) => "PK-RI",
        }
    }
}

/// Configuration of the §3.2.4 re-identification attack.
#[derive(Debug, Clone)]
pub struct ReidentConfig {
    /// Top-`k` candidate-set sizes; one RID-ACC per entry (paper: 1 and 10).
    pub top_ks: Vec<usize>,
    /// FK-RI or PK-RI background knowledge.
    pub background: BackgroundKnowledge,
    /// Classifier used to first *infer* the hidden sampled attribute when
    /// the observed solution is fake-data (RS+FD / RS+RFD — the Fig. 4
    /// chained attack); unused for SPL/SMP.
    pub classifier: AttackClassifier,
    /// NK synthetic-training factor of that inference step (paper: 1).
    pub synth_factor: f64,
}

impl Default for ReidentConfig {
    fn default() -> Self {
        ReidentConfig {
            top_ks: vec![1, 10],
            background: BackgroundKnowledge::Full,
            classifier: AttackClassifier::default(),
            synth_factor: 1.0,
        }
    }
}

/// Configuration of the §3.3 sampled-attribute inference attack.
#[derive(Debug, Clone)]
pub struct InferenceConfig {
    /// Attacker knowledge model (NK / PK / HM).
    pub model: AttackModel,
    /// Classifier family to train.
    pub classifier: AttackClassifier,
}

/// Configuration of the longitudinal averaging attack: a re-identification
/// adversary who pools each target's sanitized reports across `rounds`
/// collection rounds before matching (per-attribute majority vote over the
/// per-round deniability guesses). This is the risk that distinguishes the
/// budget policies: fresh ε/R randomization leaks a new view every round,
/// memoization replays one view and stays flat.
#[derive(Debug, Clone)]
pub struct AveragingConfig {
    /// Number of pooled collection rounds; the observed wire must hold
    /// `rounds · n` messages, round-major.
    pub rounds: usize,
    /// The underlying single-round re-identification configuration.
    pub reident: ReidentConfig,
}

/// Configuration of the numeric value-range inference attack against mixed
/// solutions (see [`NumericScenario`](super::NumericScenario)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumericConfig {
    /// Global dimension index of the attacked numeric attribute (must carry
    /// the `NUMERIC_DIM` sentinel in the deployed solution's `ks`).
    pub dim: usize,
    /// Number of equal-width value-range buckets over `[-1, 1]`.
    pub buckets: usize,
}

/// The paper's attacks as a plain enum for sweeps and runtime configuration
/// — the adversary counterpart of
/// [`SolutionKind`](crate::solutions::SolutionKind). Build a runnable
/// [`DynAttack`] with [`AttackKind::build`], then drive it through the
/// object-safe [`Attack`](super::Attack) trait (or hand it to
/// `ldp_sim::AttackPipeline` for a seeded, sharded end-to-end run).
///
/// The three kinds cover the paper's threat models:
///
/// * [`AttackKind::Reident`] — the §3.2.4 matching + decision attack,
///   reporting RID-ACC (%) per top-`k`. Against SPL/SMP it profiles users
///   via plausible deniability; against RS+FD/RS+RFD it first infers the
///   hidden sampled attribute with the §3.3 classifier, chaining both error
///   sources exactly as in Fig. 4.
/// * [`AttackKind::SampledAttribute`] — the §3.3 inference attack itself,
///   reporting the attacker's accuracy (ASR) at recovering which attribute
///   of each fake-data tuple carries the real ε′-LDP report, under any
///   [`AttackModel`] × [`AttackClassifier`] combination.
/// * [`AttackKind::PieAudit`] — the Appendix C PIE relaxation: which
///   attributes a `(U, α)`-PIE server would send in the clear at target
///   Bayes error β, and with what ε budgets it randomizes the rest.
/// * [`AttackKind::NumericValueRange`] — value-range inference against the
///   numeric dimension of a mixed solution: a per-user Bayes update of the
///   population value histogram with the Duchi/PM/HM report likelihood,
///   reporting bucket-placement accuracy against the prior-mode baseline.
#[derive(Debug, Clone)]
pub enum AttackKind {
    /// Re-identification with per-`k` RID-ACC.
    Reident(ReidentConfig),
    /// Sampled-attribute inference (fake-data solutions only).
    SampledAttribute(InferenceConfig),
    /// PIE pass-through audit at target Bayes error `beta`.
    PieAudit {
        /// Target Bayes error probability `β_{U|S}` of Corollary 1.
        beta: f64,
    },
    /// Numeric value-range inference (mixed solutions only).
    NumericValueRange(NumericConfig),
    /// Longitudinal averaging: re-identification over reports pooled across
    /// rounds (§ longitudinal risk; rises with rounds under ε-splitting,
    /// flat under memoization).
    Averaging(AveragingConfig),
}

impl AttackKind {
    /// Display name, e.g. `"RID(FK-RI)[1,10]"`, `"AIF[NK]"`,
    /// `"PIE[beta=0.5]"`.
    pub fn name(&self) -> String {
        match self {
            AttackKind::Reident(cfg) => {
                let ks: Vec<String> = cfg.top_ks.iter().map(|k| k.to_string()).collect();
                format!("RID({})[{}]", cfg.background.name(), ks.join(","))
            }
            AttackKind::SampledAttribute(cfg) => format!("AIF[{}]", cfg.model.name()),
            AttackKind::PieAudit { beta } => format!("PIE[beta={beta}]"),
            AttackKind::NumericValueRange(cfg) => {
                format!("NUM-VRI[dim={},B={}]", cfg.dim, cfg.buckets)
            }
            AttackKind::Averaging(cfg) => {
                let ks: Vec<String> = cfg.reident.top_ks.iter().map(|k| k.to_string()).collect();
                format!(
                    "AVG[R={}]({})[{}]",
                    cfg.rounds,
                    cfg.reident.background.name(),
                    ks.join(",")
                )
            }
        }
    }

    /// Validates the configuration and builds the runnable attack — the
    /// single construction path for every scenario (the counterpart of
    /// `SolutionKind::build`).
    pub fn build(self) -> Result<DynAttack, ProtocolError> {
        match &self {
            AttackKind::Reident(cfg) => {
                if cfg.top_ks.is_empty() || cfg.top_ks.contains(&0) {
                    return Err(ProtocolError::InvalidPrior {
                        reason: "re-identification needs non-empty top-ks with k >= 1".to_string(),
                    });
                }
                if cfg.top_ks.len() > MAX_METRIC_SLOTS {
                    return Err(ProtocolError::InvalidPrior {
                        reason: format!(
                            "at most {MAX_METRIC_SLOTS} top-k slots per attack (sharded \
                             evaluation packs hits into a u64 mask)"
                        ),
                    });
                }
                // The NK chaining step for fake-data solutions trains on
                // synthetic profiles only; 0 would leave it with an empty
                // training set.
                if cfg.synth_factor <= 0.0 || cfg.synth_factor.is_nan() {
                    return Err(ProtocolError::InvalidProbability(cfg.synth_factor));
                }
                if let BackgroundKnowledge::Partial(attrs) = &cfg.background {
                    if attrs.is_empty() {
                        return Err(ProtocolError::InvalidPrior {
                            reason: "PK-RI background needs at least one attribute".to_string(),
                        });
                    }
                }
            }
            AttackKind::SampledAttribute(cfg) => match cfg.model {
                // NK trains on synthetic profiles only: the factor must be
                // positive or the training set is empty.
                AttackModel::NoKnowledge { synth_factor } => {
                    if synth_factor <= 0.0 || synth_factor.is_nan() {
                        return Err(ProtocolError::InvalidProbability(synth_factor));
                    }
                }
                // PK trains on compromised users only: the fraction must be
                // positive (and < 1 to leave a test set).
                AttackModel::PartialKnowledge { compromised_frac } => {
                    if compromised_frac <= 0.0
                        || compromised_frac >= 1.0
                        || compromised_frac.is_nan()
                    {
                        return Err(ProtocolError::InvalidProbability(compromised_frac));
                    }
                }
                // HM needs a positive synthetic factor (its PK share may
                // legitimately round to zero users on small populations).
                AttackModel::Hybrid {
                    synth_factor,
                    compromised_frac,
                } => {
                    if synth_factor <= 0.0 || synth_factor.is_nan() {
                        return Err(ProtocolError::InvalidProbability(synth_factor));
                    }
                    if !(0.0..1.0).contains(&compromised_frac) {
                        return Err(ProtocolError::InvalidProbability(compromised_frac));
                    }
                }
            },
            AttackKind::PieAudit { beta } => {
                if !(0.0..=1.0).contains(beta) {
                    return Err(ProtocolError::InvalidProbability(*beta));
                }
            }
            AttackKind::NumericValueRange(cfg) => {
                // One bucket would make the attack trivially (and
                // meaninglessly) 100% accurate.
                if cfg.buckets < 2 {
                    return Err(ProtocolError::InvalidPrior {
                        reason: "numeric value-range inference needs at least 2 buckets"
                            .to_string(),
                    });
                }
            }
            AttackKind::Averaging(cfg) => {
                if cfg.rounds == 0 {
                    return Err(ProtocolError::InvalidPrior {
                        reason: "the averaging attack needs at least one round to pool".to_string(),
                    });
                }
                // The inner re-identification config shares Reident's rules.
                AttackKind::Reident(cfg.reident.clone()).build()?;
            }
        }
        Ok(match self {
            AttackKind::Reident(cfg) => DynAttack::Reident(ReidentScenario::new(cfg)),
            AttackKind::SampledAttribute(cfg) => {
                DynAttack::SampledAttribute(InferenceScenario::new(cfg))
            }
            AttackKind::PieAudit { beta } => DynAttack::PieAudit(PieScenario::new(beta)),
            AttackKind::NumericValueRange(cfg) => {
                DynAttack::NumericValueRange(NumericScenario::new(cfg))
            }
            AttackKind::Averaging(cfg) => DynAttack::Averaging(AveragingScenario::new(cfg)),
        })
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Enum dispatcher over the concrete attack scenarios (the counterpart of
/// [`DynSolution`](crate::solutions::DynSolution)): one object-safe
/// adversary surface with the threat model chosen at runtime.
#[derive(Debug, Clone)]
pub enum DynAttack {
    /// See [`ReidentScenario`].
    Reident(ReidentScenario),
    /// See [`InferenceScenario`].
    SampledAttribute(InferenceScenario),
    /// See [`PieScenario`].
    PieAudit(PieScenario),
    /// See [`NumericScenario`].
    NumericValueRange(NumericScenario),
    /// See [`AveragingScenario`].
    Averaging(AveragingScenario),
}

impl DynAttack {
    /// The attack family and configuration of this instance.
    pub fn kind(&self) -> AttackKind {
        match self {
            DynAttack::Reident(s) => AttackKind::Reident(s.config().clone()),
            DynAttack::SampledAttribute(s) => AttackKind::SampledAttribute(s.config().clone()),
            DynAttack::PieAudit(s) => AttackKind::PieAudit { beta: s.beta() },
            DynAttack::NumericValueRange(s) => AttackKind::NumericValueRange(*s.config()),
            DynAttack::Averaging(s) => AttackKind::Averaging(s.config().clone()),
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        self.kind().name()
    }
}

impl super::Attack for DynAttack {
    fn name(&self) -> String {
        DynAttack::name(self)
    }

    fn needs_observation(&self) -> bool {
        match self {
            DynAttack::Reident(s) => super::Attack::needs_observation(s),
            DynAttack::SampledAttribute(s) => super::Attack::needs_observation(s),
            DynAttack::PieAudit(s) => super::Attack::needs_observation(s),
            DynAttack::NumericValueRange(s) => super::Attack::needs_observation(s),
            DynAttack::Averaging(s) => super::Attack::needs_observation(s),
        }
    }

    fn fit(
        &self,
        view: &super::AdversaryView<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Box<dyn super::FittedAttack> {
        match self {
            DynAttack::Reident(s) => super::Attack::fit(s, view, rng),
            DynAttack::SampledAttribute(s) => super::Attack::fit(s, view, rng),
            DynAttack::PieAudit(s) => super::Attack::fit(s, view, rng),
            DynAttack::NumericValueRange(s) => super::Attack::fit(s, view, rng),
            DynAttack::Averaging(s) => super::Attack::fit(s, view, rng),
        }
    }
}

/// Re-identification attack result: one RID-ACC per requested top-`k`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReidentOutcome {
    /// The top-`k` values evaluated.
    pub top_ks: Vec<usize>,
    /// RID-ACC (%) per top-`k`.
    pub rid_acc: Vec<f64>,
    /// Random-guess baseline (%) per top-`k`: `100·k/n`.
    pub baseline: Vec<f64>,
    /// Number of targets evaluated.
    pub n_targets: usize,
}

impl ReidentOutcome {
    /// RID-ACC (%) at one of the evaluated `k` values.
    pub fn acc_at(&self, k: usize) -> Option<f64> {
        self.top_ks
            .iter()
            .position(|&x| x == k)
            .map(|slot| self.rid_acc[slot])
    }
}

/// PIE audit result: the per-attribute Appendix C decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct PieOutcome {
    /// Target Bayes error β the audit ran at.
    pub beta: f64,
    /// The implied PIE budget `α = (1 − β)·log2(n) − 1` (clamped at 0).
    pub alpha: f64,
    /// Pass-through / randomize decision per attribute.
    pub decisions: Vec<PieDecision>,
}

impl PieOutcome {
    /// How many attributes a PIE server would send in the clear.
    pub fn pass_through_count(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d, PieDecision::PassThrough))
            .count()
    }
}

/// Numeric value-range inference result.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericOutcome {
    /// Fraction (%) of users whose true value landed in the guessed bucket.
    pub acc: f64,
    /// Prior-mode baseline (%): the accuracy of an adversary who never reads
    /// the wire and always guesses the most likely bucket.
    pub baseline: f64,
    /// Number of value-range buckets over `[-1, 1]`.
    pub buckets: usize,
    /// Number of users evaluated (the full population).
    pub n_targets: usize,
    /// How many users' reports actually carried the attacked dimension
    /// (expected `n·sample_k/d` under sampling).
    pub n_observed: usize,
}

impl NumericOutcome {
    /// Attack lift (% points) over the prior-only adversary — the leakage
    /// attributable to the LDP reports themselves.
    pub fn lift(&self) -> f64 {
        self.acc - self.baseline
    }
}

/// One attack result, covering every scenario's report shape — the adversary
/// counterpart of [`SolutionReport`](crate::solutions::SolutionReport).
#[derive(Debug, Clone)]
pub enum AttackOutcome {
    /// Re-identification RID-ACC per top-`k`.
    Reident(ReidentOutcome),
    /// Sampled-attribute inference accuracy.
    Inference(InferenceOutcome),
    /// PIE pass-through audit.
    Pie(PieOutcome),
    /// Numeric value-range inference.
    Numeric(NumericOutcome),
}

impl AttackOutcome {
    /// The re-identification outcome, when this is one.
    pub fn reident(&self) -> Option<&ReidentOutcome> {
        match self {
            AttackOutcome::Reident(o) => Some(o),
            _ => None,
        }
    }

    /// The inference outcome, when this is one.
    pub fn inference(&self) -> Option<&InferenceOutcome> {
        match self {
            AttackOutcome::Inference(o) => Some(o),
            _ => None,
        }
    }

    /// The PIE audit outcome, when this is one.
    pub fn pie(&self) -> Option<&PieOutcome> {
        match self {
            AttackOutcome::Pie(o) => Some(o),
            _ => None,
        }
    }

    /// The numeric value-range outcome, when this is one.
    pub fn numeric(&self) -> Option<&NumericOutcome> {
        match self {
            AttackOutcome::Numeric(o) => Some(o),
            _ => None,
        }
    }
}
