//! Numeric value-range inference: the attack surface of the numeric
//! mechanisms.
//!
//! Duchi / PM / HM reports are unbiased for the *population* mean, but each
//! report is still a likelihood over the user's *individual* value. An
//! adversary who knows the population's value distribution (the same
//! background-knowledge assumption as the §3 attacks) can run a per-user
//! Bayes update: discretize `[-1, 1]` into `B` equal-width buckets, take the
//! population histogram as the prior, multiply by the mechanism likelihood of
//! the observed report integrated over each bucket, and guess the
//! posterior-mode bucket. Success means placing the user's true value in the
//! right bucket — value-range re-identification of a supposedly ε-LDP
//! numeric attribute.
//!
//! The reported baseline is the no-wire adversary (always guess the prior
//! mode), so any lift above it is leakage attributable to the LDP reports.

use ldp_datasets::mixed::bucket_of;
use rand::RngCore;

use super::kind::{AttackKind, NumericConfig, NumericOutcome};
use super::{AdversaryView, Attack, AttackOutcome, FittedAttack};
use crate::numeric::NumericOracle;
use crate::reident::MatchScratch;
use crate::solutions::{DynSolution, MixedEntry, SolutionReport};

/// The numeric value-range inference scenario (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct NumericScenario {
    config: NumericConfig,
}

impl NumericScenario {
    /// Wraps a validated configuration (see `AttackKind::build`).
    pub fn new(config: NumericConfig) -> Self {
        NumericScenario { config }
    }

    /// The scenario configuration.
    pub fn config(&self) -> &NumericConfig {
        &self.config
    }
}

impl Attack for NumericScenario {
    fn name(&self) -> String {
        AttackKind::NumericValueRange(self.config).name()
    }

    fn fit(&self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> Box<dyn FittedAttack> {
        let mixed = match view.solution {
            DynSolution::Mixed(m) => m,
            other => panic!(
                "numeric value-range inference needs a mixed solution, got {}",
                other.name()
            ),
        };
        let truth = view
            .numeric_truth
            .expect("numeric value-range inference needs AdversaryView::numeric_truth");
        assert_eq!(
            truth.ks(),
            mixed.ks().to_vec(),
            "numeric truth schema must match the deployed mixed solution"
        );
        let dim = self.config.dim;
        assert!(
            mixed.is_numeric(dim),
            "attack dimension {dim} is not a numeric dimension of {}",
            view.solution.name()
        );
        assert_eq!(
            view.observed.len(),
            truth.n(),
            "observed wire must hold one report per user"
        );
        // Position of `dim` among the numeric dimensions = index into the
        // truth's numeric columns (the layout convention of MixedDataset).
        let num_idx = mixed.ks()[..dim].iter().filter(|&&k| k == 0).count();
        let buckets = self.config.buckets;
        let prior = truth.numeric_histogram(num_idx, buckets);
        let prior_mode = argmax(&prior);
        let oracle = mixed.numeric_oracle();

        let mut n_observed = 0usize;
        let mut posterior = vec![0.0f64; buckets];
        let correct: Vec<bool> = (0..truth.n())
            .map(|i| {
                let report = match &view.observed[i] {
                    SolutionReport::Mixed(r) => r,
                    other => {
                        panic!("mixed solution produced a non-mixed report: {other:?} for user {i}")
                    }
                };
                let observed_y = report.entries.iter().find_map(|(j, entry)| {
                    (*j == dim).then(|| match entry {
                        MixedEntry::Num(y) => y.value(),
                        MixedEntry::Cat(_) => {
                            panic!("categorical entry on numeric dimension {dim} for user {i}")
                        }
                    })
                });
                let guess = match observed_y {
                    Some(y) => {
                        n_observed += 1;
                        for (b, p) in posterior.iter_mut().enumerate() {
                            *p = prior[b] * bucket_likelihood(oracle, y, b, buckets);
                        }
                        argmax(&posterior)
                    }
                    // The user did not sample this dimension: the wire adds
                    // nothing, so the Bayes-optimal guess is the prior mode.
                    None => prior_mode,
                };
                guess == bucket_of(truth.num_value(i, num_idx), buckets)
            })
            .collect();

        Box::new(FittedNumeric {
            correct,
            buckets,
            n_observed,
            baseline: 100.0 * prior.iter().cloned().fold(0.0f64, f64::max),
        })
    }
}

/// Sub-grid resolution of the per-bucket likelihood integral. The PM density
/// concentrates in a window of width `2(C−1)/(C+1)` in value space, which at
/// large ε is far narrower than a bucket — evaluating the likelihood at the
/// bucket center alone would miss it and degrade the posterior to the prior.
/// 32 sub-points per bucket resolve the window for per-dimension budgets up
/// to ε′ ≈ 10 at B ≤ 8 buckets.
const LIKELIHOOD_GRID: usize = 32;

/// Mechanism likelihood of report `y` integrated (midpoint rule) over the
/// true-value range of bucket `b`, i.e. `P[y | t ∈ bucket b]` under a
/// uniform within-bucket density.
fn bucket_likelihood(oracle: &crate::numeric::DynNumeric, y: f64, b: usize, buckets: usize) -> f64 {
    let width = 2.0 / buckets as f64;
    let lo = -1.0 + b as f64 * width;
    let mut sum = 0.0;
    for g in 0..LIKELIHOOD_GRID {
        let t = lo + (g as f64 + 0.5) / LIKELIHOOD_GRID as f64 * width;
        sum += oracle.likelihood(y, t);
    }
    sum / LIKELIHOOD_GRID as f64
}

/// First index of the maximum value (ties break to the lower bucket, keeping
/// the guess deterministic).
fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// A fitted numeric value-range attack: the per-user success bits are fixed
/// at fit time (the Bayes update is rng-free), like [`FittedInference`].
///
/// [`FittedInference`]: super::FittedInference
#[derive(Debug, Clone)]
pub struct FittedNumeric {
    correct: Vec<bool>,
    buckets: usize,
    n_observed: usize,
    baseline: f64,
}

impl FittedAttack for FittedNumeric {
    fn n_targets(&self) -> usize {
        self.correct.len()
    }

    fn n_slots(&self) -> usize {
        1
    }

    fn evaluate_target(
        &self,
        target: usize,
        _scratch: &mut MatchScratch,
        hits: &mut [bool],
        _rng: &mut dyn RngCore,
    ) {
        hits[0] = self.correct[target];
    }

    fn outcome(&self, hit_counts: &[u64]) -> AttackOutcome {
        AttackOutcome::Numeric(NumericOutcome {
            acc: 100.0 * hit_counts[0] as f64 / self.correct.len().max(1) as f64,
            baseline: self.baseline,
            buckets: self.buckets,
            n_targets: self.correct.len(),
            n_observed: self.n_observed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::{evaluate_serial, fit_rng};
    use crate::solutions::{MixedKind, SolutionKind};
    use crate::NumericKind;
    use ldp_datasets::mixed::mixed_survey_like;
    use ldp_protocols::oracle::ProtocolKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(
        solution: &DynSolution,
        truth: &ldp_datasets::MixedDataset,
        seed: u64,
    ) -> Vec<SolutionReport> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..truth.n())
            .map(|i| {
                solution
                    .report_mixed(truth.cat().row(i), truth.num_row(i), &mut rng)
                    .unwrap()
            })
            .collect()
    }

    fn mixed_solution(epsilon: f64, ks: &[usize]) -> DynSolution {
        SolutionKind::Mixed(MixedKind {
            protocol: ProtocolKind::Grr,
            numeric: NumericKind::Piecewise,
            sample_k: 2,
        })
        .build(ks, epsilon)
        .unwrap()
    }

    #[test]
    fn high_epsilon_beats_the_prior_baseline() {
        let truth = mixed_survey_like(4000, 11);
        let solution = mixed_solution(16.0, &truth.ks());
        let observed = observe(&solution, &truth, 12);
        let view = AdversaryView {
            dataset: truth.cat(),
            solution: &solution,
            observed: &observed,
            numeric_truth: Some(&truth),
        };
        let attack = NumericScenario::new(NumericConfig { dim: 4, buckets: 4 });
        let fitted = attack.fit(&view, &mut fit_rng(1));
        let outcome = evaluate_serial(fitted.as_ref(), 1);
        let o = outcome.numeric().unwrap();
        assert_eq!(o.n_targets, 4000);
        assert!(o.n_observed > 0);
        // At ε = 16 the PM report is nearly the true value: the adversary
        // should beat the prior-mode baseline by a clear margin.
        assert!(
            o.acc > o.baseline + 5.0,
            "acc {} vs baseline {}",
            o.acc,
            o.baseline
        );
    }

    #[test]
    fn low_epsilon_stays_near_the_baseline() {
        let truth = mixed_survey_like(4000, 21);
        let solution = mixed_solution(0.5, &truth.ks());
        let observed = observe(&solution, &truth, 22);
        let view = AdversaryView {
            dataset: truth.cat(),
            solution: &solution,
            observed: &observed,
            numeric_truth: Some(&truth),
        };
        let attack = NumericScenario::new(NumericConfig { dim: 4, buckets: 4 });
        let fitted = attack.fit(&view, &mut fit_rng(1));
        let o = evaluate_serial(fitted.as_ref(), 1);
        let o = o.numeric().unwrap();
        // Reports at ε = 0.5 are close to noise: the lift over the
        // prior-only adversary must be small.
        assert!(
            (o.acc - o.baseline).abs() < 8.0,
            "acc {} vs baseline {}",
            o.acc,
            o.baseline
        );
    }

    #[test]
    #[should_panic(expected = "needs a mixed solution")]
    fn rejects_categorical_solutions() {
        let truth = mixed_survey_like(50, 3);
        let solution = SolutionKind::Spl(ProtocolKind::Grr)
            .build(&[8, 5, 6, 2], 1.0)
            .unwrap();
        let view = AdversaryView {
            dataset: truth.cat(),
            solution: &solution,
            observed: &[],
            numeric_truth: Some(&truth),
        };
        NumericScenario::new(NumericConfig { dim: 4, buckets: 4 }).fit(&view, &mut fit_rng(1));
    }

    #[test]
    #[should_panic(expected = "numeric_truth")]
    fn rejects_missing_numeric_truth() {
        let truth = mixed_survey_like(50, 3);
        let solution = mixed_solution(1.0, &truth.ks());
        let observed = observe(&solution, &truth, 4);
        let view = AdversaryView {
            dataset: truth.cat(),
            solution: &solution,
            observed: &observed,
            numeric_truth: None,
        };
        NumericScenario::new(NumericConfig { dim: 4, buckets: 4 }).fit(&view, &mut fit_rng(1));
    }

    #[test]
    #[should_panic(expected = "not a numeric dimension")]
    fn rejects_categorical_dimensions() {
        let truth = mixed_survey_like(50, 3);
        let solution = mixed_solution(1.0, &truth.ks());
        let observed = observe(&solution, &truth, 4);
        let view = AdversaryView {
            dataset: truth.cat(),
            solution: &solution,
            observed: &observed,
            numeric_truth: Some(&truth),
        };
        NumericScenario::new(NumericConfig { dim: 0, buckets: 4 }).fit(&view, &mut fit_rng(1));
    }
}
