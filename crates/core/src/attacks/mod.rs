//! The unified adversary layer: every attack of the paper behind one
//! object-safe surface, mirroring the collection side's
//! [`SolutionKind`](crate::solutions::SolutionKind) /
//! [`DynSolution`] /
//! [`SolutionReport`] redesign.
//!
//! * [`AttackKind`] — plain configuration enum: which threat model to run
//!   (re-identification, sampled-attribute inference, PIE audit).
//! * [`DynAttack`] — the runtime dispatcher built from a kind; implements the
//!   object-safe [`Attack`] trait.
//! * [`AttackOutcome`] — the result enum covering every attack's report
//!   shape (per-`k` RID-ACC, AIF accuracy, PIE decisions).
//!
//! An attack runs in two phases. [`Attack::fit`] consumes the adversary's
//! [`AdversaryView`] — the target population, the deployed solution and every
//! sanitized message on the wire — and trains/indexes whatever the scenario
//! needs (an inverted re-identification index, a sampled-attribute
//! classifier). The returned [`FittedAttack`] then scores **targets
//! independently**: [`FittedAttack::evaluate_target`] is pure in `&self`, so
//! evaluation shards across threads, with each target drawing randomness
//! from its own [`target_rng`] stream. Serial ([`evaluate_serial`]) and
//! sharded (`ldp_sim::AttackPipeline`) evaluation are therefore
//! **bit-identical** for every thread count.

mod kind;
mod numeric;
mod scenarios;

pub use kind::{
    AttackKind, AttackOutcome, AveragingConfig, BackgroundKnowledge, DynAttack, InferenceConfig,
    NumericConfig, NumericOutcome, PieOutcome, ReidentConfig, ReidentOutcome,
};
pub use numeric::{FittedNumeric, NumericScenario};
pub use scenarios::{
    AveragingScenario, FittedInference, FittedPie, FittedReident, InferenceScenario, PieScenario,
    ReidentEval, ReidentScenario,
};

use ldp_datasets::{Dataset, MixedDataset};
use ldp_protocols::hash::mix3;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::reident::MatchScratch;
use crate::solutions::{DynSolution, SolutionReport};

/// Everything the adversary works from in one collection round: the target
/// population (background knowledge is drawn from it), the deployed
/// collection solution (attacks may replay its exact client mechanism), and
/// the sanitized message of every user, in user order.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryView<'a> {
    /// Ground-truth population; user `i`'s message is `observed[i]`.
    pub dataset: &'a Dataset,
    /// The collection solution that produced `observed`.
    pub solution: &'a DynSolution,
    /// Every sanitized message of the round (the adversary sees the wire).
    pub observed: &'a [SolutionReport],
    /// Continuous ground truth for mixed rounds: the numeric attacks need
    /// the users' true normalized values (and population histograms as
    /// priors), which the categorical [`Dataset`] cannot carry. `None` for
    /// purely categorical rounds.
    pub numeric_truth: Option<&'a MixedDataset>,
}

/// An attack scenario, object-safe: randomness enters through
/// `&mut dyn RngCore` so pipelines and services can hold any attack behind
/// `Box<dyn Attack>` and pick the threat model at runtime — the adversary
/// counterpart of [`DynSolution`].
pub trait Attack {
    /// Display name of the scenario (e.g. `"RID(FK-RI)[1,10]"`).
    fn name(&self) -> String;

    /// Whether [`Attack::fit`] reads the observed wire
    /// ([`AdversaryView::observed`]). Analytic attacks (the PIE audit)
    /// return `false` so pipelines can skip buffering the `O(n)` messages
    /// and pass an empty slice.
    fn needs_observation(&self) -> bool {
        true
    }

    /// Trains/indexes the adversary's model from its view. Serial and
    /// deterministic in `rng`; the per-target evaluation that follows is
    /// sharded by the caller.
    ///
    /// # Panics
    /// Panics when the view's solution family cannot be attacked by this
    /// scenario (e.g. sampled-attribute inference against SPL, which hides
    /// nothing) or when `observed` does not match the solution's shape.
    fn fit(&self, view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> Box<dyn FittedAttack>;
}

/// A fitted adversary. `evaluate_target` must not mutate shared state, so
/// targets can be scored on any thread in any order; per-target randomness
/// comes from the caller via [`target_rng`], which is what makes sharded and
/// serial evaluation bit-identical.
pub trait FittedAttack: Send + Sync {
    /// Number of evaluation targets (0 for analytic attacks such as the PIE
    /// audit).
    fn n_targets(&self) -> usize;

    /// Number of per-target success metrics (e.g. one per top-`k`); the
    /// `hits` buffer of [`FittedAttack::evaluate_target`] has this width.
    /// Must not exceed [`MAX_METRIC_SLOTS`] — sharded evaluation packs the
    /// bits into a `u64` mask ([`AttackKind::build`] enforces this for the
    /// built-in kinds).
    fn n_slots(&self) -> usize;

    /// Scores one target, writing one success bit per metric slot into
    /// `hits`. `scratch` is reusable across calls on the same worker.
    fn evaluate_target(
        &self,
        target: usize,
        scratch: &mut MatchScratch,
        hits: &mut [bool],
        rng: &mut dyn RngCore,
    );

    /// Builds the final outcome from per-slot hit counts over all targets.
    fn outcome(&self, hit_counts: &[u64]) -> AttackOutcome;
}

/// Upper bound on [`FittedAttack::n_slots`]: sharded evaluation packs a
/// target's per-slot hit bits into one `u64` mask.
pub const MAX_METRIC_SLOTS: usize = 64;

/// Salt of the per-target evaluation rng streams (shared by
/// [`evaluate_serial`] and `ldp_sim::AttackPipeline`).
pub const TARGET_SALT: u64 = 0xA11C_E5EED;

/// Salt of the fit-phase rng stream.
pub const FIT_SALT: u64 = 0x00F1_7A77_AC4B;

/// The rng stream of one evaluation target, derived from the attack seed:
/// `StdRng(mix3(seed, target, TARGET_SALT))`. Identical on every thread
/// layout — this replaces the single serial rng the pre-redesign
/// `ReidentAttack::rid_acc` threaded through all users.
pub fn target_rng(seed: u64, target: usize) -> StdRng {
    StdRng::seed_from_u64(mix3(seed, target as u64, TARGET_SALT))
}

/// The rng stream of the fit phase for an attack seed.
pub fn fit_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(mix3(seed, 0, FIT_SALT))
}

/// Serial reference evaluation of a fitted attack: every target scored in
/// order on one thread, one [`MatchScratch`] reused throughout. Bit-identical
/// to the sharded `ldp_sim::AttackPipeline::evaluate` at the same `seed`.
pub fn evaluate_serial(fitted: &dyn FittedAttack, seed: u64) -> AttackOutcome {
    let slots = fitted.n_slots();
    let mut scratch = MatchScratch::default();
    let mut hits = vec![false; slots];
    let mut counts = vec![0u64; slots];
    for target in 0..fitted.n_targets() {
        let mut rng = target_rng(seed, target);
        fitted.evaluate_target(target, &mut scratch, &mut hits, &mut rng);
        for (count, &hit) in counts.iter_mut().zip(&hits) {
            *count += u64::from(hit);
        }
    }
    fitted.outcome(&counts)
}
