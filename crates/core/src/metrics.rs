//! Evaluation metrics shared by the experiments: the paper's averaged MSE
//! (§5.2.2) and simple mean/std aggregation over repeated runs.

/// The paper's utility metric
/// `MSE_avg = (1/d) Σ_j (1/k_j) Σ_v (f_j(v) − f̂_j(v))²`.
///
/// # Panics
/// Panics when the two nested shapes disagree or are empty.
pub fn mse_avg(truth: &[Vec<f64>], estimate: &[Vec<f64>]) -> f64 {
    assert_eq!(truth.len(), estimate.len(), "attribute count mismatch");
    assert!(!truth.is_empty(), "no attributes");
    let mut total = 0.0;
    for (t, e) in truth.iter().zip(estimate) {
        assert_eq!(t.len(), e.len(), "domain size mismatch");
        assert!(!t.is_empty(), "empty domain");
        let per: f64 =
            t.iter().zip(e).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / t.len() as f64;
        total += per;
    }
    total / truth.len() as f64
}

/// Mean and (population) standard deviation of repeated-run measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

/// Aggregates run measurements; an empty slice yields zeros.
pub fn mean_std(xs: &[f64]) -> MeanStd {
    if xs.is_empty() {
        return MeanStd {
            mean: 0.0,
            std: 0.0,
        };
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    MeanStd {
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_avg_zero_for_identical_inputs() {
        let f = vec![vec![0.2, 0.8], vec![0.1, 0.4, 0.5]];
        assert_eq!(mse_avg(&f, &f), 0.0);
    }

    #[test]
    fn mse_avg_averages_over_values_and_attributes() {
        let truth = vec![vec![1.0, 0.0], vec![0.5, 0.5]];
        let est = vec![vec![0.0, 1.0], vec![0.5, 0.5]];
        // Attribute 1: (1 + 1)/2 = 1. Attribute 2: 0. Average: 0.5.
        assert!((mse_avg(&truth, &est) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "domain size mismatch")]
    fn mse_avg_rejects_shape_mismatch() {
        mse_avg(&[vec![1.0]], &[vec![0.5, 0.5]]);
    }

    #[test]
    fn mean_std_basic() {
        let ms = mean_std(&[1.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - 1.0).abs() < 1e-12);
        assert_eq!(
            mean_std(&[]),
            MeanStd {
                mean: 0.0,
                std: 0.0
            }
        );
    }
}
