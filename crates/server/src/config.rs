//! Server sizing knobs: shard count, queue depth, batch size.

/// Configuration of one [`LdpServer`](crate::LdpServer) instance.
///
/// The defaults are sized for tests and examples; production-shaped runs set
/// `shards` to the worker-thread budget and leave the bounded queues at their
/// defaults unless the producer is much burstier than the absorb path.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads, each owning one aggregator shard. Reports are routed
    /// by `uid % shards`, so shard state is deterministic in the input —
    /// and the exact integer merge makes every estimate independent of the
    /// shard count anyway.
    pub shards: usize,
    /// Capacity of each shard's bounded channel, in *messages* (an ingested
    /// batch is one message). A full queue blocks the producer — this is the
    /// backpressure contract: server memory stays
    /// `O(shards · (queue_depth · batch + Σ_j k_j))` no matter how fast
    /// clients push.
    pub queue_depth: usize,
    /// Preferred number of envelopes per channel message when batching
    /// through [`LdpServer::ingest_batch`](crate::LdpServer::ingest_batch).
    pub batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            queue_depth: 64,
            batch: 1024,
        }
    }
}

impl ServerConfig {
    /// Sets the shard / worker-thread count (clamped to ≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-shard queue depth in messages (clamped to ≥ 1 so a
    /// sender can always make progress once a worker drains one message).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the preferred envelopes-per-message batch size (clamped to ≥ 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The configuration with every field clamped to its valid range.
    pub(crate) fn sanitized(&self) -> ServerConfig {
        ServerConfig {
            shards: self.shards.max(1),
            queue_depth: self.queue_depth.max(1),
            batch: self.batch.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_to_valid_ranges() {
        let cfg = ServerConfig::default().shards(0).queue_depth(0).batch(0);
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.queue_depth, 1);
        assert_eq!(cfg.batch, 1);
    }

    #[test]
    fn sanitized_never_returns_zero_fields() {
        let cfg = ServerConfig {
            shards: 0,
            queue_depth: 0,
            batch: 0,
        }
        .sanitized();
        assert!(cfg.shards >= 1 && cfg.queue_depth >= 1 && cfg.batch >= 1);
    }
}
