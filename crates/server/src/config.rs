//! Server sizing knobs: shard count, queue depth, batch size.

/// Configuration of one [`LdpServer`](crate::LdpServer) instance.
///
/// The defaults are sized for tests and examples; production-shaped runs set
/// `shards` to the worker-thread budget and leave the bounded queues at their
/// defaults unless the producer is much burstier than the absorb path.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads, each owning one aggregator shard. Reports are routed
    /// by `uid % shards`, so shard state is deterministic in the input —
    /// and the exact integer merge makes every estimate independent of the
    /// shard count anyway.
    pub shards: usize,
    /// Capacity of each shard's bounded channel, in *messages* (an ingested
    /// batch is one message). A full queue blocks the producer — this is the
    /// backpressure contract: server memory stays
    /// `O(shards · (queue_depth · batch + Σ_j k_j))` no matter how fast
    /// clients push.
    pub queue_depth: usize,
    /// Preferred number of envelopes per channel message when batching
    /// through [`LdpServer::ingest_batch`](crate::LdpServer::ingest_batch).
    pub batch: usize,
    /// How many closed per-epoch snapshots the server retains in its epoch
    /// ring (see [`LdpServer::advance_epoch`](crate::LdpServer::advance_epoch)).
    /// Older epochs are folded into the cumulative aggregate and their
    /// windowed snapshots dropped — retention bounds server memory at
    /// `O(retain · Σ_j k_j)` however long a longitudinal campaign runs.
    pub retain: usize,
    /// Socket read timeout for the wire listener's connections, in
    /// milliseconds; `0` disables the timeout. A connection that stays
    /// silent longer than this is ABORTed and closed, so a hung producer
    /// (dead process, half-open TCP session) can never pin a handler thread
    /// — or wedge an epoch barrier — forever. It doubles as the resume
    /// grace period: a faulted session whose producer has not resumed
    /// within this window is reaped from the drain count and the epoch
    /// barrier (with `0`, faulted sessions are waited on forever, matching
    /// the block-forever semantics of a disabled timeout).
    pub read_timeout_ms: u64,
    /// Shared-secret HELLO auth token. `None` accepts every producer (the
    /// pre-auth wire behavior); `Some(token)` rejects any HELLO whose auth
    /// digest does not match with `ABORT_AUTH` before a single batch byte
    /// is interpreted.
    pub auth_token: Option<String>,
    /// The wire listener acks every `ack_every`-th sequenced batch with a
    /// cumulative `BATCH_ACK` (clamped to ≥ 1). Smaller values shrink the
    /// producer's replay ring (less to re-send after a fault); larger
    /// values cut ack traffic on the return path.
    pub ack_every: u64,
    /// Bound on the wire listener's session table (clamped to ≥ 1). At
    /// capacity the oldest *inactive* session is evicted; if every session
    /// is live the newcomer gets the 0 sentinel token and simply cannot
    /// resume — memory stays bounded however many producers churn.
    pub session_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            queue_depth: 64,
            batch: 1024,
            retain: 4,
            read_timeout_ms: 0,
            auth_token: None,
            ack_every: 32,
            session_capacity: 1024,
        }
    }
}

impl ServerConfig {
    /// Sets the shard / worker-thread count (clamped to ≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-shard queue depth in messages (clamped to ≥ 1 so a
    /// sender can always make progress once a worker drains one message).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the preferred envelopes-per-message batch size (clamped to ≥ 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets how many closed epoch snapshots the ring retains (clamped to
    /// ≥ 1 — the current epoch's predecessor is always queryable).
    pub fn retain(mut self, retain: usize) -> Self {
        self.retain = retain.max(1);
        self
    }

    /// Sets the wire listener's socket read timeout in milliseconds
    /// (`0` disables it).
    pub fn read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout_ms = ms;
        self
    }

    /// Sets the shared-secret HELLO auth token (`None` disables auth).
    pub fn auth_token(mut self, token: Option<String>) -> Self {
        self.auth_token = token;
        self
    }

    /// Sets the cumulative-ack interval in batches (clamped to ≥ 1).
    pub fn ack_every(mut self, every: u64) -> Self {
        self.ack_every = every.max(1);
        self
    }

    /// Sets the session-table capacity (clamped to ≥ 1).
    pub fn session_capacity(mut self, capacity: usize) -> Self {
        self.session_capacity = capacity.max(1);
        self
    }

    /// The configuration with every field clamped to its valid range.
    pub(crate) fn sanitized(&self) -> ServerConfig {
        ServerConfig {
            shards: self.shards.max(1),
            queue_depth: self.queue_depth.max(1),
            batch: self.batch.max(1),
            retain: self.retain.max(1),
            read_timeout_ms: self.read_timeout_ms,
            auth_token: self.auth_token.clone(),
            ack_every: self.ack_every.max(1),
            session_capacity: self.session_capacity.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_to_valid_ranges() {
        let cfg = ServerConfig::default()
            .shards(0)
            .queue_depth(0)
            .batch(0)
            .retain(0)
            .read_timeout_ms(250)
            .auth_token(Some("secret".into()))
            .ack_every(0)
            .session_capacity(0);
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.queue_depth, 1);
        assert_eq!(cfg.batch, 1);
        assert_eq!(cfg.retain, 1);
        assert_eq!(cfg.read_timeout_ms, 250);
        assert_eq!(cfg.auth_token.as_deref(), Some("secret"));
        assert_eq!(cfg.ack_every, 1);
        assert_eq!(cfg.session_capacity, 1);
    }

    #[test]
    fn sanitized_never_returns_zero_fields() {
        let cfg = ServerConfig {
            shards: 0,
            queue_depth: 0,
            batch: 0,
            retain: 0,
            read_timeout_ms: 0,
            auth_token: None,
            ack_every: 0,
            session_capacity: 0,
        }
        .sanitized();
        assert!(cfg.shards >= 1 && cfg.queue_depth >= 1 && cfg.batch >= 1 && cfg.retain >= 1);
        assert!(cfg.ack_every >= 1 && cfg.session_capacity >= 1);
    }
}
