//! # ldp-server
//!
//! The streaming ingestion service of the reproduction: a thread-based
//! server that accepts per-user sanitized [`SolutionReport`]s through
//! **bounded** channels — batches travel as compact-encoded, pool-recycled
//! buffers ([`ldp_core::solutions::CompactBatch`]), so steady-state
//! ingestion allocates nothing on the channel — shards them across worker
//! threads that each **own** their [`MultidimAggregator`] (no shared locks;
//! snapshots and drains are message-passed), and supports merged snapshots
//! while ingestion is still running ("estimate-while-ingesting") as well as
//! a graceful [`LdpServer::drain`].
//!
//! This is the §3.1 system model of the paper at service shape: millions of
//! users continuously push reports, the server never buffers them (each
//! report is folded into `O(Σ_j k_j)` support counts on arrival), and the
//! shard merge is exact integer addition — so the drained snapshot is
//! **bit-identical** to a one-shot batch pass over the same reports, for
//! every shard count and every arrival order.
//!
//! ```
//! use ldp_core::solutions::SolutionKind;
//! use ldp_protocols::ProtocolKind;
//! use ldp_server::{Envelope, LdpServer, ServerConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let solution = SolutionKind::Smp(ProtocolKind::Grr)
//!     .build(&[4, 3], 1.0)
//!     .unwrap();
//! let server = LdpServer::spawn(solution.clone(), ServerConfig::default());
//! let mut rng = StdRng::seed_from_u64(7);
//! for uid in 0..1_000u64 {
//!     server.ingest(Envelope {
//!         uid,
//!         report: solution.report(&[1, 2], &mut rng),
//!     });
//! }
//! let snapshot = server.drain();
//! assert_eq!(snapshot.n, 1_000);
//! assert_eq!(snapshot.estimates.len(), 2);
//! ```
//!
//! [`SolutionReport`]: ldp_core::solutions::SolutionReport
//! [`MultidimAggregator`]: ldp_core::solutions::MultidimAggregator

#![deny(missing_docs)]

pub mod config;
pub mod net;
pub mod service;
pub mod snapshot;
pub mod wire;

pub use config::ServerConfig;
pub use net::{WireServer, ABORT_AUTH, ABORT_HANDSHAKE, ABORT_PROTOCOL, ABORT_TIMEOUT};
pub use service::{Envelope, LdpServer};
pub use snapshot::{EpochSnapshot, ServerSnapshot};
pub use wire::{auth_fingerprint, Frame, WireError, WireSnapshot};
