//! Point-in-time merged server state.

use ldp_core::solutions::MultidimAggregator;

/// A merged view of every shard's aggregator at one instant: the server's
/// answer to "what are the frequency estimates right now?".
///
/// Produced by [`LdpServer::snapshot`](crate::LdpServer::snapshot) while
/// ingestion is running and by [`LdpServer::drain`](crate::LdpServer::drain)
/// after the graceful shutdown. Because the merge is exact integer addition
/// over support counts, a snapshot taken after absorbing a set of reports is
/// bit-identical to a single sequential pass over the same reports — the
/// shard count and arrival order never leak into the estimates.
#[derive(Debug, Clone)]
pub struct ServerSnapshot {
    /// The merged aggregator (reusable: merge further sites into it or keep
    /// absorbing).
    pub aggregator: MultidimAggregator,
    /// Unbiased per-attribute frequency estimates at snapshot time.
    pub estimates: Vec<Vec<f64>>,
    /// Estimates projected onto the probability simplex. All-zero when no
    /// report has been absorbed — an empty server reports "no data", not a
    /// fabricated uniform distribution.
    pub normalized: Vec<Vec<f64>>,
    /// Reports absorbed so far.
    pub n: u64,
    /// Number of shards that were merged.
    pub shards: usize,
}

impl ServerSnapshot {
    /// Builds the snapshot from an already-merged aggregator.
    pub fn from_aggregator(aggregator: MultidimAggregator, shards: usize) -> Self {
        let estimates = aggregator.estimate();
        let normalized = if aggregator.n() == 0 {
            // Zero-users edge: a valid, honest snapshot (see field docs).
            estimates.iter().map(|e| vec![0.0; e.len()]).collect()
        } else {
            // Simplex projection per categorical attribute; numeric means of
            // a mixed solution are clamped to [-1, 1] instead.
            aggregator.estimate_normalized()
        };
        ServerSnapshot {
            n: aggregator.n(),
            shards: shards.max(1),
            estimates,
            normalized,
            aggregator,
        }
    }

    /// Merges per-shard aggregators (exact) and builds the snapshot.
    ///
    /// # Panics
    /// Panics when the shards were built for different solution
    /// configurations (see
    /// [`MultidimAggregator::merge`]).
    pub fn merge(mut base: MultidimAggregator, shards: &[MultidimAggregator]) -> Self {
        for shard in shards {
            base.merge(shard);
        }
        ServerSnapshot::from_aggregator(base, shards.len())
    }
}

/// One closed collection epoch in the server's retention ring: the merged
/// per-epoch snapshot plus the epoch's index. Produced by
/// [`LdpServer::advance_epoch`](crate::LdpServer::advance_epoch) and queried
/// through [`LdpServer::epochs`](crate::LdpServer::epochs); covers **only**
/// the reports absorbed during that epoch (the cumulative view stays
/// available from [`LdpServer::snapshot`](crate::LdpServer::snapshot)).
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Zero-based index of the closed epoch.
    pub epoch: u64,
    /// Merged state of exactly the reports absorbed during this epoch.
    pub snapshot: ServerSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_snapshot_is_valid_and_all_zero() {
        let rsfd = RsFd::new(RsFdProtocol::Grr, &[4, 3], 1.0).unwrap();
        let snap = ServerSnapshot::from_aggregator(rsfd.aggregator(), 3);
        assert_eq!(snap.n, 0);
        assert_eq!(snap.shards, 3);
        assert!(snap.estimates.iter().flatten().all(|f| *f == 0.0));
        assert!(snap.normalized.iter().flatten().all(|f| *f == 0.0));
    }

    #[test]
    fn merge_matches_sequential_absorption() {
        let rsfd = RsFd::new(RsFdProtocol::Grr, &[4, 3], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let reports: Vec<_> = (0..300)
            .map(|i| rsfd.report(&[i % 4, i % 3], &mut rng))
            .collect();
        let mut sequential = rsfd.aggregator();
        let mut shards = [rsfd.aggregator(), rsfd.aggregator()];
        for (i, r) in reports.iter().enumerate() {
            sequential.absorb_tuple(r);
            shards[i % 2].absorb_tuple(r);
        }
        let snap = ServerSnapshot::merge(rsfd.aggregator(), &shards);
        assert_eq!(snap.n, 300);
        assert_eq!(snap.aggregator.counts(), sequential.counts());
        for (a, b) in snap
            .estimates
            .iter()
            .flatten()
            .zip(sequential.estimate().iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
