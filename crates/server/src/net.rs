//! The blocking socket front of the ingestion service: a std-only TCP
//! listener that speaks the [`crate::wire`] protocol and feeds decoded
//! batches into an [`LdpServer`]'s bounded shard channels.
//!
//! ## Threading and backpressure
//!
//! ```text
//!  producer sockets ──► per-connection handler threads ──► LdpServer
//!        (N)                 read_frame / validate          bounded
//!                            ingest_batch (may block)       shard queues
//! ```
//!
//! One OS thread per connection, blocking reads — no async runtime, per the
//! vendored-dependency constraint, and none needed: ingestion is
//! throughput-bound, not connection-count-bound, and a blocked thread *is*
//! the backpressure mechanism. When every shard queue is full,
//! `ingest_batch` blocks the handler, the handler stops calling `read`, the
//! kernel receive buffer fills, the TCP window closes, and the remote
//! producer's `write` stalls — flow control propagates from a full shard
//! queue all the way to the producer process with no code in between.
//!
//! ## Error isolation
//!
//! A malformed frame (bad magic, version, CRC, truncation, an out-of-domain
//! batch) closes **only the offending connection**, after a best-effort
//! ABORT frame to the peer. The whole frame is validated against the
//! server's solution before any envelope of it is ingested, so a bad frame
//! never half-poisons a shard; other connections and the aggregation
//! workers never notice.
//!
//! ## Determinism
//!
//! The socket path adds nothing to the ingest semantics: batches are
//! decoded back to the same envelopes the producer pushed, and the shard
//! merge is exact integer addition. A drain of a socket-fed server is
//! therefore bit-identical to in-process ingestion of the same reports —
//! the invariant `tests/net_equivalence.rs` pins across thread and
//! connection counts.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ldp_core::solutions::DynSolution;
use ldp_protocols::hash::mix2;

use crate::config::ServerConfig;
use crate::service::{Envelope, LdpServer};
use crate::snapshot::{EpochSnapshot, ServerSnapshot};
use crate::wire::{
    auth_fingerprint, read_frame, solution_fingerprint, write_frame, Frame, WireError, WireSnapshot,
};

/// Abort code sent to peers that fail the handshake.
pub const ABORT_HANDSHAKE: u16 = 1;
/// Abort code sent to peers whose frame stream is malformed.
pub const ABORT_PROTOCOL: u16 = 2;
/// Abort code sent to peers that stayed silent past the configured read
/// timeout (see [`ServerConfig::read_timeout_ms`]) — either mid-session or
/// while the rest of their fleet waited for them at an EPOCH barrier.
pub const ABORT_TIMEOUT: u16 = 3;
/// Abort code sent to peers whose HELLO auth digest does not match the
/// server's configured [`ServerConfig::auth_token`].
pub const ABORT_AUTH: u16 = 4;

/// A TCP ingestion frontend wrapping one [`LdpServer`].
///
/// [`WireServer::bind`] starts the accept loop; producers connect, speak
/// the [`crate::wire`] session (HELLO, BATCHes, optional SNAPSHOT
/// round trips, DRAIN), and [`WireServer::finish`] tears the listener down
/// and drains the inner server into its final [`ServerSnapshot`].
#[derive(Debug)]
pub struct WireServer {
    server: Option<Arc<LdpServer>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    stats: Arc<NetStats>,
}

/// Shared connection state: diagnostics counters (none of which
/// participate in the determinism contract) plus the fleet-wide EPOCH
/// barrier for longitudinal producers.
#[derive(Debug)]
struct NetStats {
    /// Connections that completed a DRAIN handshake. Guarded by a mutex
    /// (not an atomic) so [`WireServer::wait_for_producers`] can sleep on
    /// `drained_cvar` without a missed-wakeup window between checking the
    /// count and parking.
    drained: Mutex<usize>,
    /// Signaled on every clean drain.
    drained_cvar: Condvar,
    /// Connections dropped for a protocol violation.
    rejected: AtomicUsize,
    /// Reports ingested over all connections.
    ingested: AtomicU64,
    /// Declared producer-fleet size the EPOCH barrier waits for
    /// (see [`WireServer::producers`]).
    fleet: AtomicUsize,
    /// EPOCH barrier state: the fleet's current round and how many
    /// producers have arrived at its end.
    gate: Mutex<EpochGate>,
    /// Signaled when the barrier releases (the fleet's round advances).
    gate_cvar: Condvar,
    /// The bounded producer-session table keyed by HELLO-issued tokens —
    /// the dedup / resume state of the fault-tolerance contract.
    sessions: Mutex<SessionTable>,
    /// Sessions reaped after exceeding the resume grace period; each one
    /// permanently shrinks the effective fleet the EPOCH barrier and
    /// [`WireServer::wait_for_fleet`] wait for.
    reaped: AtomicUsize,
}

/// The EPOCH barrier's guarded state.
#[derive(Debug, Default)]
struct EpochGate {
    /// The round the fleet is currently streaming.
    round: u64,
    /// Session tokens that already announced the end of this round. A set,
    /// not a counter: a producer that faults after announcing and
    /// re-announces after its resume is idempotent, never double-counted.
    arrived: HashSet<u64>,
}

/// Bounded session table: insertion-ordered for eviction, keyed by the
/// opaque tokens HELLO_ACK hands out.
#[derive(Debug)]
struct SessionTable {
    map: HashMap<u64, SessionState>,
    /// Insertion order for capacity eviction; may hold stale tokens
    /// (lazily skipped) after resume-releases.
    order: VecDeque<u64>,
    /// Monotone token counter, mixed with `nonce` into the issued token.
    next: u64,
    /// Startup-derived salt making tokens non-guessable across runs. Tokens
    /// never feed the estimates, so this wall-clock entropy does not touch
    /// the determinism contract.
    nonce: u64,
}

/// What the server remembers about one producer session, across however
/// many TCP connections it takes to finish it.
#[derive(Debug)]
struct SessionState {
    /// Highest contiguously ingested `BATCH_SEQ` number; replays at or
    /// below it are silently discarded — the exactly-once guarantee.
    acked_seq: u64,
    /// Reports ingested for this session across all its connections.
    ingested: u64,
    /// Connection currently driving the session (`None` between
    /// connections). A RESUME for an owned session is refused — the client
    /// backs off until the dead handler observes its socket error and
    /// releases ownership, which closes the concurrent-ingest race.
    owner: Option<u64>,
    /// Whether a DRAIN was already counted for this session — a re-drain
    /// after a missed DRAIN_ACK acks again but never double-counts.
    drained: bool,
    /// Whether the session ever ingested or resumed; untouched sessions
    /// (probes, idle producers) are never marked suspect.
    touched: bool,
    /// When the session lost its connection without draining; reaped once
    /// this exceeds the resume grace period.
    suspect_since: Option<Instant>,
}

impl SessionTable {
    fn issue(&mut self, capacity: usize, conn: u64) -> (u64, bool) {
        let token = loop {
            self.next = self.next.wrapping_add(1);
            let t = mix2(self.nonce, self.next);
            if t != 0 && !self.map.contains_key(&t) {
                break t;
            }
        };
        if self.map.len() >= capacity {
            // Evict the oldest entry nobody is driving and nobody might
            // still resume into the reap accounting (suspects stay). Stale
            // deque slots (tokens already removed) are dropped in passing.
            let mut evicted = false;
            let mut i = 0;
            while i < self.order.len() {
                let cand = self.order[i];
                match self.map.get(&cand) {
                    None => {
                        self.order.remove(i);
                    }
                    Some(s) if s.owner.is_none() && s.suspect_since.is_none() => {
                        self.order.remove(i);
                        self.map.remove(&cand);
                        evicted = true;
                        break;
                    }
                    Some(_) => i += 1,
                }
            }
            if !evicted {
                // Every slot is live: the newcomer gets a unique barrier
                // identity but no resume support (HELLO_ACK reports 0).
                return (token, false);
            }
        }
        self.map.insert(
            token,
            SessionState {
                acked_seq: 0,
                ingested: 0,
                owner: Some(conn),
                drained: false,
                touched: false,
                suspect_since: None,
            },
        );
        self.order.push_back(token);
        (token, true)
    }
}

impl NetStats {
    fn new() -> NetStats {
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5E55_10E5);
        NetStats {
            drained: Mutex::new(0),
            drained_cvar: Condvar::new(),
            rejected: AtomicUsize::new(0),
            ingested: AtomicU64::new(0),
            fleet: AtomicUsize::new(1),
            gate: Mutex::new(EpochGate::default()),
            gate_cvar: Condvar::new(),
            sessions: Mutex::new(SessionTable {
                map: HashMap::new(),
                order: VecDeque::new(),
                next: 0,
                nonce: mix2(nonce, 0xC0FF_EE00),
            }),
            reaped: AtomicUsize::new(0),
        }
    }

    /// Records one clean DRAIN and wakes every fleet-rendezvous waiter.
    fn note_drained(&self) {
        let mut drained = self.drained.lock().expect("drain counter poisoned");
        *drained += 1;
        self.drained_cvar.notify_all();
    }

    /// The fleet size barriers actually wait for: the declared size minus
    /// reaped sessions, never below 1.
    fn effective_fleet(&self) -> usize {
        self.fleet
            .load(Ordering::SeqCst)
            .saturating_sub(self.reaped.load(Ordering::SeqCst))
            .max(1)
    }

    /// Issues a fresh session token for connection `conn`. The bool says
    /// whether the session landed in the (bounded) table — if not, the
    /// token still serves as the connection's unique barrier identity but
    /// the producer cannot RESUME it.
    fn issue_session(&self, capacity: usize, conn: u64) -> (u64, bool) {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .issue(capacity, conn)
    }

    /// Drops an untouched auto-issued session (the one a RESUME replaces).
    fn forget_session(&self, token: u64) {
        let mut tbl = self.sessions.lock().expect("session table poisoned");
        if tbl.map.get(&token).is_some_and(|s| !s.touched) {
            tbl.map.remove(&token);
        }
    }

    /// Attempts to attach connection `conn` to session `token` after a
    /// reconnect. On success returns the session's `(acked_seq, ingested)`.
    fn try_resume(&self, token: u64, last_acked: u64, conn: u64) -> Result<(u64, u64), WireError> {
        let mut tbl = self.sessions.lock().expect("session table poisoned");
        let Some(state) = tbl.map.get_mut(&token) else {
            return Err(WireError::Handshake(format!(
                "RESUME names an unknown (expired or reaped) session {token:#018x}"
            )));
        };
        if state.owner.is_some() {
            return Err(WireError::Handshake(format!(
                "session {token:#018x} is still active on another connection"
            )));
        }
        if last_acked > state.acked_seq {
            return Err(WireError::Handshake(format!(
                "RESUME claims acked seq {last_acked} but the server only acked {}",
                state.acked_seq
            )));
        }
        state.owner = Some(conn);
        state.touched = true;
        state.suspect_since = None;
        Ok((state.acked_seq, state.ingested))
    }

    /// Writes a successfully ingested sequenced batch back to the table.
    fn record_batch(&self, token: u64, seq: u64, len: u64) {
        let mut tbl = self.sessions.lock().expect("session table poisoned");
        if let Some(state) = tbl.map.get_mut(&token) {
            state.acked_seq = seq;
            state.ingested += len;
            state.touched = true;
        }
    }

    /// Marks unsequenced (legacy BATCH) ingest against the session.
    fn record_legacy_batch(&self, token: u64, len: u64) {
        let mut tbl = self.sessions.lock().expect("session table poisoned");
        if let Some(state) = tbl.map.get_mut(&token) {
            state.ingested += len;
            state.touched = true;
        }
    }

    /// Marks the session drained; returns whether this was the first time
    /// (a re-drain after a missed DRAIN_ACK acks but does not recount).
    fn mark_drained(&self, token: u64) -> bool {
        let mut tbl = self.sessions.lock().expect("session table poisoned");
        match tbl.map.get_mut(&token) {
            Some(state) if !state.drained => {
                state.drained = true;
                true
            }
            Some(_) => false,
            // Not in the table (capacity sentinel): the connection is the
            // session, so every drain is a first drain.
            None => true,
        }
    }

    /// Releases connection `conn`'s ownership of `token` on handler exit.
    /// A touched, undrained session becomes suspect: its producer has the
    /// resume grace period to come back before the session is reaped.
    fn release_session(&self, token: u64, conn: u64) {
        let mut tbl = self.sessions.lock().expect("session table poisoned");
        if let Some(state) = tbl.map.get_mut(&token) {
            if state.owner == Some(conn) {
                state.owner = None;
                if state.touched && !state.drained {
                    state.suspect_since = Some(Instant::now());
                }
            }
        }
    }

    /// Reaps every suspect session older than `grace`: removes it from the
    /// table (a late RESUME gets "unknown session"), shrinks the effective
    /// fleet, and wakes both the drain rendezvous and the epoch barrier so
    /// the surviving fleet can complete without the dead partition.
    /// Returns how many sessions were reaped by this call.
    fn reap_suspects(&self, grace: Duration) -> usize {
        let mut tbl = self.sessions.lock().expect("session table poisoned");
        let now = Instant::now();
        let dead: Vec<u64> = tbl
            .map
            .iter()
            .filter(|(_, s)| {
                s.suspect_since
                    .is_some_and(|t| now.duration_since(t) >= grace)
            })
            .map(|(&t, _)| t)
            .collect();
        for token in &dead {
            tbl.map.remove(token);
            eprintln!(
                "ldp-server: ABORT session {token:#018x} — producer exceeded its \
                 resume grace period; reaping it from the fleet"
            );
        }
        drop(tbl);
        let n = dead.len();
        if n > 0 {
            self.reaped.fetch_add(n, Ordering::SeqCst);
            self.drained_cvar.notify_all();
            self.gate_cvar.notify_all();
        }
        n
    }

    /// Whether any session is currently suspect (faulted, inside its resume
    /// grace window). A barrier waiter that times out while a suspect is
    /// still in grace extends its wait instead of aborting: the verdict on
    /// that producer — resumed or reaped — arrives within one grace period.
    fn suspects_pending(&self) -> bool {
        let tbl = self.sessions.lock().expect("session table poisoned");
        tbl.map.values().any(|s| s.suspect_since.is_some())
    }

    /// Holds the caller at the fleet's EPOCH barrier for the end of
    /// `round`. The last producer to arrive rotates the server's epoch and
    /// releases everyone; returns the fleet's new current round (always
    /// `round + 1`). Arrival is keyed by session token and idempotent, so
    /// a producer that faults after announcing and re-announces after its
    /// resume never double-counts. A waiter that outlives `timeout` first
    /// tries to reap suspect sessions (shrinking the fleet it waits for);
    /// only if nothing was reaped does it withdraw and error — a hung
    /// fleet member must never wedge the rest forever when a timeout is
    /// configured. Errors carry the abort code the peer should see
    /// ([`ABORT_PROTOCOL`] for a round mismatch, [`ABORT_TIMEOUT`] for an
    /// expired wait).
    fn epoch_barrier(
        &self,
        server: &LdpServer,
        round: u64,
        timeout: Option<Duration>,
        token: u64,
    ) -> Result<u64, (u16, WireError)> {
        let mut gate = self.gate.lock().expect("epoch gate poisoned");
        if round + 1 == gate.round {
            // A resumed producer re-announcing a round the fleet already
            // advanced past (its first announce was counted before the
            // fault): the ack it missed is simply re-sent.
            return Ok(gate.round);
        }
        if round != gate.round {
            return Err((
                ABORT_PROTOCOL,
                WireError::Payload(format!(
                    "EPOCH announces the end of round {round}, but the fleet is on round {}",
                    gate.round
                )),
            ));
        }
        gate.arrived.insert(token);
        let mut deadline = timeout.map(|t| Instant::now() + t);
        // Guard-loop wait: spurious wakeups re-check the round and the
        // (possibly reap-shrunk) fleet, so the barrier can never release
        // early or miscount.
        loop {
            if gate.round > round {
                return Ok(round + 1);
            }
            if gate.arrived.len() >= self.effective_fleet() {
                server.advance_epoch();
                gate.round += 1;
                gate.arrived.clear();
                self.gate_cvar.notify_all();
                return Ok(round + 1);
            }
            gate = match deadline {
                None => self.gate_cvar.wait(gate).expect("epoch gate poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Lock order is gate → sessions, here and nowhere
                        // reversed.
                        let grace = timeout.expect("deadline implies timeout");
                        if self.reap_suspects(grace) > 0 {
                            // The fleet shrank; re-check arrivals against
                            // the smaller fleet before giving up.
                            deadline = Some(Instant::now() + grace);
                            continue;
                        }
                        if self.suspects_pending() {
                            // A faulted peer is still inside its grace
                            // window — wait it out rather than abort; the
                            // next expiry either reaps it or it resumed.
                            deadline = Some(Instant::now() + grace);
                            continue;
                        }
                        gate.arrived.remove(&token);
                        return Err((
                            ABORT_TIMEOUT,
                            WireError::Payload(format!(
                                "EPOCH barrier for round {round} timed out waiting for \
                                 the rest of the {}-producer fleet",
                                self.effective_fleet()
                            )),
                        ));
                    }
                    self.gate_cvar
                        .wait_timeout(gate, d - now)
                        .expect("epoch gate poisoned")
                        .0
                }
            };
        }
    }
}

impl WireServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting producer connections for a freshly spawned [`LdpServer`]
    /// over `solution` and `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        solution: DynSolution,
        config: ServerConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let server = Arc::new(LdpServer::spawn(solution, config));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::new());
        let accept = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("ldp-accept".into())
                .spawn(move || accept_loop(&listener, &server, &stop, &stats))
                .expect("cannot spawn accept thread")
        };
        Ok(WireServer {
            server: Some(server),
            addr,
            stop,
            accept: Some(accept),
            stats,
        })
    }

    /// The bound socket address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Declares the producer-fleet size the EPOCH barrier synchronizes
    /// (clamped to ≥ 1; default 1). A longitudinal fleet must declare its
    /// size before the producers connect — counting live connections
    /// instead would race a late-connecting producer and release the
    /// barrier early.
    pub fn producers(self, n: usize) -> Self {
        self.stats.fleet.store(n.max(1), Ordering::SeqCst);
        self
    }

    /// Connections that have completed a clean DRAIN handshake so far.
    pub fn drained_producers(&self) -> usize {
        *self.stats.drained.lock().expect("drain counter poisoned")
    }

    /// The inner server's retained closed-epoch snapshots, oldest first —
    /// the windowed-query surface of a longitudinal wire collection.
    pub fn epochs(&self) -> Vec<EpochSnapshot> {
        self.server
            .as_ref()
            .expect("server not yet finished")
            .epochs()
    }

    /// Connections dropped for protocol violations so far.
    pub fn rejected_connections(&self) -> usize {
        self.stats.rejected.load(Ordering::SeqCst)
    }

    /// Reports ingested over the wire so far (counted at frame validation,
    /// i.e. possibly slightly ahead of shard absorption).
    pub fn ingested_reports(&self) -> u64 {
        self.stats.ingested.load(Ordering::SeqCst)
    }

    /// Sessions reaped for exceeding the resume grace period so far — the
    /// deficit a degraded fleet drain should report.
    pub fn reaped_sessions(&self) -> usize {
        self.stats.reaped.load(Ordering::SeqCst)
    }

    /// Blocks until at least `n` producer connections have drained cleanly
    /// — the server-side rendezvous for a fixed-size producer fleet.
    /// Condvar-parked (no polling): the waiter burns no CPU however long
    /// the fleet takes, and the guard loop re-checks the count on every
    /// wakeup, so spurious wakeups can never miscount a producer.
    pub fn wait_for_producers(&self, n: usize) {
        let mut drained = self.stats.drained.lock().expect("drain counter poisoned");
        while *drained < n {
            drained = self
                .stats
                .drained_cvar
                .wait(drained)
                .expect("drain counter poisoned");
        }
    }

    /// The degradation-aware twin of [`WireServer::wait_for_producers`]:
    /// blocks until drained **plus reaped** sessions reach `n`, so a
    /// producer that dies past its retry budget shrinks the rendezvous
    /// instead of wedging it. With a configured
    /// [`ServerConfig::read_timeout_ms`] the wait polls at that grace
    /// period and reaps suspect sessions itself (the drain path has no
    /// handler thread left to do it); with `0` it parks exactly like
    /// `wait_for_producers` — no timeout means no reaping.
    pub fn wait_for_fleet(&self, n: usize) {
        let grace_ms = self
            .server
            .as_ref()
            .expect("server not yet finished")
            .config()
            .read_timeout_ms;
        let stats = &self.stats;
        let mut drained = stats.drained.lock().expect("drain counter poisoned");
        while *drained + stats.reaped.load(Ordering::SeqCst) < n {
            if grace_ms == 0 {
                drained = stats
                    .drained_cvar
                    .wait(drained)
                    .expect("drain counter poisoned");
            } else {
                let poll = Duration::from_millis(grace_ms.clamp(10, 200));
                drained = stats
                    .drained_cvar
                    .wait_timeout(drained, poll)
                    .expect("drain counter poisoned")
                    .0;
                // Lock order drained → sessions, never reversed.
                stats.reap_suspects(Duration::from_millis(grace_ms));
            }
        }
    }

    /// Stops accepting, joins every connection handler, drains the inner
    /// server and returns the final merged snapshot — bit-identical to an
    /// in-process ingest of the same reports.
    pub fn finish(mut self) -> ServerSnapshot {
        self.shutdown_listener();
        let server = self.server.take().expect("finish called once");
        let server = Arc::try_unwrap(server)
            .expect("all connection handlers joined, nothing else holds the server");
        server.drain()
    }

    /// Signals the accept loop, wakes it with a dummy connection, and joins
    /// the accept thread plus every handler it spawned.
    fn shutdown_listener(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // `TcpListener::accept` has no timeout; a throwaway local connection
        // is the portable way to wake it so it can observe `stop`.
        let _ = TcpStream::connect(self.addr);
        let handlers = accept.join().expect("accept thread panicked");
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        // A dropped-without-finish server still tears its threads down; the
        // inner LdpServer then drains unobserved when the last Arc goes.
        self.shutdown_listener();
    }
}

/// Accepts until `stop` is set, spawning one handler thread per producer.
/// Returns the handler join handles so the shutdown path can wait for
/// in-flight connections to settle before draining.
fn accept_loop(
    listener: &TcpListener,
    server: &Arc<LdpServer>,
    stop: &AtomicBool,
    stats: &Arc<NetStats>,
) -> Vec<JoinHandle<()>> {
    let fingerprint = solution_fingerprint(server.solution());
    let mut handlers = Vec::new();
    for (conn, stream) in listener.incoming().enumerate() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(server);
        let stats = Arc::clone(stats);
        handlers.push(
            std::thread::Builder::new()
                .name(format!("ldp-conn-{conn}"))
                .spawn(move || {
                    match drive_connection(stream, &server, fingerprint, &stats, conn as u64 + 1) {
                        // Ok(true) is a *first* drain for the session — a
                        // re-drain after a missed DRAIN_ACK acks again but
                        // returns Ok(false), so the fleet rendezvous never
                        // double-counts a producer.
                        Ok(true) => {
                            stats.note_drained();
                        }
                        // A peer may disconnect without draining (e.g. a
                        // monitoring probe); that is not a violation.
                        Ok(false) => {}
                        Err(_) => {
                            stats.rejected.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
                .expect("cannot spawn connection handler"),
        );
    }
    handlers
}

/// The handler-local view of its session. While a connection owns a
/// session it is the sole writer of the session's state, so this mirror is
/// authoritative and the table only needs a lock for the write-back (which
/// keeps the table current for a resume after this connection dies).
struct ConnSession {
    /// The session token — auto-issued at HELLO, possibly replaced by a
    /// RESUME. Doubles as the connection's EPOCH-barrier identity.
    token: u64,
    /// Whether `token` lives in the session table (false for the
    /// capacity-overflow sentinel: unique identity, no resume support).
    resumable: bool,
    /// Highest contiguously ingested BATCH_SEQ number.
    acked: u64,
    /// Reports ingested for the session (across its past connections).
    ingested: u64,
    /// Whether any batch/epoch traffic happened — a RESUME is only legal
    /// as the very first frame after the handshake.
    started: bool,
}

/// Runs one producer session to completion. `Ok(true)` is a clean *first*
/// DRAIN for the session, `Ok(false)` a clean disconnect without one (or a
/// repeat drain after a resume); any `Err` already sent a best-effort ABORT
/// and stands for "this connection was cut, everyone else keeps going".
fn drive_connection(
    stream: TcpStream,
    server: &LdpServer,
    fingerprint: u64,
    stats: &NetStats,
    conn: u64,
) -> Result<bool, WireError> {
    // Frames are small relative to throughput; turn Nagle off so snapshot
    // and drain acks turn around immediately.
    let _ = stream.set_nodelay(true);
    let config = server.config();
    // The idle-connection guard: a producer that stays silent past the
    // configured timeout surfaces as a typed [`WireError::Timeout`] below,
    // which ABORTs the connection instead of pinning this handler thread
    // (and any quiesced snapshot barrier queued behind its shard traffic)
    // forever. `0` keeps the historical block-forever behavior.
    let read_timeout = match config.read_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    stream.set_read_timeout(read_timeout)?;
    let mut reader = BufReader::with_capacity(256 * 1024, stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Session opener: exactly one HELLO with a matching auth digest and a
    // matching fingerprint — auth is checked first, so an unauthorized
    // producer learns nothing about whether its solution would match.
    let expected_auth = config
        .auth_token
        .as_deref()
        .map(auth_fingerprint)
        .unwrap_or(0);
    match read_frame(&mut reader) {
        Ok(Frame::Hello {
            fingerprint: got,
            auth,
        }) => {
            if auth != expected_auth {
                let reason = if expected_auth == 0 {
                    "producer presented an auth token but the server is not configured with one"
                        .to_string()
                } else {
                    "producer auth token digest does not match the server's".to_string()
                };
                abort(&mut writer, ABORT_AUTH, &reason);
                return Err(WireError::Handshake(reason));
            }
            if got != fingerprint {
                let reason = format!(
                    "producer solution fingerprint {got:#018x} does not match the server's \
                     {fingerprint:#018x} (different solution, domains or epsilon?)"
                );
                abort(&mut writer, ABORT_HANDSHAKE, &reason);
                return Err(WireError::Handshake(reason));
            }
        }
        Ok(_) => {
            let reason = "expected HELLO as the first frame".to_string();
            abort(&mut writer, ABORT_HANDSHAKE, &reason);
            return Err(WireError::Handshake(reason));
        }
        Err(WireError::Closed) => return Ok(false),
        Err(e) => {
            abort(&mut writer, abort_code(&e), &e.to_string());
            return Err(e);
        }
    }

    let ack_every = config.ack_every.max(1);
    let (token, resumable) = stats.issue_session(config.session_capacity.max(1), conn);
    let mut sess = ConnSession {
        token,
        resumable,
        acked: 0,
        ingested: 0,
        started: false,
    };
    let hello_ack = Frame::HelloAck {
        fingerprint,
        shards: config.shards as u32,
        session: if resumable { token } else { 0 },
        ack_every: ack_every.min(u64::from(u32::MAX)) as u32,
    };
    // From here every exit must release the session so a dead producer's
    // state becomes resumable (and, past the grace period, reapable).
    let result = (|| {
        write_frame(&mut writer, &hello_ack)?;
        writer.flush()?;
        run_session(
            &mut reader,
            &mut writer,
            server,
            stats,
            read_timeout,
            ack_every,
            conn,
            &mut sess,
        )
    })();
    stats.release_session(sess.token, conn);
    result
}

/// The post-handshake frame loop of one connection (see
/// [`drive_connection`] for the return contract).
#[allow(clippy::too_many_arguments)]
fn run_session(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    server: &LdpServer,
    stats: &NetStats,
    read_timeout: Option<Duration>,
    ack_every: u64,
    conn: u64,
    sess: &mut ConnSession,
) -> Result<bool, WireError> {
    let solution = server.solution().clone();
    loop {
        match read_frame(reader) {
            Ok(Frame::Batch(batch)) => {
                // Validate the *whole* frame before ingesting any of it:
                // frames are atomic, so a malformed one is rejected without
                // a single envelope reaching a shard. The solution-instance
                // check additionally bounds numeric fixed-point magnitudes
                // for mixed batches (a forged huge report would otherwise
                // poison the exact sums).
                if let Err(e) = batch.validate_for_solution(&solution) {
                    let e = WireError::Batch(e);
                    abort(writer, ABORT_PROTOCOL, &e.to_string());
                    return Err(e);
                }
                sess.started = true;
                let len = batch.len() as u64;
                // May block on a full shard queue — that block is the
                // backpressure path described in the module docs.
                server.ingest_batch(batch.iter().map(|(uid, report)| Envelope { uid, report }));
                sess.ingested += len;
                stats.ingested.fetch_add(len, Ordering::SeqCst);
                if sess.resumable {
                    stats.record_legacy_batch(sess.token, len);
                }
            }
            Ok(Frame::BatchSeq { seq, batch }) => {
                if let Err(e) = batch.validate_for_solution(&solution) {
                    let e = WireError::Batch(e);
                    abort(writer, ABORT_PROTOCOL, &e.to_string());
                    return Err(e);
                }
                sess.started = true;
                if seq <= sess.acked {
                    // A replay the session already ingested (reconnect ring
                    // overlap, or a duplicated frame): dropped without a
                    // single envelope reaching a shard — exactly-once.
                    continue;
                }
                if seq != sess.acked + 1 {
                    let e = WireError::Payload(format!(
                        "BATCH_SEQ {seq} leaves a gap after acked {}",
                        sess.acked
                    ));
                    abort(writer, ABORT_PROTOCOL, &e.to_string());
                    return Err(e);
                }
                let len = batch.len() as u64;
                server.ingest_batch(batch.iter().map(|(uid, report)| Envelope { uid, report }));
                sess.acked = seq;
                sess.ingested += len;
                stats.ingested.fetch_add(len, Ordering::SeqCst);
                if sess.resumable {
                    stats.record_batch(sess.token, seq, len);
                }
                if seq % ack_every == 0 {
                    write_frame(
                        writer,
                        &Frame::BatchAck {
                            seq,
                            n: sess.ingested,
                        },
                    )?;
                    writer.flush()?;
                }
            }
            Ok(Frame::Resume {
                session,
                last_acked,
            }) => {
                if sess.started {
                    let e = WireError::Payload(
                        "RESUME is only legal as the first frame after the handshake".into(),
                    );
                    abort(writer, ABORT_PROTOCOL, &e.to_string());
                    return Err(e);
                }
                match stats.try_resume(session, last_acked, conn) {
                    Ok((acked, ingested)) => {
                        if sess.token != session {
                            stats.forget_session(sess.token);
                        }
                        sess.token = session;
                        sess.resumable = true;
                        sess.acked = acked;
                        sess.ingested = ingested;
                        write_frame(writer, &Frame::ResumeAck { acked_seq: acked })?;
                        writer.flush()?;
                    }
                    Err(e) => {
                        abort(writer, ABORT_HANDSHAKE, &e.to_string());
                        return Err(e);
                    }
                }
            }
            Ok(Frame::SnapshotRequest { quiesce }) => {
                if quiesce {
                    server.quiesce();
                }
                let snapshot = server.snapshot();
                write_frame(writer, &Frame::Snapshot(WireSnapshot::from(&snapshot)))?;
                writer.flush()?;
            }
            Ok(Frame::Epoch { round }) => {
                sess.started = true;
                // Fleet lockstep: held here until every declared producer
                // announces the end of `round`; the last arrival rotates
                // the server's epoch. The wait is bounded by the same read
                // timeout as the socket, and a timed-out wait reaps dead
                // fleet members before giving up, so one crashed producer
                // degrades the fleet instead of wedging it.
                match stats.epoch_barrier(server, round, read_timeout, sess.token) {
                    Ok(current) => {
                        write_frame(writer, &Frame::Epoch { round: current })?;
                        writer.flush()?;
                    }
                    Err((code, e)) => {
                        abort(writer, code, &e.to_string());
                        return Err(e);
                    }
                }
            }
            Ok(Frame::Drain) => {
                write_frame(writer, &Frame::DrainAck { n: sess.ingested })?;
                writer.flush()?;
                let first = if sess.resumable {
                    stats.mark_drained(sess.token)
                } else {
                    true
                };
                return Ok(first);
            }
            Ok(Frame::Abort { .. }) => return Ok(false),
            Ok(other) => {
                let e = WireError::Payload(format!(
                    "unexpected {} frame in an open session",
                    frame_name(&other)
                ));
                abort(writer, ABORT_PROTOCOL, &e.to_string());
                return Err(e);
            }
            Err(WireError::Closed) => return Ok(false),
            Err(e) => {
                abort(writer, abort_code(&e), &e.to_string());
                return Err(e);
            }
        }
    }
}

/// Picks the abort code a failed read deserves: an expired socket read
/// timeout is the peer idling ([`ABORT_TIMEOUT`]), anything else is a
/// malformed stream ([`ABORT_PROTOCOL`]).
fn abort_code(e: &WireError) -> u16 {
    match e {
        WireError::Timeout => ABORT_TIMEOUT,
        WireError::Io(io)
            if matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            ABORT_TIMEOUT
        }
        _ => ABORT_PROTOCOL,
    }
}

/// Best-effort ABORT notification; the connection is going away either way.
fn abort(writer: &mut impl Write, code: u16, message: &str) {
    let _ = write_frame(
        writer,
        &Frame::Abort {
            code,
            message: message.to_string(),
        },
    );
    let _ = writer.flush();
}

fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "HELLO",
        Frame::HelloAck { .. } => "HELLO_ACK",
        Frame::Batch(_) => "BATCH",
        Frame::SnapshotRequest { .. } => "SNAPSHOT_REQUEST",
        Frame::Snapshot(_) => "SNAPSHOT",
        Frame::Drain => "DRAIN",
        Frame::DrainAck { .. } => "DRAIN_ACK",
        Frame::Abort { .. } => "ABORT",
        Frame::Epoch { .. } => "EPOCH",
        Frame::BatchSeq { .. } => "BATCH_SEQ",
        Frame::BatchAck { .. } => "BATCH_ACK",
        Frame::Resume { .. } => "RESUME",
        Frame::ResumeAck { .. } => "RESUME_ACK",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{CompactBatch, RsFdProtocol, SolutionKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spawn_server() -> (WireServer, DynSolution) {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default().shards(2),
        )
        .unwrap();
        (server, solution)
    }

    fn handshake(addr: SocketAddr, solution: &DynSolution) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream.try_clone().unwrap();
        write_frame(
            &mut writer,
            &Frame::Hello {
                fingerprint: solution_fingerprint(solution),
                auth: 0,
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::HelloAck { .. }
        ));
        (reader, stream)
    }

    #[test]
    fn socket_session_ingests_snapshots_and_drains() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut batch = CompactBatch::new();
        for uid in 0..200u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        write_frame(&mut writer, &Frame::SnapshotRequest { quiesce: true }).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Snapshot(snap) => {
                assert_eq!(snap.n, 200);
                assert_eq!(snap.estimates.len(), 2);
            }
            other => panic!("expected SNAPSHOT, got {other:?}"),
        }
        write_frame(&mut writer, &Frame::Drain).unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::DrainAck { n: 200 }
        ));
        server.wait_for_producers(1);
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 200);
    }

    #[test]
    fn wrong_fingerprint_is_rejected_at_handshake() {
        let (server, _solution) = spawn_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(
            &mut writer,
            &Frame::Hello {
                fingerprint: 0xBAD,
                auth: 0,
            },
        )
        .unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_HANDSHAKE),
            other => panic!("expected ABORT, got {other:?}"),
        }
        // The server survives and still serves valid producers.
        assert_eq!(server.finish().n, 0);
    }

    #[test]
    fn corrupt_frame_closes_only_the_offending_connection() {
        let (server, solution) = spawn_server();
        let addr = server.local_addr();

        // A well-behaved producer on one connection…
        let (mut good_reader, good_stream) = handshake(addr, &solution);
        let mut good_writer = good_stream.try_clone().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut batch = CompactBatch::new();
        for uid in 0..100u64 {
            batch.push(uid, &solution.report(&[0, 1], &mut rng));
        }
        write_frame(&mut good_writer, &Frame::Batch(batch.clone())).unwrap();
        good_writer.flush().unwrap();

        // …and garbage on another: corrupt CRC after a valid handshake.
        let (mut bad_reader, bad_stream) = handshake(addr, &solution);
        let mut bad_writer = bad_stream.try_clone().unwrap();
        let mut buf = Vec::new();
        crate::wire::encode_frame(&Frame::Batch(batch), &mut buf);
        *buf.last_mut().unwrap() ^= 0xFF;
        std::io::Write::write_all(&mut bad_writer, &buf).unwrap();
        bad_writer.flush().unwrap();
        match read_frame(&mut bad_reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut bad_reader),
            Err(WireError::Closed)
        ));

        // The good connection is unaffected: it can still snapshot + drain.
        write_frame(&mut good_writer, &Frame::Drain).unwrap();
        good_writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut good_reader).unwrap(),
            Frame::DrainAck { n: 100 }
        ));
        server.wait_for_producers(1);
        assert_eq!(server.rejected_connections(), 1);
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 100, "corrupt frame must not poison a shard");
    }

    #[test]
    fn wait_for_producers_parks_on_the_condvar_until_the_fleet_drains() {
        let (server, solution) = spawn_server();
        let addr = server.local_addr();
        let server = Arc::new(server);
        // The waiter parks *before* any producer drains — the miscount this
        // guards against is a drain signaled between the waiter's count
        // check and its park (the old busy-spin never slept long enough to
        // expose it; the condvar closes the window by holding the lock
        // across both).
        let waiter = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.wait_for_producers(2))
        };
        for seed in [41u64, 43] {
            let (mut reader, stream) = handshake(addr, &solution);
            let mut writer = stream.try_clone().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut batch = CompactBatch::new();
            for uid in 0..50u64 {
                batch.push(uid, &solution.report(&[1, 2], &mut rng));
            }
            write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
            write_frame(&mut writer, &Frame::Drain).unwrap();
            writer.flush().unwrap();
            assert!(matches!(
                read_frame(&mut reader).unwrap(),
                Frame::DrainAck { n: 50 }
            ));
        }
        waiter.join().expect("rendezvous waiter panicked");
        assert_eq!(server.drained_producers(), 2);
        let server = Arc::try_unwrap(server).expect("waiter released its handle");
        assert_eq!(server.finish().n, 100);
    }

    #[test]
    fn epoch_frames_advance_a_two_producer_fleet_in_lockstep() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default().shards(2).retain(8),
        )
        .unwrap()
        .producers(2);
        let addr = server.local_addr();
        let mut rng = StdRng::seed_from_u64(51);
        let mut rounds_batches = Vec::new();
        for _ in 0..2 {
            let mut batch = CompactBatch::new();
            for uid in 0..40u64 {
                batch.push(uid, &solution.report(&[2, 1], &mut rng));
            }
            rounds_batches.push(batch);
        }
        // Two producers each stream one round then hit the barrier; the
        // barrier must hold until BOTH arrive, then ack round 1 to both.
        let mut sessions: Vec<_> = (0..2)
            .map(|i| {
                let solution = solution.clone();
                let batch = rounds_batches[i].clone();
                std::thread::spawn(move || {
                    let (mut reader, stream) = {
                        let stream = TcpStream::connect(addr).unwrap();
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut writer = stream.try_clone().unwrap();
                        write_frame(
                            &mut writer,
                            &Frame::Hello {
                                fingerprint: solution_fingerprint(&solution),
                                auth: 0,
                            },
                        )
                        .unwrap();
                        writer.flush().unwrap();
                        assert!(matches!(
                            read_frame(&mut reader).unwrap(),
                            Frame::HelloAck { .. }
                        ));
                        (reader, stream)
                    };
                    let mut writer = stream.try_clone().unwrap();
                    write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
                    write_frame(&mut writer, &Frame::Epoch { round: 0 }).unwrap();
                    writer.flush().unwrap();
                    match read_frame(&mut reader).unwrap() {
                        Frame::Epoch { round } => assert_eq!(round, 1),
                        other => panic!("expected EPOCH ack, got {other:?}"),
                    }
                    write_frame(&mut writer, &Frame::Drain).unwrap();
                    writer.flush().unwrap();
                    assert!(matches!(
                        read_frame(&mut reader).unwrap(),
                        Frame::DrainAck { n: 40 }
                    ));
                })
            })
            .collect();
        for session in sessions.drain(..) {
            session.join().expect("producer session panicked");
        }
        server.wait_for_producers(2);
        // One closed epoch holding both producers' round-0 batches.
        let epochs = server.epochs();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].epoch, 0);
        assert_eq!(epochs[0].snapshot.n, 80);
        assert_eq!(server.finish().n, 80);
    }

    #[test]
    fn mismatched_epoch_round_is_rejected() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        write_frame(&mut writer, &Frame::Epoch { round: 7 }).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        assert_eq!(server.finish().n, 0);
    }

    #[test]
    fn foreign_solution_batch_is_rejected_atomically() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        // Structurally valid words, wrong shape: an SMP batch for a fake-
        // data server. The whole frame must be rejected pre-ingest.
        let smp = SolutionKind::Smp(ldp_protocols::ProtocolKind::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut batch = CompactBatch::new();
        for uid in 0..50u64 {
            batch.push(uid, &smp.report(&[1, 1], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 0, "no envelope of a rejected frame may land");
    }

    #[test]
    fn auth_mismatch_is_rejected_at_handshake_with_abort_auth() {
        use crate::wire::auth_fingerprint;
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default()
                .shards(2)
                .auth_token(Some("right-token".into())),
        )
        .unwrap();
        let addr = server.local_addr();
        let fingerprint = solution_fingerprint(&solution);

        // No token, then the wrong token: both ABORT_AUTH.
        for auth in [0, auth_fingerprint("wrong-token")] {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            write_frame(&mut writer, &Frame::Hello { fingerprint, auth }).unwrap();
            writer.flush().unwrap();
            match read_frame(&mut reader).unwrap() {
                Frame::Abort { code, .. } => assert_eq!(code, ABORT_AUTH),
                other => panic!("expected ABORT, got {other:?}"),
            }
        }

        // The right token handshakes, streams and drains normally.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(
            &mut writer,
            &Frame::Hello {
                fingerprint,
                auth: auth_fingerprint("right-token"),
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::HelloAck { .. }
        ));
        let mut rng = StdRng::seed_from_u64(9);
        let mut batch = CompactBatch::new();
        for uid in 0..30u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        write_frame(&mut writer, &Frame::Drain).unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::DrainAck { n: 30 }
        ));
        server.wait_for_producers(1);
        assert_eq!(server.rejected_connections(), 2);
        assert_eq!(server.finish().n, 30);
    }

    #[test]
    fn sequenced_batches_ack_dedup_and_resume_exactly_once() {
        let (server, solution) = spawn_server();
        let addr = server.local_addr();
        let mut rng = StdRng::seed_from_u64(23);
        let mut batches = Vec::new();
        for _ in 0..3 {
            let mut batch = CompactBatch::new();
            for uid in 0..20u64 {
                batch.push(uid, &solution.report(&[1, 2], &mut rng));
            }
            batches.push(batch);
        }

        // First connection: two sequenced batches (one duplicated), then
        // the connection dies without draining.
        let session = {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream.try_clone().unwrap();
            write_frame(
                &mut writer,
                &Frame::Hello {
                    fingerprint: solution_fingerprint(&solution),
                    auth: 0,
                },
            )
            .unwrap();
            writer.flush().unwrap();
            let session = match read_frame(&mut reader).unwrap() {
                Frame::HelloAck { session, .. } => session,
                other => panic!("expected HELLO_ACK, got {other:?}"),
            };
            assert_ne!(session, 0, "default capacity must admit the session");
            for (i, batch) in batches[..2].iter().enumerate() {
                let frame = Frame::BatchSeq {
                    seq: i as u64 + 1,
                    batch: batch.clone(),
                };
                write_frame(&mut writer, &frame).unwrap();
                if i == 1 {
                    // The duplicate fault class: the same frame twice.
                    write_frame(&mut writer, &frame).unwrap();
                }
            }
            writer.flush().unwrap();
            // Quiesced snapshot proves the duplicate was discarded.
            write_frame(&mut writer, &Frame::SnapshotRequest { quiesce: true }).unwrap();
            writer.flush().unwrap();
            match read_frame(&mut reader).unwrap() {
                Frame::Snapshot(snap) => assert_eq!(snap.n, 40),
                other => panic!("expected SNAPSHOT, got {other:?}"),
            }
            // Die without draining (the reset fault class).
            drop(writer);
            session
        };

        // Second connection resumes the session, replays batch 2 (already
        // ingested — must be deduped), streams batch 3 and drains.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream.try_clone().unwrap();
        write_frame(
            &mut writer,
            &Frame::Hello {
                fingerprint: solution_fingerprint(&solution),
                auth: 0,
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::HelloAck { .. }
        ));
        write_frame(
            &mut writer,
            &Frame::Resume {
                session,
                last_acked: 1,
            },
        )
        .unwrap();
        writer.flush().unwrap();
        // The resume may race the dead handler's release; back off briefly.
        let acked = loop {
            match read_frame(&mut reader) {
                Ok(Frame::ResumeAck { acked_seq }) => break acked_seq,
                Ok(Frame::Abort { .. }) | Err(_) => {
                    std::thread::sleep(Duration::from_millis(20));
                    let stream = TcpStream::connect(addr).unwrap();
                    reader = BufReader::new(stream.try_clone().unwrap());
                    writer = stream.try_clone().unwrap();
                    write_frame(
                        &mut writer,
                        &Frame::Hello {
                            fingerprint: solution_fingerprint(&solution),
                            auth: 0,
                        },
                    )
                    .unwrap();
                    writer.flush().unwrap();
                    assert!(matches!(
                        read_frame(&mut reader).unwrap(),
                        Frame::HelloAck { .. }
                    ));
                    write_frame(
                        &mut writer,
                        &Frame::Resume {
                            session,
                            last_acked: 1,
                        },
                    )
                    .unwrap();
                    writer.flush().unwrap();
                }
                other => panic!("expected RESUME_ACK, got {other:?}"),
            }
        };
        assert_eq!(acked, 2, "server acked both pre-fault batches");
        for (i, batch) in batches[1..].iter().enumerate() {
            write_frame(
                &mut writer,
                &Frame::BatchSeq {
                    seq: i as u64 + 2,
                    batch: batch.clone(),
                },
            )
            .unwrap();
        }
        write_frame(&mut writer, &Frame::Drain).unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::DrainAck { n: 60 }
        ));
        server.wait_for_producers(1);
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 60, "replays must never double-ingest");
    }

    #[test]
    fn out_of_order_seq_gap_is_rejected() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let mut batch = CompactBatch::new();
        for uid in 0..10u64 {
            batch.push(uid, &solution.report(&[0, 0], &mut rng));
        }
        // seq 5 with nothing acked: a gap, not a replay — rejected.
        write_frame(&mut writer, &Frame::BatchSeq { seq: 5, batch }).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        assert_eq!(server.finish().n, 0);
    }
}
