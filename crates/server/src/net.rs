//! The blocking socket front of the ingestion service: a std-only TCP
//! listener that speaks the [`crate::wire`] protocol and feeds decoded
//! batches into an [`LdpServer`]'s bounded shard channels.
//!
//! ## Threading and backpressure
//!
//! ```text
//!  producer sockets ──► per-connection handler threads ──► LdpServer
//!        (N)                 read_frame / validate          bounded
//!                            ingest_batch (may block)       shard queues
//! ```
//!
//! One OS thread per connection, blocking reads — no async runtime, per the
//! vendored-dependency constraint, and none needed: ingestion is
//! throughput-bound, not connection-count-bound, and a blocked thread *is*
//! the backpressure mechanism. When every shard queue is full,
//! `ingest_batch` blocks the handler, the handler stops calling `read`, the
//! kernel receive buffer fills, the TCP window closes, and the remote
//! producer's `write` stalls — flow control propagates from a full shard
//! queue all the way to the producer process with no code in between.
//!
//! ## Error isolation
//!
//! A malformed frame (bad magic, version, CRC, truncation, an out-of-domain
//! batch) closes **only the offending connection**, after a best-effort
//! ABORT frame to the peer. The whole frame is validated against the
//! server's solution before any envelope of it is ingested, so a bad frame
//! never half-poisons a shard; other connections and the aggregation
//! workers never notice.
//!
//! ## Determinism
//!
//! The socket path adds nothing to the ingest semantics: batches are
//! decoded back to the same envelopes the producer pushed, and the shard
//! merge is exact integer addition. A drain of a socket-fed server is
//! therefore bit-identical to in-process ingestion of the same reports —
//! the invariant `tests/net_equivalence.rs` pins across thread and
//! connection counts.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ldp_core::solutions::DynSolution;

use crate::config::ServerConfig;
use crate::service::{Envelope, LdpServer};
use crate::snapshot::ServerSnapshot;
use crate::wire::{read_frame, solution_fingerprint, write_frame, Frame, WireError, WireSnapshot};

/// Abort code sent to peers that fail the handshake.
const ABORT_HANDSHAKE: u16 = 1;
/// Abort code sent to peers whose frame stream is malformed.
const ABORT_PROTOCOL: u16 = 2;

/// A TCP ingestion frontend wrapping one [`LdpServer`].
///
/// [`WireServer::bind`] starts the accept loop; producers connect, speak
/// the [`crate::wire`] session (HELLO, BATCHes, optional SNAPSHOT
/// round trips, DRAIN), and [`WireServer::finish`] tears the listener down
/// and drains the inner server into its final [`ServerSnapshot`].
#[derive(Debug)]
pub struct WireServer {
    server: Option<Arc<LdpServer>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    stats: Arc<NetStats>,
}

/// Shared connection counters (diagnostics; none of these participate in
/// the determinism contract).
#[derive(Debug, Default)]
struct NetStats {
    /// Connections that completed a DRAIN handshake.
    drained: AtomicUsize,
    /// Connections dropped for a protocol violation.
    rejected: AtomicUsize,
    /// Reports ingested over all connections.
    ingested: AtomicU64,
}

impl WireServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting producer connections for a freshly spawned [`LdpServer`]
    /// over `solution` and `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        solution: DynSolution,
        config: ServerConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let server = Arc::new(LdpServer::spawn(solution, config));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let accept = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("ldp-accept".into())
                .spawn(move || accept_loop(&listener, &server, &stop, &stats))
                .expect("cannot spawn accept thread")
        };
        Ok(WireServer {
            server: Some(server),
            addr,
            stop,
            accept: Some(accept),
            stats,
        })
    }

    /// The bound socket address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections that have completed a clean DRAIN handshake so far.
    pub fn drained_producers(&self) -> usize {
        self.stats.drained.load(Ordering::SeqCst)
    }

    /// Connections dropped for protocol violations so far.
    pub fn rejected_connections(&self) -> usize {
        self.stats.rejected.load(Ordering::SeqCst)
    }

    /// Reports ingested over the wire so far (counted at frame validation,
    /// i.e. possibly slightly ahead of shard absorption).
    pub fn ingested_reports(&self) -> u64 {
        self.stats.ingested.load(Ordering::SeqCst)
    }

    /// Blocks until at least `n` producer connections have drained cleanly
    /// — the server-side rendezvous for a fixed-size producer fleet.
    pub fn wait_for_producers(&self, n: usize) {
        // Drains are rare, coarse events; a parked poll keeps this free of
        // extra synchronization on the ingest path.
        while self.drained_producers() < n {
            std::thread::park_timeout(std::time::Duration::from_millis(2));
        }
    }

    /// Stops accepting, joins every connection handler, drains the inner
    /// server and returns the final merged snapshot — bit-identical to an
    /// in-process ingest of the same reports.
    pub fn finish(mut self) -> ServerSnapshot {
        self.shutdown_listener();
        let server = self.server.take().expect("finish called once");
        let server = Arc::try_unwrap(server)
            .expect("all connection handlers joined, nothing else holds the server");
        server.drain()
    }

    /// Signals the accept loop, wakes it with a dummy connection, and joins
    /// the accept thread plus every handler it spawned.
    fn shutdown_listener(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // `TcpListener::accept` has no timeout; a throwaway local connection
        // is the portable way to wake it so it can observe `stop`.
        let _ = TcpStream::connect(self.addr);
        let handlers = accept.join().expect("accept thread panicked");
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        // A dropped-without-finish server still tears its threads down; the
        // inner LdpServer then drains unobserved when the last Arc goes.
        self.shutdown_listener();
    }
}

/// Accepts until `stop` is set, spawning one handler thread per producer.
/// Returns the handler join handles so the shutdown path can wait for
/// in-flight connections to settle before draining.
fn accept_loop(
    listener: &TcpListener,
    server: &Arc<LdpServer>,
    stop: &AtomicBool,
    stats: &Arc<NetStats>,
) -> Vec<JoinHandle<()>> {
    let fingerprint = solution_fingerprint(server.solution());
    let mut handlers = Vec::new();
    for (conn, stream) in listener.incoming().enumerate() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(server);
        let stats = Arc::clone(stats);
        handlers.push(
            std::thread::Builder::new()
                .name(format!("ldp-conn-{conn}"))
                .spawn(move || {
                    match drive_connection(stream, &server, fingerprint, &stats) {
                        Ok(true) => {
                            stats.drained.fetch_add(1, Ordering::SeqCst);
                        }
                        // A peer may disconnect without draining (e.g. a
                        // monitoring probe); that is not a violation.
                        Ok(false) => {}
                        Err(_) => {
                            stats.rejected.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
                .expect("cannot spawn connection handler"),
        );
    }
    handlers
}

/// Runs one producer session to completion. `Ok(true)` is a clean DRAIN,
/// `Ok(false)` a clean disconnect without one; any `Err` already sent a
/// best-effort ABORT and stands for "this connection was cut, everyone
/// else keeps going".
fn drive_connection(
    stream: TcpStream,
    server: &LdpServer,
    fingerprint: u64,
    stats: &NetStats,
) -> Result<bool, WireError> {
    // Frames are small relative to throughput; turn Nagle off so snapshot
    // and drain acks turn around immediately.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::with_capacity(256 * 1024, stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Session opener: exactly one HELLO with a matching fingerprint.
    match read_frame(&mut reader) {
        Ok(Frame::Hello { fingerprint: got }) if got == fingerprint => {
            write_frame(
                &mut writer,
                &Frame::HelloAck {
                    fingerprint,
                    shards: server.config().shards as u32,
                },
            )?;
            writer.flush()?;
        }
        Ok(Frame::Hello { fingerprint: got }) => {
            let reason = format!(
                "producer solution fingerprint {got:#018x} does not match the server's \
                 {fingerprint:#018x} (different solution, domains or epsilon?)"
            );
            abort(&mut writer, ABORT_HANDSHAKE, &reason);
            return Err(WireError::Handshake(reason));
        }
        Ok(_) => {
            let reason = "expected HELLO as the first frame".to_string();
            abort(&mut writer, ABORT_HANDSHAKE, &reason);
            return Err(WireError::Handshake(reason));
        }
        Err(WireError::Closed) => return Ok(false),
        Err(e) => {
            abort(&mut writer, ABORT_PROTOCOL, &e.to_string());
            return Err(e);
        }
    }

    let solution = server.solution().clone();
    let mut ingested = 0u64;
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Batch(batch)) => {
                // Validate the *whole* frame before ingesting any of it:
                // frames are atomic, so a malformed one is rejected without
                // a single envelope reaching a shard. The solution-instance
                // check additionally bounds numeric fixed-point magnitudes
                // for mixed batches (a forged huge report would otherwise
                // poison the exact sums).
                if let Err(e) = batch.validate_for_solution(&solution) {
                    let e = WireError::Batch(e);
                    abort(&mut writer, ABORT_PROTOCOL, &e.to_string());
                    return Err(e);
                }
                let len = batch.len() as u64;
                // May block on a full shard queue — that block is the
                // backpressure path described in the module docs.
                server.ingest_batch(batch.iter().map(|(uid, report)| Envelope { uid, report }));
                ingested += len;
                stats.ingested.fetch_add(len, Ordering::SeqCst);
            }
            Ok(Frame::SnapshotRequest { quiesce }) => {
                if quiesce {
                    server.quiesce();
                }
                let snapshot = server.snapshot();
                write_frame(&mut writer, &Frame::Snapshot(WireSnapshot::from(&snapshot)))?;
                writer.flush()?;
            }
            Ok(Frame::Drain) => {
                write_frame(&mut writer, &Frame::DrainAck { n: ingested })?;
                writer.flush()?;
                return Ok(true);
            }
            Ok(Frame::Abort { .. }) => return Ok(false),
            Ok(other) => {
                let e = WireError::Payload(format!(
                    "unexpected {} frame in an open session",
                    frame_name(&other)
                ));
                abort(&mut writer, ABORT_PROTOCOL, &e.to_string());
                return Err(e);
            }
            Err(WireError::Closed) => return Ok(false),
            Err(e) => {
                abort(&mut writer, ABORT_PROTOCOL, &e.to_string());
                return Err(e);
            }
        }
    }
}

/// Best-effort ABORT notification; the connection is going away either way.
fn abort(writer: &mut impl Write, code: u16, message: &str) {
    let _ = write_frame(
        writer,
        &Frame::Abort {
            code,
            message: message.to_string(),
        },
    );
    let _ = writer.flush();
}

fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "HELLO",
        Frame::HelloAck { .. } => "HELLO_ACK",
        Frame::Batch(_) => "BATCH",
        Frame::SnapshotRequest { .. } => "SNAPSHOT_REQUEST",
        Frame::Snapshot(_) => "SNAPSHOT",
        Frame::Drain => "DRAIN",
        Frame::DrainAck { .. } => "DRAIN_ACK",
        Frame::Abort { .. } => "ABORT",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{CompactBatch, RsFdProtocol, SolutionKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spawn_server() -> (WireServer, DynSolution) {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default().shards(2),
        )
        .unwrap();
        (server, solution)
    }

    fn handshake(addr: SocketAddr, solution: &DynSolution) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream.try_clone().unwrap();
        write_frame(
            &mut writer,
            &Frame::Hello {
                fingerprint: solution_fingerprint(solution),
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::HelloAck { .. }
        ));
        (reader, stream)
    }

    #[test]
    fn socket_session_ingests_snapshots_and_drains() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut batch = CompactBatch::new();
        for uid in 0..200u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        write_frame(&mut writer, &Frame::SnapshotRequest { quiesce: true }).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Snapshot(snap) => {
                assert_eq!(snap.n, 200);
                assert_eq!(snap.estimates.len(), 2);
            }
            other => panic!("expected SNAPSHOT, got {other:?}"),
        }
        write_frame(&mut writer, &Frame::Drain).unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::DrainAck { n: 200 }
        ));
        server.wait_for_producers(1);
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 200);
    }

    #[test]
    fn wrong_fingerprint_is_rejected_at_handshake() {
        let (server, _solution) = spawn_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(&mut writer, &Frame::Hello { fingerprint: 0xBAD }).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_HANDSHAKE),
            other => panic!("expected ABORT, got {other:?}"),
        }
        // The server survives and still serves valid producers.
        assert_eq!(server.finish().n, 0);
    }

    #[test]
    fn corrupt_frame_closes_only_the_offending_connection() {
        let (server, solution) = spawn_server();
        let addr = server.local_addr();

        // A well-behaved producer on one connection…
        let (mut good_reader, good_stream) = handshake(addr, &solution);
        let mut good_writer = good_stream.try_clone().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut batch = CompactBatch::new();
        for uid in 0..100u64 {
            batch.push(uid, &solution.report(&[0, 1], &mut rng));
        }
        write_frame(&mut good_writer, &Frame::Batch(batch.clone())).unwrap();
        good_writer.flush().unwrap();

        // …and garbage on another: corrupt CRC after a valid handshake.
        let (mut bad_reader, bad_stream) = handshake(addr, &solution);
        let mut bad_writer = bad_stream.try_clone().unwrap();
        let mut buf = Vec::new();
        crate::wire::encode_frame(&Frame::Batch(batch), &mut buf);
        *buf.last_mut().unwrap() ^= 0xFF;
        std::io::Write::write_all(&mut bad_writer, &buf).unwrap();
        bad_writer.flush().unwrap();
        match read_frame(&mut bad_reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut bad_reader),
            Err(WireError::Closed)
        ));

        // The good connection is unaffected: it can still snapshot + drain.
        write_frame(&mut good_writer, &Frame::Drain).unwrap();
        good_writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut good_reader).unwrap(),
            Frame::DrainAck { n: 100 }
        ));
        server.wait_for_producers(1);
        assert_eq!(server.rejected_connections(), 1);
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 100, "corrupt frame must not poison a shard");
    }

    #[test]
    fn foreign_solution_batch_is_rejected_atomically() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        // Structurally valid words, wrong shape: an SMP batch for a fake-
        // data server. The whole frame must be rejected pre-ingest.
        let smp = SolutionKind::Smp(ldp_protocols::ProtocolKind::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut batch = CompactBatch::new();
        for uid in 0..50u64 {
            batch.push(uid, &smp.report(&[1, 1], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 0, "no envelope of a rejected frame may land");
    }
}
